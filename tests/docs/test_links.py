"""Static documentation checks: intra-repo links and dotted paths.

Two classes of silent rot the example-execution suite cannot catch:

* a relative markdown link whose target file was moved or renamed;
* a prose mention of a ``repro.something.symbol`` that no longer imports
  (docs name far more symbols than their executable blocks exercise).
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

PAGES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]

_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")
_DOTTED = re.compile(r"\brepro(?:\.\w+)+")
_FENCE = re.compile(r"^```.*?^```\s*$", re.M | re.S)


def _relative_links() -> list[tuple[str, str]]:
    out = []
    for page in PAGES:
        for target in _LINK.findall(page.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            out.append((page.name, target))
    return out


@pytest.mark.parametrize(
    "page,target", _relative_links(), ids=lambda v: str(v)
)
def test_relative_link_target_exists(page, target):
    base = (REPO / "docs") if page != "README.md" else REPO
    assert (base / target).resolve().exists(), f"{page}: broken link {target!r}"


def _dotted_paths() -> list[tuple[str, str]]:
    seen = set()
    out = []
    for page in PAGES:
        text = page.read_text()
        # Code fences are covered by test_examples (or are deliberate
        # sketches); prose is what this pass audits.  Globs like
        # ``repro.mat.mpi_*`` are namespace patterns, not symbols.
        prose = _FENCE.sub("", text)
        for m in _DOTTED.finditer(prose):
            path = m.group(0)
            end = m.end()
            if end < len(prose) and prose[end] == "*":
                continue
            if (page.name, path) not in seen:
                seen.add((page.name, path))
                out.append((page.name, path))
    return out


@pytest.mark.parametrize("page,path", _dotted_paths(), ids=lambda v: str(v))
def test_dotted_path_imports(page, path):
    """Every ``repro.x.y`` the docs mention must resolve to a module or
    an attribute of one."""
    parts = path.split(".")
    failures = []
    for cut in range(len(parts), 0, -1):
        modname = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(modname)
        except ImportError as exc:
            failures.append(f"{modname}: {exc}")
            continue
        for attr in parts[cut:]:
            try:
                obj = getattr(obj, attr)
            except AttributeError:
                failures.append(f"{modname} has no attribute chain {parts[cut:]}")
                obj = None
                break
        if obj is not None:
            return
    pytest.fail(f"{page}: {path!r} does not resolve ({'; '.join(failures)})")
