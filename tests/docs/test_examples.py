"""Execute the fenced Python examples in the documentation.

Every ```python block in ``docs/*.md`` and ``README.md`` is extracted
and — unless its page/index appears in ``SKIP`` with a reason — executed
in a fresh namespace.  A doc example that stops running fails CI, so the
documentation cannot silently rot.

Blocks on one page run in order and *share* a namespace, because pages
build examples incrementally (a later block may reuse ``csr`` from an
earlier one); pages are independent of each other.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

#: (page, block-index) -> reason.  Indexes count ``python`` blocks only,
#: from 0, per page.  Everything not listed here must execute.
SKIP = {
    ("formats.md", 3): "registration sketch: DiaMat/spmv_dia are placeholders",
}

_FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.M | re.S)


def _pages() -> list[Path]:
    return [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]


def _blocks() -> list[tuple[str, int, str]]:
    out = []
    for page in _pages():
        for i, m in enumerate(_FENCE.finditer(page.read_text())):
            out.append((page.name, i, m.group(1)))
    return out


BLOCKS = _blocks()

#: Per-page shared namespaces (order within a page is the file order).
_page_ns: dict[str, dict] = {}


@pytest.mark.parametrize(
    "page,index,source",
    BLOCKS,
    ids=[f"{page}:{index}" for page, index, _ in BLOCKS],
)
def test_doc_example_executes(page, index, source, tmp_path, monkeypatch):
    reason = SKIP.get((page, index))
    if reason:
        pytest.skip(reason)
    monkeypatch.chdir(tmp_path)  # blocks that write files stay sandboxed
    ns = _page_ns.setdefault(page, {"__name__": f"doc_example_{page}"})
    exec(compile(source, f"{page}[block {index}]", "exec"), ns)


def test_the_suite_actually_covers_the_docs():
    """Guard the harness itself: enough executable blocks, no stale skips."""
    executed = [b for b in BLOCKS if (b[0], b[1]) not in SKIP]
    assert len(executed) >= 10, f"only {len(executed)} executable doc blocks"
    known = {(page, index) for page, index, _ in BLOCKS}
    stale = [k for k in SKIP if k not in known]
    assert not stale, f"SKIP entries for missing blocks: {stale}"
