"""VecScatter: ghost-value exchange correctness and misuse handling."""

import numpy as np
import pytest

from repro.comm.partition import RowLayout
from repro.comm.scatter import VecScatter
from repro.comm.spmd import SpmdError, run_spmd


def global_vector(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.float64) * 10.0


class TestExchange:
    @pytest.mark.parametrize("size", [2, 3, 4])
    def test_random_ghost_sets_receive_the_right_values(self, size):
        n = 29
        rng_master = np.random.default_rng(123)
        ghost_sets = []
        layout = RowLayout.uniform(n, size)
        for rank in range(size):
            start, end = layout.range_of(rank)
            others = np.setdiff1d(np.arange(n), np.arange(start, end))
            k = min(5, others.size)
            ghost_sets.append(np.sort(rng_master.choice(others, k, replace=False)))

        def prog(comm):
            start, end = layout.range_of(comm.rank)
            local = global_vector(n)[start:end]
            sc = VecScatter(comm, layout, ghost_sets[comm.rank])
            got = sc.exchange(local)
            expect = global_vector(n)[ghost_sets[comm.rank]]
            return np.array_equal(got, expect)

        assert all(run_spmd(size, prog))

    def test_empty_ghost_set_is_fine(self):
        def prog(comm):
            layout = RowLayout.uniform(8, comm.size)
            sc = VecScatter(comm, layout, np.array([], dtype=np.int64))
            start, end = layout.range_of(comm.rank)
            out = sc.exchange(global_vector(8)[start:end])
            return out.size

        assert run_spmd(2, prog) == [0, 0]

    def test_overlap_pattern_begin_compute_end(self):
        """The paper's step-1/step-2/step-3 usage."""

        def prog(comm):
            layout = RowLayout.uniform(6, 2)
            start, end = layout.range_of(comm.rank)
            ghosts = np.array([(end % 6)], dtype=np.int64)
            ghosts = ghosts[(ghosts < start) | (ghosts >= end)]
            sc = VecScatter(comm, layout, ghosts)
            local = global_vector(6)[start:end]
            sc.begin(local)
            local_work = float(local.sum())  # "diagonal block" work
            ghost_vals = sc.end()
            return local_work, list(ghost_vals)

        out = run_spmd(2, prog)
        assert out[0] == (30.0, [30.0])  # rank 0 needs x[3]
        assert out[1] == (120.0, [0.0])  # rank 1 wraps to x[0]

    def test_scatter_is_reusable_across_exchanges(self):
        def prog(comm):
            layout = RowLayout.uniform(4, 2)
            start, end = layout.range_of(comm.rank)
            ghosts = np.array([3 - start if start == 0 else 0], dtype=np.int64)
            sc = VecScatter(comm, layout, ghosts)
            first = sc.exchange(np.ones(2) * (comm.rank + 1))[0]
            second = sc.exchange(np.ones(2) * (comm.rank + 10))[0]
            return first, second

        out = run_spmd(2, prog)
        assert out[0] == (2.0, 11.0)
        assert out[1] == (1.0, 10.0)

    def test_peer_lists_are_consistent(self):
        def prog(comm):
            layout = RowLayout.uniform(8, 2)
            if comm.rank == 0:
                ghosts = np.array([5], dtype=np.int64)
            else:
                ghosts = np.array([], dtype=np.int64)
            sc = VecScatter(comm, layout, ghosts)
            return sc.send_peers, sc.recv_peers

        out = run_spmd(2, prog)
        assert out[0] == ([], [1])     # rank 0 receives from 1
        assert out[1] == ([0], [])     # rank 1 sends to 0


class TestValidation:
    def test_unsorted_ghosts_rejected(self):
        def prog(comm):
            layout = RowLayout.uniform(8, 2)
            VecScatter(comm, layout, np.array([5, 4], dtype=np.int64))

        with pytest.raises(SpmdError):
            run_spmd(2, prog)

    def test_owned_indices_rejected_as_ghosts(self):
        def prog(comm):
            layout = RowLayout.uniform(8, 2)
            start, _ = layout.range_of(comm.rank)
            VecScatter(comm, layout, np.array([start], dtype=np.int64))

        with pytest.raises(SpmdError):
            run_spmd(2, prog)

    def test_end_before_begin_raises(self):
        def prog(comm):
            layout = RowLayout.uniform(8, 2)
            sc = VecScatter(comm, layout, np.array([], dtype=np.int64))
            sc.end()

        with pytest.raises(SpmdError):
            run_spmd(2, prog)

    def test_double_begin_raises(self):
        def prog(comm):
            layout = RowLayout.uniform(8, 2)
            start, end = layout.range_of(comm.rank)
            sc = VecScatter(comm, layout, np.array([], dtype=np.int64))
            local = np.zeros(end - start)
            sc.begin(local)
            sc.begin(local)

        with pytest.raises(SpmdError):
            run_spmd(2, prog)

    def test_wrong_local_vector_length_raises(self):
        def prog(comm):
            layout = RowLayout.uniform(8, 2)
            sc = VecScatter(comm, layout, np.array([], dtype=np.int64))
            sc.begin(np.zeros(99))

        with pytest.raises(SpmdError):
            run_spmd(2, prog)
