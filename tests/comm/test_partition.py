"""Row layouts: the PETSc ownership-range rules."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.comm.partition import RowLayout


class TestUniform:
    def test_even_split(self):
        layout = RowLayout.uniform(12, 4)
        assert [layout.local_size(r) for r in range(4)] == [3, 3, 3, 3]

    def test_remainder_goes_to_the_lowest_ranks(self):
        """PETSc's PETSC_DECIDE rule."""
        layout = RowLayout.uniform(10, 4)
        assert [layout.local_size(r) for r in range(4)] == [3, 3, 2, 2]

    def test_more_ranks_than_rows(self):
        layout = RowLayout.uniform(2, 5)
        assert [layout.local_size(r) for r in range(5)] == [1, 1, 0, 0, 0]

    def test_empty_global(self):
        layout = RowLayout.uniform(0, 3)
        assert all(layout.local_size(r) == 0 for r in range(3))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            RowLayout.uniform(-1, 2)
        with pytest.raises(ValueError):
            RowLayout.uniform(5, 0)


class TestOwnership:
    def test_owner_of_matches_the_ranges(self):
        layout = RowLayout.uniform(10, 3)
        for rank in range(3):
            start, end = layout.range_of(rank)
            for i in range(start, end):
                assert layout.owner_of(i) == rank

    def test_owner_of_out_of_range(self):
        layout = RowLayout.uniform(10, 3)
        with pytest.raises(IndexError):
            layout.owner_of(10)
        with pytest.raises(IndexError):
            layout.owner_of(-1)

    def test_to_local(self):
        layout = RowLayout.uniform(10, 3)
        start, _ = layout.range_of(1)
        assert layout.to_local(1, start) == 0
        assert layout.to_local(1, start + 2) == 2

    def test_to_local_rejects_foreign_rows(self):
        layout = RowLayout.uniform(10, 3)
        with pytest.raises(IndexError):
            layout.to_local(0, 9)

    def test_range_of_invalid_rank(self):
        with pytest.raises(IndexError):
            RowLayout.uniform(10, 3).range_of(3)


class TestFromLocalSizes:
    def test_explicit_sizes(self):
        layout = RowLayout.from_local_sizes([4, 0, 6])
        assert layout.n_global == 10
        assert layout.range_of(1) == (4, 4)
        assert layout.range_of(2) == (4, 10)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            RowLayout.from_local_sizes([3, -1])

    def test_balanced_check(self):
        assert RowLayout.uniform(10, 4).is_balanced()
        assert not RowLayout.from_local_sizes([8, 1, 1]).is_balanced()


@given(
    n=st.integers(min_value=0, max_value=5000),
    size=st.integers(min_value=1, max_value=64),
)
def test_uniform_layout_invariants(n, size):
    """Local sizes cover the range exactly and differ by at most one."""
    layout = RowLayout.uniform(n, size)
    sizes = [layout.local_size(r) for r in range(size)]
    assert sum(sizes) == n
    assert max(sizes) - min(sizes) <= 1
    assert sizes == sorted(sizes, reverse=True)  # remainders at low ranks
