"""The SPMD driver: rank fan-out, results, failure propagation."""

import pytest

from repro.comm.communicator import World
from repro.comm.spmd import SpmdError, run_spmd


class TestRunSpmd:
    def test_results_indexed_by_rank(self):
        assert run_spmd(4, lambda comm: comm.rank * comm.size) == [0, 4, 8, 12]

    def test_extra_args_forwarded(self):
        def prog(comm, base, offset=0):
            return base + offset + comm.rank

        assert run_spmd(2, prog, 100, offset=10) == [110, 111]

    def test_single_rank_world(self):
        assert run_spmd(1, lambda comm: comm.allreduce(5)) == [5]

    def test_exception_reports_the_failing_rank(self):
        def prog(comm):
            if comm.rank == 2:
                raise RuntimeError("boom")
            comm.barrier()

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(4, prog)
        assert exc_info.value.rank == 2
        assert isinstance(exc_info.value.original, RuntimeError)

    def test_failure_unblocks_peers_waiting_in_receives(self):
        """A crashed rank must not leave the others hanging forever."""

        def prog(comm):
            if comm.rank == 0:
                raise ValueError("dead before sending")
            return comm.recv(source=0)

        with pytest.raises(SpmdError):
            run_spmd(2, prog)

    def test_world_reuse_with_matching_size(self):
        world = World(3)
        run_spmd(3, lambda comm: comm.barrier(), world=world)
        run_spmd(3, lambda comm: comm.barrier(), world=world)
        assert world.size == 3

    def test_world_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            run_spmd(2, lambda comm: None, world=World(3))

    def test_zero_ranks_raises(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)
