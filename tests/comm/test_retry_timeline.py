"""Seeded retry backoff: jitter determinism and the fake-clock timeline."""

import numpy as np
import pytest

from repro.comm.communicator import (
    MAX_SEND_RETRIES,
    CommunicatorError,
    World,
    retry_backoff,
)
from repro.comm.spmd import SpmdError, run_spmd
from repro.core.context import ExecutionContext
from repro.faults.plan import FaultInjector, FaultPlan, FaultSpec, inject
from repro.obs.observer import Observer, observing


class TestBackoffFunction:
    def test_jitter_is_a_pure_function_of_seed_site_attempt(self):
        assert retry_backoff("comm.send@0", 3) == retry_backoff("comm.send@0", 3)
        assert retry_backoff("comm.send@0", 3, seed=1) != retry_backoff(
            "comm.send@0", 3, seed=2
        )
        assert retry_backoff("comm.send@0", 3) != retry_backoff("comm.send@1", 3)

    @pytest.mark.parametrize("attempt", range(1, 12))
    def test_attempt_lands_in_its_exponential_window(self, attempt):
        backoff = retry_backoff("comm.send@0", attempt, seed=7)
        assert (1 << (attempt - 1)) <= backoff < (1 << attempt)

    def test_ranks_spread_across_the_window(self):
        """The site string embeds the rank, so simultaneous retries of one
        attempt number do not retransmit in lockstep."""
        waits = {retry_backoff(f"comm.send@{r}", 6) for r in range(8)}
        assert len(waits) > 1

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError):
            retry_backoff("comm.send@0", 0)


def _drops(rank, n, start=0):
    return FaultPlan(
        [FaultSpec(f"comm.send@{rank}", start + i, "drop") for i in range(n)]
    )


class TestRetryBudget:
    def _ping(self, world):
        def rank_fn(comm):
            if comm.rank == 0:
                comm.send("ping", 1)
            else:
                return comm.recv(0)

        return run_spmd(world.size, rank_fn, world=world)

    def test_default_budget_rides_out_consecutive_drops(self):
        with inject(FaultInjector(_drops(0, MAX_SEND_RETRIES))):
            assert self._ping(World(2))[1] == "ping"

    def test_configured_budget_fails_loudly_when_exceeded(self):
        with inject(FaultInjector(_drops(0, 3))):
            with pytest.raises(SpmdError) as err:
                self._ping(World(2, max_send_retries=2))
        assert isinstance(err.value.original, CommunicatorError)
        assert "2 retransmissions" in str(err.value.original)

    def test_world_validates_the_budget(self):
        with pytest.raises(ValueError):
            World(2, max_send_retries=0)

    def test_context_carries_the_budget_to_world_builders(self):
        ctx = ExecutionContext(max_send_retries=3)
        assert ctx.max_send_retries == 3
        assert ctx.with_nprocs(4).max_send_retries == 3  # survives derivation
        world = World(2, max_send_retries=ctx.max_send_retries)
        assert world.max_send_retries == 3
        assert World(2).max_send_retries == MAX_SEND_RETRIES


class TestFakeClockTimeline:
    def test_retry_gaps_replay_the_modeled_backoff_sequence(self):
        """Drive a send through three consecutive drops under a frozen
        fake clock and read the retry gaps back off the trace: each is a
        closed span whose duration is exactly the modeled jittered
        backoff (in microseconds of trace time), ending at the frozen
        now, in attempt order."""
        seed = 5
        site = "comm.send@0"
        expected = [retry_backoff(site, k, seed=seed) for k in (1, 2, 3)]

        clock = lambda: 1000.0  # noqa: E731 - the frozen fake clock
        observer = Observer(clock=clock)
        with observing(observer):
            with inject(FaultInjector(_drops(0, 3))):
                world = World(2, retry_seed=seed)

                def rank_fn(comm):
                    if comm.rank == 0:
                        comm.send("payload", 1)
                    else:
                        return comm.recv(0)

                assert run_spmd(2, rank_fn, world=world)[1] == "payload"

        gaps = [
            ev
            for ev in observer.trace.events
            if ev.get("name") == "comm.retry" and ev.get("ph") == "X"
        ]
        assert [g["args"]["backoff"] for g in gaps] == expected
        assert [g["args"]["attempt"] for g in gaps] == [1, 2, 3]
        # Chrome-trace durations are microseconds; the modeled backoff is
        # emitted as backoff-microseconds of trace time.
        assert [g["dur"] for g in gaps] == pytest.approx(expected)
        # Every gap closes at the frozen now (ts 0 on the trace's own
        # clock): the span starts `duration` before it.
        for g in gaps:
            assert g["ts"] + g["dur"] == pytest.approx(0.0, abs=1e-6)

    def test_two_seeds_give_two_timelines_each_reproducible(self):
        def timeline(seed):
            observer = Observer(clock=lambda: 0.0)
            with observing(observer):
                with inject(FaultInjector(_drops(0, 2))):
                    world = World(2, retry_seed=seed)

                    def rank_fn(comm):
                        if comm.rank == 0:
                            comm.send(np.int64(1), 1)
                        else:
                            comm.recv(0)

                    run_spmd(2, rank_fn, world=world)
            return tuple(
                ev["args"]["backoff"]
                for ev in observer.trace.events
                if ev.get("name") == "comm.retry"
            )

        assert timeline(1) == timeline(1)
        assert timeline(1) != timeline(2)
