"""Point-to-point and collective semantics of the simulated MPI."""

import numpy as np
import pytest

from repro.comm.communicator import ANY_TAG, CommunicatorError
from repro.comm.spmd import SpmdError, run_spmd


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"a": 7}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        results = run_spmd(2, prog)
        assert results[1] == {"a": 7}

    def test_messages_are_non_overtaking_per_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=3)
                return None
            return [comm.recv(source=0, tag=3) for _ in range(5)]

        assert run_spmd(2, prog)[1] == [0, 1, 2, 3, 4]

    def test_tags_select_messages_out_of_order(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert run_spmd(2, prog)[1] == ("first", "second")

    def test_any_tag_takes_the_head_of_queue(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=9)
                return None
            return comm.recv(source=0, tag=ANY_TAG)

        assert run_spmd(2, prog)[1] == "x"

    def test_isend_is_buffered_sender_may_reuse_the_array(self):
        """MPI buffered-send semantics: payload snapshot at send time."""

        def prog(comm):
            if comm.rank == 0:
                data = np.arange(4, dtype=np.float64)
                comm.isend(data, dest=1)
                data[:] = -1.0  # mutate after send
                comm.send("done", dest=1, tag=5)
                return None
            comm.recv(source=0, tag=5)  # ensure the mutation happened
            return comm.recv(source=0)

        received = run_spmd(2, prog)[1]
        assert np.array_equal(received, [0.0, 1.0, 2.0, 3.0])

    def test_irecv_test_polls_without_blocking(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.irecv(source=1)
                ready_before = req.test()
                comm.send("go", dest=1)
                value = req.wait()
                return (ready_before, value)
            comm.recv(source=0)
            comm.send(42, dest=0)
            return None

        ready_before, value = run_spmd(2, prog)[0]
        assert ready_before is False
        assert value == 42

    def test_bad_peer_rank_raises(self):
        def prog(comm):
            comm.send(1, dest=5)

        with pytest.raises(SpmdError):
            run_spmd(2, prog)


class TestCollectives:
    def test_allreduce_sum_is_deterministic_rank_order(self):
        def prog(comm):
            return comm.allreduce(float(comm.rank + 1))

        assert run_spmd(4, prog) == [10.0] * 4

    def test_allreduce_max_min(self):
        def prog(comm):
            return (comm.allreduce(comm.rank, op="max"),
                    comm.allreduce(comm.rank, op="min"))

        assert run_spmd(3, prog) == [(2, 0)] * 3

    def test_allreduce_arrays(self):
        def prog(comm):
            return comm.allreduce(np.full(3, float(comm.rank)))

        out = run_spmd(3, prog)
        assert all(np.array_equal(o, [3.0, 3.0, 3.0]) for o in out)

    def test_unknown_reduction_raises(self):
        def prog(comm):
            comm.allreduce(1, op="median")

        with pytest.raises(SpmdError):
            run_spmd(2, prog)

    def test_bcast_from_nonzero_root(self):
        def prog(comm):
            payload = "hello" if comm.rank == 2 else None
            return comm.bcast(payload, root=2)

        assert run_spmd(4, prog) == ["hello"] * 4

    def test_allgather_orders_by_rank(self):
        def prog(comm):
            return comm.allgather(comm.rank * 10)

        assert run_spmd(3, prog) == [[0, 10, 20]] * 3

    def test_gather_returns_none_off_root(self):
        def prog(comm):
            return comm.gather(comm.rank, root=1)

        out = run_spmd(3, prog)
        assert out[0] is None and out[2] is None
        assert out[1] == [0, 1, 2]

    def test_scatter(self):
        def prog(comm):
            values = [10, 20, 30] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        assert run_spmd(3, prog) == [10, 20, 30]

    def test_scatter_wrong_length_raises(self):
        def prog(comm):
            values = [1] if comm.rank == 0 else None
            comm.scatter(values, root=0)

        with pytest.raises(SpmdError):
            run_spmd(3, prog)

    def test_mismatched_collectives_error_instead_of_deadlocking(self):
        def prog(comm):
            if comm.rank == 0:
                return comm.allreduce(1)
            return comm.barrier()

        with pytest.raises(SpmdError):
            run_spmd(2, prog)

    def test_barrier_synchronizes(self):
        order = []

        def prog(comm):
            if comm.rank == 1:
                order.append("pre")
            comm.barrier()
            if comm.rank == 0:
                order.append("post")

        run_spmd(2, prog)
        assert order == ["pre", "post"]


class TestTrafficStats:
    def test_world_counts_messages_and_bytes(self):
        from repro.comm.communicator import World

        world = World(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), dest=1)
            else:
                comm.recv(source=0)

        run_spmd(2, prog, world=world)
        assert world.stats.messages == 1
        assert world.stats.bytes == 80

    def test_comm_size_and_rank_validation(self):
        from repro.comm.communicator import Comm, World

        world = World(2)
        with pytest.raises(CommunicatorError):
            Comm(world, 2)
