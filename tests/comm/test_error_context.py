"""CommunicatorError messages carry rank, peer, tag, and operation context.

A four-rank job dying with "peer out of range" is undiagnosable without
knowing *which* rank tried to talk to *whom* in *which* operation; these
tests pin the context the communicator now includes.
"""

import pytest

from repro.comm.communicator import Comm, CommunicatorError, World


@pytest.fixture
def comm():
    return Comm(World(2), 0)


class TestPointToPointContext:
    def test_send_names_rank_peer_and_tag(self, comm):
        with pytest.raises(CommunicatorError) as excinfo:
            comm.send(1.0, dest=5, tag=42)
        message = str(excinfo.value)
        assert "rank 0" in message
        assert "peer rank 5" in message
        assert "world size 2" in message
        assert "send(tag=42)" in message

    def test_irecv_names_the_operation_and_tag(self, comm):
        with pytest.raises(CommunicatorError, match=r"irecv\(tag=3\)"):
            comm.irecv(source=-1, tag=3)


class TestCollectiveContext:
    def test_bcast_names_the_operation(self, comm):
        with pytest.raises(CommunicatorError, match="bcast"):
            comm.bcast(1.0, root=9)

    def test_gather_names_the_operation(self, comm):
        with pytest.raises(CommunicatorError, match="gather"):
            comm.gather(1.0, root=9)

    def test_scatter_length_error_names_rank_and_root(self, comm):
        with pytest.raises(
            CommunicatorError, match="rank 0: scatter from root 0"
        ):
            comm.scatter([1.0], root=0)  # needs one value per rank (2)

    def test_allreduce_unknown_op_names_rank_and_op(self):
        # A one-rank world so the collective completes (and fails) inline.
        solo = Comm(World(1), 0)
        with pytest.raises(
            CommunicatorError, match="rank 0: unknown reduction op 'median'"
        ):
            solo.allreduce(1.0, op="median")
