"""ExecutionContext threaded through the solver stack (ksp + MG).

The context is the ``-mat_type``/``-dm_mat_type`` seam: sequential Krylov
solvers reformat a bare CSR operator on entry, the multigrid
preconditioner reformats (and autotunes) each coarse level's Galerkin
operator, and repeated setups on the same stencil never re-sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.context import ExecutionContext
from repro.core.dispatch import CSR_BASELINE, SELL_AVX512
from repro.core.sell import SellMat
from repro.ksp.cg import CG
from repro.ksp.gmres import GMRES
from repro.ksp.pc.mg import MGPC
from repro.ksp.richardson import Richardson
from repro.mat.aij import AijMat
from repro.pde.grid import Grid2D
from repro.pde.problems import gray_scott_jacobian, spd_laplacian

from .test_mg import shifted_laplacian


@pytest.fixture
def system():
    a = gray_scott_jacobian(8)
    rng = np.random.default_rng(3)
    b = rng.standard_normal(a.shape[0])
    return a, b


class TestSequentialSolvers:
    def test_gmres_reformats_and_matches_plain_solve(self, system):
        a, b = system
        plain = GMRES(rtol=1e-10).solve(a, b)
        ctx = ExecutionContext(default_variant=SELL_AVX512)
        reformatted = GMRES(rtol=1e-10, context=ctx).solve(a, b)
        assert reformatted.iterations == plain.iterations
        np.testing.assert_allclose(reformatted.x, plain.x, rtol=1e-8)

    def test_autotuning_context_solves_correctly(self, system):
        a, b = system
        ctx = ExecutionContext()
        result = GMRES(rtol=1e-10, context=ctx).solve(a, b)
        assert ctx.autotune_sweeps == 1
        np.testing.assert_allclose(a.multiply(result.x), b, atol=1e-6)

    def test_cg_and_richardson_accept_a_context(self):
        a = spd_laplacian(8)
        b = np.ones(a.shape[0])
        ctx = ExecutionContext(default_variant=SELL_AVX512)
        x_cg = CG(rtol=1e-10, max_it=500, context=ctx).solve(a, b).x
        np.testing.assert_allclose(a.multiply(x_cg), b, atol=1e-6)
        plain = Richardson(scale=0.2, max_it=5).solve(a, b)
        with_ctx = Richardson(scale=0.2, max_it=5, context=ctx).solve(a, b)
        np.testing.assert_allclose(with_ctx.x, plain.x, rtol=1e-12)

    def test_no_context_leaves_the_operator_alone(self, system):
        a, _ = system
        assert GMRES()._resolve_operator(a) is a


class TestMultigridThreading:
    def make_hierarchy(self, n: int = 16, levels: int = 3):
        grid = Grid2D(n, n)
        return shifted_laplacian(grid), grid.hierarchy(levels)

    def test_coarse_levels_reformatted_finest_untouched(self):
        a, grids = self.make_hierarchy()
        ctx = ExecutionContext(default_variant=SELL_AVX512)
        mg = MGPC(grids=grids, context=ctx)
        mg.setup(a)
        assert isinstance(mg.levels[0].op.inner, AijMat)
        for level in mg.levels[1:]:
            assert isinstance(level.op.inner, SellMat)

    def test_each_level_tunes_once_and_resetup_hits_the_cache(self):
        a, grids = self.make_hierarchy()
        ctx = ExecutionContext()
        mg = MGPC(grids=grids, context=ctx)
        mg.setup(a)
        sweeps = ctx.autotune_sweeps
        assert sweeps == len(grids) - 1  # one per coarse-level signature
        mg.setup(a)  # Newton reassembly: same structure, no new sweeps
        assert ctx.autotune_sweeps == sweeps

    def test_context_mg_preserves_the_solve(self):
        a, grids = self.make_hierarchy()
        b = np.ones(a.shape[0])
        plain = GMRES(pc=MGPC(grids=grids), rtol=1e-10).solve(a, b)
        ctx = ExecutionContext(default_variant=SELL_AVX512)
        threaded = GMRES(pc=MGPC(grids=grids, context=ctx), rtol=1e-10).solve(
            a, b
        )
        assert threaded.iterations == plain.iterations
        np.testing.assert_allclose(threaded.x, plain.x, rtol=1e-8)

    def test_mg_without_context_stays_csr(self):
        a, grids = self.make_hierarchy()
        mg = MGPC(grids=grids)
        mg.setup(a)
        for level in mg.levels:
            assert isinstance(level.op.inner, AijMat)
