"""Geometric multigrid: transfers, Galerkin products, V-cycles."""

import numpy as np
import pytest

from repro.ksp.gmres import GMRES
from repro.ksp.pc.mg import (
    MGPC,
    bilinear_prolongation,
    csr_matmul,
    full_weighting_restriction,
)
from repro.mat.aij import AijMat
from repro.pde.grid import Grid2D
from repro.pde.problems import spd_laplacian
from repro.pde.stencil import laplacian_csr

from ..conftest import make_random_csr


def shifted_laplacian(grid: Grid2D) -> AijMat:
    """I - Laplacian: SPD with the 5-point structure (solvable by MG)."""
    lap = laplacian_csr(grid)
    n = lap.shape[0]
    rows = np.arange(n, dtype=np.int64)
    return AijMat.from_coo(
        (n, n),
        np.concatenate([np.repeat(rows, lap.row_lengths()), rows]),
        np.concatenate([lap.colidx.astype(np.int64), rows]),
        np.concatenate([-lap.val, np.ones(n)]),
        sum_duplicates=True,
    )


class TestCsrMatmul:
    def test_matches_dense_product(self):
        a = make_random_csr(9, 7, density=0.3, seed=1)
        b = make_random_csr(7, 11, density=0.3, seed=2)
        c = csr_matmul(a, b)
        assert np.allclose(c.to_dense(), a.to_dense() @ b.to_dense())

    def test_dimension_mismatch_rejected(self):
        a = make_random_csr(4, 5, density=0.5)
        with pytest.raises(ValueError):
            csr_matmul(a, a)

    def test_empty_operand(self):
        a = make_random_csr(4, 4, density=0.5)
        empty = AijMat.from_coo((4, 4), np.array([]), np.array([]), np.array([]))
        assert csr_matmul(a, empty).nnz == 0

    def test_identity_is_neutral(self):
        a = make_random_csr(6, density=0.4, seed=3)
        eye = AijMat.from_dense(np.eye(6))
        assert csr_matmul(a, eye).equal(a, tol=1e-14)
        assert csr_matmul(eye, a).equal(a, tol=1e-14)


class TestTransfers:
    def test_prolongation_rows_form_a_partition_of_unity(self):
        coarse, fine = Grid2D(4, 4), Grid2D(8, 8)
        p = bilinear_prolongation(coarse, fine)
        row_sums = p.multiply(np.ones(coarse.ndof))
        assert np.allclose(row_sums, 1.0)

    def test_prolongation_reproduces_constants_per_component(self):
        coarse, fine = Grid2D(4, 4, dof=2), Grid2D(8, 8, dof=2)
        p = bilinear_prolongation(coarse, fine)
        v = np.zeros(coarse.ndof)
        v[0::2] = 3.0  # constant in component 0 only
        out = p.multiply(v)
        assert np.allclose(out[0::2], 3.0)
        assert np.allclose(out[1::2], 0.0)

    def test_prolongation_interpolates_linear_functions_exactly_inside(self):
        """Bilinear interpolation is exact for a periodic Fourier mode
        at the coarse-grid sampling points."""
        coarse, fine = Grid2D(8, 8), Grid2D(16, 16)
        p = bilinear_prolongation(coarse, fine)
        xc, _ = coarse.point_coordinates()
        v = np.sin(2 * np.pi * xc / coarse.length)
        out = p.multiply(v)
        # Fine points that coincide with coarse points copy exactly.
        for j in range(0, 16, 2):
            for i in range(0, 16, 2):
                fi = fine.point_index(i, j)
                ci = coarse.point_index(i // 2, j // 2)
                assert out[fi] == pytest.approx(v[ci])

    def test_restriction_is_quarter_transpose(self):
        coarse, fine = Grid2D(4, 4), Grid2D(8, 8)
        p = bilinear_prolongation(coarse, fine)
        r = full_weighting_restriction(p)
        assert np.allclose(r.to_dense(), p.to_dense().T / 4.0)

    def test_wrong_grid_ratio_rejected(self):
        with pytest.raises(ValueError):
            bilinear_prolongation(Grid2D(4, 4), Grid2D(12, 12))
        with pytest.raises(ValueError):
            bilinear_prolongation(Grid2D(4, 4, dof=1), Grid2D(8, 8, dof=2))


class TestMGCycle:
    def test_galerkin_mg_accelerates_gmres(self, rng):
        grid = Grid2D(16, 16)
        a = shifted_laplacian(grid)
        b = rng.standard_normal(a.shape[0])
        plain = GMRES(rtol=1e-8).solve(a, b)
        mg = GMRES(rtol=1e-8, pc=MGPC(grids=grid.hierarchy(3))).solve(a, b)
        assert mg.reason.converged
        assert mg.iterations < plain.iterations / 2

    def test_rediscretized_mg_matches_galerkin_quality(self, rng):
        grid = Grid2D(16, 16)
        a = shifted_laplacian(grid)
        b = rng.standard_normal(a.shape[0])
        galerkin = GMRES(rtol=1e-8, pc=MGPC(grids=grid.hierarchy(3))).solve(a, b)
        redisc = GMRES(
            rtol=1e-8,
            pc=MGPC(grids=grid.hierarchy(3), operator_factory=shifted_laplacian),
        ).solve(a, b)
        assert redisc.reason.converged
        assert abs(redisc.iterations - galerkin.iterations) <= 3

    def test_w_cycle_is_at_least_as_strong_as_v(self, rng):
        grid = Grid2D(16, 16)
        a = shifted_laplacian(grid)
        b = rng.standard_normal(a.shape[0])
        v = GMRES(rtol=1e-8, pc=MGPC(grids=grid.hierarchy(3), cycle="v")).solve(a, b)
        w = GMRES(rtol=1e-8, pc=MGPC(grids=grid.hierarchy(3), cycle="w")).solve(a, b)
        assert w.iterations <= v.iterations + 1

    def test_single_level_degenerates_to_smoothing(self, rng):
        grid = Grid2D(8, 8)
        a = shifted_laplacian(grid)
        pc = MGPC(grids=[grid], coarse_sweeps=4)
        pc.setup(a)
        r = rng.standard_normal(a.shape[0])
        z = pc.apply(r)
        assert np.linalg.norm(a.multiply(z) - r) < np.linalg.norm(r)

    def test_level_matvec_accounting(self, rng):
        grid = Grid2D(16, 16)
        a = shifted_laplacian(grid)
        pc = MGPC(grids=grid.hierarchy(3))
        pc.setup(a)
        pc.apply(rng.standard_normal(a.shape[0]))
        counts = pc.matvec_counts()
        assert len(counts) == 3
        assert all(c > 0 for c in counts)
        rows = pc.rows_processed()
        # Finer levels stream more rows per cycle than coarser ones.
        assert rows[0] > rows[1] > 0

    def test_apply_before_setup_raises(self):
        with pytest.raises(RuntimeError):
            MGPC(grids=[Grid2D(8, 8)]).apply(np.ones(64))

    def test_wrong_residual_size_raises(self, rng):
        grid = Grid2D(8, 8)
        pc = MGPC(grids=grid.hierarchy(2))
        pc.setup(shifted_laplacian(grid))
        with pytest.raises(ValueError):
            pc.apply(np.ones(5))

    def test_invalid_cycle_name(self):
        with pytest.raises(ValueError):
            MGPC(cycle="f")

    def test_mg_preserves_the_operator_format(self, rng):
        """The fine operator is used as given — a SELL matrix stays SELL
        (the -dm_mat_type sell path)."""
        from repro.core.sell import SellMat
        from repro.ksp.base import CountingOperator

        grid = Grid2D(16, 16)
        a = SellMat.from_csr(shifted_laplacian(grid))
        counting = CountingOperator(a)
        pc = MGPC(grids=grid.hierarchy(2))
        pc.setup(counting)
        assert pc.levels[0].op is counting
        b = rng.standard_normal(a.shape[0])
        result = GMRES(rtol=1e-8, pc=pc).solve(counting, b)
        assert result.reason.converged
        assert counting.matvecs > 0
