"""Newton (SNES) and theta-method timestepping (TS)."""

import numpy as np
import pytest

from repro.ksp.gmres import GMRES
from repro.ksp.snes import NewtonSolver, SNESConvergedReason
from repro.ksp.ts import ThetaMethod
from repro.mat.aij import AijMat


def quadratic_problem():
    """F(x) = x^2 - c componentwise: root sqrt(c), diagonal Jacobian."""
    c = np.array([4.0, 9.0, 16.0])

    def residual(x):
        return x * x - c

    def jacobian(x):
        return AijMat.from_dense(np.diag(2.0 * x))

    return residual, jacobian, np.sqrt(c)


class TestNewton:
    def test_converges_quadratically_on_a_smooth_problem(self):
        residual, jacobian, root = quadratic_problem()
        solver = NewtonSolver(
            residual=residual,
            jacobian=jacobian,
            ksp_factory=lambda: GMRES(rtol=1e-12),
            rtol=1e-12,
        )
        result = solver.solve(np.array([1.0, 1.0, 1.0]))
        assert result.reason.converged
        assert np.allclose(result.x, root, atol=1e-6)
        # Quadratic convergence: few iterations from a decent guess.
        assert result.iterations <= 10

    def test_fnorm_history_is_monotone(self):
        residual, jacobian, _ = quadratic_problem()
        solver = NewtonSolver(
            residual=residual,
            jacobian=jacobian,
            ksp_factory=lambda: GMRES(rtol=1e-12),
        )
        result = solver.solve(np.array([3.0, 3.0, 3.0]))
        assert all(
            b < a for a, b in zip(result.fnorms, result.fnorms[1:], strict=False)
        )

    def test_line_search_rescues_an_overshooting_step(self):
        """atan has a famous Newton divergence without damping."""

        def residual(x):
            return np.arctan(x)

        def jacobian(x):
            return AijMat.from_dense(np.diag(1.0 / (1.0 + x * x)))

        solver = NewtonSolver(
            residual=residual,
            jacobian=jacobian,
            ksp_factory=lambda: GMRES(rtol=1e-14),
            rtol=1e-10,
            max_it=60,
        )
        result = solver.solve(np.array([2.0]))  # diverges without damping
        assert result.reason.converged
        assert abs(result.x[0]) < 1e-6

    def test_lagged_jacobian_builds_fewer_operators(self):
        residual, jacobian, _ = quadratic_problem()

        def run(lag):
            solver = NewtonSolver(
                residual=residual,
                jacobian=jacobian,
                ksp_factory=lambda: GMRES(rtol=1e-12),
                lag_jacobian=lag,
                rtol=1e-10,
                max_it=40,
            )
            return solver.solve(np.array([1.0, 1.0, 1.0]))

        fresh = run(1)
        lagged = run(3)
        assert lagged.reason.converged
        assert lagged.jacobian_builds < lagged.iterations
        assert fresh.jacobian_builds == fresh.iterations

    def test_operator_wrapper_converts_the_jacobian(self):
        from repro.core.sell import SellMat

        residual, jacobian, root = quadratic_problem()
        formats_seen = []

        def wrapper(mat):
            sell = SellMat.from_csr(mat.to_csr())
            formats_seen.append(sell.format_name)
            return sell

        solver = NewtonSolver(
            residual=residual,
            jacobian=jacobian,
            ksp_factory=lambda: GMRES(rtol=1e-12),
            operator_wrapper=wrapper,
        )
        result = solver.solve(np.array([1.0, 1.0, 1.0]))
        assert result.reason.converged
        assert np.allclose(result.x, root, atol=1e-6)
        assert formats_seen and all(f == "SELL" for f in formats_seen)

    def test_linear_iterations_are_accumulated(self):
        residual, jacobian, _ = quadratic_problem()
        solver = NewtonSolver(
            residual=residual,
            jacobian=jacobian,
            ksp_factory=lambda: GMRES(rtol=1e-12),
        )
        result = solver.solve(np.array([1.0, 1.0, 1.0]))
        assert result.linear_iterations >= result.iterations

    def test_invalid_lag_rejected(self):
        residual, jacobian, _ = quadratic_problem()
        solver = NewtonSolver(
            residual=residual,
            jacobian=jacobian,
            ksp_factory=lambda: GMRES(),
            lag_jacobian=0,
        )
        with pytest.raises(ValueError):
            solver.solve(np.ones(3))


class TestThetaMethod:
    def linear_decay(self):
        """du/dt = -u, exact solution exp(-t)."""

        def rhs(w):
            return -w

        def jacobian(w, shift, scale):
            n = w.shape[0]
            return AijMat.from_dense(shift * np.eye(n) + scale * (-np.eye(n)))

        return rhs, jacobian

    def integrate(self, theta, dt, t_end=1.0):
        rhs, jacobian = self.linear_decay()
        ts = ThetaMethod(
            rhs=rhs,
            jacobian=jacobian,
            ksp_factory=lambda: GMRES(rtol=1e-14),
            theta=theta,
            dt=dt,
            snes_rtol=1e-13,
        )
        result = ts.integrate(np.array([1.0]), round(t_end / dt))
        return float(result.final_state[0])

    def test_crank_nicolson_is_second_order(self):
        exact = np.exp(-1.0)
        err_coarse = abs(self.integrate(0.5, 0.1) - exact)
        err_fine = abs(self.integrate(0.5, 0.05) - exact)
        order = np.log2(err_coarse / err_fine)
        assert order == pytest.approx(2.0, abs=0.3)

    def test_backward_euler_is_first_order(self):
        exact = np.exp(-1.0)
        err_coarse = abs(self.integrate(1.0, 0.1) - exact)
        err_fine = abs(self.integrate(1.0, 0.05) - exact)
        order = np.log2(err_coarse / err_fine)
        assert order == pytest.approx(1.0, abs=0.3)

    def test_stats_recorded_per_step(self):
        rhs, jacobian = self.linear_decay()
        ts = ThetaMethod(
            rhs=rhs, jacobian=jacobian, ksp_factory=lambda: GMRES(rtol=1e-14)
        )
        result = ts.integrate(np.ones(3), 4)
        assert len(result.stats) == 4
        assert result.total_newton_iterations >= 4
        assert result.times == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_keep_states_false_retains_endpoints_only(self):
        rhs, jacobian = self.linear_decay()
        ts = ThetaMethod(
            rhs=rhs, jacobian=jacobian, ksp_factory=lambda: GMRES(rtol=1e-14)
        )
        result = ts.integrate(np.ones(2), 5, keep_states=False)
        assert len(result.states) == 2

    def test_parameter_validation(self):
        rhs, jacobian = self.linear_decay()
        with pytest.raises(ValueError):
            ThetaMethod(rhs=rhs, jacobian=jacobian,
                        ksp_factory=GMRES, theta=0.0)
        with pytest.raises(ValueError):
            ThetaMethod(rhs=rhs, jacobian=jacobian,
                        ksp_factory=GMRES, dt=0.0)
