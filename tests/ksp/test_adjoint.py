"""Discrete adjoint of the theta method (the ex5adj capability)."""

import numpy as np
import pytest

from repro.core.sell import SellMat
from repro.ksp.adjoint import AdjointThetaMethod, TransposeOperator
from repro.ksp.gmres import GMRES
from repro.ksp.pc.jacobi import JacobiPC
from repro.ksp.ts import ThetaMethod
from repro.pde.advection import AdvectionDiffusionProblem
from repro.pde.grayscott import GrayScottProblem
from repro.pde.grid import Grid2D

from ..conftest import make_random_csr


def tight_ksp():
    return GMRES(pc=JacobiPC(), rtol=1e-12)


class TestTransposeOperator:
    def test_applies_a_transpose_without_materializing(self, rng):
        a = make_random_csr(11, 7, density=0.4, seed=1)
        op = TransposeOperator(a)
        assert op.shape == (7, 11)
        x = rng.standard_normal(11)
        assert np.allclose(op.multiply(x), a.to_dense().T @ x)

    def test_sell_inner_uses_the_sell_transpose_path(self, rng):
        csr = make_random_csr(16, 16, density=0.3, seed=2)
        op = TransposeOperator(SellMat.from_csr(csr))
        x = rng.standard_normal(16)
        assert np.allclose(op.multiply(x), csr.to_dense().T @ x)

    def test_usable_as_a_gmres_operator(self, rng):
        from repro.pde.problems import random_sparse

        a = random_sparse(30, density=0.15, seed=3)
        b = rng.standard_normal(30)
        result = GMRES(rtol=1e-10).solve(TransposeOperator(a), b)
        assert result.reason.converged
        assert np.allclose(a.to_dense().T @ result.x, b, atol=1e-5)


class TestAdjointGradient:
    @pytest.fixture(scope="class")
    def gray_scott_setup(self):
        grid = Grid2D(6, 6, dof=2)
        prob = GrayScottProblem(grid)
        ts = ThetaMethod(
            rhs=prob.rhs,
            jacobian=prob.jacobian,
            ksp_factory=tight_ksp,
            dt=1.0,
            snes_rtol=1e-12,
        )
        w0 = prob.initial_state()
        fwd = ts.integrate(w0, 2)
        return prob, ts, w0, fwd

    def test_matches_finite_differences(self, gray_scott_setup):
        """lambda_0 is the exact discrete gradient of Psi = ||w_N||^2/2."""
        prob, ts, w0, fwd = gray_scott_setup
        adj = AdjointThetaMethod(
            jacobian=prob.jacobian, ksp_factory=tight_ksp, dt=1.0
        )
        lam0 = adj.integrate_adjoint(fwd, fwd.final_state)

        rng = np.random.default_rng(0)
        for _ in range(2):
            d = rng.standard_normal(w0.shape)
            d /= np.linalg.norm(d)
            eps = 1e-6

            def psi(w):
                return 0.5 * np.linalg.norm(ts.integrate(w, 2).final_state) ** 2

            fd = (psi(w0 + eps * d) - psi(w0 - eps * d)) / (2 * eps)
            assert float(lam0 @ d) == pytest.approx(fd, rel=1e-5)

    def test_sell_adjoint_matches_csr_adjoint(self, gray_scott_setup):
        """The adjoint sweep on SELL transpose kernels is bit-compatible."""
        prob, _, _, fwd = gray_scott_setup
        csr_adj = AdjointThetaMethod(
            jacobian=prob.jacobian, ksp_factory=tight_ksp, dt=1.0
        ).integrate_adjoint(fwd, fwd.final_state)
        sell_adj = AdjointThetaMethod(
            jacobian=prob.jacobian,
            ksp_factory=tight_ksp,
            dt=1.0,
            operator_wrapper=lambda m: SellMat.from_csr(m.to_csr()),
        ).integrate_adjoint(fwd, fwd.final_state)
        assert np.allclose(sell_adj, csr_adj, atol=1e-12)

    def test_linear_problem_adjoint_is_exact(self):
        """For a linear operator the adjoint equals the transposed
        propagator applied to the terminal gradient."""
        grid = Grid2D(6, 6, dof=1)
        prob = AdvectionDiffusionProblem(grid)
        ts = ThetaMethod(
            rhs=prob.rhs, jacobian=prob.jacobian, ksp_factory=tight_ksp, dt=0.1
        )
        w0 = prob.initial_state()
        fwd = ts.integrate(w0, 3)
        gT = np.random.default_rng(1).standard_normal(w0.shape)
        lam0 = AdjointThetaMethod(
            jacobian=prob.jacobian, ksp_factory=tight_ksp, dt=0.1
        ).integrate_adjoint(fwd, gT)

        # Build the dense one-step propagator P = A^-1 B and compare.
        j = prob.jacobian().to_dense()
        n = j.shape[0]
        a = np.eye(n) / 0.1 - 0.5 * j
        b = np.eye(n) / 0.1 + 0.5 * j
        p = np.linalg.solve(a, b)
        expected = np.linalg.matrix_power(p.T, 3) @ gT
        assert np.allclose(lam0, expected, atol=1e-8)

    def test_requires_a_stored_trajectory(self):
        grid = Grid2D(4, 4, dof=1)
        prob = AdvectionDiffusionProblem(grid)
        adj = AdjointThetaMethod(
            jacobian=prob.jacobian, ksp_factory=tight_ksp, dt=0.1
        )
        from repro.ksp.ts import TSResult

        short = TSResult(times=[0.0], states=[prob.initial_state()])
        with pytest.raises(ValueError):
            adj.integrate_adjoint(short, prob.initial_state())

    def test_terminal_gradient_shape_validated(self, gray_scott_setup):
        prob, _, _, fwd = gray_scott_setup
        adj = AdjointThetaMethod(
            jacobian=prob.jacobian, ksp_factory=tight_ksp, dt=1.0
        )
        with pytest.raises(ValueError):
            adj.integrate_adjoint(fwd, np.zeros(3))
