"""GMRES, CG, and Richardson on the matrix gallery."""

import numpy as np
import pytest

from repro.ksp.base import ConvergedReason, CountingOperator
from repro.ksp.cg import CG
from repro.ksp.gmres import GMRES
from repro.ksp.pc.jacobi import JacobiPC
from repro.ksp.richardson import Richardson
from repro.pde.problems import random_sparse, spd_laplacian


@pytest.fixture
def spd():
    return spd_laplacian(10)


@pytest.fixture
def nonsym():
    return random_sparse(60, density=0.1, seed=1)


def residual(a, x, b) -> float:
    return float(np.linalg.norm(a.multiply(x) - b))


class TestGMRES:
    def test_converges_on_a_nonsymmetric_system(self, nonsym, rng):
        b = rng.standard_normal(60)
        result = GMRES(rtol=1e-10).solve(nonsym, b)
        assert result.reason.converged
        assert residual(nonsym, result.x, b) < 1e-6

    def test_restart_shorter_than_needed_still_converges(self, nonsym, rng):
        b = rng.standard_normal(60)
        result = GMRES(rtol=1e-10, restart=5).solve(nonsym, b)
        assert result.reason.converged
        assert residual(nonsym, result.x, b) < 1e-6

    def test_jacobi_preconditioning_reduces_iterations(self, nonsym, rng):
        b = rng.standard_normal(60)
        plain = GMRES(rtol=1e-10).solve(nonsym, b)
        pc = GMRES(rtol=1e-10, pc=JacobiPC()).solve(nonsym, b)
        assert pc.iterations < plain.iterations

    def test_identity_converges_immediately(self, rng):
        from repro.mat.aij import AijMat

        eye = AijMat.from_dense(np.eye(7))
        b = rng.standard_normal(7)
        result = GMRES(rtol=1e-12).solve(eye, b)
        assert result.iterations <= 1
        assert np.allclose(result.x, b)

    def test_zero_rhs_returns_zero(self, nonsym):
        result = GMRES().solve(nonsym, np.zeros(60))
        assert result.reason.converged
        assert np.all(result.x == 0.0)

    def test_initial_guess_is_honoured(self, nonsym, rng):
        """A warm start from a partial solve needs fewer iterations.

        (PETSc semantics: rtol is relative to the *initial* residual of
        each solve, so even an exact x0 formally iterates; what must hold
        is that the warm start reaches a given absolute accuracy faster.)
        """
        b = rng.standard_normal(60)
        rough = GMRES(rtol=1e-3).solve(nonsym, b).x
        cold = GMRES(atol=1e-9, rtol=1e-30, max_it=200).solve(nonsym, b)
        warm = GMRES(atol=1e-9, rtol=1e-30, max_it=200).solve(nonsym, b, x0=rough)
        assert warm.reason.converged
        assert warm.iterations < cold.iterations

    def test_max_it_reports_divergence(self, nonsym, rng):
        b = rng.standard_normal(60)
        result = GMRES(rtol=1e-14, max_it=2).solve(nonsym, b)
        assert result.reason is ConvergedReason.ITS

    def test_residual_norms_are_monotone_within_a_cycle(self, nonsym, rng):
        b = rng.standard_normal(60)
        result = GMRES(rtol=1e-10, restart=60).solve(nonsym, b)
        norms = result.residual_norms
        assert all(
            n2 <= n1 * (1 + 1e-12)
            for n1, n2 in zip(norms, norms[1:], strict=False)
        )

    def test_monitor_is_called_per_iteration(self, nonsym, rng):
        calls = []
        b = rng.standard_normal(60)
        GMRES(rtol=1e-8, monitor=lambda it, r: calls.append((it, r))).solve(
            nonsym, b
        )
        assert len(calls) >= 2
        assert calls[0][0] == 0

    def test_rectangular_operator_rejected(self, rng):
        from tests.conftest import make_random_csr

        rect = make_random_csr(5, 7, density=0.5)
        with pytest.raises(ValueError):
            GMRES().solve(rect, np.ones(5))

    def test_wrong_rhs_length_rejected(self, nonsym):
        with pytest.raises(ValueError):
            GMRES().solve(nonsym, np.ones(3))

    def test_invalid_restart_rejected(self, nonsym):
        with pytest.raises(ValueError):
            GMRES(restart=0).solve(nonsym, np.ones(60))


class TestCG:
    def test_converges_on_spd(self, spd, rng):
        b = rng.standard_normal(spd.shape[0])
        result = CG(rtol=1e-12).solve(spd, b)
        assert result.reason.converged
        assert residual(spd, result.x, b) < 1e-8

    def test_finite_termination_in_exact_arithmetic_bound(self, spd, rng):
        b = rng.standard_normal(spd.shape[0])
        result = CG(rtol=1e-12).solve(spd, b)
        assert result.iterations <= spd.shape[0] + 1

    def test_breakdown_on_an_indefinite_operator(self, rng):
        from repro.mat.aij import AijMat

        indefinite = AijMat.from_dense(np.diag([1.0, -1.0, 2.0]))
        result = CG(rtol=1e-12).solve(indefinite, np.array([1.0, 1.0, 1.0]))
        assert result.reason is ConvergedReason.BREAKDOWN

    def test_preconditioning_helps(self, rng):
        from repro.mat.aij import AijMat

        # Badly scaled SPD diagonal: Jacobi fixes it in one step.
        a = AijMat.from_dense(np.diag([1.0, 1e4, 1e-4, 50.0]))
        b = rng.standard_normal(4)
        plain = CG(rtol=1e-10).solve(a, b)
        jac = CG(rtol=1e-10, pc=JacobiPC()).solve(a, b)
        assert jac.iterations < plain.iterations


class TestRichardson:
    def test_converges_with_jacobi_on_diagonally_dominant(self, rng):
        a = random_sparse(30, density=0.1, seed=2)  # diagonally dominant
        b = rng.standard_normal(30)
        result = Richardson(pc=JacobiPC(), max_it=200, rtol=1e-10).solve(a, b)
        assert result.reason.converged

    def test_fixed_sweep_count(self, spd, rng):
        b = rng.standard_normal(spd.shape[0])
        result = Richardson(pc=JacobiPC(), max_it=3, rtol=1e-30).solve(spd, b)
        assert result.iterations == 3


class TestCountingOperator:
    def test_counts_matvecs(self, nonsym, rng):
        op = CountingOperator(nonsym)
        b = rng.standard_normal(60)
        result = GMRES(rtol=1e-8).solve(op, b)
        # One matvec per iteration plus one initial residual per cycle.
        assert op.matvecs >= result.iterations
        assert op.rows_processed == op.matvecs * 60
        op.reset()
        assert op.matvecs == 0
