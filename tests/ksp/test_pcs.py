"""Preconditioners: Jacobi, block Jacobi, SOR, Chebyshev, ILU(0)."""

import numpy as np
import pytest

from repro.ksp.cg import CG
from repro.ksp.gmres import GMRES
from repro.ksp.pc.bjacobi import BlockJacobiPC
from repro.ksp.pc.chebyshev import ChebyshevPC, estimate_lambda_max
from repro.ksp.pc.ilu import ILU0PC
from repro.ksp.pc.jacobi import JacobiPC
from repro.ksp.pc.sor import SORPC
from repro.mat.aij import AijMat
from repro.pde.problems import spd_laplacian, tridiagonal

from ..conftest import make_random_csr


class TestJacobi:
    def test_apply_is_diagonal_scaling(self):
        a = AijMat.from_dense(np.diag([2.0, 4.0, 8.0]))
        pc = JacobiPC()
        pc.setup(a)
        z = pc.apply(np.array([2.0, 4.0, 8.0]))
        assert np.array_equal(z, [1.0, 1.0, 1.0])

    def test_zero_diagonal_entries_invert_to_one(self):
        a = AijMat.from_coo((2, 2), np.array([0]), np.array([0]), np.array([2.0]))
        pc = JacobiPC()
        pc.setup(a)
        assert np.array_equal(pc.apply(np.array([2.0, 3.0])), [1.0, 3.0])

    def test_apply_before_setup_raises(self):
        with pytest.raises(RuntimeError):
            JacobiPC().apply(np.ones(3))

    def test_nonconforming_residual_raises(self):
        pc = JacobiPC()
        pc.setup(spd_laplacian(4))
        with pytest.raises(ValueError):
            pc.apply(np.ones(3))


class TestBlockJacobi:
    def test_exactly_inverts_a_block_diagonal_operator(self, rng):
        blocks = [rng.standard_normal((2, 2)) + 3 * np.eye(2) for _ in range(4)]
        dense = np.zeros((8, 8))
        for k, blk in enumerate(blocks):
            dense[2 * k : 2 * k + 2, 2 * k : 2 * k + 2] = blk
        a = AijMat.from_dense(dense)
        pc = BlockJacobiPC(bs=2)
        pc.setup(a)
        r = rng.standard_normal(8)
        assert np.allclose(a.multiply(pc.apply(r)), r)

    def test_gray_scott_blocks_strengthen_the_smoother(self, gray_scott_small, rng):
        b = rng.standard_normal(gray_scott_small.shape[0])
        jac = GMRES(rtol=1e-8, pc=JacobiPC()).solve(gray_scott_small, b)
        blk = GMRES(rtol=1e-8, pc=BlockJacobiPC(bs=2)).solve(gray_scott_small, b)
        assert blk.iterations <= jac.iterations

    def test_incompatible_block_size_rejected(self):
        pc = BlockJacobiPC(bs=2)
        with pytest.raises(ValueError):
            pc.setup(make_random_csr(5, density=0.5))

    def test_singular_block_falls_back_to_pinv(self):
        a = AijMat.from_dense(np.zeros((2, 2)))
        pc = BlockJacobiPC(bs=2)
        pc.setup(a)  # must not raise
        assert np.array_equal(pc.apply(np.ones(2)), np.zeros(2))


class TestSOR:
    def test_reduces_the_residual(self, rng):
        a = spd_laplacian(8)
        b = rng.standard_normal(a.shape[0])
        pc = SORPC(omega=1.2, sweeps=2)
        pc.setup(a)
        z = pc.apply(b)
        assert np.linalg.norm(a.multiply(z) - b) < np.linalg.norm(b)

    def test_one_symmetric_sweep_on_triangular_system_is_exact(self):
        lower = AijMat.from_dense(np.tril(np.ones((4, 4))) + np.eye(4))
        pc = SORPC(omega=1.0, sweeps=1, symmetric=False)
        pc.setup(lower)
        r = np.array([1.0, 2.0, 3.0, 4.0])
        # Forward Gauss-Seidel solves a lower-triangular system exactly.
        assert np.allclose(lower.multiply(pc.apply(r)), r)

    def test_omega_bounds(self):
        with pytest.raises(ValueError):
            SORPC(omega=0.0)
        with pytest.raises(ValueError):
            SORPC(omega=2.0)

    def test_apply_before_setup_raises(self):
        with pytest.raises(RuntimeError):
            SORPC().apply(np.ones(2))


class TestChebyshev:
    def test_lambda_max_estimate_on_a_known_operator(self):
        a = AijMat.from_dense(np.diag([1.0, 2.0, 5.0]))
        inv_diag = np.ones(3)  # estimate eigenvalues of A itself
        lam = estimate_lambda_max(a, inv_diag, iterations=50)
        assert lam == pytest.approx(5.0, rel=0.05)

    def test_acts_as_a_useful_cg_preconditioner(self, rng):
        a = spd_laplacian(10)
        b = rng.standard_normal(a.shape[0])
        plain = CG(rtol=1e-10).solve(a, b)
        cheb = CG(rtol=1e-10, pc=ChebyshevPC(degree=4)).solve(a, b)
        assert cheb.reason.converged
        assert cheb.iterations < plain.iterations

    def test_degree_one_is_scaled_jacobi(self, rng):
        a = spd_laplacian(6)
        pc = ChebyshevPC(degree=1)
        pc.setup(a)
        r = rng.standard_normal(a.shape[0])
        z = pc.apply(r)
        # One Chebyshev step is D^-1 r / theta: parallel to Jacobi.
        jac = JacobiPC()
        jac.setup(a)
        ratio = z / jac.apply(r)
        assert np.allclose(ratio, ratio[0])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ChebyshevPC(degree=0)
        with pytest.raises(ValueError):
            ChebyshevPC(eig_ratio=1.0)


class TestILU0:
    def test_on_a_tridiagonal_matrix_ilu0_is_exact_lu(self, rng):
        """A tridiagonal matrix has no fill, so ILU(0) = LU."""
        a = tridiagonal(12)
        pc = ILU0PC()
        pc.setup(a)
        b = rng.standard_normal(12)
        assert np.allclose(a.multiply(pc.apply(b)), b, atol=1e-10)

    def test_gmres_with_ilu_converges_fast(self, rng):
        from repro.pde.problems import random_sparse

        a = random_sparse(50, density=0.1, seed=4)
        b = rng.standard_normal(50)
        plain = GMRES(rtol=1e-10).solve(a, b)
        ilu = GMRES(rtol=1e-10, pc=ILU0PC()).solve(a, b)
        assert ilu.reason.converged
        assert ilu.iterations < plain.iterations

    def test_missing_diagonal_rejected(self):
        a = AijMat.from_coo((2, 2), np.array([0, 1]), np.array([1, 0]), np.ones(2))
        with pytest.raises(ValueError, match="diagonal"):
            ILU0PC().setup(a)

    def test_apply_before_setup_raises(self):
        with pytest.raises(RuntimeError):
            ILU0PC().apply(np.ones(2))
