"""Distributed Krylov solvers on the simulated MPI runtime."""

import numpy as np
import pytest

from repro.comm.spmd import run_spmd
from repro.ksp.gmres import GMRES
from repro.ksp.parallel import (
    ParallelBlockJacobiPC,
    ParallelGMRES,
    ParallelIdentityPC,
    ParallelJacobiPC,
    ParallelRichardson,
)
from repro.ksp.pc.jacobi import JacobiPC
from repro.mat.mpi_aij import MPIAij
from repro.mat.mpi_sell import MPISell
from repro.pde.problems import gray_scott_jacobian, random_sparse
from repro.vec.mpi_vec import MPIVec


@pytest.fixture(scope="module")
def system():
    csr = gray_scott_jacobian(8)
    b = np.random.default_rng(0).standard_normal(csr.shape[0])
    return csr, b


class TestParallelGMRES:
    def test_matches_sequential_iterate_for_iterate(self, system):
        """Deterministic collectives: the parallel Krylov process is the
        *same* process as the sequential one, to rounding."""
        csr, b = system
        seq = GMRES(pc=JacobiPC(), rtol=1e-10).solve(csr, b)

        def prog(comm):
            a = MPIAij.from_global_csr(comm, csr)
            bv = MPIVec.from_global(comm, a.layout, b)
            res = ParallelGMRES(pc=ParallelJacobiPC(), rtol=1e-10).solve(a, bv)
            x = MPIVec(comm, a.layout, res.x)
            return res.iterations, res.residual_norms, x.to_global()

        for its, norms, x in run_spmd(3, prog):
            assert its == seq.iterations
            assert np.allclose(norms, seq.residual_norms, rtol=1e-10)
            assert np.allclose(x, seq.x, atol=1e-10)

    def test_reproducible_across_runs(self, system):
        csr, b = system

        def prog(comm):
            a = MPIAij.from_global_csr(comm, csr)
            bv = MPIVec.from_global(comm, a.layout, b)
            return ParallelGMRES(pc=ParallelJacobiPC(), rtol=1e-10).solve(a, bv).x

        first = run_spmd(2, prog)
        second = run_spmd(2, prog)
        for x1, x2 in zip(first, second, strict=True):
            assert np.array_equal(x1, x2)

    def test_sell_operator_converges_identically(self, system):
        csr, b = system

        def prog(comm):
            aij = MPIAij.from_global_csr(comm, csr)
            sell = MPISell.from_mpiaij(aij)
            bv = MPIVec.from_global(comm, sell.layout, b)
            res = ParallelGMRES(pc=ParallelJacobiPC(), rtol=1e-10).solve(sell, bv)
            return res.iterations, res.reason.converged

        its = run_spmd(2, prog)
        assert all(conv for _, conv in its)
        seq = GMRES(pc=JacobiPC(), rtol=1e-10).solve(csr, b)
        assert all(i == seq.iterations for i, _ in its)

    def test_block_jacobi_strengthens_with_fewer_ranks(self, system):
        """PCBJACOBI solves larger local blocks exactly on fewer ranks, so
        iteration counts must not increase as ranks decrease."""
        csr, b = system

        def prog(comm):
            a = MPIAij.from_global_csr(comm, csr)
            bv = MPIVec.from_global(comm, a.layout, b)
            res = ParallelGMRES(pc=ParallelBlockJacobiPC(), rtol=1e-10).solve(a, bv)
            return res.iterations

        one = run_spmd(1, prog)[0]
        four = run_spmd(4, prog)[0]
        assert one <= four
        assert one <= 2  # a single rank factors the whole matrix

    def test_unpreconditioned_still_converges(self):
        csr = random_sparse(24, density=0.2, seed=5)
        b = np.random.default_rng(1).standard_normal(24)

        def prog(comm):
            a = MPIAij.from_global_csr(comm, csr)
            bv = MPIVec.from_global(comm, a.layout, b)
            res = ParallelGMRES(pc=ParallelIdentityPC(), rtol=1e-9).solve(a, bv)
            x = MPIVec(comm, a.layout, res.x)
            err = np.linalg.norm(csr.multiply(x.to_global()) - b)
            return res.reason.converged, err

        for conv, err in run_spmd(2, prog):
            assert conv and err < 1e-5

    def test_invalid_restart_rejected(self, system):
        csr, b = system

        def prog(comm):
            a = MPIAij.from_global_csr(comm, csr)
            bv = MPIVec.from_global(comm, a.layout, b)
            ParallelGMRES(restart=0).solve(a, bv)

        from repro.comm.spmd import SpmdError

        with pytest.raises(SpmdError):
            run_spmd(2, prog)


class TestParallelRichardson:
    def test_converges_with_jacobi(self):
        csr = random_sparse(20, density=0.15, seed=6)  # diag dominant
        b = np.random.default_rng(2).standard_normal(20)

        def prog(comm):
            a = MPIAij.from_global_csr(comm, csr)
            bv = MPIVec.from_global(comm, a.layout, b)
            res = ParallelRichardson(
                pc=ParallelJacobiPC(), max_it=300, rtol=1e-9
            ).solve(a, bv)
            return res.reason.converged

        assert all(run_spmd(3, prog))

    def test_pc_apply_before_setup_raises(self):
        with pytest.raises(RuntimeError):
            ParallelJacobiPC().apply(None)  # type: ignore[arg-type]
        with pytest.raises(RuntimeError):
            ParallelBlockJacobiPC().apply(None)  # type: ignore[arg-type]
