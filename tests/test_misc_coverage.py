"""Edge cases across subsystems that the focused suites leave uncovered."""

import numpy as np
import pytest


class TestEventLogReentrancy:
    def test_same_event_nested_in_itself_counts_both_frames(self):
        """Recursive regions accumulate inclusive time per entry — the
        PETSc behaviour (PetscLogEventBegin nests by depth)."""
        from repro.profiling import EventLog

        times = iter([0.0, 0.0, 1.0, 2.0, 5.0])
        log = EventLog(clock=lambda: next(times))
        with log.event("solve"):
            with log.event("solve"):
                pass
        rec = log.record("solve")
        assert rec.calls == 2
        # Inner frame: 1..2 (1s); outer: 0..5 inclusive (5s).
        assert rec.total_seconds == 6.0
        # Self time: inner 1s, outer 5-1=4s.
        assert rec.self_seconds == 5.0


class TestKnl68CoreTopology:
    def test_7250_has_34_tiles(self):
        from repro.machine.knl import KnlNode
        from repro.machine.specs import KNL_7250

        node = KnlNode(spec=KNL_7250)
        assert len(node.tiles) == 34
        quadrants = node.quadrants
        assert sum(len(q) for q in quadrants) == 34


class TestPredictDefaults:
    def test_predict_without_working_set_uses_the_matrix_footprint(self):
        from repro.core.spmv import measure, predict
        from repro.machine.perf_model import MemoryMode, PerfModel
        from repro.machine.specs import KNL_7230
        from repro.pde.problems import gray_scott_jacobian

        csr = gray_scott_jacobian(8)
        meas = measure("SELL using AVX512", csr)
        model = PerfModel(spec=KNL_7230, mode=MemoryMode.CACHE, overlap=0.5)
        # Must not raise despite no explicit working_set: the default
        # footprint feeds the cache-mode blend.
        perf = predict(meas, model, nprocs=64, scale=1000.0)
        assert perf.gflops > 0


class TestSeqVecEdges:
    def test_empty_vector_operations(self):
        from repro.vec import SeqVec

        v = SeqVec(0)
        assert v.norm("2") == 0.0
        assert v.norm("inf") == 0.0
        assert v.dot(SeqVec(0)) == 0.0


class TestCommOrdering:
    def test_any_tag_preserves_arrival_order(self):
        from repro.comm import ANY_TAG, run_spmd

        def prog(comm):
            if comm.rank == 0:
                for i in range(3):
                    comm.send(i, dest=1, tag=50 + i)
                return None
            return [comm.recv(source=0, tag=ANY_TAG) for _ in range(3)]

        assert run_spmd(2, prog)[1] == [0, 1, 2]


class TestFig10Labels:
    def test_every_mode_has_a_label(self):
        from repro.bench.experiments.fig10 import MODE_LABELS, MODES

        assert set(MODES) <= set(MODE_LABELS)


class TestMatrixShapeErrors:
    def test_error_message_names_both_dimensions(self):
        from repro.mat.base import MatrixShapeError
        from repro.pde.problems import tridiagonal

        a = tridiagonal(5)
        with pytest.raises(MatrixShapeError, match="5x5"):
            a.multiply(np.ones(7))


class TestCalibrateCli:
    def test_main_prints_a_fit(self, capsys, monkeypatch):
        """The calibrate CLI produces a CostTable and residual table."""
        import repro.machine.calibrate as cal

        # Shrink the work: tiny grid, few rounds.
        monkeypatch.setattr(
            cal.CalibrationProblem,
            "measure",
            classmethod(lambda cls, grid=8, target_grid=2048: _measure_tiny(cls)),
        )
        original_fit = cal.fit
        monkeypatch.setattr(
            cal, "fit", lambda prob, **kw: original_fit(prob, rounds=1)
        )
        cal.main()
        out = capsys.readouterr().out
        assert "KNL_COSTS = CostTable(" in out
        assert "SELL using AVX512" in out


def _measure_tiny(cls):
    import repro.machine.calibrate as cal

    real = cls.__dict__.get("_tiny_cache")
    if real is None:
        # Call the real implementation once with a tiny grid.
        from repro.core.dispatch import get_variant
        from repro.core.spmv import measure as measure_spmv
        from repro.pde.problems import gray_scott_jacobian

        csr = gray_scott_jacobian(8)
        scale = (2048 / 8) ** 2
        counters, traffic, flops, isa_of, eff = {}, {}, {}, {}, {}
        for name in cal.KNL_TARGETS:
            variant = get_variant(name)
            meas = measure_spmv(variant, csr)
            counters[name] = meas.counters.scaled(scale)
            traffic[name] = round(meas.traffic.total_bytes * scale)
            flops[name] = round(meas.traffic.flops * scale)
            isa_of[name] = variant.isa
            eff[name] = variant.efficiency
        real = cls(counters, traffic, flops, isa_of, eff)
        cls._tiny_cache = real
    return real
