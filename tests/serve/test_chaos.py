"""Chaos-hardened serving: breakers, late results, shard loss, rerouting."""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.faults.events import capture
from repro.faults.plan import FaultInjector, FaultPlan, FaultSpec, inject
from repro.pde.problems import gray_scott_jacobian
from repro.serve import ResponseStatus, SolveRequest, SolveService
from repro.serve.qos import CircuitBreaker


def _mat(grid=8, seed=1):
    return gray_scott_jacobian(grid, seed=seed)


def _payloads(mat, k, seed=3):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(mat.shape[1]) for _ in range(k)]


class TestBreakerIntegration:
    def test_failing_tenant_trips_then_recovers_through_a_probe(self):
        mat = _mat()
        xs = _payloads(mat, 12)
        breaker = CircuitBreaker(failure_threshold=2, cooldown=2)

        async def run():
            async with SolveService(breaker=breaker) as service:
                healthy = service._spmm

                def broken(shard, csr, payloads):
                    raise ValueError("shard on fire")

                service._spmm = broken
                with capture() as log:
                    failures = [
                        await service.submit(
                            SolveRequest(tenant="t", mat=mat, payload=x)
                        )
                        for x in xs[:2]
                    ]
                    assert breaker.state("t") == "open"
                    refusals = [
                        await service.submit(
                            SolveRequest(tenant="t", mat=mat, payload=x)
                        )
                        for x in xs[2:4]
                    ]
                    service._spmm = healthy  # the shard heals
                    probe = await service.submit(
                        SolveRequest(tenant="t", mat=mat, payload=xs[4])
                    )
                return failures, refusals, probe, log.events, service.stats()

        failures, refusals, probe, events, stats = asyncio.run(run())
        assert all(r.status is ResponseStatus.ERROR for r in failures)
        assert all(r.status is ResponseStatus.REJECTED for r in refusals)
        assert all("circuit open" in r.detail for r in refusals)
        assert probe.ok  # the half-open probe closed the circuit
        assert breaker.state("t") == "closed"
        assert stats["breaker"]["tripped"] == 1
        actions = {(e.action, e.site) for e in events}
        assert ("degraded", "serve.breaker") in actions
        assert ("recovered", "serve.breaker") in actions

    def test_one_tenants_circuit_does_not_punish_another(self):
        mat = _mat()
        x = _payloads(mat, 1)[0]
        breaker = CircuitBreaker(failure_threshold=1, cooldown=8)

        async def run():
            async with SolveService(breaker=breaker) as service:
                healthy = service._spmm

                def broken(shard, csr, payloads):
                    raise ValueError("boom")

                service._spmm = broken
                await service.submit(SolveRequest(tenant="sad", mat=mat, payload=x))
                service._spmm = healthy
                blocked = await service.submit(
                    SolveRequest(tenant="sad", mat=mat, payload=x)
                )
                fine = await service.submit(
                    SolveRequest(tenant="happy", mat=mat, payload=x)
                )
                return blocked, fine

        blocked, fine = asyncio.run(run())
        assert blocked.status is ResponseStatus.REJECTED
        assert fine.ok


class TestLateResults:
    def test_late_completion_is_counted_and_dropped(self):
        mat = _mat()
        x = _payloads(mat, 1)[0]

        async def run():
            async with SolveService() as service:
                slow = service._spmm

                def stalled(shard, csr, payloads):
                    time.sleep(0.1)
                    return slow(shard, csr, payloads)

                service._spmm = stalled
                with capture() as log:
                    response = await service.submit(
                        SolveRequest(tenant="t", mat=mat, payload=x, timeout=0.01)
                    )
                    # Let the stalled compute finish and try to answer.
                    for _ in range(50):
                        await asyncio.sleep(0.01)
                        if service.stats()["late_results"]:
                            break
                return response, log.events, service.stats()

        response, events, stats = asyncio.run(run())
        assert response.status is ResponseStatus.TIMEOUT
        assert stats["late_results"] == 1  # counted, not silently vanished
        assert any(
            e.action == "benign"
            and e.site == "serve.deadline"
            and "after deadline" in e.detail
            for e in events
        )


class TestShardLoss:
    def test_shard_kill_shrinks_reroutes_and_recovers_bit_identically(self):
        mat = _mat(grid=10)
        xs = _payloads(mat, 6)
        references = [mat.multiply_multi(x[:, None])[:, 0] for x in xs]

        async def run():
            service = SolveService(shards=2, world_size=3, batch_window=0.0)
            tenant = "t-chaos"
            home = service.shard_of(tenant)
            plan = FaultPlan([FaultSpec(f"serve.shard@{home}", 0, "kill")])
            responses = []
            with capture() as log:
                with inject(FaultInjector(plan)):
                    async with service:
                        for j, x in enumerate(xs):
                            responses.append(
                                await service.submit(
                                    SolveRequest(tenant=tenant, mat=mat, payload=x)
                                )
                            )
                            if j == 2:
                                service.resize_shard(home, 3)
            return responses, log.events, service.stats(), home

        responses, events, stats, home = asyncio.run(run())
        for response, want in zip(responses, references):
            assert response.ok
            assert response.result.tobytes() == want.tobytes(), (
                "answers must stay bit-identical through shard loss"
            )
        health = stats["shard_health"]
        assert health[home]["kills"] == 1
        assert health[home]["healthy"]  # resize_shard restored it
        assert health[home]["world_size"] == 3
        assert stats["rerouted"] >= 1  # traffic steered off the sick shard
        actions = {(e.action, e.site) for e in events}
        assert ("degraded", f"serve.shard@{home}") in actions
        assert ("recovered", f"serve.shard@{home}") in actions

    def test_route_falls_back_home_when_every_shard_is_sick(self):
        service = SolveService(shards=2)
        for health in service._health:
            health.healthy = False
        assert service.route("t") == service.shard_of("t")

    def test_resize_shard_validates(self):
        service = SolveService(shards=2)
        try:
            service.resize_shard(0, 0)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("world size 0 accepted")

    def test_non_kill_shard_fault_is_benign(self):
        mat = _mat()
        x = _payloads(mat, 1)[0]

        async def run():
            service = SolveService(shards=1, world_size=2, batch_window=0.0)
            plan = FaultPlan([FaultSpec("serve.shard@0", 0, "straggle")])
            with capture() as log:
                with inject(FaultInjector(plan)):
                    async with service:
                        response = await service.submit(
                            SolveRequest(tenant="t", mat=mat, payload=x)
                        )
            return response, log.events, service.stats()

        response, events, stats = asyncio.run(run())
        assert response.ok
        assert response.result.tobytes() == (
            mat.multiply_multi(x[:, None])[:, 0].tobytes()
        )
        assert stats["shard_health"][0]["world_size"] == 2  # unshrunk
        assert any(
            e.action == "benign" and e.site == "serve.shard@0" for e in events
        )
