"""AdmissionController: caps, isolation, shedding, and fault events."""

from __future__ import annotations

import pytest

from repro.faults.events import capture
from repro.serve.qos import AdmissionController, TenantPolicy
from repro.serve.request import SolveRequest


def _req(tenant="a", priority=1):
    return SolveRequest(tenant=tenant, mat=None, payload=None, priority=priority)


def test_admit_then_release_roundtrip():
    gate = AdmissionController(queue_cap=4)
    r = _req()
    assert gate.try_admit(r) is None
    assert gate.depth() == 1
    gate.release(r)
    assert gate.depth() == 0
    stats = gate.stats()
    assert stats["admitted"] == 1 and stats["rejected"] == 0


def test_queue_cap_refuses_at_capacity():
    gate = AdmissionController(queue_cap=2, shed_watermark=1.0)
    admitted = [_req(tenant=f"t{i}") for i in range(2)]
    for r in admitted:
        assert gate.try_admit(r) is None
    reason = gate.try_admit(_req(tenant="late"))
    assert reason is not None and "queue full" in reason
    gate.release(admitted[0])
    assert gate.try_admit(_req(tenant="late")) is None


def test_tenant_inflight_cap_isolates_tenants():
    gate = AdmissionController(
        queue_cap=16,
        shed_watermark=1.0,
        policies={"greedy": TenantPolicy(max_inflight=1)},
    )
    first = _req(tenant="greedy")
    assert gate.try_admit(first) is None
    reason = gate.try_admit(_req(tenant="greedy"))
    assert reason is not None and "inflight cap" in reason
    assert gate.try_admit(_req(tenant="other")) is None, (
        "one tenant's cap must not refuse another tenant"
    )
    gate.release(first)
    assert gate.try_admit(_req(tenant="greedy")) is None


def test_overload_sheds_low_priority_and_emits_fault_events():
    gate = AdmissionController(queue_cap=4, shed_watermark=0.5, shed_priority=0)
    with capture() as log:
        held = [_req(tenant=f"t{i}", priority=2) for i in range(2)]
        for r in held:
            assert gate.try_admit(r) is None
        assert gate.overloaded
        shed = gate.try_admit(_req(tenant="bg", priority=0))
        assert shed is not None and "shed under overload" in shed
        assert gate.try_admit(_req(tenant="vip", priority=2)) is None
        for r in held:
            gate.release(r)
        assert not gate.overloaded
    actions = [(e.action, e.site) for e in log.events]
    assert ("degraded", "serve.overload") in actions
    assert ("recovered", "serve.overload") in actions


def test_tenant_opt_in_shedding_threshold():
    gate = AdmissionController(
        queue_cap=4,
        shed_watermark=0.5,
        shed_priority=0,
        policies={"best-effort": TenantPolicy(min_priority_under_load=2)},
    )
    held = [_req(tenant=f"t{i}", priority=3) for i in range(2)]
    for r in held:
        assert gate.try_admit(r) is None
    # Global floor sheds only priority <= 0, but this tenant opted its
    # sub-2 traffic into shedding.
    assert gate.try_admit(_req(tenant="best-effort", priority=1)) is not None
    assert gate.try_admit(_req(tenant="best-effort", priority=2)) is None


def test_constructor_validation():
    with pytest.raises(ValueError):
        AdmissionController(queue_cap=0)
    with pytest.raises(ValueError):
        AdmissionController(shed_watermark=0.0)
    with pytest.raises(ValueError):
        AdmissionController(shed_watermark=1.5)
