"""AdmissionController: caps, isolation, shedding, and fault events."""

from __future__ import annotations

import pytest

from repro.faults.events import capture
from repro.serve.qos import AdmissionController, TenantPolicy
from repro.serve.request import SolveRequest


def _req(tenant="a", priority=1):
    return SolveRequest(tenant=tenant, mat=None, payload=None, priority=priority)


def test_admit_then_release_roundtrip():
    gate = AdmissionController(queue_cap=4)
    r = _req()
    assert gate.try_admit(r) is None
    assert gate.depth() == 1
    gate.release(r)
    assert gate.depth() == 0
    stats = gate.stats()
    assert stats["admitted"] == 1 and stats["rejected"] == 0


def test_queue_cap_refuses_at_capacity():
    gate = AdmissionController(queue_cap=2, shed_watermark=1.0)
    admitted = [_req(tenant=f"t{i}") for i in range(2)]
    for r in admitted:
        assert gate.try_admit(r) is None
    reason = gate.try_admit(_req(tenant="late"))
    assert reason is not None and "queue full" in reason
    gate.release(admitted[0])
    assert gate.try_admit(_req(tenant="late")) is None


def test_tenant_inflight_cap_isolates_tenants():
    gate = AdmissionController(
        queue_cap=16,
        shed_watermark=1.0,
        policies={"greedy": TenantPolicy(max_inflight=1)},
    )
    first = _req(tenant="greedy")
    assert gate.try_admit(first) is None
    reason = gate.try_admit(_req(tenant="greedy"))
    assert reason is not None and "inflight cap" in reason
    assert gate.try_admit(_req(tenant="other")) is None, (
        "one tenant's cap must not refuse another tenant"
    )
    gate.release(first)
    assert gate.try_admit(_req(tenant="greedy")) is None


def test_overload_sheds_low_priority_and_emits_fault_events():
    gate = AdmissionController(queue_cap=4, shed_watermark=0.5, shed_priority=0)
    with capture() as log:
        held = [_req(tenant=f"t{i}", priority=2) for i in range(2)]
        for r in held:
            assert gate.try_admit(r) is None
        assert gate.overloaded
        shed = gate.try_admit(_req(tenant="bg", priority=0))
        assert shed is not None and "shed under overload" in shed
        assert gate.try_admit(_req(tenant="vip", priority=2)) is None
        for r in held:
            gate.release(r)
        assert not gate.overloaded
    actions = [(e.action, e.site) for e in log.events]
    assert ("degraded", "serve.overload") in actions
    assert ("recovered", "serve.overload") in actions


def test_tenant_opt_in_shedding_threshold():
    gate = AdmissionController(
        queue_cap=4,
        shed_watermark=0.5,
        shed_priority=0,
        policies={"best-effort": TenantPolicy(min_priority_under_load=2)},
    )
    held = [_req(tenant=f"t{i}", priority=3) for i in range(2)]
    for r in held:
        assert gate.try_admit(r) is None
    # Global floor sheds only priority <= 0, but this tenant opted its
    # sub-2 traffic into shedding.
    assert gate.try_admit(_req(tenant="best-effort", priority=1)) is not None
    assert gate.try_admit(_req(tenant="best-effort", priority=2)) is None


def test_constructor_validation():
    with pytest.raises(ValueError):
        AdmissionController(queue_cap=0)
    with pytest.raises(ValueError):
        AdmissionController(shed_watermark=0.0)
    with pytest.raises(ValueError):
        AdmissionController(shed_watermark=1.5)


# -- circuit breaker -------------------------------------------------------


def _trip(breaker, tenant="a", n=None):
    for _ in range(n if n is not None else breaker.failure_threshold):
        breaker.record(tenant, False)


def test_breaker_trips_on_consecutive_failures_only():
    from repro.serve.qos import CircuitBreaker

    breaker = CircuitBreaker(failure_threshold=3)
    breaker.record("a", False)
    breaker.record("a", False)
    breaker.record("a", True)  # a success resets the streak
    breaker.record("a", False)
    breaker.record("a", False)
    assert breaker.state("a") == "closed"
    breaker.record("a", False)
    assert breaker.state("a") == "open"
    assert breaker.stats()["tripped"] == 1


def test_open_circuit_refuses_then_half_opens_after_cooldown():
    from repro.serve.qos import CircuitBreaker

    breaker = CircuitBreaker(failure_threshold=1, cooldown=3)
    with capture() as log:
        _trip(breaker)
        refusals = [breaker.allow("a") for _ in range(3)]
    assert all(r is not None and "circuit open" in r for r in refusals)
    assert breaker.state("a") == "half-open"
    assert breaker.stats()["refused"] == 3
    assert any(
        e.action == "degraded" and e.site == "serve.breaker" for e in log.events
    )


def test_half_open_admits_exactly_one_probe():
    from repro.serve.qos import CircuitBreaker

    breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
    _trip(breaker)
    assert breaker.allow("a") is not None  # cooldown refusal -> half-open
    assert breaker.allow("a") is None  # the probe
    assert "probe in flight" in breaker.allow("a")  # second concurrent ask
    with capture() as log:
        breaker.record("a", True)
    assert breaker.state("a") == "closed"
    assert any(
        e.action == "recovered" and e.site == "serve.breaker" for e in log.events
    )


def test_failed_probe_reopens_the_circuit():
    from repro.serve.qos import CircuitBreaker

    breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
    _trip(breaker)
    breaker.allow("a")
    assert breaker.allow("a") is None
    breaker.record("a", False)
    assert breaker.state("a") == "open"


def test_cancel_returns_the_probe_slot():
    from repro.serve.qos import CircuitBreaker

    breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
    _trip(breaker)
    breaker.allow("a")
    assert breaker.allow("a") is None  # probe slot taken
    breaker.cancel("a")  # the probe never ran (shed downstream)
    assert breaker.allow("a") is None  # slot available again, not leaked


def test_breaker_isolates_tenants_and_validates():
    from repro.serve.qos import CircuitBreaker

    breaker = CircuitBreaker(failure_threshold=1)
    _trip(breaker, tenant="sad")
    assert breaker.state("sad") == "open"
    assert breaker.state("happy") == "closed"
    assert breaker.allow("happy") is None
    assert breaker.stats()["open"] == ["sad"]
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown=0)
