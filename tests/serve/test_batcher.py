"""SignatureBatcher: content-key grouping, splitting, priority order."""

from __future__ import annotations

import pytest

from repro.pde.problems import gray_scott_jacobian
from repro.serve.batcher import SignatureBatcher
from repro.serve.request import RequestKind, SolveRequest


def _req(mat, seq, priority=1, kind=RequestKind.SPMV):
    r = SolveRequest(tenant=f"t{seq}", mat=mat, payload=None, kind=kind, priority=priority)
    r.seq = seq
    return r


def test_same_content_coalesces_different_content_does_not():
    a = gray_scott_jacobian(6, seed=1)
    b = gray_scott_jacobian(6, seed=2)  # same structure, different values
    plan = SignatureBatcher(max_batch=8).plan(
        [_req(a, 1), _req(b, 2), _req(a, 3), _req(a, 4)]
    )
    widths = sorted(batch.width for batch in plan)
    assert widths == [1, 3]
    wide = max(plan, key=lambda batch: batch.width)
    assert wide.mat is a, "same-structure different-values must not share a pass"


def test_group_splits_at_max_batch():
    a = gray_scott_jacobian(6, seed=1)
    plan = SignatureBatcher(max_batch=3).plan([_req(a, i) for i in range(8)])
    assert [batch.width for batch in plan] == [3, 3, 2]


def test_priority_orders_batches_and_members():
    a = gray_scott_jacobian(6, seed=1)
    b = gray_scott_jacobian(6, seed=2)
    plan = SignatureBatcher(max_batch=4).plan(
        [_req(a, 1, priority=0), _req(b, 2, priority=5), _req(a, 3, priority=9)]
    )
    # The urgent request's batch plans first, and it leads its batch;
    # the low-priority same-operator request rides the urgent batch.
    assert [r.seq for r in plan[0].requests] == [3, 1]
    assert [r.seq for r in plan[1].requests] == [2]


def test_solves_stay_single():
    a = gray_scott_jacobian(6, seed=1)
    plan = SignatureBatcher(max_batch=8).plan(
        [_req(a, 1, kind=RequestKind.SOLVE), _req(a, 2, kind=RequestKind.SOLVE), _req(a, 3)]
    )
    kinds = [(batch.kind, batch.width) for batch in plan]
    assert kinds.count((RequestKind.SOLVE, 1)) == 2
    assert (RequestKind.SPMV, 1) in kinds


def test_max_batch_validation():
    with pytest.raises(ValueError):
        SignatureBatcher(max_batch=0)
