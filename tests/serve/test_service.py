"""SolveService end-to-end: correctness, batching, QoS, SPMD, faults."""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.core.context import ExecutionContext
from repro.faults.events import capture
from repro.ksp.gmres import GMRES
from repro.pde.problems import gray_scott_jacobian
from repro.serve import (
    AdmissionController,
    RequestKind,
    ResponseStatus,
    SolveRequest,
    SolveService,
)


def _mat(grid=8, seed=1):
    return gray_scott_jacobian(grid, seed=seed)


def _payloads(mat, k, seed=3):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(mat.shape[1]) for _ in range(k)]


def test_submit_requires_started_service():
    service = SolveService()
    with pytest.raises(RuntimeError):
        asyncio.run(service.submit(SolveRequest(tenant="t", mat=_mat(), payload=None)))


def test_batched_answers_bit_identical_to_unbatched():
    mat = _mat()
    xs = _payloads(mat, 12)
    reference = ExecutionContext(default_variant="CSR using AVX512")
    expected = [reference.spmv(mat, x) for x in xs]

    async def run():
        # A long window forces every request into one wide pass.
        async with SolveService(batch_window=0.05, max_batch=16) as service:
            return await asyncio.gather(
                *(
                    service.submit(
                        SolveRequest(tenant=f"t{i}", mat=mat, payload=x)
                    )
                    for i, x in enumerate(xs)
                )
            ), service.stats()

    responses, stats = asyncio.run(run())
    widths = {r.batch_width for r in responses}
    assert max(widths) > 1, "the window never coalesced anything"
    for r, want in zip(responses, expected):
        assert r.ok
        assert r.result.tobytes() == want.tobytes()
    assert stats["spmv_batched_requests"] == len(xs)
    assert stats["registry"]["misses"].get("prepare") == 1, "single-flight broke"


def test_spmd_world_matches_sequential_bits():
    mat = _mat(grid=10)
    xs = _payloads(mat, 5)

    async def run(world_size):
        async with SolveService(
            world_size=world_size, batch_window=0.05, max_batch=8
        ) as service:
            return await asyncio.gather(
                *(
                    service.submit(SolveRequest(tenant=f"t{i}", mat=mat, payload=x))
                    for i, x in enumerate(xs)
                )
            )

    sequential = asyncio.run(run(1))
    spmd = asyncio.run(run(3))
    for a, b in zip(sequential, spmd):
        assert a.ok and b.ok
        assert a.result.tobytes() == b.result.tobytes(), (
            "row-partitioned SpMM must be bit-identical to the sequential pass"
        )


def test_solve_requests_run_gmres():
    mat = _mat(grid=6)
    rng = np.random.default_rng(5)
    b = rng.standard_normal(mat.shape[0])

    async def run():
        async with SolveService(solver_rtol=1e-10) as service:
            return await service.submit(
                SolveRequest(tenant="t", mat=mat, payload=b, kind=RequestKind.SOLVE)
            )

    response = asyncio.run(run())
    assert response.ok and "iterations" in response.detail
    direct = GMRES(rtol=1e-10).solve(mat, b)
    assert np.allclose(response.result, direct.x)


def test_rejection_is_a_status_not_an_exception():
    async def run():
        admission = AdmissionController(queue_cap=16, shed_watermark=1.0)
        mat = _mat()
        async with SolveService(admission=admission) as service:
            # Exhaust the tenant's inflight cap synchronously: admission
            # slots are held from try_admit until the response resolves.
            admission.policies["t"] = type(admission.default_policy)(max_inflight=0)
            return await service.submit(SolveRequest(tenant="t", mat=mat, payload=None))

    response = asyncio.run(run())
    assert response.status is ResponseStatus.REJECTED
    assert "inflight cap" in response.detail


def test_timeout_yields_timeout_status_and_fault_event():
    mat = _mat()
    x = _payloads(mat, 1)[0]

    async def run():
        async with SolveService() as service:
            slow = service._spmm

            def stalled(shard, csr, payloads):
                time.sleep(0.2)
                return slow(shard, csr, payloads)

            service._spmm = stalled
            with capture() as log:
                response = await service.submit(
                    SolveRequest(tenant="t", mat=mat, payload=x, timeout=0.02)
                )
            return response, log.events, service.stats()

    response, events, stats = asyncio.run(run())
    assert response.status is ResponseStatus.TIMEOUT
    assert stats["timeout"] == 1
    assert any(
        e.action == "degraded" and e.site == "serve.deadline" for e in events
    )


def test_compute_failure_answers_every_batch_member():
    mat = _mat()
    xs = _payloads(mat, 3)

    async def run():
        async with SolveService(batch_window=0.05) as service:
            def broken(shard, csr, payloads):
                raise ValueError("poison pass")

            service._spmm = broken
            with capture() as log:
                responses = await asyncio.gather(
                    *(
                        service.submit(SolveRequest(tenant=f"t{i}", mat=mat, payload=x))
                        for i, x in enumerate(xs)
                    )
                )
            return responses, log.events

    responses, events = asyncio.run(run())
    assert all(r.status is ResponseStatus.ERROR for r in responses)
    assert all("poison pass" in r.detail for r in responses)
    assert any(e.action == "detected" and e.site == "serve.compute" for e in events)


def test_stop_answers_queued_work_and_is_reentrant():
    mat = _mat()
    xs = _payloads(mat, 4)

    async def run():
        service = SolveService(batch_window=0.05)
        await service.start()
        await service.start()  # idempotent
        pending = [
            asyncio.create_task(
                service.submit(SolveRequest(tenant=f"t{i}", mat=mat, payload=x))
            )
            for i, x in enumerate(xs)
        ]
        await asyncio.sleep(0)  # let submissions reach the queue
        await service.stop()
        responses = await asyncio.gather(*pending)
        await service.stop()  # no-op
        return responses

    responses = asyncio.run(run())
    assert all(r.ok for r in responses), "shutdown stranded queued requests"


def test_sharding_is_deterministic_and_in_range():
    service = SolveService(shards=4)
    for tenant in ("alice", "bob", "carol"):
        shard = service.shard_of(tenant)
        assert shard == service.shard_of(tenant)
        assert 0 <= shard < 4


def test_constructor_validation():
    with pytest.raises(ValueError):
        SolveService(shards=0)
    with pytest.raises(ValueError):
        SolveService(world_size=0)
    with pytest.raises(ValueError):
        SolveService(batch_window=-1.0)


def test_occupancy_and_stats_shape():
    mat = _mat()
    xs = _payloads(mat, 6)

    async def run():
        async with SolveService(batch_window=0.05, max_batch=8) as service:
            await asyncio.gather(
                *(
                    service.submit(SolveRequest(tenant=f"t{i}", mat=mat, payload=x))
                    for i, x in enumerate(xs)
                )
            )
            return service.stats()

    stats = asyncio.run(run())
    assert stats["requests"] == 6 and stats["ok"] == 6
    assert stats["occupancy"] > 1.0
    assert stats["admission"]["depth"] == 0
    assert 0.0 <= stats["registry"]["hit_rate"] <= 1.0
