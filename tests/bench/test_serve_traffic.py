"""The serve traffic harness: schedules, pools, and a tiny live run.

The full smoke gate (median-of-N throughput comparison at world_size=8)
is a CI job of its own; these tests pin the harness mechanics — seeded
determinism, report shape, correctness bookkeeping — on a configuration
small enough for the unit suite.
"""

from __future__ import annotations

import json

import numpy as np

from repro.bench import serve_traffic
from repro.bench.serve_traffic import (
    TrafficConfig,
    _median_run,
    build_pool,
    render,
    run_comparison,
    serial_baseline,
    tenant_schedule,
)

TINY = TrafficConfig(
    tenants=6,
    requests_per_tenant=4,
    pool=((6, 1), (6, 2)),
    payload_bank=2,
    max_batch=4,
    world_size=1,
    repeats=1,
)


def test_build_pool_banks_match_operators():
    mats, weights, banks = build_pool(TINY)
    assert len(mats) == len(banks) == 2
    assert weights[0] > weights[1] and np.isclose(weights.sum(), 1.0)
    for mat, pairs in zip(mats, banks):
        assert len(pairs) == TINY.payload_bank
        for x, reference in pairs:
            assert x.shape == (mat.shape[1],)
            assert np.array_equal(reference, mat.multiply(x))


def test_tenant_schedule_is_deterministic_and_in_range():
    a = tenant_schedule(TINY, 3, 2, np.array([0.7, 0.3]))
    b = tenant_schedule(TINY, 3, 2, np.array([0.7, 0.3]))
    for x, y in zip(a, b):
        assert np.array_equal(x, y)
    idxs, picks, thinks = a
    assert idxs.shape == picks.shape == thinks.shape == (TINY.requests_per_tenant,)
    assert set(idxs) <= {0, 1}
    assert set(picks) <= {0, 1}
    assert (thinks >= 0).all()
    other = tenant_schedule(TINY, 4, 2, np.array([0.7, 0.3]))
    assert not np.array_equal(other[0], idxs) or not np.array_equal(other[2], thinks)


def test_serial_baseline_disables_coalescing_only():
    serial = serial_baseline(TINY)
    assert serial.max_batch == 1 and serial.batch_window == 0.0
    assert serial.tenants == TINY.tenants
    assert serial.world_size == TINY.world_size
    assert serial.seed == TINY.seed


def test_median_run_picks_middle_throughput():
    runs = [{"throughput_rps": r} for r in (30.0, 10.0, 20.0)]
    pick = _median_run(runs)
    assert pick["throughput_rps"] == 20.0
    assert pick["throughput_runs"] == [30.0, 10.0, 20.0]


def test_tiny_comparison_end_to_end(tmp_path, monkeypatch):
    report = run_comparison(TINY)
    assert report["gates"]["correct"], report["batched"]["failures"]
    assert report["gates"]["single_flight_ok"]
    assert report["batched"]["requests"] == TINY.tenants * TINY.requests_per_tenant
    assert report["batch_occupancy"] > 0
    assert 0.0 <= report["cache_hit_rate"] <= 1.0
    summary = render(report)
    assert "batch speedup" in summary and "verdict" in summary
    json.dumps(report)  # the whole report must be JSON-serializable

    # main() writes the report where --json points and gates the exit code.
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(serve_traffic, "SMOKE", TINY)
    code = serve_traffic.main(["--smoke", "--json", "tiny.json"])
    on_disk = json.loads((tmp_path / "tiny.json").read_text())
    assert code in (0, 1)
    assert (code == 0) == on_disk["passed"]
    assert on_disk["gates"]["correct"]
