"""The run_all driver renders every section without error."""

from repro.bench import run_all


def test_sections_cover_the_whole_evaluation():
    names = [m.__name__.rsplit(".", 1)[-1] for m in run_all.SECTIONS]
    assert names == [
        "table1",
        "fig4",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "ablations",
        "headline",
    ]


def test_every_section_renders_nonempty():
    for module in run_all.SECTIONS:
        out = module.render()
        assert isinstance(out, str) and len(out) > 40, module.__name__


def test_main_prints_all_sections(capsys):
    run_all.main()
    out = capsys.readouterr().out
    for needle in ("Table 1", "Figure 4", "Figure 8", "Figure 10",
                   "Headline claims"):
        assert needle in out
