"""Structure and fast sanity of the figure harnesses.

The full shape assertions live in ``benchmarks/``; these tests pin down the
harnesses' structure (series names, axes, data types) so a refactor cannot
silently change what a figure reports.
"""

import pytest

from repro.bench.experiments import (
    ablations,
    fig4,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
)


class TestTable1:
    def test_four_processors(self):
        rows = table1.run()
        assert [r["processor"].split()[0] for r in rows] == [
            "KNL",
            "Broadwell",
            "Haswell",
            "Skylake",
        ]

    def test_render_contains_all_rows(self):
        out = table1.render()
        for name in ("KNL", "Broadwell", "Haswell", "Skylake"):
            assert name in out


class TestFig4:
    def test_four_series_on_the_paper_axis(self):
        series = fig4.run()
        assert len(series) == 4
        for points in series.values():
            assert [p for p, _ in points] == [8, 16, 24, 32, 40, 48, 56, 64]

    def test_render(self):
        assert "Flat:AVX512" in fig4.render()


class TestFig7:
    def test_27_points(self):
        points = fig7.run()
        assert len(points) == 27

    def test_render_has_three_blocks(self):
        out = fig7.render()
        assert out.count("Figure 7") == 3


class TestFig8:
    def test_nine_series_five_rank_counts(self):
        series = fig8.run()
        assert len(series) == 9
        for points in series.values():
            assert [p for p, _ in points] == [4, 8, 16, 32, 64]

    def test_best_at_full_node_exposes_64_rank_values(self):
        best = fig8.best_at_full_node()
        series = fig8.run()
        for name, value in best.items():
            assert value == series[name][-1][1]


class TestFig9:
    def test_one_point_per_variant(self):
        points = fig9.run()
        assert len(points) == 9

    def test_csr_points_share_the_paper_intensity(self):
        for pt in fig9.run():
            if pt.label.startswith("CSR") or pt.label in ("CSRPerm", "MKL CSR"):
                assert pt.intensity == pytest.approx(0.1316, abs=1e-3)
            else:
                assert pt.intensity == pytest.approx(0.1449, abs=1e-3)

    def test_headroom_is_a_fraction(self):
        for frac in fig9.mcdram_headroom().values():
            assert 0.0 < frac < 1.0


class TestFig10:
    def test_solver_profile_comes_from_a_real_run(self):
        profile = fig10.profile_solver()
        assert profile.newton_per_step >= 1.0
        assert profile.linear_per_newton >= 1.0
        assert profile.matvecs_per_it_coarsest > profile.matvecs_per_it_level > 0

    def test_bar_grid(self):
        points = fig10.run(node_counts=(64, 128))
        # 3 modes x 2 formats x 2 node counts.
        assert len(points) == 12
        for pt in points:
            assert pt.matmult_seconds < pt.total_seconds
            assert pt.other_seconds > 0


class TestFig11:
    def test_avx512_missing_on_old_xeons(self):
        data = fig11.run()
        assert data["CSR using AVX512"]["Haswell"] is None
        assert data["CSR using AVX512"]["Broadwell"] is None
        assert data["CSR using AVX512"]["Skylake"] is not None
        assert data["CSR using AVX512"]["KNL"] is not None

    def test_every_machine_runs_the_narrow_isas(self):
        data = fig11.run()
        for machine in ("Haswell", "Broadwell", "Skylake", "KNL"):
            assert data["CSR using AVX"][machine] is not None


class TestAblations:
    def test_bitarray_rows(self):
        rows = ablations.run_bitarray()
        assert [r.label for r in rows] == ["SELL using AVX512", "ESB using AVX512"]

    def test_sigma_rows_cover_the_sweep(self):
        rows = ablations.run_sigma(sigmas=(1, 8))
        assert [r.label for r in rows] == ["sigma=1", "sigma=8"]

    def test_storage_padding_by_height_starts_at_zero(self):
        pad = ablations.storage_padding_by_height(heights=(1, 8))
        assert pad[1] == 0.0
        assert pad[8] > 0.0


class TestFig7MemoryFootprints:
    def test_all_single_node_grids_fit_mcdram(self):
        """Section 7.1: 'the memory usage does not exceed the limit of
        MCDRAM capacity' for all three Figure 7 grids — verified through
        the memkind accounting, and the next doubling does not fit."""
        from repro.bench.experiments.common import working_set_bytes
        from repro.memory.spaces import MCDRAM, MemkindAllocator, MemoryKindExhausted

        import pytest as _pytest

        for grid in (1024, 2048, 4096):
            alloc = MemkindAllocator()
            alloc.reserve(working_set_bytes(grid), MCDRAM)  # must fit
        alloc = MemkindAllocator()
        with _pytest.raises(MemoryKindExhausted):
            alloc.reserve(working_set_bytes(16384), MCDRAM)
