"""Figure values pinned against the pre-ExecutionContext harness.

The context refactor rewired how the figures build their machine models
and measurements; these tests assert bit-identical series values against
a fixture captured before the refactor, so any numerical drift in the
dispatch/measure/predict plumbing is caught immediately.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.experiments import fig8, fig9, fig11

FIXTURE = Path(__file__).parent / "data" / "pre_refactor_series.json"


@pytest.fixture(scope="module")
def pinned() -> dict:
    with FIXTURE.open() as f:
        return json.load(f)


def test_fig8_series_identical(pinned):
    current = {
        name: [[int(nprocs), gflops] for nprocs, gflops in points]
        for name, points in fig8.run().items()
    }
    assert current == pinned["fig8"]


def test_fig9_points_identical(pinned):
    current = [
        {"label": pt.label, "intensity": pt.intensity, "gflops": pt.gflops}
        for pt in fig9.run()
    ]
    assert current == pinned["fig9"]


def test_fig11_table_identical(pinned):
    assert fig11.run() == pinned["fig11"]
