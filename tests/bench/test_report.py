"""Report formatting."""

import pytest

from repro.bench.report import format_series, format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(
            ("name", "value"), [("a", 1.0), ("long-name", 123456.0)], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_float_formatting(self):
        out = format_table(("x",), [(0.123456,), (12.34,), (1234.5,), (None,)])
        assert "0.123" in out
        assert "12.3" in out
        assert "1234" in out and "1234." not in out
        assert "-" in out.splitlines()[-1]


class TestFormatSeries:
    def test_shared_axis_layout(self):
        out = format_series(
            {"a": [(1, 10.0), (2, 20.0)], "b": [(1, 1.0), (2, 2.0)]},
            x_label="p",
        )
        lines = out.splitlines()
        assert lines[0].startswith("p")
        assert "a" in lines[0] and "b" in lines[0]

    def test_mismatched_axes_rejected(self):
        with pytest.raises(ValueError):
            format_series({"a": [(1, 1.0)], "b": [(2, 2.0)]})

    def test_empty_series(self):
        assert format_series({}, title="nothing") == "nothing"

    def test_y_label_footnote(self):
        out = format_series({"a": [(1, 1.0)]}, y_label="Gflop/s")
        assert out.endswith("(values: Gflop/s)")
