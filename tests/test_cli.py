"""The python -m repro command-line entry."""

import pytest

from repro.__main__ import main


class TestDispatch:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ICPP 2018" in out

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "calibrate" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "KNL" in out and "Skylake" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        assert "Flat:AVX512" in capsys.readouterr().out

    def test_headline(self, capsys):
        assert main(["headline"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "FAIL" not in out

    def test_unknown_command_fails_with_guidance(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err and "fig8" in err
