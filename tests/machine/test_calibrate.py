"""Calibration machinery and the committed fit."""

import pytest

from repro.machine.calibrate import (
    FIT_FIELDS,
    KNL_TARGETS,
    CalibrationProblem,
    fit,
)
from repro.machine.perf_model import KNL_COSTS, KNL_OVERLAP
from repro.simd.cost_model import CostTable


@pytest.fixture(scope="module")
def problem() -> CalibrationProblem:
    # A small reference grid keeps the engine measurements fast.
    return CalibrationProblem.measure(grid=16)


class TestProblem:
    def test_measures_every_target_variant(self, problem):
        assert set(problem.counters) == set(KNL_TARGETS)
        assert set(problem.traffic) == set(KNL_TARGETS)

    def test_predictions_are_positive(self, problem):
        pred = problem.predict_gflops(CostTable(), 0.5)
        assert all(v > 0 for v in pred.values())

    def test_loss_is_zero_only_at_a_perfect_fit(self, problem):
        loss = problem.loss(CostTable(), 0.5)
        assert loss > 0.0


class TestFit:
    def test_fit_improves_the_loss(self, problem):
        start = CostTable()
        before = problem.loss(start, 0.5)
        table, overlap, after = fit(problem, start=start, rounds=4)
        assert after < before
        assert 0.2 <= overlap <= 0.8

    def test_fit_respects_the_bounds(self, problem):
        table, _, _ = fit(problem, rounds=4)
        for field, (lo, hi) in FIT_FIELDS.items():
            assert lo <= getattr(table, field) <= hi


class TestCommittedFit:
    """The baked-in KNL_COSTS table must reproduce the paper's KNL column."""

    def test_every_series_within_twenty_percent(self, problem):
        pred = problem.predict_gflops(KNL_COSTS, KNL_OVERLAP)
        for name, target in KNL_TARGETS.items():
            assert pred[name] == pytest.approx(target, rel=0.20), name

    def test_the_ordering_of_the_figure8_series(self, problem):
        """Who beats whom at 64 ranks is the figure's core message."""
        p = problem.predict_gflops(KNL_COSTS, KNL_OVERLAP)
        assert (
            p["SELL using AVX512"]
            > p["SELL using AVX"]
            > p["SELL using AVX2"]
            > p["CSR using AVX512"]
            > p["CSR baseline"]
            > p["MKL CSR"]
        )
        assert p["CSR using AVX"] > p["CSR using AVX2"]  # the AVX2 regression
        assert p["CSR using novec"] < p["MKL CSR"]
