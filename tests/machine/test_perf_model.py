"""The node performance model: leg combination, bounds, configuration."""

import pytest

from repro.machine.perf_model import (
    KNL_OVERLAP,
    MemoryMode,
    PerfModel,
    bandwidth_curve_for,
    combine_legs,
    cost_table_for,
    make_model,
)
from repro.machine.specs import HASWELL, KNL_7230, SKYLAKE
from repro.simd.counters import KernelCounters
from repro.simd.isa import AVX512, SCALAR


def flat_model(**kwargs) -> PerfModel:
    return PerfModel(spec=KNL_7230, mode=MemoryMode.FLAT_MCDRAM,
                     overlap=KNL_OVERLAP, **kwargs)


def counters(**kwargs) -> KernelCounters:
    c = KernelCounters()
    for k, v in kwargs.items():
        setattr(c, k, v)
    return c


class TestCombineLegs:
    def test_balanced_legs_partially_overlap(self):
        t = combine_legs(1.0, 1.0, overlap=0.5)
        assert t == pytest.approx(1.5)

    def test_lopsided_kernel_is_simply_bound(self):
        # Memory 100x the compute: the compute leg vanishes.
        t = combine_legs(0.01, 1.0, overlap=0.0)
        assert t == pytest.approx(1.0001)

    def test_symmetric_in_the_two_legs(self):
        assert combine_legs(0.3, 0.7, 0.4) == combine_legs(0.7, 0.3, 0.4)

    def test_full_overlap_is_max(self):
        assert combine_legs(0.3, 0.7, 1.0) == 0.7

    def test_zero_legs(self):
        assert combine_legs(0.0, 0.0, 0.5) == 0.0

    def test_invalid_overlap_raises(self):
        with pytest.raises(ValueError):
            combine_legs(1.0, 1.0, 1.5)


class TestPredict:
    def test_memory_bound_prediction_uses_bandwidth(self):
        model = flat_model()
        c = counters(flops=200, bytes_loaded=10**9)
        perf = model.predict(c, AVX512, 64, traffic_bytes=10**9)
        bw = model.bandwidth_gbs(AVX512, 64)
        assert perf.bound == "memory"
        assert perf.memory_seconds == pytest.approx(1.0 / bw, rel=1e-9)

    def test_compute_bound_prediction_scales_with_ranks(self):
        model = flat_model()
        c = counters(vector_fmadd=10**7, flops=200)
        p32 = model.predict(c, AVX512, 32, traffic_bytes=1)
        p64 = model.predict(c, AVX512, 64, traffic_bytes=1)
        assert p32.bound == p64.bound == "compute"
        # Ideal scaling is 2x, damped by the occupancy-dependent clock
        # (32 ranks run at a higher frequency than a full chip).
        f32 = KNL_7230.effective_frequency("AVX512", 32)
        f64 = KNL_7230.effective_frequency("AVX512", 64)
        assert p32.seconds / p64.seconds == pytest.approx(2.0 * f64 / f32, rel=1e-6)

    def test_efficiency_divides_throughput(self):
        model = flat_model()
        c = counters(vector_fmadd=1000, flops=2000)
        full = model.predict(c, AVX512, 64, traffic_bytes=100)
        mkl = model.predict(c, AVX512, 64, traffic_bytes=100, efficiency=0.85)
        assert mkl.seconds == pytest.approx(full.seconds / 0.85)

    def test_useful_flops_override_sets_the_gflops_numerator(self):
        model = flat_model()
        c = counters(vector_fmadd=100, flops=1600)
        a = model.predict(c, AVX512, 64, traffic_bytes=100)
        b = model.predict(c, AVX512, 64, traffic_bytes=100, useful_flops=800)
        assert b.gflops == pytest.approx(a.gflops / 2)

    def test_padded_flops_excluded_by_default(self):
        model = flat_model()
        c = counters(vector_fmadd=100, flops=1600, padded_flops=600)
        perf = model.predict(c, AVX512, 64, traffic_bytes=100)
        assert perf.useful_flops == 1000

    def test_nprocs_out_of_range_raises(self):
        model = flat_model()
        with pytest.raises(ValueError):
            model.predict(KernelCounters(), AVX512, 65)
        with pytest.raises(ValueError):
            model.predict(KernelCounters(), AVX512, 0)

    def test_bad_efficiency_raises(self):
        with pytest.raises(ValueError):
            flat_model().predict(KernelCounters(), AVX512, 1, efficiency=0.0)

    def test_cache_mode_with_huge_working_set_is_slower(self):
        cached = PerfModel(spec=KNL_7230, mode=MemoryMode.CACHE, overlap=0.5)
        small = cached.bandwidth_gbs(AVX512, 64, working_set=1 << 20)
        huge = cached.bandwidth_gbs(AVX512, 64, working_set=1 << 40)
        assert huge < small


class TestConfiguration:
    def test_xeon_cannot_use_mcdram_modes(self):
        with pytest.raises(ValueError):
            bandwidth_curve_for(HASWELL, MemoryMode.CACHE, AVX512)

    def test_xeon_ddr_curve_uses_sustained_bandwidth(self):
        curve = bandwidth_curve_for(SKYLAKE, MemoryMode.DDR, AVX512)
        assert curve.peak_gbs == pytest.approx(SKYLAKE.sustained_ddr_gbs)

    def test_knl_novec_gets_the_lower_flat_curve(self):
        vec = bandwidth_curve_for(KNL_7230, MemoryMode.FLAT_MCDRAM, AVX512)
        novec = bandwidth_curve_for(KNL_7230, MemoryMode.FLAT_MCDRAM, SCALAR)
        assert novec.peak_gbs < vec.peak_gbs

    def test_cost_table_selected_by_family(self):
        from repro.machine.perf_model import KNL_COSTS, XEON_COSTS

        assert cost_table_for(KNL_7230, AVX512) is KNL_COSTS
        assert cost_table_for(SKYLAKE, AVX512) is XEON_COSTS

    def test_make_model_defaults(self):
        knl = make_model(KNL_7230)
        assert knl.mode is MemoryMode.FLAT_MCDRAM
        assert knl.overlap == KNL_OVERLAP
        xeon = make_model(SKYLAKE)
        assert xeon.mode is MemoryMode.DDR

    def test_invalid_overlap_rejected(self):
        with pytest.raises(ValueError):
            PerfModel(spec=KNL_7230, overlap=1.5)

    def test_cache_mode_gets_a_cache_model_automatically(self):
        model = PerfModel(spec=KNL_7230, mode=MemoryMode.CACHE, overlap=0.5)
        assert model.cache_model is not None
