"""KNL and Xeon node objects: topology and configuration invariants."""

import pytest

from repro.machine.knl import ClusterMode, KnlNode
from repro.machine.perf_model import MemoryMode
from repro.machine.specs import KNL_7230, SKYLAKE
from repro.machine.xeon import XeonNode, broadwell_node, haswell_node, skylake_node
from repro.memory.numa import Placement


class TestKnlTopology:
    def test_64_cores_form_32_tiles_of_two(self):
        """Section 2.6: 32 tiles, each two cores sharing 1 MB L2."""
        node = KnlNode()
        tiles = node.tiles
        assert len(tiles) == 32
        assert all(t.l2_bytes == 1 << 20 for t in tiles)
        cores = [c for t in tiles for c in t.cores]
        assert sorted(cores) == list(range(64))

    def test_quadrant_mode_groups_tiles_in_four(self):
        node = KnlNode(cluster_mode=ClusterMode.QUADRANT)
        quadrants = node.quadrants
        assert len(quadrants) == 4
        assert sum(len(q) for q in quadrants) == 32


class TestKnlMemoryModes:
    def test_cache_mode_owns_a_direct_mapped_cache(self):
        node = KnlNode(memory_mode=MemoryMode.CACHE)
        assert node.mcdram_cache is not None
        assert node.mcdram_cache.capacity_bytes == 16 * 1024**3

    def test_flat_mode_has_no_cache_but_a_numa_policy(self):
        node = KnlNode(memory_mode=MemoryMode.FLAT_MCDRAM)
        assert node.mcdram_cache is None
        assert node.numa_policy is not None
        assert node.numa_policy.placement is Placement.PREFER_MCDRAM

    def test_flat_dram_mode_binds_to_dram(self):
        node = KnlNode(memory_mode=MemoryMode.FLAT_DRAM)
        assert node.numa_policy.placement is Placement.BIND_DRAM

    def test_cache_mode_rejects_numa_policies(self):
        from repro.memory.numa import NumaPolicy

        with pytest.raises(ValueError):
            KnlNode(memory_mode=MemoryMode.CACHE, numa_policy=NumaPolicy())

    def test_hybrid_fraction_bounds(self):
        with pytest.raises(ValueError):
            KnlNode(memory_mode=MemoryMode.FLAT_MCDRAM, hybrid_cache_fraction=1.5)
        node = KnlNode(
            memory_mode=MemoryMode.FLAT_MCDRAM, hybrid_cache_fraction=0.5
        )
        assert node.mcdram_cache.capacity_bytes == 8 * 1024**3

    def test_requires_a_processor_with_mcdram(self):
        with pytest.raises(ValueError):
            KnlNode(spec=SKYLAKE)

    def test_perf_model_inherits_the_configuration(self):
        node = KnlNode(memory_mode=MemoryMode.CACHE)
        model = node.perf_model()
        assert model.mode is MemoryMode.CACHE
        assert model.cache_model == node.mcdram_cache


class TestXeonNodes:
    def test_factories_set_the_channel_counts(self):
        """Section 7.4: Skylake has 6 channels, Haswell/Broadwell 4."""
        assert skylake_node().memory_channels == 6
        assert haswell_node().memory_channels == 4
        assert broadwell_node().memory_channels == 4

    def test_bandwidth_per_channel(self):
        node = skylake_node()
        assert node.bandwidth_per_channel_gbs == pytest.approx(119.2 / 6)

    def test_rejects_mcdram_processors(self):
        with pytest.raises(ValueError):
            XeonNode(spec=KNL_7230)

    def test_rejects_zero_channels(self):
        with pytest.raises(ValueError):
            XeonNode(spec=SKYLAKE, memory_channels=0)

    def test_perf_model_is_ddr(self):
        assert skylake_node().perf_model().mode is MemoryMode.DDR
