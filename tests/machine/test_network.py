"""Interconnect and cluster models (Figure 10 substrate)."""

import math

import pytest

from repro.machine.network import Cluster, NetworkModel, halo_bytes_2d


@pytest.fixture
def net() -> NetworkModel:
    return NetworkModel(latency_s=3e-6, bandwidth_gbs=8.0, overhead_s=5e-7)


class TestMessages:
    def test_message_time_has_latency_and_bandwidth_terms(self, net):
        small = net.message_time(0)
        big = net.message_time(8_000_000)
        assert small == pytest.approx(3.5e-6)
        assert big == pytest.approx(3.5e-6 + 1e-3)

    def test_negative_size_raises(self, net):
        with pytest.raises(ValueError):
            net.message_time(-1)


class TestHaloExchange:
    def test_zero_neighbors_is_free(self, net):
        assert net.halo_exchange_time(0, 1000) == 0.0

    def test_messages_overlap_one_latency(self, net):
        one = net.halo_exchange_time(1, 1000)
        four = net.halo_exchange_time(4, 1000)
        # Four neighbours pay one latency, four overheads, 4x the bytes.
        assert four < 4 * one
        assert four == pytest.approx(
            3e-6 + 4 * 5e-7 + 4000 / 8e9
        )

    def test_negative_neighbors_raises(self, net):
        with pytest.raises(ValueError):
            net.halo_exchange_time(-1, 10)


class TestAllreduce:
    def test_single_rank_is_free(self, net):
        assert net.allreduce_time(1) == 0.0

    def test_rounds_grow_logarithmically(self, net):
        t2 = net.allreduce_time(2)
        t4096 = net.allreduce_time(4096)
        assert t4096 == pytest.approx(math.log2(4096) * t2)

    def test_non_power_of_two_rounds_up(self, net):
        assert net.allreduce_time(5) == pytest.approx(3 * net.allreduce_time(2))

    def test_invalid_rank_count_raises(self, net):
        with pytest.raises(ValueError):
            net.allreduce_time(0)


class TestCluster:
    def test_total_ranks(self, net):
        assert Cluster(64, 64, net).total_ranks == 4096

    def test_invalid_dimensions_raise(self, net):
        with pytest.raises(ValueError):
            Cluster(0, 64, net)
        with pytest.raises(ValueError):
            Cluster(64, 0, net)


class TestHaloBytes:
    def test_square_domain_boundary_scaling(self):
        # 4x the rows -> 2x the boundary.
        b1 = halo_bytes_2d(10_000, dof_per_point=1)
        b4 = halo_bytes_2d(40_000, dof_per_point=1)
        assert b4 == pytest.approx(2 * b1, rel=0.01)

    def test_dof_multiplies_the_boundary(self):
        b1 = halo_bytes_2d(20_000, dof_per_point=1)
        b2 = halo_bytes_2d(20_000, dof_per_point=2)
        # Same rows, 2 dof: half the points but each carries two values.
        assert b2 == pytest.approx(math.sqrt(2) * b1, rel=0.01)

    def test_empty_partition_has_no_halo(self):
        assert halo_bytes_2d(0) == 0
