"""Processor spec database (paper Table 1)."""

import pytest

from repro.machine.specs import (
    BROADWELL,
    HASWELL,
    KNL_7230,
    KNL_7250,
    SKYLAKE,
    TABLE1,
    get_processor,
    table1_rows,
)


class TestTable1Values:
    """Exact Table 1 figures."""

    def test_knl(self):
        assert KNL_7230.cores == 64
        assert KNL_7230.base_frequency_ghz == 1.3
        assert KNL_7230.turbo_frequency_ghz == 1.5
        assert KNL_7230.l3_cache_mb is None
        assert KNL_7230.ddr_bandwidth_gbs == 115.2
        assert KNL_7230.hbm_bandwidth_gbs > 400  # Table 1: ">400 GB/s"

    def test_broadwell(self):
        assert BROADWELL.cores == 22
        assert (BROADWELL.base_frequency_ghz, BROADWELL.turbo_frequency_ghz) == (2.2, 3.6)
        assert BROADWELL.l3_cache_mb == 55.0
        assert BROADWELL.ddr_bandwidth_gbs == 76.8

    def test_haswell(self):
        assert HASWELL.cores == 18
        assert HASWELL.l3_cache_mb == 45.0
        assert HASWELL.ddr_bandwidth_gbs == 68.0

    def test_skylake(self):
        assert SKYLAKE.cores == 28
        assert SKYLAKE.l3_cache_mb == 38.5
        assert SKYLAKE.ddr_bandwidth_gbs == 119.2

    def test_skylake_has_less_l3_but_more_bandwidth_than_broadwell(self):
        """The Section 7.4 explanation of Skylake's advantage."""
        assert SKYLAKE.l3_cache_mb < BROADWELL.l3_cache_mb
        assert SKYLAKE.ddr_bandwidth_gbs > 1.5 * BROADWELL.ddr_bandwidth_gbs

    def test_only_knl_has_hbm(self):
        assert KNL_7230.has_hbm and KNL_7250.has_hbm
        assert not any(s.has_hbm for s in (HASWELL, BROADWELL, SKYLAKE))

    def test_avx512_support(self):
        assert "AVX512" in KNL_7230.isa_names
        assert "AVX512" in SKYLAKE.isa_names
        assert "AVX512" not in HASWELL.isa_names
        assert "AVX512" not in BROADWELL.isa_names

    def test_table1_order_matches_the_paper(self):
        assert [s.name for s in TABLE1] == ["KNL", "Broadwell", "Haswell", "Skylake"]

    def test_table1_rows_are_printable(self):
        rows = table1_rows()
        assert len(rows) == 4
        assert rows[0]["cores"] == 64


class TestEffectiveFrequency:
    def test_few_cores_run_at_turbo(self):
        f = KNL_7230.effective_frequency("AVX", 1)
        assert f == pytest.approx(KNL_7230.turbo_frequency_ghz, abs=0.01)

    def test_full_chip_runs_at_base(self):
        f = KNL_7230.effective_frequency("AVX", 64)
        assert f == pytest.approx(KNL_7230.base_frequency_ghz)

    def test_avx512_pays_the_frequency_offset_when_full(self):
        """Section 2.6: frequency drops 0.2 GHz under heavy AVX."""
        plain = KNL_7230.effective_frequency("AVX", 64)
        wide = KNL_7230.effective_frequency("AVX512", 64)
        assert plain - wide == pytest.approx(0.2)

    def test_xeons_without_offset_are_unaffected_by_isa(self):
        assert HASWELL.effective_frequency("AVX2", 18) == pytest.approx(
            HASWELL.effective_frequency("AVX", 18)
        )

    def test_invalid_process_count_raises(self):
        with pytest.raises(ValueError):
            KNL_7230.effective_frequency("AVX", 0)


class TestLookup:
    def test_by_name_case_insensitive(self):
        assert get_processor("knl") is KNL_7230
        assert get_processor("Skylake") is SKYLAKE

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_processor("Itanium")

    def test_sustained_bandwidth_below_peak(self):
        for spec in TABLE1:
            assert spec.sustained_ddr_gbs < spec.ddr_bandwidth_gbs
