"""Roofline model (paper Figure 9)."""

import pytest

from repro.machine.roofline import (
    THETA_CEILINGS,
    THETA_L1,
    THETA_L2,
    THETA_MCDRAM,
    THETA_PEAK_GFLOPS,
    Ceiling,
    RooflinePoint,
    attainable,
    binding_ceiling,
)


class TestCeilings:
    def test_theta_values_match_figure9(self):
        assert THETA_PEAK_GFLOPS == 1018.4
        assert THETA_L1.bandwidth_gbs == 4593.3
        assert THETA_L2.bandwidth_gbs == 1823.0
        assert THETA_MCDRAM.bandwidth_gbs == 419.7

    def test_attainable_is_bandwidth_times_intensity_on_the_slope(self):
        assert THETA_MCDRAM.attainable_gflops(0.1, THETA_PEAK_GFLOPS) == pytest.approx(
            41.97
        )

    def test_attainable_is_clamped_at_the_compute_peak(self):
        assert THETA_L1.attainable_gflops(100.0, THETA_PEAK_GFLOPS) == THETA_PEAK_GFLOPS

    def test_ridge_point(self):
        ridge = THETA_MCDRAM.ridge_point(THETA_PEAK_GFLOPS)
        assert ridge == pytest.approx(1018.4 / 419.7)
        # SpMV's 0.132 intensity is far left of every ridge.
        assert 0.132 < THETA_L1.ridge_point(THETA_PEAK_GFLOPS)

    def test_negative_intensity_raises(self):
        with pytest.raises(ValueError):
            THETA_MCDRAM.attainable_gflops(-0.1, THETA_PEAK_GFLOPS)

    def test_attainable_dict_covers_all_ceilings(self):
        vals = attainable(0.132)
        assert set(vals) == {"L1", "L2", "MCDRAM"}
        assert vals["MCDRAM"] < vals["L2"] < vals["L1"]


class TestBindingCeiling:
    def test_spmv_is_mcdram_bound(self):
        assert binding_ceiling(0.132) is THETA_MCDRAM

    def test_very_high_intensity_is_compute_bound(self):
        assert binding_ceiling(10.0) is None

    def test_intermediate_intensity_still_binds_on_the_slowest_slope(self):
        # At AI=1 the MCDRAM slope (419.7) still sits below the peak.
        assert binding_ceiling(1.0) is THETA_MCDRAM


class TestRooflinePoint:
    def test_fraction_of_ceiling(self):
        pt = RooflinePoint("SELL using AVX512", 0.145, 47.0)
        frac = pt.fraction_of_ceiling()
        assert frac == pytest.approx(47.0 / (0.145 * 419.7))

    def test_fraction_handles_zero_intensity(self):
        assert RooflinePoint("x", 0.0, 1.0).fraction_of_ceiling() == 0.0

    def test_custom_ceiling(self):
        pt = RooflinePoint("k", 0.132, 20.0)
        l2 = pt.fraction_of_ceiling(THETA_L2, THETA_PEAK_GFLOPS)
        mc = pt.fraction_of_ceiling(THETA_MCDRAM, THETA_PEAK_GFLOPS)
        assert l2 < mc


def test_ceilings_tuple_order_is_fastest_first():
    assert THETA_CEILINGS == (THETA_L1, THETA_L2, THETA_MCDRAM)
    assert Ceiling("x", 1.0).attainable_gflops(2.0, 100.0) == 2.0
