"""The fully distributed Gray-Scott simulation: no replicated state.

The paper's abstract claim — preconditioned iterative solvers in realistic
PDE-based simulations *in parallel* — exercised end to end: strip
decomposition, halo exchanges, rank-local Jacobian assembly into
diag/off-diag blocks, parallel Newton over parallel GMRES, CSR and SELL.
"""

import numpy as np
import pytest

from repro.comm.spmd import SpmdError, run_spmd
from repro.ksp import GMRES, JacobiPC, ThetaMethod
from repro.ksp.parallel import ParallelGMRES, ParallelJacobiPC
from repro.pde import Grid2D, GrayScottProblem
from repro.pde.parallel_grayscott import (
    DistributedGrayScott,
    ParallelThetaMethod,
    StripDecomposition,
)
from repro.vec import MPIVec

GRID = Grid2D(12, 12, dof=2)


@pytest.fixture(scope="module")
def sequential_reference():
    prob = GrayScottProblem(GRID)
    ts = ThetaMethod(
        rhs=prob.rhs,
        jacobian=prob.jacobian,
        ksp_factory=lambda: GMRES(pc=JacobiPC(), rtol=1e-10),
        dt=1.0,
    )
    return prob, ts.integrate(prob.initial_state(), 3).final_state


class TestStripDecomposition:
    def test_strips_cover_the_grid(self):
        def prog(comm):
            decomp = StripDecomposition(GRID, comm)
            return decomp.my_rows

        ranges = run_spmd(3, prog)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == GRID.ny
        for (_, end), (start, _) in zip(ranges, ranges[1:], strict=False):
            assert end == start

    def test_halo_exchange_matches_periodic_neighbours(self):
        field = np.arange(GRID.ny * GRID.nx, dtype=np.float64).reshape(
            GRID.ny, GRID.nx
        )

        def prog(comm):
            decomp = StripDecomposition(GRID, comm)
            start, end = decomp.my_rows
            local = field[start:end][None, :, :]
            halo = decomp.exchange_halo(local)
            below = field[(start - 1) % GRID.ny]
            above = field[end % GRID.ny]
            return (
                np.array_equal(halo[0, 0], below),
                np.array_equal(halo[0, -1], above),
            )

        for ok_below, ok_above in run_spmd(4, prog):
            assert ok_below and ok_above

    def test_more_ranks_than_grid_rows_rejected(self):
        tiny = Grid2D(4, 2, dof=2)

        def prog(comm):
            StripDecomposition(tiny, comm)

        with pytest.raises(SpmdError):
            run_spmd(3, prog)


class TestDistributedOperators:
    @pytest.mark.parametrize("size", [1, 2, 3])
    def test_residual_matches_sequential(self, size, sequential_reference):
        prob, _ = sequential_reference
        f_seq = prob.rhs(prob.initial_state())

        def prog(comm):
            dprob = DistributedGrayScott(comm, GRID)
            return dprob.rhs(dprob.initial_state()).to_global()

        for f_par in run_spmd(size, prog):
            assert np.allclose(f_par, f_seq, atol=1e-13)

    def test_rank_local_jacobian_equals_the_sequential_one(
        self, sequential_reference
    ):
        """Assembled without any rank seeing the global matrix."""
        prob, _ = sequential_reference
        j_seq = prob.jacobian(prob.initial_state(), shift=1.0, scale=-0.5)
        x = np.random.default_rng(0).standard_normal(GRID.ndof)
        expected = j_seq.multiply(x)

        def prog(comm):
            dprob = DistributedGrayScott(comm, GRID)
            j = dprob.jacobian(dprob.initial_state(), shift=1.0, scale=-0.5)
            xv = MPIVec.from_global(comm, dprob.layout, x)
            return j.multiply(xv).to_global()

        for result in run_spmd(3, prog):
            assert np.allclose(result, expected, atol=1e-12)

    def test_sell_diagonal_block_is_used_when_requested(self):
        def prog(comm):
            dprob = DistributedGrayScott(comm, GRID, matrix_format="sell")
            j = dprob.jacobian(dprob.initial_state())
            return j.diag.format_name

        assert run_spmd(2, prog) == ["SELL", "SELL"]

    def test_unknown_format_rejected(self):
        def prog(comm):
            DistributedGrayScott(comm, GRID, matrix_format="coo")

        with pytest.raises(SpmdError):
            run_spmd(2, prog)


class TestParallelSimulation:
    @pytest.mark.parametrize("size", [1, 2, 3])
    def test_trajectory_matches_sequential(self, size, sequential_reference):
        _, reference = sequential_reference

        def prog(comm):
            dprob = DistributedGrayScott(comm, GRID)
            pts = ParallelThetaMethod(
                dprob,
                lambda: ParallelGMRES(pc=ParallelJacobiPC(), rtol=1e-10),
            )
            final, stats = pts.integrate(dprob.initial_state(), 3)
            return final.to_global(), stats

        for final, stats in run_spmd(size, prog):
            assert np.abs(final - reference).max() < 1e-9
            assert stats["newton"] >= 3

    def test_sell_simulation_matches_csr_simulation(self):
        def run_with(fmt):
            def prog(comm):
                dprob = DistributedGrayScott(comm, GRID, matrix_format=fmt)
                pts = ParallelThetaMethod(
                    dprob,
                    lambda: ParallelGMRES(pc=ParallelJacobiPC(), rtol=1e-10),
                )
                final, _ = pts.integrate(dprob.initial_state(), 2)
                return final.to_global()

            return run_spmd(2, prog)[0]

        assert np.abs(run_with("sell") - run_with("aij")).max() < 1e-10

    def test_statistics_are_identical_across_ranks(self):
        def prog(comm):
            dprob = DistributedGrayScott(comm, GRID)
            pts = ParallelThetaMethod(
                dprob,
                lambda: ParallelGMRES(pc=ParallelJacobiPC(), rtol=1e-10),
            )
            _, stats = pts.integrate(dprob.initial_state(), 2)
            return stats

        results = run_spmd(3, prog)
        assert results[0] == results[1] == results[2]

    def test_newton_failure_is_collective_and_loud(self):
        def prog(comm):
            dprob = DistributedGrayScott(comm, GRID)
            pts = ParallelThetaMethod(
                dprob,
                lambda: ParallelGMRES(pc=ParallelJacobiPC(), rtol=1e-10, max_it=1),
                dt=1e9,
                snes_max_it=2,
                snes_rtol=1e-15,
                snes_atol=1e-30,
            )
            pts.integrate(dprob.initial_state(), 1)

        with pytest.raises(SpmdError, match="Newton"):
            run_spmd(2, prog)
