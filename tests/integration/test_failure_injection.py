"""Failure injection: the misconfigurations the paper and PETSc guard against."""

import numpy as np
import pytest

from repro.core.sell import SellMat
from repro.pde.problems import gray_scott_jacobian


class TestAlignmentFaults:
    """Section 3.1: PETSc built with AVX-512 and 16-byte alignment hung on
    KNL; 64-byte alignment fixed it.  Our strict-alignment engine turns
    that hang into a diagnosable fault."""

    def test_16_byte_aligned_sell_faults_under_strict_avx512(self):
        from repro.simd.alignment import AlignmentFault
        from repro.simd.engine import SimdEngine
        from repro.simd.isa import AVX512
        from repro.core.kernels_sell import spmv_sell
        from repro.memory.spaces import misaligned_alloc

        csr = gray_scott_jacobian(4)
        sell = SellMat.from_csr(csr, alignment=16)
        # Deterministically reproduce the old 16-byte default: place the
        # value array at a 16-byte-but-not-64-byte boundary, exactly the
        # misalignment the paper's hang traced back to.
        val = misaligned_alloc(
            sell.val.shape[0], np.float64, alignment=64, offset=16
        )
        val[:] = sell.val
        sell.val = val
        assert sell.val.ctypes.data % 64 == 16
        engine = SimdEngine(AVX512, strict_alignment=True)
        with pytest.raises(AlignmentFault):
            spmv_sell(engine, sell, np.ones(csr.shape[1]),
                      np.zeros(csr.shape[0]))

    def test_64_byte_alignment_never_faults(self):
        from repro.simd.engine import SimdEngine
        from repro.simd.isa import AVX512
        from repro.core.kernels_sell import spmv_sell
        from repro.memory.spaces import aligned_alloc

        csr = gray_scott_jacobian(4)
        sell = SellMat.from_csr(csr, alignment=64)
        engine = SimdEngine(AVX512, strict_alignment=True)
        y = aligned_alloc(csr.shape[0])
        spmv_sell(engine, sell, np.ones(csr.shape[1]), y)  # must not raise
        assert np.allclose(y, csr.multiply(np.ones(csr.shape[1])))


class TestMemoryExhaustion:
    def test_multinode_working_set_overflows_a_bound_mcdram(self):
        """The 16384^2 problem cannot be membind'ed into one node's MCDRAM."""
        from repro.memory.numa import NumaPolicy, Placement
        from repro.memory.spaces import MemoryKindExhausted

        rows = 2 * 16384**2
        working_set = rows * (12 * 10 + 8 * 8)  # matrix + vectors
        policy = NumaPolicy(placement=Placement.BIND_MCDRAM)
        with pytest.raises(MemoryKindExhausted):
            policy.place(working_set)

    def test_preferred_policy_spills_the_same_set_to_dram(self):
        from repro.memory.numa import NumaPolicy, Placement
        from repro.memory.spaces import DRAM

        rows = 2 * 16384**2
        working_set = rows * (12 * 10 + 8 * 8)
        policy = NumaPolicy(placement=Placement.PREFER_MCDRAM)
        assert policy.place(working_set) is DRAM


class TestSolverFailurePaths:
    def test_ts_raises_on_a_nonconvergent_nonlinear_solve(self):
        """An absurd time step makes Newton fail; TS must say so loudly,
        not silently continue with garbage."""
        from repro.ksp import GMRES, JacobiPC, ThetaMethod
        from repro.pde import Grid2D, GrayScottProblem

        prob = GrayScottProblem(Grid2D(8, 8, dof=2))
        ts = ThetaMethod(
            rhs=prob.rhs,
            jacobian=prob.jacobian,
            ksp_factory=lambda: GMRES(pc=JacobiPC(), rtol=1e-8, max_it=1),
            dt=1e9,
            snes_max_it=2,
            snes_rtol=1e-14,
        )
        with pytest.raises(RuntimeError, match="nonlinear solve failed"):
            ts.integrate(prob.initial_state(), 1)

    def test_gmres_reports_nan_instead_of_looping(self):
        from repro.ksp import GMRES
        from repro.ksp.base import ConvergedReason
        from repro.pde.problems import random_sparse

        a = random_sparse(10, density=0.5, seed=1)
        b = np.full(10, np.nan)
        result = GMRES(max_it=50).solve(a, b)
        assert result.reason is ConvergedReason.NAN

    def test_adjoint_propagates_linear_solver_failure(self):
        from repro.ksp import GMRES, ThetaMethod
        from repro.ksp.adjoint import AdjointThetaMethod
        from repro.pde import Grid2D
        from repro.pde.advection import AdvectionDiffusionProblem

        prob = AdvectionDiffusionProblem(Grid2D(6, 6, dof=1))
        ts = ThetaMethod(
            rhs=prob.rhs,
            jacobian=prob.jacobian,
            ksp_factory=lambda: GMRES(rtol=1e-12),
            dt=0.1,
        )
        fwd = ts.integrate(prob.initial_state(), 1)
        crippled = AdjointThetaMethod(
            jacobian=prob.jacobian,
            ksp_factory=lambda: GMRES(rtol=1e-14, max_it=1),
            dt=0.1,
        )
        # A random gradient (a constant one is an exact eigenvector of the
        # conservative operator's transpose and solves in one iteration).
        gradient = np.random.default_rng(3).standard_normal(prob.grid.ndof)
        with pytest.raises(RuntimeError, match="adjoint linear solve failed"):
            crippled.integrate_adjoint(fwd, gradient)


class TestEngineMisuse:
    def test_kernel_on_the_wrong_format_fails_loudly(self):
        from repro.core.kernels_sell import spmv_sell
        from repro.simd.engine import SimdEngine
        from repro.simd.isa import AVX512

        csr = gray_scott_jacobian(4)  # not a SellMat
        with pytest.raises(AttributeError):
            spmv_sell(SimdEngine(AVX512), csr, np.ones(csr.shape[1]),
                      np.zeros(csr.shape[0]))

    def test_engine_rejects_narrower_slices_than_its_lanes(self):
        from repro.core.kernels_sell import spmv_sell
        from repro.simd.engine import SimdEngine
        from repro.simd.isa import AVX512

        csr = gray_scott_jacobian(4)
        sell = SellMat.from_csr(csr, slice_height=4)  # < 8 lanes
        with pytest.raises(ValueError, match="multiple"):
            spmv_sell(SimdEngine(AVX512), sell, np.ones(csr.shape[1]),
                      np.zeros(csr.shape[0]))
