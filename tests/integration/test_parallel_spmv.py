"""Parallel SpMV in realistic use: repeated products, Richardson sweeps.

Exercises the overlapped 4-step SpMV (paper Section 2.2) the way a solver
does — many products against evolving vectors — and checks determinism and
equivalence between the distributed formats.
"""

import numpy as np
import pytest

from repro.comm.spmd import run_spmd
from repro.mat.mpi_aij import MPIAij
from repro.mat.mpi_sell import MPISell
from repro.pde.problems import gray_scott_jacobian
from repro.vec.mpi_vec import MPIVec


@pytest.fixture(scope="module")
def operator():
    return gray_scott_jacobian(8)  # 128 unknowns, 10 nnz/row


class TestRepeatedProducts:
    def test_power_iteration_matches_sequential(self, operator):
        """Ten chained products: errors would compound and surface."""
        n = operator.shape[0]
        x0 = np.random.default_rng(0).standard_normal(n)

        seq = x0.copy()
        for _ in range(10):
            seq = operator.multiply(seq)
            seq /= np.linalg.norm(seq)

        def prog(comm):
            a = MPIAij.from_global_csr(comm, operator)
            x = MPIVec.from_global(comm, a.layout, x0)
            for _ in range(10):
                y = a.multiply(x)
                y.scale(1.0 / y.norm("2"))
                x = y
            return x.to_global()

        for result in run_spmd(3, prog):
            assert np.allclose(result, seq, atol=1e-12)

    def test_parallel_richardson_matches_sequential(self, operator):
        """A hand-rolled distributed Jacobi-Richardson iteration."""
        n = operator.shape[0]
        b = np.random.default_rng(1).standard_normal(n)
        inv_diag = 1.0 / operator.diagonal()

        seq = np.zeros(n)
        for _ in range(15):
            seq = seq + 0.8 * inv_diag * (b - operator.multiply(seq))

        def prog(comm):
            a = MPIAij.from_global_csr(comm, operator)
            start, end = a.layout.range_of(comm.rank)
            local_inv_diag = inv_diag[start:end]
            bv = MPIVec.from_global(comm, a.layout, b)
            x = MPIVec(comm, a.layout)
            for _ in range(15):
                r = a.multiply(x)
                r.scale(-1.0)
                r.axpy(1.0, bv)
                x.local.array += 0.8 * local_inv_diag * r.local.array
            return x.to_global()

        for result in run_spmd(4, prog):
            assert np.allclose(result, seq, atol=1e-12)

    def test_sell_and_aij_agree_under_repetition(self, operator):
        x0 = np.random.default_rng(2).standard_normal(operator.shape[0])

        def prog(comm):
            aij = MPIAij.from_global_csr(comm, operator)
            sell = MPISell.from_mpiaij(aij)
            xa = MPIVec.from_global(comm, aij.layout, x0)
            xs = MPIVec.from_global(comm, sell.layout, x0)
            for _ in range(5):
                xa = aij.multiply(xa)
                xs = sell.multiply(xs)
            return np.abs(xa.to_global() - xs.to_global()).max()

        assert max(run_spmd(3, prog)) < 1e-9

    def test_results_are_identical_across_rank_counts(self, operator):
        """Determinism: the partition must not change the answer beyond
        floating-point reordering in the off-diagonal accumulation."""
        x = np.random.default_rng(3).standard_normal(operator.shape[0])
        expected = operator.multiply(x)

        def prog(comm):
            a = MPIAij.from_global_csr(comm, operator)
            xv = MPIVec.from_global(comm, a.layout, x)
            return a.multiply(xv).to_global()

        for size in (1, 2, 4):
            for result in run_spmd(size, prog):
                assert np.allclose(result, expected, atol=1e-12)


class TestCommunicationVolume:
    def test_ghost_traffic_matches_the_boundary_size(self, operator):
        """A banded matrix split by rows needs only the stencil boundary."""
        from repro.comm.communicator import World

        world = World(2)

        def prog(comm):
            a = MPIAij.from_global_csr(comm, operator)
            x = MPIVec.from_global(
                comm, a.layout, np.ones(operator.shape[0])
            )
            a.multiply(x)
            return a.garray.size

        ghost_counts = run_spmd(2, prog, world=world)
        # Each rank needs two boundary bands (periodic wrap): far fewer
        # entries than the full remote half of the vector.
        n_remote = operator.shape[0] // 2
        assert all(0 < g < n_remote for g in ghost_counts)
        assert world.stats.messages > 0
