"""End-to-end Gray-Scott runs through the full TS->SNES->KSP->MG stack.

This is the paper's experiment in miniature: the simulation of Section 7
with every matrix format plugged into the same solver configuration, plus
the properties that justify the experimental design (grid-size-insensitive
iteration counts, format-independent trajectories).
"""

import numpy as np
import pytest

from repro.core.sell import SellMat
from repro.ksp import GMRES, JacobiPC, MGPC, ThetaMethod
from repro.mat.baij import BaijMat
from repro.pde import Grid2D, GrayScottProblem


def make_ts(problem, operator_wrapper=None, levels=None, collected=None):
    grid = problem.grid

    def ksp_factory():
        if levels is None:
            pc = JacobiPC()
        else:
            pc = MGPC(grids=grid.hierarchy(levels))
            if collected is not None:
                collected.append(pc)
        return GMRES(pc=pc, rtol=1e-8, restart=30)

    return ThetaMethod(
        rhs=problem.rhs,
        jacobian=problem.jacobian,
        ksp_factory=ksp_factory,
        operator_wrapper=operator_wrapper,
        dt=1.0,
    )


@pytest.fixture(scope="module")
def reference_run():
    """Three Crank-Nicolson steps with the default CSR operator."""
    problem = GrayScottProblem(Grid2D(16, 16, dof=2))
    ts = make_ts(problem)
    return problem, ts.integrate(problem.initial_state(), 3)


class TestFormatEquivalence:
    def test_sell_operator_reproduces_the_csr_trajectory(self, reference_run):
        """The headline correctness claim: -dm_mat_type sell changes
        performance, not results."""
        problem, reference = reference_run
        ts = make_ts(
            problem, operator_wrapper=lambda m: SellMat.from_csr(m.to_csr())
        )
        sell_run = ts.integrate(problem.initial_state(), 3)
        diff = np.abs(sell_run.final_state - reference.final_state).max()
        assert diff < 1e-10

    def test_baij_operator_reproduces_the_csr_trajectory(self, reference_run):
        problem, reference = reference_run
        ts = make_ts(
            problem, operator_wrapper=lambda m: BaijMat.from_csr(m.to_csr(), 2)
        )
        baij_run = ts.integrate(problem.initial_state(), 3)
        diff = np.abs(baij_run.final_state - reference.final_state).max()
        assert diff < 1e-10

    def test_sorted_sell_also_reproduces_the_trajectory(self, reference_run):
        problem, reference = reference_run
        ts = make_ts(
            problem,
            operator_wrapper=lambda m: SellMat.from_csr(m.to_csr(), 8, sigma=16),
        )
        run = ts.integrate(problem.initial_state(), 3)
        assert np.abs(run.final_state - reference.final_state).max() < 1e-10


class TestSolverBehaviour:
    def test_solution_stays_physical(self, reference_run):
        """Concentrations remain in [0, ~1.2] over the integration."""
        _, reference = reference_run
        w = reference.final_state
        assert np.all(np.isfinite(w))
        assert w.min() > -1e-6
        assert w.max() < 1.5

    def test_pattern_starts_developing(self, reference_run):
        """The seeded square must evolve, not decay to the trivial state."""
        problem, reference = reference_run
        u, v = problem.split(reference.final_state)
        assert v.max() > 0.05

    def test_newton_converges_in_a_few_iterations(self, reference_run):
        _, reference = reference_run
        for s in reference.stats:
            assert s.newton_iterations <= 4

    def test_multigrid_iteration_counts_are_resolution_insensitive(self):
        """Section 7: multigrid avoids 'the typical increase in the number
        of iterations as the grid is refined'."""
        linear_its = {}
        for n in (16, 32):
            problem = GrayScottProblem(Grid2D(n, n, dof=2))
            ts = make_ts(problem, levels=3)
            result = ts.integrate(problem.initial_state(), 2)
            linear_its[n] = result.total_linear_iterations
        assert abs(linear_its[32] - linear_its[16]) <= 4

    def test_mg_levels_all_perform_matvecs(self):
        collected = []
        problem = GrayScottProblem(Grid2D(16, 16, dof=2))
        ts = make_ts(problem, levels=3, collected=collected)
        ts.integrate(problem.initial_state(), 1)
        totals = [0, 0, 0]
        for pc in collected:
            for lvl, c in enumerate(pc.matvec_counts()):
                totals[lvl] += c
        assert all(t > 0 for t in totals)

    def test_jacobian_rebuilt_every_newton_iteration(self, reference_run):
        """Section 7: 'the Jacobian matrix needs to be updated at each
        Newton iteration'."""
        _, reference = reference_run
        for s in reference.stats:
            assert s.jacobian_builds == s.newton_iterations
