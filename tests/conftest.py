"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mat.aij import AijMat


def make_random_csr(
    m: int, n: int | None = None, density: float = 0.2, seed: int = 0
) -> AijMat:
    """A reproducible random CSR matrix (may contain empty rows)."""
    n = m if n is None else n
    rng = np.random.default_rng(seed)
    mask = rng.random((m, n)) < density
    dense = np.where(mask, rng.standard_normal((m, n)), 0.0)
    return AijMat.from_dense(dense)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator per test."""
    return np.random.default_rng(42)


@pytest.fixture
def small_csr() -> AijMat:
    """A small random square CSR matrix with irregular rows."""
    return make_random_csr(23, density=0.25, seed=7)


@pytest.fixture
def gray_scott_small() -> AijMat:
    """The Gray-Scott Crank-Nicolson operator on a 8x8 grid (128 rows)."""
    from repro.pde.problems import gray_scott_jacobian

    return gray_scott_jacobian(8)
