"""MatSetValues / preallocation / assembly semantics."""

import numpy as np
import pytest

from repro.mat.assembly import InsertMode, MatAssembler, PreallocationError


class TestSetValue:
    def test_add_mode_accumulates(self):
        asm = MatAssembler((2, 2))
        asm.set_value(0, 0, 1.0, InsertMode.ADD)
        asm.set_value(0, 0, 2.5, InsertMode.ADD)
        assert asm.assemble().to_dense()[0, 0] == 3.5

    def test_insert_mode_overwrites(self):
        asm = MatAssembler((2, 2))
        asm.set_value(0, 0, 1.0, InsertMode.ADD)
        asm.set_value(0, 0, 9.0, InsertMode.INSERT)
        assert asm.assemble().to_dense()[0, 0] == 9.0

    def test_add_after_insert_accumulates_on_top(self):
        asm = MatAssembler((2, 2))
        asm.set_value(1, 1, 5.0, InsertMode.INSERT)
        asm.set_value(1, 1, 2.0, InsertMode.ADD)
        assert asm.assemble().to_dense()[1, 1] == 7.0

    def test_out_of_range_rejected(self):
        asm = MatAssembler((2, 3))
        with pytest.raises(IndexError):
            asm.set_value(2, 0, 1.0)
        with pytest.raises(IndexError):
            asm.set_value(0, 3, 1.0)

    def test_explicit_zeros_are_stored(self):
        """PETSc keeps structural zeros (stencil pattern stability)."""
        asm = MatAssembler((2, 2))
        asm.set_value(0, 1, 0.0)
        assert asm.assemble().nnz == 1


class TestSetValuesBlock:
    def test_dense_logical_block(self):
        asm = MatAssembler((4, 4))
        asm.set_values(
            np.array([1, 2]), np.array([0, 3]), np.array([[1.0, 2.0], [3.0, 4.0]])
        )
        dense = asm.assemble().to_dense()
        assert dense[1, 0] == 1.0 and dense[1, 3] == 2.0
        assert dense[2, 0] == 3.0 and dense[2, 3] == 4.0

    def test_block_shape_validated(self):
        asm = MatAssembler((4, 4))
        with pytest.raises(ValueError):
            asm.set_values(np.array([0]), np.array([0, 1]), np.zeros((2, 2)))


class TestPreallocation:
    def test_within_budget_no_mallocs(self):
        asm = MatAssembler((3, 3), nnz_per_row=2)
        asm.set_value(0, 0, 1.0)
        asm.set_value(0, 1, 1.0)
        assert asm.stats.mallocs_beyond_preallocation == 0

    def test_overflow_is_counted(self):
        asm = MatAssembler((3, 3), nnz_per_row=1)
        asm.set_value(0, 0, 1.0)
        asm.set_value(0, 1, 1.0)
        asm.set_value(0, 2, 1.0)
        assert asm.stats.mallocs_beyond_preallocation == 2

    def test_strict_mode_raises_like_new_nonzero_error(self):
        asm = MatAssembler((3, 3), nnz_per_row=1, strict_preallocation=True)
        asm.set_value(0, 0, 1.0)
        with pytest.raises(PreallocationError):
            asm.set_value(0, 1, 1.0)

    def test_per_row_preallocation(self):
        asm = MatAssembler((2, 4), nnz_per_row=np.array([1, 3]))
        asm.set_value(1, 0, 1.0)
        asm.set_value(1, 1, 1.0)
        asm.set_value(1, 2, 1.0)
        assert asm.stats.mallocs_beyond_preallocation == 0

    def test_per_row_preallocation_shape_checked(self):
        with pytest.raises(ValueError):
            MatAssembler((2, 2), nnz_per_row=np.array([1, 2, 3]))


class TestAssembly:
    def test_assemble_is_cached_until_new_values(self):
        asm = MatAssembler((2, 2))
        asm.set_value(0, 0, 1.0)
        a = asm.assemble()
        assert asm.assemble() is a
        asm.set_value(1, 1, 2.0)
        assert asm.assemble() is not a

    def test_empty_assembly(self):
        a = MatAssembler((3, 2)).assemble()
        assert a.shape == (3, 2)
        assert a.nnz == 0

    def test_entries_counted(self):
        asm = MatAssembler((2, 2))
        asm.set_values(np.array([0, 1]), np.array([0, 1]), np.eye(2))
        assert asm.stats.entries_set == 4

    def test_five_point_stencil_assembly_matches_direct(self):
        """Assemble a small Laplacian entry by entry and compare."""
        from repro.pde import Grid2D, laplacian_csr

        grid = Grid2D(4, 4, dof=1)
        direct = laplacian_csr(grid)
        asm = MatAssembler((16, 16), nnz_per_row=5, strict_preallocation=True)
        h2 = grid.hx * grid.hx
        for j in range(4):
            for i in range(4):
                row = grid.point_index(i, j)
                asm.set_value(row, row, -4.0 / h2)
                for ni, nj in grid.neighbors(i, j):
                    asm.set_value(row, grid.point_index(ni, nj), 1.0 / h2)
        assert asm.assemble().equal(direct, tol=1e-12)
