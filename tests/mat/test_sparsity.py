"""Sparsity statistics driving the format design decisions."""

import numpy as np
import pytest

from repro.mat.aij import AijMat
from repro.mat.sparsity import (
    ellpack_padding,
    locality_span,
    padding_ratio,
    profile,
    sliced_padding,
)
from repro.pde.problems import gray_scott_jacobian, irregular_rows

from ..conftest import make_random_csr


class TestProfile:
    def test_regular_matrix(self):
        csr = gray_scott_jacobian(8)
        p = profile(csr)
        assert p.is_regular
        assert p.min_row == p.max_row == 10
        assert p.std_row == 0.0

    def test_irregular_matrix(self):
        csr = irregular_rows(64, min_len=1, max_len=20, seed=1)
        p = profile(csr)
        assert not p.is_regular
        assert p.min_row >= 1
        assert p.max_row <= 20
        assert p.nnz == csr.nnz

    def test_empty_matrix(self):
        empty = AijMat.from_coo((0, 0), np.array([]), np.array([]), np.array([]))
        p = profile(empty)
        assert p.nnz == 0 and p.mean_row == 0.0


class TestPadding:
    def test_ellpack_padding_on_a_known_case(self):
        # Rows of length 3, 1, 2 -> width 3 -> padding 3*3 - 6 = 3.
        csr = AijMat.from_coo(
            (3, 3),
            np.array([0, 0, 0, 1, 2, 2]),
            np.array([0, 1, 2, 0, 0, 1]),
            np.ones(6),
        )
        assert ellpack_padding(csr) == 3

    def test_slice_height_one_never_pads(self):
        """C=1 degenerates to CSR (paper Section 2.5)."""
        csr = irregular_rows(50, max_len=20, seed=2)
        assert sliced_padding(csr, 1) == 0
        assert padding_ratio(csr, 1) == 0.0

    def test_full_height_equals_ellpack(self):
        csr = make_random_csr(16, density=0.3, seed=0)
        assert sliced_padding(csr, 16) == ellpack_padding(csr)

    def test_padding_grows_with_slice_height(self):
        csr = irregular_rows(128, seed=3)
        pads = [sliced_padding(csr, c) for c in (1, 2, 4, 8, 16)]
        assert all(b >= a for a, b in zip(pads, pads[1:], strict=False))

    def test_sigma_sorting_reduces_padding(self):
        """Paper Section 5.4: sorting shrinks padded zeros."""
        csr = irregular_rows(256, seed=4)
        unsorted = sliced_padding(csr, 8, sigma=1)
        windowed = sliced_padding(csr, 8, sigma=64)
        assert windowed < unsorted

    def test_larger_windows_pad_no_more(self):
        csr = irregular_rows(256, seed=4)
        pads = [sliced_padding(csr, 8, sigma) for sigma in (1, 8, 32, 128, 256)]
        assert all(b <= a for a, b in zip(pads, pads[1:], strict=False))

    def test_regular_matrix_never_pads(self):
        csr = gray_scott_jacobian(8)
        assert sliced_padding(csr, 8) == 0

    def test_invalid_parameters(self):
        csr = make_random_csr(8)
        with pytest.raises(ValueError):
            sliced_padding(csr, 0)
        with pytest.raises(ValueError):
            sliced_padding(csr, 8, sigma=0)


class TestLocality:
    def test_identity_order_of_banded_matrix_is_tight(self):
        csr = gray_scott_jacobian(8)
        natural = locality_span(csr)
        shuffled = locality_span(
            csr, np.random.default_rng(0).permutation(csr.shape[0])
        )
        assert natural < shuffled

    def test_tiny_matrices(self):
        one = make_random_csr(1, density=1.0)
        assert locality_span(one) == 0.0
