"""Matrix Market I/O."""

import numpy as np
import pytest

from repro.mat.io import MatrixMarketError, dumps, loads, read_matrix_market, write_matrix_market

from ..conftest import make_random_csr

GENERAL = """%%MatrixMarket matrix coordinate real general
% a comment line
3 4 4
1 1 2.5
2 3 -1.0
3 4 7.0
3 1 0.5
"""

SYMMETRIC = """%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 2.0
2 1 -1.0
3 2 -1.0
3 3 2.0
"""

PATTERN = """%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
"""


class TestRead:
    def test_general_real(self):
        a = loads(GENERAL)
        assert a.shape == (3, 4)
        dense = a.to_dense()
        assert dense[0, 0] == 2.5
        assert dense[1, 2] == -1.0
        assert dense[2, 3] == 7.0
        assert dense[2, 0] == 0.5
        assert a.nnz == 4

    def test_symmetric_expands_the_mirror_triangle(self):
        a = loads(SYMMETRIC)
        dense = a.to_dense()
        assert np.allclose(dense, dense.T)
        assert dense[0, 1] == -1.0 and dense[1, 0] == -1.0
        assert dense[0, 0] == 2.0  # diagonal not duplicated
        assert a.nnz == 6

    def test_pattern_reads_as_ones(self):
        a = loads(PATTERN)
        assert np.array_equal(a.to_dense(), [[0.0, 1.0], [1.0, 0.0]])

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(GENERAL)
        a = read_matrix_market(path)
        assert a.nnz == 4


class TestReadErrors:
    def test_missing_header(self):
        with pytest.raises(MatrixMarketError, match="header"):
            loads("3 3 1\n1 1 5.0\n")

    def test_unsupported_layout(self):
        with pytest.raises(MatrixMarketError, match="coordinate"):
            loads("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")

    def test_unsupported_field(self):
        with pytest.raises(MatrixMarketError, match="complex"):
            loads("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n")

    def test_truncated_entries(self):
        with pytest.raises(MatrixMarketError, match="ended"):
            loads("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n")

    def test_out_of_range_entry(self):
        with pytest.raises(MatrixMarketError, match="out of range"):
            loads("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n")

    def test_bad_size_line(self):
        with pytest.raises(MatrixMarketError, match="size"):
            loads("%%MatrixMarket matrix coordinate real general\nnope\n")


class TestWrite:
    def test_round_trip_preserves_the_matrix(self, tmp_path):
        a = make_random_csr(13, 9, density=0.3, seed=4)
        path = tmp_path / "rt.mtx"
        write_matrix_market(a, path, comment="round trip")
        back = read_matrix_market(path)
        assert back.equal(a, tol=1e-14)

    def test_dumps_loads_round_trip_for_sell(self):
        from repro.core.sell import SellMat

        csr = make_random_csr(16, 16, density=0.25, seed=5)
        sell = SellMat.from_csr(csr)
        back = loads(dumps(sell))
        assert back.equal(csr, tol=1e-14)

    def test_comment_lines_are_escaped(self):
        a = make_random_csr(3, 3, density=0.5, seed=6)
        text = dumps(a, comment="line one\nline two")
        assert "% line one" in text and "% line two" in text
        assert loads(text).equal(a, tol=1e-14)
