"""AIJ/CSR: the reference format everything else converts through."""

import numpy as np
import pytest

from repro.mat.aij import AijMat
from repro.mat.base import MatrixShapeError

from ..conftest import make_random_csr


class TestConstruction:
    def test_from_coo_sums_duplicates(self):
        a = AijMat.from_coo(
            (2, 2),
            np.array([0, 0, 1]),
            np.array([1, 1, 0]),
            np.array([2.0, 3.0, 4.0]),
        )
        dense = a.to_dense()
        assert dense[0, 1] == 5.0
        assert dense[1, 0] == 4.0
        assert a.nnz == 2

    def test_from_coo_keeps_duplicates_when_asked(self):
        a = AijMat.from_coo(
            (2, 2),
            np.array([0, 0]),
            np.array([1, 1]),
            np.array([2.0, 3.0]),
            sum_duplicates=False,
        )
        assert a.nnz == 2
        assert a.to_dense()[0, 1] == 5.0  # dense accumulation still sums

    def test_columns_are_sorted_within_rows(self):
        a = AijMat.from_coo(
            (1, 5),
            np.array([0, 0, 0]),
            np.array([4, 0, 2]),
            np.array([1.0, 2.0, 3.0]),
        )
        assert np.array_equal(a.colidx, [0, 2, 4])

    def test_from_dense_round_trip(self, rng):
        dense = rng.standard_normal((7, 9)) * (rng.random((7, 9)) < 0.3)
        a = AijMat.from_dense(dense)
        assert np.allclose(a.to_dense(), dense)

    def test_storage_is_aligned(self, small_csr):
        assert small_csr.val.ctypes.data % 64 == 0
        assert small_csr.colidx.ctypes.data % 64 == 0

    def test_inconsistent_arrays_rejected(self):
        with pytest.raises(ValueError):
            AijMat((2, 2), np.array([0, 1]), np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            AijMat((2, 2), np.array([0, 2, 1]), np.array([0, 1]), np.ones(2))

    def test_out_of_range_column_rejected(self):
        with pytest.raises(IndexError):
            AijMat((2, 2), np.array([0, 1, 1]), np.array([5]), np.array([1.0]))

    def test_scipy_round_trip(self, small_csr):
        back = AijMat.from_scipy(small_csr.to_scipy())
        assert back.equal(small_csr, tol=0.0)


class TestMultiply:
    def test_matches_dense(self, rng):
        for seed in range(5):
            a = make_random_csr(15, 11, density=0.3, seed=seed)
            x = rng.standard_normal(11)
            assert np.allclose(a.multiply(x), a.to_dense() @ x)

    def test_empty_rows_produce_zeros(self):
        a = AijMat.from_coo((4, 4), np.array([1]), np.array([2]), np.array([3.0]))
        y = a.multiply(np.ones(4))
        assert np.array_equal(y, [0.0, 3.0, 0.0, 0.0])

    def test_empty_matrix(self):
        a = AijMat.from_coo((3, 3), np.array([]), np.array([]), np.array([]))
        assert np.array_equal(a.multiply(np.ones(3)), np.zeros(3))

    def test_output_buffer_is_reused(self, small_csr, rng):
        x = rng.standard_normal(small_csr.shape[1])
        y = np.empty(small_csr.shape[0])
        out = small_csr.multiply(x, y)
        assert out is y

    def test_nonconforming_input_raises(self, small_csr):
        with pytest.raises(MatrixShapeError):
            small_csr.multiply(np.ones(small_csr.shape[1] + 1))
        with pytest.raises(MatrixShapeError):
            small_csr.multiply(
                np.ones(small_csr.shape[1]), np.ones(small_csr.shape[0] + 2)
            )


class TestHelpers:
    def test_row_lengths(self):
        a = AijMat.from_coo(
            (3, 3), np.array([0, 0, 2]), np.array([0, 1, 2]), np.ones(3)
        )
        assert np.array_equal(a.row_lengths(), [2, 0, 1])

    def test_get_row(self, small_csr):
        cols, vals = small_csr.get_row(3)
        lo, hi = small_csr.rowptr[3], small_csr.rowptr[4]
        assert cols.shape[0] == hi - lo

    def test_diagonal(self, rng):
        dense = np.diag(np.arange(1.0, 5.0))
        dense[0, 3] = 7.0
        a = AijMat.from_dense(dense)
        assert np.array_equal(a.diagonal(), [1.0, 2.0, 3.0, 4.0])

    def test_diagonal_with_missing_entries(self):
        a = AijMat.from_coo((3, 3), np.array([0]), np.array([1]), np.array([5.0]))
        assert np.array_equal(a.diagonal(), np.zeros(3))

    def test_transpose(self, small_csr, rng):
        x = rng.standard_normal(small_csr.shape[0])
        t = small_csr.transpose()
        assert np.allclose(t.multiply(x), small_csr.to_dense().T @ x)

    def test_permute_rows(self, rng):
        a = make_random_csr(6, density=0.4, seed=3)
        perm = np.array([5, 3, 1, 0, 2, 4])
        p = a.permute_rows(perm)
        assert np.allclose(p.to_dense(), a.to_dense()[perm])

    def test_permute_rows_validates_the_permutation(self, small_csr):
        with pytest.raises(ValueError):
            small_csr.permute_rows(np.zeros(small_csr.shape[0], dtype=np.int64))

    def test_memory_bytes_formula(self, small_csr):
        """12 bytes/nnz (8 value + 4 index) + 8 bytes per rowptr entry."""
        m = small_csr.shape[0]
        assert small_csr.memory_bytes() == 12 * small_csr.nnz + 8 * (m + 1)

    def test_equal_detects_value_differences(self, small_csr):
        other = AijMat(
            small_csr.shape, small_csr.rowptr, small_csr.colidx, small_csr.val
        )
        assert small_csr.equal(other)
        other.val[0] += 1e-3
        assert not small_csr.equal(other, tol=1e-9)
        assert small_csr.equal(other, tol=1e-2)
