"""Distributed matrices: splitting, compression, overlapped SpMV."""

import numpy as np
import pytest

from repro.comm.partition import RowLayout
from repro.comm.spmd import run_spmd
from repro.mat.aij import AijMat
from repro.mat.mpi_aij import CompressedCsr, MPIAij, split_local_rows
from repro.mat.mpi_sell import MPISell
from repro.pde.problems import gray_scott_jacobian
from repro.vec.mpi_vec import MPIVec

from ..conftest import make_random_csr


class TestSplitLocalRows:
    def test_diag_block_covers_owned_columns(self):
        csr = make_random_csr(12, density=0.4, seed=1)
        diag, off, garray = split_local_rows(csr, (4, 8), (4, 8))
        assert diag.shape == (4, 4)
        assert off.shape == (4, garray.size)
        # diag + expanded off-diag reproduce the original row block.
        dense = csr.to_dense()[4:8]
        recon = np.zeros_like(dense)
        recon[:, 4:8] = diag.to_dense()
        if garray.size:
            recon[:, garray] += off.to_dense()
        assert np.allclose(recon, dense)

    def test_garray_is_sorted_unique(self):
        csr = make_random_csr(20, density=0.3, seed=2)
        _, _, garray = split_local_rows(csr, (0, 7), (0, 7))
        assert np.all(np.diff(garray) > 0)


class TestCompressedCsr:
    def test_only_nonzero_rows_are_stored(self):
        csr = AijMat.from_coo(
            (6, 3), np.array([1, 4, 4]), np.array([0, 1, 2]), np.ones(3)
        )
        comp = CompressedCsr.from_csr(csr)
        assert np.array_equal(comp.nzrows, [1, 4])
        assert comp.inner.shape == (2, 3)
        assert comp.nnz == 3

    def test_multiply_add_accumulates_into_existing_values(self):
        csr = AijMat.from_coo((4, 2), np.array([2]), np.array([1]), np.array([3.0]))
        comp = CompressedCsr.from_csr(csr)
        y = np.ones(4)
        comp.multiply_add(np.array([0.0, 2.0]), y)
        assert np.array_equal(y, [1.0, 1.0, 7.0, 1.0])

    def test_expand_round_trips(self):
        csr = make_random_csr(9, 5, density=0.2, seed=3)
        assert CompressedCsr.from_csr(csr).expand().equal(csr, tol=0.0)

    def test_conformance_validation(self):
        csr = make_random_csr(4, 4, density=0.5, seed=0)
        comp = CompressedCsr.from_csr(csr)
        with pytest.raises(ValueError):
            comp.multiply_add(np.zeros(4), np.zeros(99))


class TestParallelSpMV:
    @pytest.mark.parametrize("size", [1, 2, 3, 4])
    def test_mpiaij_matches_sequential(self, size):
        csr = make_random_csr(25, density=0.2, seed=5)
        x = np.random.default_rng(6).standard_normal(25)
        expected = csr.multiply(x)

        def prog(comm):
            a = MPIAij.from_global_csr(comm, csr)
            xv = MPIVec.from_global(comm, a.layout, x)
            return a.multiply(xv).to_global()

        for result in run_spmd(size, prog):
            assert np.allclose(result, expected)

    def test_mpisell_matches_sequential_on_gray_scott(self):
        csr = gray_scott_jacobian(8)
        x = np.random.default_rng(7).standard_normal(csr.shape[0])
        expected = csr.multiply(x)

        def prog(comm):
            a = MPISell.from_global_csr(comm, csr)
            xv = MPIVec.from_global(comm, a.layout, x)
            return a.multiply(xv).to_global()

        for result in run_spmd(4, prog):
            assert np.allclose(result, expected)

    def test_sell_conversion_preserves_the_ghost_set(self):
        """Section 5.5: padded column indices are copied from local
        nonzeros, so converting to SELL must not widen communication."""
        csr = gray_scott_jacobian(8)

        def prog(comm):
            aij = MPIAij.from_global_csr(comm, csr)
            sell = MPISell.from_mpiaij(aij)
            return (
                np.array_equal(aij.garray, sell.garray),
                aij.scatter.recv_peers == sell.scatter.recv_peers,
            )

        for same_garray, same_peers in run_spmd(3, prog):
            assert same_garray and same_peers

    def test_nnz_global_sums_over_ranks(self):
        csr = make_random_csr(18, density=0.3, seed=8)

        def prog(comm):
            return MPIAij.from_global_csr(comm, csr).nnz_global

        assert run_spmd(3, prog) == [csr.nnz] * 3

    def test_distributed_diagonal(self):
        csr = make_random_csr(10, density=0.5, seed=9)

        def prog(comm):
            return MPIAij.from_global_csr(comm, csr).diagonal().to_global()

        for d in run_spmd(2, prog):
            assert np.allclose(d, csr.diagonal())

    def test_uneven_layouts_are_supported(self):
        csr = make_random_csr(11, density=0.4, seed=10)
        x = np.random.default_rng(11).standard_normal(11)
        layout = RowLayout.from_local_sizes([7, 1, 3])

        def prog(comm):
            a = MPIAij.from_global_csr(comm, csr, layout)
            xv = MPIVec.from_global(comm, layout, x)
            return a.multiply(xv).to_global()

        for result in run_spmd(3, prog):
            assert np.allclose(result, csr.multiply(x))

    def test_rectangular_matrices_rejected(self):
        csr = make_random_csr(6, 5, density=0.5, seed=0)

        def prog(comm):
            MPIAij.from_global_csr(comm, csr)

        from repro.comm.spmd import SpmdError

        with pytest.raises(SpmdError):
            run_spmd(2, prog)

    def test_local_memory_accounting(self):
        csr = gray_scott_jacobian(8)

        def prog(comm):
            a = MPIAij.from_global_csr(comm, csr)
            return a.memory_bytes_local() > 0

        assert all(run_spmd(2, prog))
