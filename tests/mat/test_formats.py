"""Alternative sequential formats: ELLPACK(-R), BAIJ, CSRPerm, hybrid, COO.

Every format must (a) multiply identically to the CSR reference and
(b) round-trip to CSR losslessly; beyond that, each has format-specific
structure worth pinning down.
"""

import numpy as np
import pytest

from repro.mat.aij import AijMat
from repro.mat.aij_perm import AijPermMat
from repro.mat.baij import BaijMat
from repro.mat.coo import CooMat
from repro.mat.ellpack import EllpackMat
from repro.mat.hybrid import HybridMat

from ..conftest import make_random_csr


@pytest.fixture(params=[0, 1, 2])
def csr(request) -> AijMat:
    return make_random_csr(22, density=0.25, seed=request.param)


def x_for(mat) -> np.ndarray:
    return np.random.default_rng(99).standard_normal(mat.shape[1])


class TestEllpack:
    def test_multiply_matches_csr(self, csr):
        ell = EllpackMat.from_csr(csr)
        x = x_for(csr)
        assert np.allclose(ell.multiply(x), csr.multiply(x))

    def test_round_trip(self, csr):
        assert EllpackMat.from_csr(csr).to_csr().equal(csr, tol=0.0)

    def test_width_is_the_longest_row(self, csr):
        ell = EllpackMat.from_csr(csr)
        assert ell.width == int(csr.row_lengths().max())

    def test_padding_count(self, csr):
        ell = EllpackMat.from_csr(csr)
        lengths = csr.row_lengths()
        assert ell.padded_entries == int(
            lengths.size * lengths.max() - lengths.sum()
        )

    def test_storage_is_column_major(self, csr):
        """Paper Section 2.5: elements stored column by column."""
        ell = EllpackMat.from_csr(csr)
        assert ell.val.flags["F_CONTIGUOUS"]

    def test_ellpack_r_multiply_uses_rlen_but_matches(self, csr):
        ell = EllpackMat.from_csr(csr)
        x = x_for(csr)
        assert np.allclose(ell.multiply_r(x), ell.multiply(x))

    def test_padded_column_indices_stay_in_range(self, csr):
        ell = EllpackMat.from_csr(csr)
        assert ell.colidx.max() < csr.shape[1]
        assert ell.colidx.min() >= 0

    def test_memory_includes_padding_and_rlen(self, csr):
        ell = EllpackMat.from_csr(csr)
        assert ell.memory_bytes() == ell.val.size * 12 + csr.shape[0] * 8

    def test_inconsistent_rlen_rejected(self):
        with pytest.raises(ValueError):
            EllpackMat((2, 2), np.zeros((2, 1)), np.zeros((2, 1), dtype=np.int32),
                       np.array([2, 0]))


class TestBaij:
    @pytest.mark.parametrize("bs", [2, 4])
    def test_multiply_matches_dense(self, bs, rng):
        m = 8 * bs
        dense = rng.standard_normal((m, m)) * (rng.random((m, m)) < 0.2)
        a = AijMat.from_dense(dense)
        b = BaijMat.from_csr(a, bs)
        x = rng.standard_normal(m)
        assert np.allclose(b.multiply(x), dense @ x)

    def test_round_trip_without_explicit_zeros(self, rng):
        dense = rng.standard_normal((12, 12)) * (rng.random((12, 12)) < 0.3)
        a = AijMat.from_dense(dense)
        assert BaijMat.from_csr(a, 2).to_csr().equal(a, tol=0.0)

    def test_block_padding_counts_as_stored(self):
        """A single scalar entry stores a whole bs x bs block."""
        a = AijMat.from_coo((4, 4), np.array([0]), np.array([0]), np.array([1.0]))
        b = BaijMat.from_csr(a, 2)
        assert b.nblocks == 1
        assert b.nnz == 4  # the full 2x2 block

    def test_indivisible_dimensions_rejected(self):
        a = make_random_csr(9, density=0.3)
        with pytest.raises(ValueError):
            BaijMat.from_csr(a, 2)

    def test_gray_scott_has_natural_2x2_blocks(self, gray_scott_small):
        """Section 7: 'the matrix consists of small 2x2 blocks'."""
        b = BaijMat.from_csr(gray_scott_small, 2)
        m = gray_scott_small.shape[0]
        # 5 stencil blocks per block row, no extra fill: the 10 stored
        # scalars per row already are 5 complete 2x2 blocks.
        assert b.nblocks == 5 * (m // 2)
        assert b.nnz == gray_scott_small.nnz


class TestAijPerm:
    def test_multiply_matches(self, csr):
        perm = AijPermMat.from_csr(csr)
        x = x_for(csr)
        assert np.allclose(perm.multiply(x), csr.multiply(x))

    def test_groups_partition_rows_by_length(self, csr):
        perm = AijPermMat.from_csr(csr)
        lengths = csr.row_lengths()
        seen = 0
        for g in range(perm.ngroups):
            lo, hi = perm.group_starts[g], perm.group_starts[g + 1]
            rows = perm.perm[lo:hi]
            assert np.all(lengths[rows] == perm.group_lengths[g])
            seen += hi - lo
        assert seen == csr.shape[0]

    def test_group_lengths_ascend(self, csr):
        perm = AijPermMat.from_csr(csr)
        gl = perm.group_lengths
        assert np.all(np.diff(gl) > 0)

    def test_data_is_shared_with_the_csr(self, csr):
        perm = AijPermMat.from_csr(csr)
        assert perm.to_csr() is csr

    def test_uniform_matrix_is_one_group(self, gray_scott_small):
        perm = AijPermMat.from_csr(gray_scott_small)
        assert perm.ngroups == 1
        assert perm.group_lengths[0] == 10


class TestHybrid:
    def test_multiply_matches(self, csr):
        hyb = HybridMat.from_csr(csr)
        x = x_for(csr)
        assert np.allclose(hyb.multiply(x), csr.multiply(x))

    def test_round_trip(self, csr):
        assert HybridMat.from_csr(csr).to_csr().equal(csr, tol=1e-15)

    def test_explicit_width_controls_the_split(self, csr):
        hyb = HybridMat.from_csr(csr, width=2)
        lengths = csr.row_lengths()
        expected_spill = int(np.maximum(lengths - 2, 0).sum())
        assert hyb.coo.nnz == expected_spill
        assert hyb.ell.nnz + hyb.coo.nnz == csr.nnz

    def test_width_zero_is_pure_coo(self, csr):
        hyb = HybridMat.from_csr(csr, width=0)
        assert hyb.ell.nnz == 0
        assert hyb.coo.nnz == csr.nnz
        x = x_for(csr)
        assert np.allclose(hyb.multiply(x), csr.multiply(x))

    def test_spill_fraction(self, csr):
        hyb = HybridMat.from_csr(csr, width=1)
        assert 0.0 < hyb.spill_fraction < 1.0

    def test_regular_matrix_never_spills(self, gray_scott_small):
        hyb = HybridMat.from_csr(gray_scott_small)
        assert hyb.spill_fraction == 0.0


class TestCoo:
    def test_duplicates_accumulate_in_multiply(self):
        coo = CooMat(
            (2, 2), np.array([0, 0]), np.array([1, 1]), np.array([2.0, 3.0])
        )
        assert np.array_equal(coo.multiply(np.array([0.0, 1.0])), [5.0, 0.0])

    def test_to_csr_merges_duplicates(self):
        coo = CooMat(
            (2, 2), np.array([0, 0]), np.array([1, 1]), np.array([2.0, 3.0])
        )
        assert coo.to_csr().nnz == 1

    def test_index_validation(self):
        with pytest.raises(IndexError):
            CooMat((2, 2), np.array([2]), np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            CooMat((2, 2), np.array([0]), np.array([0, 1]), np.array([1.0]))
