"""Distributed vectors over the simulated communicator."""

import numpy as np
import pytest

from repro.comm.partition import RowLayout
from repro.comm.spmd import SpmdError, run_spmd
from repro.vec.mpi_vec import MPIVec


def test_from_global_slices_the_owned_block():
    g = np.arange(10, dtype=np.float64)

    def prog(comm):
        layout = RowLayout.uniform(10, comm.size)
        v = MPIVec.from_global(comm, layout, g)
        start, end = v.owned_range
        return np.array_equal(v.local.array, g[start:end])

    assert all(run_spmd(3, prog))


def test_global_dot_and_norms_match_numpy():
    rng = np.random.default_rng(0)
    a = rng.standard_normal(17)
    b = rng.standard_normal(17)

    def prog(comm):
        layout = RowLayout.uniform(17, comm.size)
        va = MPIVec.from_global(comm, layout, a)
        vb = MPIVec.from_global(comm, layout, b)
        return (
            va.dot(vb),
            va.norm("2"),
            va.norm("1"),
            va.norm("inf"),
        )

    for dot, n2, n1, ninf in run_spmd(4, prog):
        assert dot == pytest.approx(float(a @ b))
        assert n2 == pytest.approx(float(np.linalg.norm(a)))
        assert n1 == pytest.approx(float(np.abs(a).sum()))
        assert ninf == pytest.approx(float(np.abs(a).max()))


def test_norms_are_identical_across_ranks():
    """Deterministic rank-ordered reduction: bitwise identical results."""
    rng = np.random.default_rng(1)
    a = rng.standard_normal(23)

    def prog(comm):
        layout = RowLayout.uniform(23, comm.size)
        v = MPIVec.from_global(comm, layout, a)
        return v.norm("2")

    results = run_spmd(3, prog)
    assert results[0] == results[1] == results[2]


def test_local_operations_match_sequential():
    a = np.arange(9, dtype=np.float64)
    b = np.ones(9)

    def prog(comm):
        layout = RowLayout.uniform(9, comm.size)
        va = MPIVec.from_global(comm, layout, a)
        vb = MPIVec.from_global(comm, layout, b)
        va.axpy(2.0, vb)
        va.scale(0.5)
        return va.to_global()

    for out in run_spmd(2, prog):
        assert np.allclose(out, (a + 2.0) * 0.5)


def test_to_global_concatenates_in_rank_order():
    def prog(comm):
        layout = RowLayout.uniform(6, comm.size)
        v = MPIVec(comm, layout)
        v.set(float(comm.rank))
        return v.to_global()

    out = run_spmd(3, prog)[0]
    assert np.array_equal(out, [0, 0, 1, 1, 2, 2])


def test_wrong_local_block_length_raises():
    def prog(comm):
        layout = RowLayout.uniform(10, comm.size)
        MPIVec(comm, layout, np.zeros(99))

    with pytest.raises(SpmdError):
        run_spmd(2, prog)


def test_duplicate_and_copy():
    def prog(comm):
        layout = RowLayout.uniform(8, comm.size)
        v = MPIVec.from_global(comm, layout, np.ones(8))
        d = v.duplicate()
        c = v.copy()
        c.scale(3.0)
        return float(d.norm("1")), float(v.norm("1")), float(c.norm("1"))

    for dn, vn, cn in run_spmd(2, prog):
        assert dn == 0.0 and vn == 8.0 and cn == 24.0
