"""Sequential vector operations (the Vec layer)."""

import numpy as np
import pytest

from repro.vec.vector import SeqVec


class TestConstruction:
    def test_zeroed_by_length(self):
        v = SeqVec(5)
        assert v.size == 5
        assert np.all(v.array == 0.0)

    def test_from_array_copies(self):
        src = np.arange(4, dtype=np.float64)
        v = SeqVec.from_array(src)
        src[0] = 99.0
        assert v.array[0] == 0.0

    def test_storage_is_64_byte_aligned(self):
        """Section 3.1: vectors must sit on cache-line boundaries."""
        v = SeqVec(100)
        assert v.array.ctypes.data % 64 == 0

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            SeqVec(-1)

    def test_duplicate_is_zeroed_copy_is_deep(self):
        v = SeqVec.from_array(np.ones(3))
        d = v.duplicate()
        c = v.copy()
        assert np.all(d.array == 0.0)
        c.array[0] = 5.0
        assert v.array[0] == 1.0


class TestBlas1:
    def test_set_and_scale(self):
        v = SeqVec(4)
        v.set(2.0)
        v.scale(-0.5)
        assert np.all(v.array == -1.0)

    def test_axpy(self):
        y = SeqVec.from_array(np.array([1.0, 2.0]))
        x = SeqVec.from_array(np.array([10.0, 20.0]))
        y.axpy(0.5, x)
        assert np.array_equal(y.array, [6.0, 12.0])

    def test_aypx(self):
        y = SeqVec.from_array(np.array([1.0, 2.0]))
        x = SeqVec.from_array(np.array([10.0, 20.0]))
        y.aypx(2.0, x)  # y <- x + 2y
        assert np.array_equal(y.array, [12.0, 24.0])

    def test_waxpy(self):
        w = SeqVec(2)
        x = SeqVec.from_array(np.array([1.0, 1.0]))
        y = SeqVec.from_array(np.array([5.0, 6.0]))
        w.waxpy(3.0, x, y)
        assert np.array_equal(w.array, [8.0, 9.0])

    def test_pointwise_mult(self):
        w = SeqVec(2)
        w.pointwise_mult(
            SeqVec.from_array(np.array([2.0, 3.0])),
            SeqVec.from_array(np.array([4.0, 5.0])),
        )
        assert np.array_equal(w.array, [8.0, 15.0])

    def test_dot(self):
        a = SeqVec.from_array(np.array([1.0, 2.0, 3.0]))
        b = SeqVec.from_array(np.array([4.0, 5.0, 6.0]))
        assert a.dot(b) == 32.0

    def test_norms(self):
        v = SeqVec.from_array(np.array([3.0, -4.0]))
        assert v.norm("2") == 5.0
        assert v.norm("1") == 7.0
        assert v.norm("inf") == 4.0

    def test_unknown_norm_raises(self):
        with pytest.raises(ValueError):
            SeqVec(1).norm("fro")

    def test_reciprocal_skips_zeros(self):
        v = SeqVec.from_array(np.array([2.0, 0.0, -4.0]))
        v.reciprocal()
        assert np.array_equal(v.array, [0.5, 0.0, -0.25])

    def test_nonconforming_operands_raise(self):
        with pytest.raises(ValueError):
            SeqVec(3).axpy(1.0, SeqVec(4))
        with pytest.raises(ValueError):
            SeqVec(3).dot(SeqVec(2))
