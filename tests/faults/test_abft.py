"""ABFT row checksums: no false positives, every scheduled corruption caught.

The detection sweep runs the full 16-variant kernel panel over the
record/replay structure panel (the same fixtures as
``tests/core/test_trace_replay.py``): the clean product of every variant
must verify, and a NaN or exponent bit-flip injected into any of those
products must raise :class:`SdcDetected`.
"""

import numpy as np
import pytest

from repro.core.context import ExecutionContext
from repro.core.dispatch import ALL_VARIANTS
from repro.core.sell import SellMat
from repro.faults.abft import (
    AbftChecker,
    AbftOperator,
    SdcDetected,
    checksum_vectors,
    corrupt_product,
)
from repro.faults.events import ResilienceLog, capture
from repro.faults.plan import FaultInjector, FaultPlan, FaultSpec, apply_corruption, inject
from repro.mat.aij import AijMat
from repro.pde.problems import gray_scott_jacobian

from ..core.test_trace_replay import STRUCTURES


class TestChecksumVectors:
    def test_known_small_matrix(self):
        # [[1, -2], [0, 3]]: w = A^T.1 = (1, 1), wabs = |A|^T.1 = (1, 5)
        csr = AijMat(
            (2, 2),
            np.array([0, 2, 3]),
            np.array([0, 1, 1], dtype=np.int32),
            np.array([1.0, -2.0, 3.0]),
        )
        w, wabs = checksum_vectors(csr)
        assert np.array_equal(w, [1.0, 1.0])
        assert np.array_equal(wabs, [1.0, 5.0])

    def test_sell_override_matches_the_csr_checksums(self):
        csr = gray_scott_jacobian(6)
        sell = SellMat.from_csr(csr, slice_height=8, sigma=16)
        w_csr, wabs_csr = csr.abft_checksums()
        w_sell, wabs_sell = sell.abft_checksums()
        assert np.allclose(w_csr, w_sell)
        assert np.allclose(wabs_csr, wabs_sell)


@pytest.mark.parametrize("variant_name", sorted(ALL_VARIANTS))
@pytest.mark.parametrize("structure", sorted(STRUCTURES))
def test_panel_clean_products_verify_and_corrupted_ones_are_caught(
    variant_name, structure
):
    factory, c, s = STRUCTURES[structure]
    csr = factory()
    if ALL_VARIANTS[variant_name].fmt == "BAIJ" and (
        csr.shape[0] % 2 or csr.shape[1] % 2
    ):
        pytest.skip("BAIJ(bs=2) needs even dimensions")
    x = np.random.default_rng(11).standard_normal(csr.shape[1])
    # An ABFT-enabled context verifies the product inline: a clean run
    # completing without SdcDetected is the zero-false-positive half.
    ctx = ExecutionContext(abft=True)
    meas = ctx.measure(variant_name, csr, x=x, slice_height=c, sigma=s)
    checker = AbftChecker(csr)
    checker.verify(x, meas.y)
    # The detection half: poison the largest element (whose perturbation
    # is necessarily far above the rounding-scale tolerance).
    i = int(np.argmax(np.abs(meas.y)))
    for kind in ("nan", "bitflip"):
        y = meas.y.copy()
        apply_corruption(
            FaultSpec("spmv.output", 0, kind, index=i, bit=62), y
        )
        with capture(), pytest.raises(SdcDetected):
            checker.verify(x, y)


class TestVerifyEdges:
    def test_abstains_when_the_input_is_nonfinite(self):
        csr = gray_scott_jacobian(4)
        checker = AbftChecker(csr)
        x = np.full(csr.shape[1], np.inf)
        checker.verify(x, np.full(csr.shape[0], np.nan))  # must not raise

    def test_subtolerance_flip_is_classified_provably_benign(self):
        csr = gray_scott_jacobian(4)
        checker = AbftChecker(csr)
        x = np.zeros(csr.shape[1])
        y = csr.multiply(x)  # exactly zero
        spec = FaultSpec("spmv.output", 0, "bitflip", index=0, bit=52)
        log = ResilienceLog()
        with capture(log):
            corrupt_product(spec, y, x, checker, site="spmv.output")
        assert y[0] != 0.0  # the flip did land...
        assert log.counts()["benign"] == 1  # ...but is roundoff-scale
        checker.verify(x, y)  # and indeed passes the checksum test

    def test_detection_emits_a_detected_event(self):
        csr = gray_scott_jacobian(4)
        checker = AbftChecker(csr)
        x = np.ones(csr.shape[1])
        y = csr.multiply(x)
        y[3] = np.nan
        log = ResilienceLog()
        with capture(log), pytest.raises(SdcDetected):
            checker.verify(x, y)
        (event,) = log.of("detected")
        assert (event.site, event.kind) == ("spmv.output", "abft")


class TestAbftOperator:
    def test_clean_multiply_matches_and_passes_through(self):
        csr = gray_scott_jacobian(4)
        op = AbftOperator(csr)
        x = np.ones(csr.shape[1])
        assert np.array_equal(op.multiply(x), csr.multiply(x))
        assert np.array_equal(op.diagonal(), csr.diagonal())
        assert op.to_csr() is csr.to_csr()
        assert op.shape == csr.shape

    def test_armed_injector_corruption_is_caught_in_flight(self):
        csr = gray_scott_jacobian(4)
        op = AbftOperator(csr)
        plan = FaultPlan([FaultSpec("spmv.output", 1, "nan")])
        x = np.ones(csr.shape[1])
        with capture() as log, inject(FaultInjector(plan)):
            op.multiply(x)  # call 0: clean
            with pytest.raises(SdcDetected):
                op.multiply(x)  # call 1: poisoned, caught
        assert log.counts() == {
            "injected": 1,
            "detected": 1,
            "recovered": 0,
            "degraded": 0,
            "benign": 0,
        }
