"""HealthMonitor: the solvers' shared non-finite and divergence sentinel."""

import numpy as np

from repro.faults.events import ResilienceLog, capture
from repro.faults.monitor import HealthMonitor
from repro.ksp.base import ConvergedReason


class TestHealthMonitor:
    def test_healthy_residual_passes(self):
        assert HealthMonitor().check(0.5, 1.0) is None

    def test_nan_residual_is_flagged(self):
        assert HealthMonitor().check(np.nan, 1.0) is ConvergedReason.NAN

    def test_inf_residual_is_flagged(self):
        assert HealthMonitor().check(np.inf, 1.0) is ConvergedReason.NAN

    def test_explosion_past_the_divergence_factor_is_breakdown(self):
        monitor = HealthMonitor(divergence_factor=1e3)
        assert monitor.check(999.0, 1.0) is None
        assert monitor.check(1.0e4, 1.0) is ConvergedReason.BREAKDOWN

    def test_zero_initial_residual_never_divides(self):
        assert HealthMonitor().check(1.0, 0.0) is None

    def test_flags_emit_detected_events(self):
        log = ResilienceLog()
        with capture(log):
            HealthMonitor(divergence_factor=10.0).check(np.nan, 1.0)
            HealthMonitor(divergence_factor=10.0).check(100.0, 1.0)
        events = log.of("detected")
        assert len(events) == 2
        assert all(e.site == "ksp.residual" for e in events)
