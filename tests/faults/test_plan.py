"""Fault plans and the injector: schedules, determinism, firing semantics."""

import numpy as np
import pytest

from repro.faults.events import ResilienceLog, capture
from repro.faults.plan import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    apply_corruption,
    fire,
    inject,
)

BUDGETS = {"spmv.output": 3, "comm.send@0": 2, "network.message": 1}
KINDS = {
    "spmv.output": ("bitflip", "nan"),
    "comm.send@0": ("drop", "straggle"),
    "network.message": ("straggle",),
}


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("spmv.output", 0, "gamma-ray")

    def test_negative_call_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultSpec("spmv.output", -1, "nan")


class TestApplyCorruption:
    def test_nan_poisons_the_indexed_element(self):
        y = np.arange(4.0)
        apply_corruption(FaultSpec("s", 0, "nan", index=6), y)  # 6 % 4 == 2
        assert np.isnan(y[2]) and np.isfinite(y[[0, 1, 3]]).all()

    def test_zero_clears_the_indexed_element(self):
        y = np.arange(1.0, 5.0)
        apply_corruption(FaultSpec("s", 0, "zero", index=1), y)
        assert y[1] == 0.0

    def test_bitflip_is_a_self_inverse_large_perturbation(self):
        y = np.full(3, 1.5)
        spec = FaultSpec("s", 0, "bitflip", index=0, bit=62)
        apply_corruption(spec, y)
        # 1.5 with its top exponent bit flipped is NaN — still "far from"
        # the true value in the sense the checksum tolerance measures.
        assert not abs(y[0] - 1.5) <= 1.0
        apply_corruption(spec, y)  # XOR twice restores the value exactly
        assert y[0] == 1.5

    def test_comm_kind_is_not_a_corruption(self):
        with pytest.raises(ValueError, match="not a corruption kind"):
            apply_corruption(FaultSpec("s", 0, "drop"), np.ones(2))


class TestFaultPlan:
    def test_duplicate_site_call_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(
                [FaultSpec("a", 1, "nan"), FaultSpec("a", 1, "bitflip")]
            )

    def test_generate_is_a_pure_function_of_the_seed(self):
        p1 = FaultPlan.generate(42, BUDGETS, kinds=KINDS)
        p2 = FaultPlan.generate(42, BUDGETS, kinds=KINDS)
        assert p1.as_tuples() == p2.as_tuples()
        assert p1.as_tuples() != FaultPlan.generate(43, BUDGETS, kinds=KINDS).as_tuples()

    def test_generate_honors_budgets_and_kind_restrictions(self):
        plan = FaultPlan.generate(7, BUDGETS, kinds=KINDS, max_call=10)
        assert len(plan) == sum(BUDGETS.values())
        for spec in plan:
            assert 0 <= spec.call < 10
            assert spec.kind in KINDS[spec.site]

    def test_generate_rejects_overfull_sites(self):
        with pytest.raises(ValueError, match="cannot schedule"):
            FaultPlan.generate(1, {"s": 5}, max_call=4)


class TestFaultInjector:
    def test_fires_exactly_on_the_scheduled_call(self):
        plan = FaultPlan([FaultSpec("site", 2, "nan")])
        injector = FaultInjector(plan)
        with capture(), inject(injector):
            assert fire("site") is None          # call 0
            assert fire("site") is None          # call 1
            spec = fire("site")                  # call 2: strikes
            assert spec is not None and spec.kind == "nan"
            assert fire("site") is None          # call 3
        assert injector.pending() == 0
        assert injector.calls("site") == 4
        assert [s.call for s in injector.fired] == [2]

    def test_sites_have_independent_counters(self):
        plan = FaultPlan(
            [FaultSpec("a", 0, "nan"), FaultSpec("b", 1, "nan")]
        )
        with capture(), inject(FaultInjector(plan)) as injector:
            assert fire("b") is None
            assert fire("a") is not None
            assert injector.pending("b") == 1
            assert fire("b") is not None

    def test_fire_without_an_armed_injector_is_a_noop(self):
        assert fire("anything") is None

    def test_nested_arming_is_rejected(self):
        plan = FaultPlan([])
        with inject(FaultInjector(plan)):
            with pytest.raises(RuntimeError, match="already armed"):
                with inject(FaultInjector(plan)):
                    pass  # pragma: no cover

    def test_firing_emits_an_injected_event(self):
        plan = FaultPlan([FaultSpec("site", 0, "bitflip")])
        log = ResilienceLog()
        with capture(log), inject(FaultInjector(plan)):
            fire("site")
        assert log.counts()["injected"] == 1
        (event,) = log.of("injected")
        assert (event.site, event.kind) == ("site", "bitflip")
