"""Recovery paths: the dispatch ladder, solver rollback, comm retries.

Every test arms a one-or-two-fault plan at a specific site and asserts
both halves of the self-healing contract: the final answer is still
correct, and the resilience log shows the fault was seen and handled.
"""

import numpy as np
import pytest

from repro.comm.communicator import RankDeath
from repro.comm.spmd import SpmdError, run_spmd
from repro.core.context import ExecutionContext
from repro.faults.events import capture
from repro.faults.plan import FaultInjector, FaultPlan, FaultSpec, inject
from repro.ksp import CG, GMRES, JacobiPC
from repro.ksp.base import KrylovBreakdown
from repro.ksp.gmres import _apply_givens
from repro.pde.problems import gray_scott_jacobian, spd_laplacian

VARIANT = "SELL using AVX512"


def _armed(*specs):
    return inject(FaultInjector(FaultPlan(list(specs))))


class TestDispatchLadder:
    def test_engine_output_corruption_degrades_and_still_answers(self):
        csr = gray_scott_jacobian(4)
        ctx = ExecutionContext(abft=True, default_variant=VARIANT)
        x = np.random.default_rng(0).standard_normal(csr.shape[1])
        with capture() as log, _armed(
            FaultSpec("engine.output", 0, "nan")
        ):
            meas = ctx.measure(VARIANT, csr, x=x)
        assert np.allclose(meas.y, csr.multiply(x))
        assert log.counts()["detected"] >= 1
        assert any(e.site == "dispatch" for e in log.of("degraded"))

    def test_corrupted_cached_trace_is_detected_and_invalidated(self):
        csr = gray_scott_jacobian(4)
        ctx = ExecutionContext(abft=True, default_variant=VARIANT)
        rng = np.random.default_rng(1)
        x1, x2 = (rng.standard_normal(csr.shape[1]) for _ in range(2))
        ctx.measure(VARIANT, csr, x=x1)  # records the trace (clean)
        with capture() as log, _armed(
            FaultSpec("trace.replay", 0, "nan")
        ):
            meas = ctx.measure(VARIANT, csr, x=x2)  # first hit: corrupted
        assert np.allclose(meas.y, csr.multiply(x2))
        assert any(
            e.site == "trace.cache" and e.kind == "invalidated"
            for e in log.of("recovered")
        )

    def test_audit_catches_trace_corruption_without_abft(self):
        csr = gray_scott_jacobian(4)
        ctx = ExecutionContext(
            abft=False, audit_interval=1, default_variant=VARIANT
        )
        rng = np.random.default_rng(2)
        x1, x2 = (rng.standard_normal(csr.shape[1]) for _ in range(2))
        ctx.measure(VARIANT, csr, x=x1)
        with capture() as log, _armed(
            FaultSpec("trace.replay", 0, "bitflip", bit=60)
        ):
            meas = ctx.measure(VARIANT, csr, x=x2)
        assert np.allclose(meas.y, csr.multiply(x2))
        assert any(e.site == "trace.audit" for e in log.of("detected"))

    def test_disabled_features_leave_results_bit_identical(self):
        """abft/audit toggles off the fast path's *values* must not move —
        the figure-fixture reproducibility guarantee."""
        csr = gray_scott_jacobian(4)
        x = np.random.default_rng(3).standard_normal(csr.shape[1])
        plain = ExecutionContext(default_variant=VARIANT)
        guarded = ExecutionContext(
            abft=True, audit_interval=2, default_variant=VARIANT
        )
        for _ in range(3):  # cover record and replay calls
            y_plain = plain.measure(VARIANT, csr, x=x).y
            y_guarded = guarded.measure(VARIANT, csr, x=x).y
            assert np.array_equal(y_plain, y_guarded)


class TestSolverRollback:
    def test_gmres_rides_out_spmv_corruption(self):
        csr = gray_scott_jacobian(8)
        b = np.random.default_rng(4).standard_normal(csr.shape[0])
        solver = GMRES(
            pc=JacobiPC(),
            rtol=1e-10,
            context=ExecutionContext(abft=True, default_variant=VARIANT),
        )
        with capture() as log, _armed(
            FaultSpec("spmv.output", 3, "nan"),
            FaultSpec("spmv.output", 7, "bitflip", bit=62),
        ):
            result = solver.solve(csr, b)
        assert result.reason.converged
        assert np.linalg.norm(b - csr.multiply(result.x)) <= 1e-7 * np.linalg.norm(b)
        assert any(e.site == "ksp.gmres" for e in log.of("recovered"))

    def test_cg_rides_out_spmv_corruption(self):
        spd = spd_laplacian(10)
        b = np.random.default_rng(5).standard_normal(spd.shape[0])
        solver = CG(
            rtol=1e-10,
            context=ExecutionContext(abft=True, default_variant=VARIANT),
        )
        with capture() as log, _armed(FaultSpec("spmv.output", 2, "nan")):
            result = solver.solve(spd, b)
        assert result.reason.converged
        assert np.linalg.norm(b - spd.multiply(result.x)) <= 1e-7 * np.linalg.norm(b)
        assert any(e.site == "ksp.cg" for e in log.of("recovered"))

    def test_restart_budget_exhaustion_is_breakdown_not_a_hang(self):
        from repro.ksp.base import ConvergedReason

        csr = gray_scott_jacobian(4)
        b = np.ones(csr.shape[0])
        solver = GMRES(
            pc=JacobiPC(),
            rtol=1e-10,
            max_sdc_restarts=1,
            context=ExecutionContext(abft=True, default_variant=VARIANT),
        )
        specs = [FaultSpec("spmv.output", c, "nan") for c in range(12)]
        with capture(), _armed(*specs):
            result = solver.solve(csr, b)
        assert result.reason is ConvergedReason.BREAKDOWN

    def test_zero_givens_denominator_raises_breakdown(self):
        h = np.zeros((3, 2))
        g = np.array([1.0, 0.0, 0.0])
        with pytest.raises(KrylovBreakdown, match="Givens"):
            _apply_givens(h, g, np.zeros(2), np.zeros(2), 0)


class TestCommRecovery:
    def test_dropped_message_is_retransmitted(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(123.0, dest=1, tag=5)
                return None
            return comm.recv(0, tag=5)

        with capture() as log, _armed(FaultSpec("comm.send@0", 0, "drop")):
            results = run_spmd(2, prog)
        assert results[1] == 123.0
        assert any(
            e.site == "comm.send@0" and e.kind == "retry"
            for e in log.of("recovered")
        )

    def test_straggler_delivers_and_is_benign(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(7, dest=1, tag=1)
                return None
            return comm.recv(0, tag=1)

        with capture() as log, _armed(
            FaultSpec("comm.send@0", 0, "straggle")
        ):
            results = run_spmd(2, prog)
        assert results[1] == 7
        assert log.counts()["benign"] == 1

    def test_rank_death_aborts_the_job_loudly(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, dest=1, tag=2)
                return None
            return comm.recv(0, tag=2)

        with capture() as log, _armed(FaultSpec("comm.send@0", 0, "kill")):
            with pytest.raises(SpmdError) as excinfo:
                run_spmd(2, prog)
        assert isinstance(excinfo.value.original, RankDeath)
        assert any(e.site == "comm.world" for e in log.of("detected"))
