"""The seeded end-to-end fault campaign: the ISSUE's acceptance sweep.

Marked ``faults`` so CI can run the three-seed sweep as its own job;
each campaign injects 53 faults across every wired site and takes a few
seconds of solver work.
"""

import pytest

from repro.faults.campaign import SITE_BUDGETS, CampaignResult, run_campaign
from repro.faults.plan import FaultPlan

SEEDS = (2018, 2019, 2020)

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def campaigns():
    """One campaign per seed, shared across the acceptance assertions."""
    return {seed: run_campaign(seed) for seed in SEEDS}


@pytest.mark.parametrize("seed", SEEDS)
class TestAcceptance:
    def test_injects_at_least_fifty_faults(self, campaigns, seed):
        result = campaigns[seed]
        injected = result.counts["injected"]
        assert injected >= 50
        # The generated schedule plus the phase-5 rank kill plus the
        # phase-6 checkpoint corruption and resize drop, exactly.
        assert injected == sum(SITE_BUDGETS.values()) + 3

    def test_every_scheduled_fault_fired(self, campaigns, seed):
        assert campaigns[seed].pending_after == 0

    def test_success_rate_meets_the_bar(self, campaigns, seed):
        result = campaigns[seed]
        assert result.runs >= 50
        assert result.success_rate >= 0.95

    def test_every_fault_detected_recovered_or_provably_benign(
        self, campaigns, seed
    ):
        assert campaigns[seed].accounted()

    def test_campaign_is_bit_reproducible(self, campaigns, seed):
        first = campaigns[seed]
        second = run_campaign(seed)
        assert second.schedule == first.schedule
        assert second.fingerprint == first.fingerprint
        assert (second.runs, second.correct_runs) == (
            first.runs,
            first.correct_runs,
        )


def test_seeds_produce_distinct_schedules(campaigns):
    schedules = {campaigns[seed].schedule for seed in SEEDS}
    assert len(schedules) == len(SEEDS)


def test_schedule_matches_the_standalone_generator(campaigns):
    from repro.faults.campaign import MAX_CALL, SITE_KINDS

    plan = FaultPlan.generate(
        2018, SITE_BUDGETS, kinds=SITE_KINDS, max_call=MAX_CALL
    )
    assert campaigns[2018].schedule == plan.as_tuples()


def test_result_is_a_plain_comparable_record(campaigns):
    result = campaigns[2018]
    assert isinstance(result, CampaignResult)
    clone = CampaignResult(**{
        "seed": result.seed,
        "schedule": result.schedule,
        "runs": result.runs,
        "correct_runs": result.correct_runs,
        "counts": result.counts,
        "fingerprint": result.fingerprint,
        "pending_after": result.pending_after,
    })
    assert clone == result
