"""The open kernel/format registries and their dispatch errors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dispatch import (
    ALL_VARIANTS,
    FIGURE8_VARIANTS,
    FIGURE11_VARIANTS,
    SELL_AVX512,
    KernelVariant,
    get_variant,
    register_variant,
    registered_variants,
)
from repro.core.kernels_sell import spmv_sell
from repro.mat.aij import AijMat
from repro.mat.base import (
    UnknownFormatError,
    converter_for,
    register_format,
    registered_formats,
)
from repro.simd.isa import AVX512


class TestVariantRegistry:
    def test_builtin_series_are_registered(self):
        for variant in FIGURE8_VARIANTS + FIGURE11_VARIANTS:
            assert ALL_VARIANTS[variant.name] is variant
        for name in (
            "ELLPACK using AVX512",
            "ELLPACK-R using AVX512",
            "HYB using AVX512",
            "BAIJ using AVX512",
            "ESB using AVX512",
        ):
            assert name in ALL_VARIANTS

    def test_registered_variants_sorted_by_name(self):
        names = [v.name for v in registered_variants()]
        assert names == sorted(names)

    def test_reregistering_the_same_variant_is_a_noop(self):
        assert register_variant(SELL_AVX512) is SELL_AVX512

    def test_name_collision_with_a_different_variant_is_an_error(self):
        impostor = KernelVariant(
            "SELL using AVX512", "CSR", AVX512, spmv_sell
        )
        with pytest.raises(ValueError, match="already registered"):
            register_variant(impostor)

    def test_registration_shows_up_in_lookup(self):
        mine = register_variant(
            KernelVariant("test-only SELL clone", "SELL", AVX512, spmv_sell)
        )
        try:
            assert get_variant("test-only SELL clone") is mine
            assert mine in registered_variants()
        finally:
            del ALL_VARIANTS["test-only SELL clone"]


class TestGetVariantErrors:
    def test_unknown_name_suggests_the_closest_legend(self):
        with pytest.raises(KeyError, match="did you mean 'SELL using AVX512'"):
            get_variant("SELL using AVX-512")

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(KeyError, match="known:"):
            get_variant("no such kernel at all")


class TestFormatRegistry:
    def test_builtin_formats_present(self):
        formats = registered_formats()
        for fmt in ("CSR", "SELL", "ESB", "BAIJ", "ELLPACK", "ELLPACK-R", "HYB"):
            assert fmt in formats

    def test_converter_dispatch(self, gray_scott_small):
        sell = converter_for("SELL")(gray_scott_small, slice_height=16)
        assert sell.slice_height == 16

    def test_unknown_format_error_lists_registered(self):
        with pytest.raises(UnknownFormatError, match="SELL"):
            converter_for("DIA")

    def test_conflicting_reregistration_is_an_error(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_format("CSR")
            def _other(csr, *, slice_height=8, sigma=1):  # pragma: no cover
                return csr


# ---------------------------------------------------------------------------
# Registry-driven correctness: every registered variant must agree with
# the scalar CSR reference on random matrices.  New registrations are
# covered automatically.
# ---------------------------------------------------------------------------


@st.composite
def even_square_matrices(draw, max_half: int = 9):
    """Random square CSR with even dimensions (BAIJ blocks need them)."""
    m = 2 * draw(st.integers(min_value=1, max_value=max_half))
    density = draw(st.floats(min_value=0.05, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    mask = rng.random((m, m)) < density
    dense = np.where(mask, rng.standard_normal((m, m)), 0.0)
    return AijMat.from_dense(dense)


@settings(max_examples=20, deadline=None)
@given(csr=even_square_matrices())
def test_every_registered_variant_matches_the_scalar_reference(csr):
    x = np.random.default_rng(99).standard_normal(csr.shape[1])
    reference = csr.multiply(x)
    for variant in registered_variants():
        mat = variant.prepare(csr)
        y, _ = variant.run(mat, x)
        np.testing.assert_allclose(
            y, reference, rtol=1e-12, atol=1e-12,
            err_msg=f"{variant.name} diverges from the scalar CSR reference",
        )
