"""Variant registry and the measure/predict public API."""

import numpy as np
import pytest

from repro.core.dispatch import (
    ALL_VARIANTS,
    FIGURE11_VARIANTS,
    FIGURE8_VARIANTS,
    get_variant,
)
from repro.core.spmv import measure, predict, spmv
from repro.machine.perf_model import make_model
from repro.machine.specs import KNL_7230, SKYLAKE
from repro.pde.problems import gray_scott_jacobian

from ..conftest import make_random_csr


class TestRegistry:
    def test_figure8_has_the_nine_paper_series(self):
        names = [v.name for v in FIGURE8_VARIANTS]
        assert names == [
            "SELL using AVX512",
            "SELL using AVX2",
            "SELL using AVX",
            "CSR using AVX512",
            "CSR using AVX2",
            "CSR using AVX",
            "CSRPerm",
            "CSR baseline",
            "MKL CSR",
        ]

    def test_figure11_adds_the_novec_series(self):
        names = {v.name for v in FIGURE11_VARIANTS}
        assert "CSR using novec" in names
        assert "SELL using novec" in names
        assert len(FIGURE11_VARIANTS) == 9

    def test_lookup_and_error(self):
        assert get_variant("SELL using AVX512").fmt == "SELL"
        with pytest.raises(KeyError):
            get_variant("SELL using AVX1024")

    def test_only_mkl_has_an_efficiency_factor(self):
        for name, v in ALL_VARIANTS.items():
            if name == "MKL CSR":
                assert v.efficiency == pytest.approx(0.85)
            else:
                assert v.efficiency == 1.0

    def test_prepare_produces_the_right_format(self, small_csr):
        assert get_variant("CSR baseline").prepare(small_csr) is small_csr
        assert get_variant("SELL using AVX512").prepare(small_csr).format_name == "SELL"
        assert get_variant("CSRPerm").prepare(small_csr).format_name == "CSRPerm"
        assert get_variant("ESB using AVX512").prepare(small_csr).format_name == "ESB"


class TestMeasure:
    def test_measurement_is_verifiable(self, small_csr):
        x = np.random.default_rng(1).standard_normal(small_csr.shape[1])
        meas = measure("SELL using AVX512", small_csr, x)
        assert np.allclose(meas.y, small_csr.multiply(x))
        assert meas.useful_flops == meas.counters.flops - meas.counters.padded_flops

    def test_default_input_vector_is_reproducible(self, small_csr):
        a = measure("CSR baseline", small_csr)
        b = measure("CSR baseline", small_csr)
        assert np.array_equal(a.y, b.y)

    def test_spmv_front_door(self, small_csr):
        x = np.ones(small_csr.shape[1])
        assert np.allclose(spmv(small_csr, x), small_csr.multiply(x))


class TestPredict:
    def test_scaling_extrapolates_time_linearly(self):
        csr = gray_scott_jacobian(8)
        meas = measure("SELL using AVX512", csr)
        model = make_model(KNL_7230)
        p1 = predict(meas, model, nprocs=64, scale=64.0)
        p2 = predict(meas, model, nprocs=64, scale=128.0)
        assert p2.seconds == pytest.approx(2 * p1.seconds, rel=1e-3)
        # Throughput is scale-invariant (same work rate on bigger input).
        assert p2.gflops == pytest.approx(p1.gflops, rel=1e-3)

    def test_gflops_numerator_is_useful_work(self):
        """Padded SELL arithmetic must not inflate the reported rate."""
        from repro.pde.problems import irregular_rows

        csr = irregular_rows(64, max_len=16, seed=2)
        meas = measure("SELL using AVX512", csr)
        model = make_model(KNL_7230)
        perf = predict(meas, model, nprocs=64)
        assert perf.useful_flops == 2 * csr.nnz

    def test_mkl_efficiency_flows_through_predict(self):
        csr = gray_scott_jacobian(8)
        model = make_model(KNL_7230)
        base = predict(measure("CSR baseline", csr), model, 64, scale=64.0)
        mkl = predict(measure("MKL CSR", csr), model, 64, scale=64.0)
        assert mkl.seconds == pytest.approx(base.seconds / 0.85, rel=1e-6)

    def test_xeon_predictions_are_memory_bound(self):
        """Section 7.4's explanation for the small SELL gains on Xeons."""
        csr = gray_scott_jacobian(8)
        model = make_model(SKYLAKE)
        for name in ("CSR baseline", "SELL using AVX512"):
            perf = predict(measure(name, csr), model, SKYLAKE.cores, scale=4096.0)
            assert perf.bound == "memory", name

    def test_strict_alignment_measurement_passes_on_aligned_data(self, small_csr):
        meas = measure("SELL using AVX512", small_csr, strict_alignment=True)
        assert np.allclose(meas.y, small_csr.multiply(
            np.random.default_rng(12345).standard_normal(small_csr.shape[1])
        ))
