"""On-disk plan store: round-trips, invalidation, corruption, cold starts.

The plan cache (:mod:`repro.simd.plan_cache`) persists compiled traces
and megakernel plans across processes, content-addressed by structure
signature + format + compiler-tier revision.  These tests pin its
contract: exact round-trips (including the legitimate ``None``
"unfusable" verdict), version bumps making old entries unreachable,
single-flight writes under thread races, corrupt files degrading to
misses (and never resurrecting after invalidation), and a warm cache
carrying a cold registry straight past record+compile.
"""

import threading

import numpy as np
import pytest

from repro.core.context import ExecutionContext
from repro.core.registry import PERSISTED_NAMESPACES, SignatureRegistry
from repro.pde.problems import gray_scott_jacobian
from repro.simd import plan_cache as plan_cache_mod
from repro.simd.plan_cache import (
    PlanCache,
    PlanCacheError,
    plan_token,
    read_plan,
)


@pytest.fixture
def cache(tmp_path):
    return PlanCache(tmp_path / "plans")


KEY = ("SELL using AVX512", 8, 1, "sig-abc")


class TestRoundTrip:
    def test_store_fetch_round_trip(self, cache):
        value = {"steps": [1, 2, 3], "plan": np.arange(6).reshape(2, 3)}
        assert cache.store("trace", KEY, value)
        found, loaded = cache.fetch("trace", KEY)
        assert found
        assert loaded["steps"] == value["steps"]
        assert np.array_equal(loaded["plan"], value["plan"])
        assert cache.stats()["hits"] == 1

    def test_none_payload_is_a_hit_not_a_miss(self, cache):
        """The persisted "unfusable" verdict must be distinguishable from
        a miss — that is the whole point of fetch()'s two-tuple."""
        assert cache.store("mega", KEY, None)
        found, loaded = cache.fetch("mega", KEY)
        assert found and loaded is None
        assert cache.load("mega", KEY) is None  # load() can't tell; fetch() can
        stats = cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 0

    def test_miss_on_absent_entry(self, cache):
        found, loaded = cache.fetch("trace", KEY)
        assert (found, loaded) == (False, None)
        assert cache.stats()["misses"] == 1

    def test_namespaces_do_not_collide(self, cache):
        cache.store("trace", KEY, "trace-payload")
        cache.store("mega", KEY, "mega-payload")
        assert cache.fetch("trace", KEY) == (True, "trace-payload")
        assert cache.fetch("mega", KEY) == (True, "mega-payload")
        assert cache.stats()["files"] == 2

    def test_header_is_json_and_self_describing(self, cache):
        cache.store("trace", KEY, [1.5, 2.5])
        header, value = read_plan(cache.path_for("trace", KEY))
        assert header["namespace"] == "trace"
        assert header["format_version"] == plan_cache_mod.PLAN_FORMAT_VERSION
        assert value == [1.5, 2.5]

    def test_evict_removes_the_file(self, cache):
        cache.store("trace", KEY, "payload")
        assert cache.contains("trace", KEY)
        assert cache.evict("trace", KEY)
        assert not cache.contains("trace", KEY)
        assert not cache.evict("trace", KEY)  # second evict: nothing there
        assert cache.stats()["evictions"] == 1


class TestVersioning:
    def test_format_version_bump_orphans_old_entries(self, cache, monkeypatch):
        cache.store("trace", KEY, "old-format")
        monkeypatch.setattr(
            plan_cache_mod,
            "PLAN_FORMAT_VERSION",
            plan_cache_mod.PLAN_FORMAT_VERSION + 1,
        )
        found, _ = cache.fetch("trace", KEY)
        assert not found  # token changed: old entry unreachable, a miss

    def test_megakernel_revision_bump_orphans_old_entries(
        self, cache, monkeypatch
    ):
        cache.store("mega", KEY, "rev-1-plan")
        monkeypatch.setattr(
            plan_cache_mod,
            "MEGAKERNEL_REVISION",
            plan_cache_mod.MEGAKERNEL_REVISION + 1,
        )
        found, _ = cache.fetch("mega", KEY)
        assert not found

    def test_token_is_deterministic_and_key_sensitive(self):
        assert plan_token("trace", KEY) == plan_token("trace", KEY)
        assert plan_token("trace", KEY) != plan_token("mega", KEY)
        assert plan_token("trace", KEY) != plan_token("trace", KEY[:-1])


class TestCorruption:
    def test_truncated_payload_degrades_to_miss_and_is_discarded(self, cache):
        cache.store("trace", KEY, list(range(1000)))
        path = cache.path_for("trace", KEY)
        path.write_bytes(path.read_bytes()[:-40])
        found, loaded = cache.fetch("trace", KEY)
        assert (found, loaded) == (False, None)
        assert not path.exists()  # discarded, not left to fail every process
        stats = cache.stats()
        assert stats["corrupt"] == 1 and stats["misses"] == 1
        # The slot is rebuildable immediately.
        assert cache.store("trace", KEY, "fresh")
        assert cache.fetch("trace", KEY) == (True, "fresh")

    def test_garbage_header_degrades_to_miss(self, cache):
        cache.store("trace", KEY, "payload")
        cache.path_for("trace", KEY).write_bytes(b"not a plan at all\n")
        found, _ = cache.fetch("trace", KEY)
        assert not found
        assert cache.stats()["corrupt"] == 1

    def test_read_plan_raises_on_corruption(self, cache):
        cache.store("trace", KEY, "payload")
        path = cache.path_for("trace", KEY)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(PlanCacheError):
            read_plan(path)


class TestRegistryPersistence:
    def test_leader_stores_and_cold_registry_skips_factory(self, tmp_path):
        cache = PlanCache(tmp_path)
        warm = SignatureRegistry()
        warm.attach_plan_cache(cache)
        calls = []

        def factory():
            calls.append(1)
            return {"compiled": True}

        assert warm.get_or_compute("trace", KEY, factory) == {"compiled": True}
        assert calls == [1]
        assert cache.contains("trace", KEY)

        cold = SignatureRegistry()
        cold.attach_plan_cache(PlanCache(tmp_path))
        got = cold.get_or_compute(
            "trace", KEY, lambda: pytest.fail("cold registry ran the factory")
        )
        assert got == {"compiled": True}

    def test_persisted_none_verdict_skips_factory_too(self, tmp_path):
        warm = SignatureRegistry()
        warm.attach_plan_cache(PlanCache(tmp_path))
        assert warm.get_or_compute("mega", KEY, lambda: None) is None

        cold = SignatureRegistry()
        cold.attach_plan_cache(PlanCache(tmp_path))
        got = cold.get_or_compute(
            "mega", KEY, lambda: pytest.fail("verdict did not persist")
        )
        assert got is None

    def test_unpersisted_namespaces_never_touch_disk(self, tmp_path):
        cache = PlanCache(tmp_path)
        reg = SignatureRegistry()
        reg.attach_plan_cache(cache)
        assert "measure" not in PERSISTED_NAMESPACES
        reg.get_or_compute("measure", KEY, lambda: "a measurement")
        assert cache.stats()["files"] == 0

    def test_invalidate_evicts_the_disk_entry(self, tmp_path):
        cache = PlanCache(tmp_path)
        reg = SignatureRegistry()
        reg.attach_plan_cache(cache)
        reg.get_or_compute("trace", KEY, lambda: "v1")
        assert cache.contains("trace", KEY)
        assert reg.invalidate("trace", KEY)
        assert not cache.contains("trace", KEY)
        # Recompute repopulates memory AND disk.
        assert reg.get_or_compute("trace", KEY, lambda: "v2") == "v2"
        assert cache.load("trace", KEY) == "v2"

    def test_corrupted_plan_never_resurrects(self, tmp_path):
        """Corrupt on disk -> invalidate -> recompute -> fresh valid plan."""
        warm = SignatureRegistry()
        cache = PlanCache(tmp_path)
        warm.attach_plan_cache(cache)
        warm.get_or_compute("mega", KEY, lambda: "good-plan")
        path = cache.path_for("mega", KEY)
        path.write_bytes(b"bit rot")

        # The ABFT path on a failed audit: invalidate memory + disk.
        warm.invalidate("mega", KEY)
        assert not path.exists()

        # A cold process must recompute, never load the rotten bytes —
        # even if the corrupt file had survived the eviction.
        path.write_bytes(b"bit rot again")
        cold = SignatureRegistry()
        cold.attach_plan_cache(PlanCache(tmp_path))
        assert cold.get_or_compute("mega", KEY, lambda: "rebuilt") == "rebuilt"
        _header, value = read_plan(path)
        assert value == "rebuilt"

    def test_concurrent_get_or_compute_writes_once(self, tmp_path):
        cache = PlanCache(tmp_path)
        reg = SignatureRegistry()
        reg.attach_plan_cache(cache)
        calls = []
        barrier = threading.Barrier(8)
        results = []

        def factory():
            calls.append(1)
            return "the-plan"

        def worker():
            barrier.wait()
            results.append(reg.get_or_compute("trace", KEY, factory))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == ["the-plan"] * 8
        assert len(calls) == 1  # single-flight compute
        assert cache.stats()["stores"] == 1  # and a single store

    def test_stats_exposes_plan_cache(self, tmp_path):
        reg = SignatureRegistry()
        assert "plan_cache" not in reg.stats()
        reg.attach_plan_cache(PlanCache(tmp_path))
        assert reg.stats()["plan_cache"]["files"] == 0


class TestContextWiring:
    def test_plan_cache_dir_attaches_and_reports_persisted_tier(
        self, tmp_path
    ):
        ctx = ExecutionContext(plan_cache_dir=tmp_path)
        assert ctx.registry.plan_cache is not None
        assert ctx.compiler_tier == "persisted"
        assert ExecutionContext().compiler_tier == "megakernel"

    def test_env_var_attaches_the_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE", str(tmp_path / "env-plans"))
        ctx = ExecutionContext()
        assert ctx.registry.plan_cache is not None
        assert ctx.compiler_tier == "persisted"

    def test_cold_context_measures_without_record_or_compile(self, tmp_path):
        csr = gray_scott_jacobian(5)
        x = np.random.default_rng(2).standard_normal(csr.shape[1])
        variant = "SELL using AVX512"

        warm = ExecutionContext(plan_cache_dir=tmp_path)
        warm.measure(variant, csr, x=x + 1.0)  # records the trace
        meas_warm = warm.measure(variant, csr, x=x)  # compiles the megakernel
        assert warm.registry.plan_cache.stats()["stores"] == 2

        cold = ExecutionContext(plan_cache_dir=tmp_path)
        meas_cold = cold.measure(variant, csr, x=x)
        stats = cold.registry.plan_cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 0
        assert np.array_equal(meas_cold.y, meas_warm.y)
        assert meas_cold.counters.as_dict() == meas_warm.counters.as_dict()

    def test_trace_invalidation_evicts_both_plans(self, tmp_path):
        from repro.core.dispatch import get_variant

        csr = gray_scott_jacobian(5)
        ctx = ExecutionContext(plan_cache_dir=tmp_path)
        variant_name = "SELL using AVX512"
        ctx.measure(variant_name, csr)
        ctx.measure(variant_name, csr, x=np.full(csr.shape[1], 0.5))
        cache = ctx.registry.plan_cache
        assert cache.stats()["files"] == 2

        ctx._invalidate_trace(get_variant(variant_name), csr, 8, 1)
        assert cache.stats()["files"] == 0
        assert ctx.registry.size("trace") == 0
        assert ctx.registry.size("mega") == 0
