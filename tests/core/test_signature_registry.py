"""SignatureRegistry: keys, LRU, single-flight, and thread-safety.

The concurrency tests are the PR's acceptance stress: N threads hammer
M signatures through one shared registry / one shared context, and the
results must be bit-identical to sequential execution with exactly one
factory run (one trace recording, one format conversion, one tune sweep)
per distinct signature.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.context import ExecutionContext
from repro.core.registry import NAMESPACES, SignatureRegistry
from repro.pde.problems import gray_scott_jacobian


def _mats():
    return [gray_scott_jacobian(g, seed=s) for g, s in ((8, 1), (8, 2), (6, 1))]


# -- key helpers ---------------------------------------------------------
def test_structure_key_ignores_values_content_key_does_not():
    a, b, c = _mats()  # a/b: same stencil, different coefficients
    assert SignatureRegistry.structure_key(a) == SignatureRegistry.structure_key(b)
    assert SignatureRegistry.content_key(a) != SignatureRegistry.content_key(b)
    assert SignatureRegistry.structure_key(a) != SignatureRegistry.structure_key(c)


def test_key_helpers_separate_their_dimensions():
    a, b, _ = _mats()
    assert SignatureRegistry.trace_key("CSR", 8, 1, False, a) == (
        SignatureRegistry.trace_key("CSR", 8, 1, False, b)
    ), "traces are structural: same stencil must share a trace key"
    assert SignatureRegistry.measure_key("CSR", 8, 1, False, a) != (
        SignatureRegistry.measure_key("CSR", 8, 1, False, b)
    ), "measurements are value-dependent"
    assert SignatureRegistry.prepare_key("SELL", 8, 1, a) != (
        SignatureRegistry.prepare_key("SELL", 4, 1, a)
    )
    p1 = ("KNL", "cache", 1)
    p64 = ("KNL", "cache", 64)
    assert SignatureRegistry.best_key(a, ("x",), 1.0, True, p1) != (
        SignatureRegistry.best_key(a, ("x",), 1.0, True, p64)
    ), "autotune winners are policy-scoped"
    assert SignatureRegistry.verify_key("CSR", a, 8, 1, False) == (
        SignatureRegistry.verify_key("CSR", b, 8, 1, False)
    )
    assert SignatureRegistry.default_x_key(5) == (5,)


# -- the store -----------------------------------------------------------
def test_get_or_compute_runs_factory_once():
    reg = SignatureRegistry()
    calls = []
    for _ in range(3):
        value = reg.get_or_compute("measure", ("k",), lambda: calls.append(1) or 42)
    assert value == 42
    assert len(calls) == 1
    stats = reg.stats()
    assert stats["misses"] == {"measure": 1}
    assert stats["hits"] == {"measure": 2}
    assert stats["hit_rate"] == pytest.approx(2 / 3)


def test_cached_none_is_a_hit_not_a_recompute():
    reg = SignatureRegistry()
    calls = []
    assert reg.get_or_compute("verify", ("k",), lambda: calls.append(1)) is None
    assert reg.get_or_compute("verify", ("k",), lambda: calls.append(1)) is None
    assert len(calls) == 1


def test_lookup_put_invalidate_roundtrip():
    reg = SignatureRegistry()
    assert reg.lookup("trace", ("k",)) is None
    reg.put("trace", ("k",), "v")
    assert reg.lookup("trace", ("k",)) == "v"
    assert reg.size("trace") == 1
    assert list(reg.keys("trace")) == [("k",)]
    assert reg.invalidate("trace", ("k",)) is True
    assert reg.invalidate("trace", ("k",)) is False
    assert reg.size() == 0


def test_lru_eviction_drops_oldest_first():
    reg = SignatureRegistry(stripes=1, capacity=3)
    for i in range(5):
        reg.put("measure", (i,), i)
    assert reg.size() == 3
    assert reg.lookup("measure", (0,)) is None
    assert reg.lookup("measure", (1,)) is None
    assert reg.lookup("measure", (4,)) == 4
    assert reg.stats()["evictions"] == 2
    # Touching an entry refreshes it: 2 survives the next insert, 3 dies.
    assert reg.lookup("measure", (2,)) == 2
    reg.put("measure", (5,), 5)
    assert reg.lookup("measure", (2,)) == 2
    assert reg.lookup("measure", (3,)) is None


def test_failed_factory_caches_nothing():
    reg = SignatureRegistry()
    with pytest.raises(RuntimeError):
        reg.get_or_compute("tune", ("k",), lambda: (_ for _ in ()).throw(RuntimeError("boom")))
    assert reg.get_or_compute("tune", ("k",), lambda: "ok") == "ok"
    assert reg.stats()["misses"] == {"tune": 2}


def test_replay_tallies():
    reg = SignatureRegistry()
    assert reg.bump_replay(("t",)) == 1
    assert reg.bump_replay(("t",)) == 2
    reg.clear_replay(("t",))
    assert reg.bump_replay(("t",)) == 1


def test_clear_resets_everything():
    reg = SignatureRegistry()
    reg.get_or_compute("measure", ("k",), lambda: 1)
    reg.bump_replay(("t",))
    reg.clear()
    stats = reg.stats()
    assert stats["entries"] == 0
    assert stats["hits"] == {} and stats["misses"] == {}
    assert reg.bump_replay(("t",)) == 1


def test_constructor_validation():
    with pytest.raises(ValueError):
        SignatureRegistry(stripes=0)
    with pytest.raises(ValueError):
        SignatureRegistry(capacity=0)
    assert set(NAMESPACES) >= {"measure", "prepare", "trace", "tune", "best"}


# -- concurrency ---------------------------------------------------------
def test_single_flight_under_thread_stress():
    """N threads x M keys: every key computed exactly once, all agree."""
    reg = SignatureRegistry(stripes=4)
    n_threads, keys = 16, [(f"sig-{m}",) for m in range(6)]
    compute_log: list[tuple] = []
    log_lock = threading.Lock()

    def factory_for(key):
        def factory():
            time.sleep(0.005)  # hold the inflight window open
            with log_lock:
                compute_log.append(key)
            return ("value", key)
        return factory

    results: dict[int, list] = {}
    barrier = threading.Barrier(n_threads)

    def worker(tid: int) -> None:
        barrier.wait()
        out = []
        for key in keys if tid % 2 else reversed(keys):
            out.append(reg.get_or_compute("stress", key, factory_for(key)))
        results[tid] = out

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert sorted(compute_log) == sorted(keys), "a signature was computed twice"
    for tid, out in results.items():
        assert {v for v in out} == {("value", k) for k in keys}
    stats = reg.stats()
    assert stats["misses"] == {"stress": len(keys)}
    assert stats["single_flight_waits"] > 0, "stress never actually contended"
    assert stats["hits"]["stress"] + stats["misses"]["stress"] + 0 <= (
        n_threads * len(keys)
    )


def test_failed_leader_promotes_exactly_one_waiter():
    reg = SignatureRegistry()
    attempts = []
    gate = threading.Event()

    def flaky():
        attempts.append(threading.current_thread().name)
        gate.wait(1.0)
        if len(attempts) == 1:
            raise RuntimeError("leader dies")
        return "recovered"

    outcomes = {}

    def call(name):
        try:
            outcomes[name] = reg.get_or_compute("tune", ("k",), flaky)
        except RuntimeError:
            outcomes[name] = "raised"

    threads = [threading.Thread(target=call, args=(f"t{i}",), name=f"t{i}") for i in range(3)]
    for t in threads:
        t.start()
    time.sleep(0.05)  # let one leader and two waiters settle
    gate.set()
    for t in threads:
        t.join()
    assert sorted(outcomes.values()) == ["raised", "recovered", "recovered"]
    assert len(attempts) == 2, "exactly one waiter retries after a failure"


def test_shared_context_threads_bit_identical_to_sequential():
    """The PR's stress gate: concurrent serving == sequential serving."""
    mats = _mats()
    xs = [np.random.default_rng(7 + i).standard_normal(m.shape[1]) for i, m in enumerate(mats)]

    sequential = ExecutionContext(default_variant="CSR using AVX512")
    expected = [sequential.spmv(m, x) for m, x in zip(mats, xs)]

    shared = ExecutionContext(default_variant="CSR using AVX512")
    n_threads, rounds = 12, 5
    got: dict[int, list] = {}
    barrier = threading.Barrier(n_threads)

    def worker(tid: int) -> None:
        barrier.wait()
        view = shared.view()  # shares the registry, like a serve shard
        out = []
        for r in range(rounds):
            i = (tid + r) % len(mats)
            out.append((i, view.spmv(mats[i], xs[i])))
        got[tid] = out

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    for tid, out in got.items():
        for i, y in out:
            assert y.tobytes() == expected[i].tobytes(), (
                f"thread {tid} got different bits for operator {i}"
            )
    # Single-flight across the whole stampede: one conversion per operator.
    assert shared.registry.stats()["misses"]["prepare"] == len(mats)
