"""Instruction-level kernel correctness and instruction-mix structure."""

import numpy as np
import pytest

from repro.core.dispatch import (
    ALL_VARIANTS,
    CSR_AVX,
    CSR_AVX512,
    CSR_BASELINE,
    ESB_AVX512,
    SELL_AVX,
    SELL_AVX512,
)
from repro.core.esb import EsbMat
from repro.core.kernels_csr import spmv_csr_vectorized
from repro.core.kernels_sell import spmv_sell, spmv_sell_esb
from repro.core.sell import SellMat
from repro.pde.problems import gray_scott_jacobian, irregular_rows, tridiagonal
from repro.simd.engine import SimdEngine
from repro.simd.isa import AVX, AVX2, AVX512, SCALAR

from ..conftest import make_random_csr

MATRICES = {
    "random": lambda: make_random_csr(19, density=0.3, seed=11),
    "with-empty-rows": lambda: make_random_csr(16, density=0.08, seed=12),
    "tridiagonal": lambda: tridiagonal(17),
    "gray-scott": lambda: gray_scott_jacobian(4),
    "irregular": lambda: irregular_rows(24, max_len=12, seed=13),
}


@pytest.mark.parametrize("variant_name", sorted(ALL_VARIANTS))
@pytest.mark.parametrize("matrix_name", sorted(MATRICES))
def test_every_variant_is_exact_on_every_matrix(variant_name, matrix_name):
    """The engine performs real arithmetic: results must match CSR."""
    variant = ALL_VARIANTS[variant_name]
    csr = MATRICES[matrix_name]()
    if variant.fmt == "BAIJ" and (csr.shape[0] % 2 or csr.shape[1] % 2):
        pytest.skip("BAIJ(bs=2) needs even dimensions")
    x = np.random.default_rng(20).standard_normal(csr.shape[1])
    mat = variant.prepare(csr)
    y, counters = variant.run(mat, x)
    assert np.allclose(y, csr.multiply(x), atol=1e-12), (variant_name, matrix_name)
    assert counters.flops > 0 or csr.nnz == 0


class TestCsrKernelStructure:
    def test_mask_threshold_does_not_change_numerics(self, small_csr, rng):
        x = rng.standard_normal(small_csr.shape[1])
        outs = []
        for threshold in (0, 2, 99):
            engine = SimdEngine(AVX512)
            y = np.zeros(small_csr.shape[0])
            spmv_csr_vectorized(engine, small_csr, x, y, mask_threshold=threshold)
            outs.append(y)
        # The threshold flips the tail between masked-vector and scalar
        # accumulation: same arithmetic, different summation order, so
        # agreement is to rounding, not bitwise.
        assert np.allclose(outs[0], outs[1], rtol=0, atol=1e-13)
        assert np.allclose(outs[0], outs[2], rtol=0, atol=1e-13)

    def test_paper_threshold_rule_controls_the_mask_usage(self):
        """Rows of 10 leave a tail of 2: threshold 2 falls back to scalar."""
        csr = gray_scott_jacobian(4)
        x = np.ones(csr.shape[1])
        masked = SimdEngine(AVX512)
        spmv_csr_vectorized(masked, csr, x, np.zeros(csr.shape[0]), mask_threshold=0)
        scalar_tail = SimdEngine(AVX512)
        spmv_csr_vectorized(
            scalar_tail, csr, x, np.zeros(csr.shape[0]), mask_threshold=2
        )
        assert masked.counters.mask_setup == csr.shape[0]
        assert scalar_tail.counters.mask_setup == 0
        assert scalar_tail.counters.scalar_load_indep > 0

    def test_avx_kernel_never_issues_hardware_gathers(self, small_csr, rng):
        x = rng.standard_normal(small_csr.shape[1])
        y, counters = CSR_AVX.run(small_csr, x)
        assert counters.vector_gather == 0
        assert counters.emulated_gather_lanes > 0
        assert counters.vector_insert > 0

    def test_baseline_emulates_gathers_even_on_avx512(self, small_csr, rng):
        """The compiler-codegen model: inserts instead of vgatherdpd."""
        x = rng.standard_normal(small_csr.shape[1])
        _, hand = CSR_AVX512.run(small_csr, x)
        _, compiler = CSR_BASELINE.run(small_csr, x)
        # The hand kernel gathers in hardware everywhere; the compiler
        # model emulates body gathers and only uses real (masked) gathers
        # for remainders.
        assert compiler.emulated_gather_lanes > 0
        assert hand.emulated_gather_lanes == 0
        assert compiler.vector_gather < hand.vector_gather

    def test_baseline_pays_more_bookkeeping_than_the_hand_kernel(self):
        csr = gray_scott_jacobian(4)
        x = np.ones(csr.shape[1])
        _, hand = CSR_AVX512.run(csr, x)
        _, compiler = CSR_BASELINE.run(csr, x)
        assert compiler.mask_setup > hand.mask_setup
        assert compiler.remainder_iterations > hand.remainder_iterations
        assert compiler.body_iterations > hand.body_iterations

    def test_novec_kernel_issues_no_vector_instructions(self, small_csr, rng):
        x = rng.standard_normal(small_csr.shape[1])
        _, counters = ALL_VARIANTS["CSR using novec"].run(small_csr, x)
        assert counters.total_vector_instructions == 0
        assert counters.scalar_fma == small_csr.nnz


class TestSellKernelStructure:
    def test_no_remainder_ever(self, gray_scott_small, rng):
        """The format's whole point: padded slices leave no tails."""
        x = rng.standard_normal(gray_scott_small.shape[0])
        _, counters = SELL_AVX512.run(SellMat.from_csr(gray_scott_small), x)
        assert counters.remainder_iterations == 0
        assert counters.scalar_load == 0
        assert counters.scalar_load_indep == 0

    def test_matrix_loads_are_aligned(self, gray_scott_small, rng):
        x = rng.standard_normal(gray_scott_small.shape[0])
        _, counters = SELL_AVX512.run(SellMat.from_csr(gray_scott_small), x)
        # Every value load hits a 64-byte boundary (slice bases are C=8
        # doubles apart and the buffer itself is 64-byte aligned).
        assert counters.vector_load_aligned > 0

    def test_padded_flops_are_reported_exactly(self):
        csr = irregular_rows(24, max_len=12, seed=14)
        sell = SellMat.from_csr(csr)
        x = np.ones(csr.shape[1])
        _, counters = SELL_AVX512.run(sell, x)
        assert counters.padded_flops == 2 * sell.padded_entries
        assert counters.flops - counters.padded_flops >= 2 * csr.nnz

    def test_slice_height_must_fit_the_vector_length(self):
        csr = make_random_csr(12, density=0.4, seed=15)
        sell = SellMat.from_csr(csr, slice_height=2)
        engine = SimdEngine(AVX512)
        with pytest.raises(ValueError, match="multiple"):
            spmv_sell(engine, sell, np.ones(12), np.zeros(12))

    def test_narrow_isas_process_strips(self):
        """C=8 with 4-lane AVX: two accumulator strips per slice."""
        csr = gray_scott_jacobian(4)
        x = np.ones(csr.shape[1])
        _, avx512 = SELL_AVX512.run(SellMat.from_csr(csr), x)
        _, avx = SELL_AVX.run(SellMat.from_csr(csr), x)
        assert avx.body_iterations == 2 * avx512.body_iterations

    def test_sorted_sell_uses_scatter_stores(self):
        csr = irregular_rows(32, max_len=10, seed=16)
        sorted_sell = SellMat.from_csr(csr, sigma=32)
        x = np.ones(csr.shape[1])
        y, counters = SELL_AVX512.run(sorted_sell, x)
        assert np.allclose(y, csr.multiply(x))
        assert counters.scalar_store == csr.shape[0]

    def test_scalar_fallback_handles_sell_layout(self, small_csr, rng):
        x = rng.standard_normal(small_csr.shape[1])
        engine = SimdEngine(SCALAR)
        sell = SellMat.from_csr(small_csr)
        y = np.zeros(small_csr.shape[0])
        spmv_sell(engine, sell, x, y)
        assert np.allclose(y, small_csr.multiply(x))


class TestEsbKernel:
    def test_masked_kernel_skips_padded_arithmetic(self):
        csr = irregular_rows(24, max_len=12, seed=17)
        esb = EsbMat.from_csr(csr)
        x = np.ones(csr.shape[1])
        y, counters = ESB_AVX512.run(esb, x)
        assert np.allclose(y, csr.multiply(x))
        # Flops equal the true nonzero work: padding never multiplied.
        assert counters.flops == 2 * csr.nnz
        assert counters.padded_flops == 0

    def test_esb_pays_mask_setup_per_column(self):
        csr = gray_scott_jacobian(4)
        x = np.ones(csr.shape[1])
        _, esb_c = ESB_AVX512.run(EsbMat.from_csr(csr), x)
        _, sell_c = SELL_AVX512.run(SellMat.from_csr(csr), x)
        assert esb_c.mask_setup > sell_c.mask_setup
        assert esb_c.masked_ops > sell_c.masked_ops

    def test_esb_requires_masks(self):
        csr = make_random_csr(8, density=0.5, seed=18)
        esb = EsbMat.from_csr(csr)
        engine = SimdEngine(AVX2)
        with pytest.raises(Exception):
            spmv_sell_esb(engine, esb, np.ones(8), np.zeros(8))

    def test_bit_array_marks_exactly_the_nonzeros(self):
        csr = irregular_rows(20, max_len=8, seed=19)
        esb = EsbMat.from_csr(csr)
        assert int(esb.bits.sum()) == csr.nnz
        assert esb.bit_array_bytes == (esb.val.shape[0] + 7) // 8
        assert esb.memory_bytes() > SellMat.from_csr(csr).memory_bytes()


class TestIsaConsistency:
    @pytest.mark.parametrize("isa", [AVX, AVX2, AVX512])
    def test_sell_kernel_flops_independent_of_isa(self, isa):
        """Same arithmetic regardless of register width."""
        csr = gray_scott_jacobian(4)
        sell = SellMat.from_csr(csr)
        engine = SimdEngine(isa)
        y = np.zeros(csr.shape[0])
        spmv_sell(engine, sell, np.ones(csr.shape[1]), y)
        assert engine.counters.flops - engine.counters.padded_flops == 2 * csr.nnz

    def test_avx2_doubles_the_instruction_count_of_avx512(self):
        """Paper Section 5.5: half the lanes, twice the instructions."""
        csr = gray_scott_jacobian(4)
        sell = SellMat.from_csr(csr)
        x = np.ones(csr.shape[1])
        _, avx512 = SELL_AVX512.run(sell, x)
        _, avx2 = ALL_VARIANTS["SELL using AVX2"].run(sell, x)
        assert avx2.vector_fmadd == 2 * avx512.vector_fmadd
        assert avx2.vector_load == 2 * avx512.vector_load
