"""Transpose SpMV: fast paths, engine kernels, reverse ghost exchange."""

import numpy as np
import pytest

from repro.comm.spmd import run_spmd
from repro.core.sell import SellMat
from repro.core.transpose import (
    csr_multiply_transpose,
    sell_multiply_transpose,
    spmv_csr_transpose,
    spmv_sell_transpose,
)
from repro.mat.mpi_aij import MPIAij
from repro.mat.mpi_sell import MPISell
from repro.pde.problems import gray_scott_jacobian, irregular_rows
from repro.simd.engine import SimdEngine
from repro.simd.isa import AVX, AVX2, AVX512, SCALAR
from repro.vec.mpi_vec import MPIVec

from ..conftest import make_random_csr


@pytest.fixture(params=[0, 1])
def rect(request):
    """Rectangular matrices: transpose must swap the dimensions."""
    return make_random_csr(14, 9, density=0.3, seed=request.param)


class TestFastPaths:
    def test_csr_matches_explicit_transpose(self, rect, rng):
        x = rng.standard_normal(rect.shape[0])
        assert np.allclose(
            csr_multiply_transpose(rect, x), rect.to_dense().T @ x
        )

    def test_sell_matches_explicit_transpose(self, rng):
        csr = make_random_csr(17, 17, density=0.25, seed=2)
        sell = SellMat.from_csr(csr)
        x = rng.standard_normal(17)
        assert np.allclose(
            sell_multiply_transpose(sell, x), csr.to_dense().T @ x
        )

    def test_sorted_sell_transpose(self, rng):
        csr = irregular_rows(32, max_len=10, seed=3)
        sell = SellMat.from_csr(csr, sigma=16)
        x = rng.standard_normal(32)
        assert np.allclose(
            sell_multiply_transpose(sell, x), csr.to_dense().T @ x
        )

    def test_duplicate_columns_accumulate(self):
        from repro.mat.aij import AijMat

        a = AijMat.from_coo(
            (2, 3), np.array([0, 1]), np.array([1, 1]), np.array([2.0, 3.0])
        )
        y = csr_multiply_transpose(a, np.array([1.0, 1.0]))
        assert np.array_equal(y, [0.0, 5.0, 0.0])

    def test_conformance_validation(self, rect):
        with pytest.raises(ValueError):
            csr_multiply_transpose(rect, np.ones(rect.shape[1]))  # wrong side
        with pytest.raises(ValueError):
            csr_multiply_transpose(
                rect, np.ones(rect.shape[0]), np.ones(rect.shape[0])
            )


class TestEngineKernels:
    @pytest.mark.parametrize("isa", [AVX512, AVX2, AVX, SCALAR])
    def test_csr_transpose_kernel_exact(self, isa, rng):
        csr = make_random_csr(15, 15, density=0.3, seed=4)
        x = rng.standard_normal(15)
        engine = SimdEngine(isa)
        y = np.zeros(15)
        spmv_csr_transpose(engine, csr, x, y)
        assert np.allclose(y, csr.to_dense().T @ x, atol=1e-12)

    @pytest.mark.parametrize("isa", [AVX512, AVX2, AVX, SCALAR])
    def test_sell_transpose_kernel_exact(self, isa, rng):
        csr = gray_scott_jacobian(4)
        sell = SellMat.from_csr(csr)
        x = rng.standard_normal(csr.shape[0])
        engine = SimdEngine(isa)
        y = np.zeros(csr.shape[1])
        spmv_sell_transpose(engine, sell, x, y)
        assert np.allclose(y, csr.to_dense().T @ x, atol=1e-12)

    def test_avx512_uses_hardware_scatter(self, rng):
        csr = gray_scott_jacobian(4)
        sell = SellMat.from_csr(csr)
        x = rng.standard_normal(csr.shape[0])
        engine = SimdEngine(AVX512)
        spmv_sell_transpose(engine, sell, x, np.zeros(csr.shape[1]))
        assert engine.counters.vector_scatter > 0
        assert engine.counters.scatter_lanes == engine.counters.vector_scatter * 8

    def test_narrow_isas_fall_back_to_scalar_accumulation(self, rng):
        """Scatter arrived with AVX-512 — the reason transpose SpMV
        vectorizes even worse than the forward product before it."""
        csr = gray_scott_jacobian(4)
        sell = SellMat.from_csr(csr)
        x = rng.standard_normal(csr.shape[0])
        engine = SimdEngine(AVX2)
        spmv_sell_transpose(engine, sell, x, np.zeros(csr.shape[1]))
        assert engine.counters.vector_scatter == 0
        assert engine.counters.scalar_store > 0


class TestEngineScatterInstruction:
    def test_scatter_add_accumulates_duplicates(self):
        from repro.simd.register import VectorRegister

        engine = SimdEngine(AVX512)
        buf = np.zeros(6)
        idx = VectorRegister(np.array([0, 0, 1, 2, 3, 4, 5, 5]))
        engine.scatter_add(buf, idx, engine.set1(1.0))
        assert np.array_equal(buf, [2.0, 1.0, 1.0, 1.0, 1.0, 2.0])

    def test_scatter_requires_avx512(self):
        from repro.simd.isa import UnsupportedInstructionError
        from repro.simd.register import VectorRegister

        engine = SimdEngine(AVX2)
        with pytest.raises(UnsupportedInstructionError):
            engine.scatter_add(
                np.zeros(4), VectorRegister(np.arange(4)), engine.set1(1.0)
            )

    def test_masked_scatter_skips_inactive_lanes(self):
        from repro.simd.register import VectorRegister

        engine = SimdEngine(AVX512)
        buf = np.zeros(8)
        idx = VectorRegister(np.arange(8))
        engine.masked_scatter_add(buf, idx, engine.set1(3.0), engine.make_mask(2))
        assert np.array_equal(buf, [3.0, 3.0, 0, 0, 0, 0, 0, 0])
        assert engine.counters.scatter_lanes == 2


class TestReverseScatterAndMPITranspose:
    @pytest.mark.parametrize("size", [1, 2, 3, 4])
    def test_distributed_transpose_matches_sequential(self, size):
        csr = gray_scott_jacobian(8)
        x = np.random.default_rng(6).standard_normal(csr.shape[0])
        expected = csr.to_dense().T @ x

        def prog(comm):
            a = MPIAij.from_global_csr(comm, csr)
            xv = MPIVec.from_global(comm, a.layout, x)
            return a.multiply_transpose(xv).to_global()

        for result in run_spmd(size, prog):
            assert np.allclose(result, expected, atol=1e-11)

    def test_mpisell_transpose(self):
        csr = gray_scott_jacobian(8)
        x = np.random.default_rng(7).standard_normal(csr.shape[0])
        expected = csr.to_dense().T @ x

        def prog(comm):
            a = MPISell.from_global_csr(comm, csr)
            xv = MPIVec.from_global(comm, a.layout, x)
            return a.multiply_transpose(xv).to_global()

        for result in run_spmd(3, prog):
            assert np.allclose(result, expected, atol=1e-11)

    def test_forward_and_reverse_scatter_compose_to_identity_action(self):
        """reverse(forward(x)) accumulates each ghost exactly once."""
        from repro.comm.partition import RowLayout
        from repro.comm.scatter import VecScatter

        n = 12

        def prog(comm):
            layout = RowLayout.uniform(n, comm.size)
            start, end = layout.range_of(comm.rank)
            ghosts = np.array([(end) % n], dtype=np.int64)
            ghosts = ghosts[(ghosts < start) | (ghosts >= end)]
            sc = VecScatter(comm, layout, ghosts)
            local = np.zeros(end - start)
            ghost_vals = sc.exchange(np.arange(start, end, dtype=np.float64))
            sc.reverse_begin(np.ones_like(ghost_vals))
            sc.reverse_end(local)
            # Each owned entry requested by exactly one peer gained 1.0.
            return float(local.sum()), ghost_vals.size

        results = run_spmd(3, prog)
        total_received = sum(r[0] for r in results)
        total_ghosts = sum(r[1] for r in results)
        assert total_received == total_ghosts

    def test_reverse_contribution_length_validated(self):
        from repro.comm.partition import RowLayout
        from repro.comm.scatter import VecScatter
        from repro.comm.spmd import SpmdError

        def prog(comm):
            layout = RowLayout.uniform(8, comm.size)
            sc = VecScatter(comm, layout, np.array([], dtype=np.int64))
            sc.reverse_begin(np.ones(5))

        with pytest.raises(SpmdError):
            run_spmd(2, prog)


class TestTrafficExtensions:
    def test_64bit_indices_add_four_bytes_per_nonzero(self):
        from repro.core.traffic import csr_traffic, sell_traffic

        for fn in (csr_traffic, sell_traffic):
            narrow = fn(100, 100, 1000)
            wide = fn(100, 100, 1000, index_bytes=8)
            assert wide.total_bytes - narrow.total_bytes == 4 * 1000

    def test_paper_grid_is_the_32bit_limit(self):
        from repro.core.traffic import largest_grid_with_32bit_indices

        assert largest_grid_with_32bit_indices(dof=2) == 16384
        # One DOF per point doubles the admissible points.
        assert largest_grid_with_32bit_indices(dof=1) == 32768
