"""Property-based tests: format equivalence over random sparse matrices.

Hypothesis generates sparsity patterns (including degenerate ones: empty
rows, empty matrices, single columns); every format must round-trip
through CSR and multiply identically, and every instruction-level kernel
must agree with the NumPy path.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.esb import EsbMat
from repro.core.sell import SellMat
from repro.mat.aij import AijMat
from repro.mat.aij_perm import AijPermMat
from repro.mat.ellpack import EllpackMat
from repro.mat.hybrid import HybridMat


@st.composite
def sparse_matrices(draw, max_dim: int = 18):
    """A random CSR matrix via a dense mask (small, but adversarial)."""
    m = draw(st.integers(min_value=1, max_value=max_dim))
    n = draw(st.integers(min_value=1, max_value=max_dim))
    density = draw(st.floats(min_value=0.0, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    mask = rng.random((m, n)) < density
    dense = np.where(mask, rng.standard_normal((m, n)), 0.0)
    return AijMat.from_dense(dense)


CONVERTERS = {
    "ELLPACK": EllpackMat.from_csr,
    "SELL": lambda csr: SellMat.from_csr(csr, slice_height=4),
    "SELL-sorted": lambda csr: SellMat.from_csr(csr, 4, sigma=8),
    "ESB": lambda csr: EsbMat.from_csr(csr, slice_height=4),
    "CSRPerm": AijPermMat.from_csr,
    "HYB": HybridMat.from_csr,
}


@settings(max_examples=30, deadline=None)
@given(csr=sparse_matrices())
def test_every_format_multiplies_like_csr(csr):
    x = np.random.default_rng(7).standard_normal(csr.shape[1])
    reference = csr.multiply(x)
    for name, convert in CONVERTERS.items():
        y = convert(csr).multiply(x)
        assert np.allclose(y, reference, atol=1e-10), name


@settings(max_examples=30, deadline=None)
@given(csr=sparse_matrices())
def test_every_format_round_trips_to_csr(csr):
    for name, convert in CONVERTERS.items():
        back = convert(csr).to_csr()
        assert back.equal(csr, tol=1e-14), name


@settings(max_examples=25, deadline=None)
@given(
    csr=sparse_matrices(max_dim=12),
    c=st.sampled_from([1, 2, 4, 8]),
)
def test_sell_padding_invariants(csr, c):
    sell = SellMat.from_csr(csr, slice_height=c)
    # Slot count = nnz + padding, and is a whole number of slice columns.
    assert int(sell.sliceptr[-1]) == csr.nnz + sell.padded_entries
    assert sell.padded_entries >= 0
    for s in range(sell.nslices):
        assert (sell.sliceptr[s + 1] - sell.sliceptr[s]) % c == 0
    # Every padded slot carries value zero and an in-range column.
    if sell.val.shape[0]:
        assert sell.colidx.min() >= 0
        assert sell.colidx.max() < csr.shape[1]


@settings(max_examples=15, deadline=None)
@given(csr=sparse_matrices(max_dim=10))
def test_kernels_agree_with_the_fast_path(csr):
    """The instruction-level engine kernels are numerically real."""
    from repro.core.dispatch import CSR_AVX, CSR_AVX512, SELL_AVX512

    x = np.random.default_rng(8).standard_normal(csr.shape[1])
    reference = csr.multiply(x)
    for variant in (CSR_AVX512, CSR_AVX, SELL_AVX512):
        mat = variant.prepare(csr)
        y, counters = variant.run(mat, x)
        assert np.allclose(y, reference, atol=1e-10), variant.name
        assert counters.bytes_loaded >= 0


@settings(max_examples=20, deadline=None)
@given(csr=sparse_matrices(max_dim=14), seed=st.integers(0, 1000))
def test_distributed_spmv_matches_sequential(csr, seed):
    """Random matrix, random partition count: the 4-step parallel SpMV
    equals the sequential product."""
    from repro.comm.spmd import run_spmd
    from repro.mat.mpi_aij import MPIAij
    from repro.vec.mpi_vec import MPIVec

    m, n = csr.shape
    if m != n:
        csr = AijMat.from_dense(np.pad(csr.to_dense(), ((0, max(0, n - m)), (0, max(0, m - n)))))
    x = np.random.default_rng(seed).standard_normal(csr.shape[1])
    expected = csr.multiply(x)
    size = (seed % 3) + 1

    def prog(comm):
        a = MPIAij.from_global_csr(comm, csr)
        xv = MPIVec.from_global(comm, a.layout, x)
        return a.multiply(xv).to_global()

    for result in run_spmd(size, prog):
        assert np.allclose(result, expected, atol=1e-10)
