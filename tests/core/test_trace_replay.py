"""Record/replay equivalence: bit-identical results, identical counters.

The trace layer's contract (docs/performance.md) is exact equivalence with
the interpreted engine: a trace recorded on one matrix replays for any
matrix sharing the sparsity structure with ``np.array_equal`` outputs and
``KernelCounters``-equal instruction mixes.  These tests sweep every
registered variant over a panel of structures exercising the interesting
code paths: a PDE stencil, irregular random sparsity, a trailing partial
slice, and a sigma-sorted (permuted) SELL.
"""

import numpy as np
import pytest

from repro.core.context import ExecutionContext
from repro.core.dispatch import ALL_VARIANTS, get_variant
from repro.mat.aij import AijMat
from repro.pde.problems import gray_scott_jacobian, irregular_rows
from repro.simd.trace import TraceError

from ..conftest import make_random_csr

#: (name, matrix factory, slice_height, sigma) — the structure panel.
STRUCTURES = {
    "stencil": (lambda: gray_scott_jacobian(6), 8, 1),
    "random": (lambda: make_random_csr(24, density=0.25, seed=3), 8, 1),
    # 19 rows: slices 8+8+3, so every slice-based kernel hits the masked /
    # scalarized trailing-partial-slice store path.
    "partial-slice": (
        lambda: make_random_csr(19, n=24, density=0.3, seed=5),
        8,
        1,
    ),
    # sigma > 1 sorts rows by length within the window: SELL kernels take
    # the permuted scalar-scatter store path.
    "sorted-sell": (lambda: irregular_rows(26, max_len=9, seed=8), 8, 16),
}


def revalued(csr: AijMat, seed: int) -> AijMat:
    """Same sparsity structure, fresh random values — a "reassembly"."""
    vals = np.random.default_rng(seed).standard_normal(csr.val.shape[0])
    return AijMat(csr.shape, csr.rowptr, csr.colidx, vals)


@pytest.mark.parametrize("variant_name", sorted(ALL_VARIANTS))
@pytest.mark.parametrize("structure", sorted(STRUCTURES))
def test_replay_is_bit_identical_across_reassembly(variant_name, structure):
    """Record on one matrix, replay on a same-structure one: exact match."""
    variant = ALL_VARIANTS[variant_name]
    factory, c, s = STRUCTURES[structure]
    csr1 = factory()
    if variant.fmt == "BAIJ" and (csr1.shape[0] % 2 or csr1.shape[1] % 2):
        pytest.skip("BAIJ(bs=2) needs even dimensions")
    rng = np.random.default_rng(17)
    x1 = rng.standard_normal(csr1.shape[1])

    mat1 = variant.prepare(csr1, slice_height=c, sigma=s)
    trace, y_rec, counters_rec = variant.record(mat1, x1)

    # The recording run IS an interpreted run.
    y_ref, counters_ref = variant.run(mat1, x1)
    assert np.array_equal(y_rec, y_ref)
    assert counters_rec.as_dict() == counters_ref.as_dict()

    # Replay against new values AND a new input vector.
    csr2 = revalued(csr1, seed=23)
    mat2 = variant.prepare(csr2, slice_height=c, sigma=s)
    x2 = rng.standard_normal(csr2.shape[1])
    y_expect, counters_expect = variant.run(mat2, x2)
    y_replay, counters_replay = variant.replay(trace, mat2, x2)
    assert np.array_equal(y_replay, y_expect), (variant_name, structure)
    assert counters_replay.as_dict() == counters_expect.as_dict()
    # And against the production matvec, for good measure.
    assert np.allclose(y_replay, csr2.multiply(x2), atol=1e-12)


def test_replay_rejects_structure_mismatch():
    """A trace is only valid for the recorded sparsity structure."""
    variant = get_variant("SELL using AVX512")
    csr = gray_scott_jacobian(4)
    other = gray_scott_jacobian(6)
    x = np.random.default_rng(0).standard_normal(csr.shape[1])
    mat = variant.prepare(csr)
    trace, _, _ = variant.record(mat, x)
    other_mat = variant.prepare(other)
    other_x = np.random.default_rng(1).standard_normal(other.shape[1])
    with pytest.raises(TraceError):
        variant.replay(trace, other_mat, other_x)


class TestContextTracing:
    def test_traced_and_interpreted_context_measurements_agree(self):
        csr = gray_scott_jacobian(5)
        traced = ExecutionContext(use_traces=True)
        interp = ExecutionContext(use_traces=False)
        for name in ("SELL using AVX512", "CSR using AVX512", "CSR baseline"):
            m_t = traced.measure(name, csr)
            m_i = interp.measure(name, csr)
            assert np.array_equal(m_t.y, m_i.y), name
            assert m_t.counters.as_dict() == m_i.counters.as_dict()

    def test_trace_cache_survives_reassembly(self):
        """New coefficients, same stencil: one recording, then replays."""
        csr1 = gray_scott_jacobian(5)
        csr2 = revalued(csr1, seed=31)
        ctx = ExecutionContext()
        ctx.measure("SELL using AVX512", csr1)
        assert ctx.registry.size("trace") == 1
        meas = ctx.measure("SELL using AVX512", csr2)
        assert ctx.registry.size("trace") == 1  # replayed, not re-recorded
        x = ctx._default_x(csr2.shape[1])
        assert np.allclose(meas.y, csr2.multiply(x), atol=1e-12)

    def test_prepare_and_default_x_are_cached(self):
        """measure() does no redundant conversion or rng work (bugfix)."""
        csr = gray_scott_jacobian(5)
        ctx = ExecutionContext()
        # Two variants sharing the CSR format: one conversion, reused.
        m1 = ctx.measure("CSR using AVX512", csr)
        m2 = ctx.measure("CSR baseline", csr)
        assert m1.mat is m2.mat
        assert ctx.registry.size("default_x") == 1
        x1 = ctx._default_x(csr.shape[1])
        assert x1 is ctx._default_x(csr.shape[1])

    def test_untraceable_kernel_falls_back_to_interpretation(self):
        """A format without trace buffers still measures correctly."""
        from repro.core import traced as traced_mod

        csr = gray_scott_jacobian(4)
        ctx = ExecutionContext()
        saved = traced_mod.TRACE_BUFFERS.pop("SELL")
        try:
            meas = ctx.measure("SELL using AVX512", csr)
        finally:
            traced_mod.TRACE_BUFFERS["SELL"] = saved
        assert ctx.registry.size("trace") == 0
        x = ctx._default_x(csr.shape[1])
        assert np.allclose(meas.y, csr.multiply(x), atol=1e-12)

    def test_derived_context_shares_trace_cache(self):
        csr = gray_scott_jacobian(4)
        ctx = ExecutionContext()
        ctx.measure("SELL using AVX512", csr)
        derived = ctx.with_nprocs(1)
        assert derived.registry is ctx.registry
        assert derived.registry.size("trace") == 1
