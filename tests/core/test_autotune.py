"""SELL parameter autotuning."""

import pytest

from repro.core.autotune import tune_sell
from repro.machine.perf_model import make_model
from repro.machine.specs import KNL_7230
from repro.pde.problems import gray_scott_jacobian, irregular_rows


@pytest.fixture(scope="module")
def model():
    return make_model(KNL_7230)


class TestTuneSell:
    def test_confirms_the_papers_choice_on_its_own_operator(self, model):
        """For the regular Gray-Scott matrix, C=8/sigma=1 is (within the
        sweep noise) the winner the paper hard-codes."""
        csr = gray_scott_jacobian(16)
        result = tune_sell(csr, model, nprocs=64, scale=64.0)
        assert result.paper_default is not None
        # The best candidate is at least as good, and not meaningfully
        # better than, the paper default: sorting a regular matrix buys
        # nothing.
        assert result.best.gflops <= result.paper_default.gflops * 1.02
        assert result.best.padding_fraction == 0.0

    def test_discovers_sorting_on_irregular_matrices(self, model):
        """On a power-law matrix the tuner should prefer a sorted
        configuration (sigma > 1) — padding dominates unsorted SELL."""
        csr = irregular_rows(512, min_len=2, max_len=48, seed=9)
        result = tune_sell(csr, model, nprocs=64)
        assert result.best.sigma > 1
        assert result.best.padding_fraction < result.paper_default.padding_fraction

    def test_sweep_contains_every_admissible_candidate(self, model):
        csr = gray_scott_jacobian(8)
        result = tune_sell(
            csr, model, nprocs=64, slice_heights=(8,), sigmas=(1, 4)
        )
        labels = {c.label for c in result.sweep}
        assert labels == {"C=8, sigma=1", "C=8, sigma=32"}

    def test_oversized_windows_are_skipped(self, model):
        csr = gray_scott_jacobian(4)  # 32 rows
        result = tune_sell(
            csr, model, nprocs=64, slice_heights=(8,), sigmas=(1, 64)
        )
        # sigma = 8 * 64 = 512 > 32 rows: skipped.
        assert {c.sigma for c in result.sweep} == {1}

    def test_empty_sweep_raises(self, model):
        csr = gray_scott_jacobian(4)
        with pytest.raises(ValueError):
            tune_sell(csr, model, nprocs=64, slice_heights=())
