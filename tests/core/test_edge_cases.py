"""Remaining structural edge cases across formats and solvers."""

import numpy as np
import pytest

from repro.mat.aij import AijMat


class TestBaijEmptyBlockRows:
    def test_multiply_with_empty_block_rows(self):
        """A block row with no blocks must produce zeros, not garbage
        (the reduceat empty-segment trap)."""
        from repro.mat.baij import BaijMat

        dense = np.zeros((8, 8))
        dense[0, 0] = 2.0  # only the first block row has content
        dense[6, 7] = 3.0  # and the last
        a = AijMat.from_dense(dense)
        baij = BaijMat.from_csr(a, 2)
        x = np.arange(1.0, 9.0)
        assert np.allclose(baij.multiply(x), dense @ x)

    def test_fully_empty_matrix(self):
        from repro.mat.baij import BaijMat

        a = AijMat.from_coo((4, 4), np.array([]), np.array([]), np.array([]))
        baij = BaijMat.from_csr(a, 2)
        assert np.array_equal(baij.multiply(np.ones(4)), np.zeros(4))


class TestGmresHappyBreakdown:
    def test_exact_solution_inside_the_krylov_space(self):
        """When the Krylov space exactly contains the solution, GMRES must
        terminate with the breakdown handled as convergence."""
        from repro.ksp.gmres import GMRES

        # Rank-structured system: solution reached in exactly 2 iterations.
        a = AijMat.from_dense(np.diag([3.0, 3.0, 5.0, 5.0]))
        b = np.array([1.0, 1.0, 0.0, 0.0])
        result = GMRES(rtol=1e-14).solve(a, b)
        assert result.reason.converged
        assert result.iterations <= 2
        assert np.allclose(a.multiply(result.x), b, atol=1e-12)


class TestEllpackDegenerate:
    def test_empty_matrix(self):
        from repro.mat.ellpack import EllpackMat

        empty = AijMat.from_coo((3, 3), np.array([]), np.array([]), np.array([]))
        ell = EllpackMat.from_csr(empty)
        assert np.array_equal(ell.multiply(np.ones(3)), np.zeros(3))
        assert ell.padded_entries == 0

    def test_zero_row_matrix(self):
        from repro.mat.ellpack import EllpackMat

        empty = AijMat.from_coo((0, 5), np.array([]), np.array([]), np.array([]))
        ell = EllpackMat.from_csr(empty)
        assert ell.multiply(np.ones(5)).shape == (0,)


class TestSellTriangularLaneConstraint:
    def test_engine_kernel_rejects_incompatible_slice_heights(self):
        from repro.core.triangular import SellTriangular, solve_sell_triangular
        from repro.pde.problems import tridiagonal
        from repro.simd.engine import SimdEngine
        from repro.simd.isa import AVX512

        lower = AijMat.from_dense(np.tril(tridiagonal(10).to_dense()))
        tri = SellTriangular(lower, lower=True, slice_height=2)
        with pytest.raises(ValueError, match="multiple"):
            solve_sell_triangular(
                SimdEngine(AVX512), tri, np.ones(10), np.zeros(10)
            )


class TestMpiVecNormKinds:
    def test_unknown_norm_rejected(self):
        from repro.comm.spmd import SpmdError, run_spmd
        from repro.comm.partition import RowLayout
        from repro.vec.mpi_vec import MPIVec

        def prog(comm):
            layout = RowLayout.uniform(4, comm.size)
            MPIVec(comm, layout).norm("fro")

        with pytest.raises(SpmdError):
            run_spmd(2, prog)


class TestAssemblerAfterAssembly:
    def test_new_values_after_assemble_are_included_on_reassembly(self):
        """PETSc allows setting values after assembly; the next assembly
        picks them up (our cache invalidation)."""
        from repro.mat.assembly import MatAssembler

        asm = MatAssembler((2, 2))
        asm.set_value(0, 0, 1.0)
        first = asm.assemble()
        assert first.nnz == 1
        asm.set_value(1, 1, 2.0)
        second = asm.assemble()
        assert second.nnz == 2
        assert second.to_dense()[1, 1] == 2.0
