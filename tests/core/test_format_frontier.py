"""Format frontier: SVE vector-length agnosticism, beta(r,c), best_plan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.beta import BetaMat, DEFAULT_BLOCK_SHAPE
from repro.core.context import ExecutionContext, FormatPlan
from repro.core.dispatch import BETA_AVX512, SELL_AVX512, KernelVariant
from repro.core.kernels_sve import spmv_sell_sve
from repro.core.spmv import default_x
from repro.machine.perf_model import make_model
from repro.machine.specs import A64FX, KNL_7230
from repro.pde.problems import gray_scott_jacobian, irregular_rows, tridiagonal
from repro.simd.isa import SVE, sve_isa
from repro.simd.trace import TraceError

VECTOR_BITS = (128, 256, 512)

MATRICES = {
    "stencil": gray_scott_jacobian(6),
    "long-tail": irregular_rows(26, max_len=9, seed=8),
    "banded": tridiagonal(29),
}


def _sve_variant(bits: int) -> KernelVariant:
    """An unregistered SELL-SVE build at an explicit vector length."""
    return KernelVariant(
        f"SELL using SVE@{bits}", "SELL", sve_isa(bits), spmv_sell_sve
    )


class TestSveVectorLengthAgnostic:
    """One kernel source, any hardware vector length — the SVE contract."""

    @pytest.mark.parametrize("label", sorted(MATRICES))
    @pytest.mark.parametrize("bits", VECTOR_BITS)
    def test_tiers_bit_identical_at_every_vl(self, label, bits):
        csr = MATRICES[label]
        variant = _sve_variant(bits)
        mat = variant.prepare(csr, slice_height=8, sigma=1)
        x = default_x(csr.shape[1])
        y_run, _ = variant.run(mat, x)
        trace, y_rec, _ = variant.record(mat, x)
        y_rep, _ = variant.replay(trace, mat, x)
        np.testing.assert_allclose(y_run[: csr.shape[0]], csr.multiply(x))
        assert np.array_equal(y_run, y_rec)
        assert np.array_equal(y_run, y_rep)

    @pytest.mark.parametrize("label", sorted(MATRICES))
    def test_sell_sve_output_identical_across_vls(self, label):
        # SELL-SVE accumulates each row sequentially lane-by-strip, so the
        # rounding order — hence the bits of y — cannot depend on the VL.
        csr = MATRICES[label]
        x = default_x(csr.shape[1])
        ys = []
        for bits in VECTOR_BITS:
            variant = _sve_variant(bits)
            mat = variant.prepare(csr, slice_height=8, sigma=1)
            y, _ = variant.run(mat, x)
            ys.append(y[: csr.shape[0]].copy())
        for other in ys[1:]:
            assert np.array_equal(ys[0], other)

    def test_megakernel_tier_matches_where_fusable(self):
        from repro.simd.megakernel import compile_megakernel

        csr = MATRICES["stencil"]
        x = default_x(csr.shape[1])
        variant = _sve_variant(512)
        mat = variant.prepare(csr, slice_height=8, sigma=1)
        trace, y_rec, c_rec = variant.record(mat, x)
        try:
            mega = compile_megakernel(trace)
        except TraceError:
            pytest.skip("stencil trace not fusable at this shape")
        y_mega, c_mega = variant.replay(mega, mat, x)
        assert np.array_equal(y_rec, y_mega)
        assert c_rec.as_dict() == c_mega.as_dict()

    def test_sve_isa_factory_validates(self):
        assert sve_isa(512) is SVE
        assert sve_isa(256).name == "SVE"
        assert sve_isa(2048).vector_bits == 2048
        with pytest.raises(ValueError):
            sve_isa(192)
        with pytest.raises(ValueError):
            sve_isa(4096)


class TestBetaFormat:
    """beta(r,c): exact round-trip, exact product, zero padded flops."""

    SHAPES = ((1, 4), (2, 4), (4, 4), (2, 8), (8, 8))

    @pytest.mark.parametrize("label", sorted(MATRICES))
    @pytest.mark.parametrize("shape", SHAPES)
    def test_round_trip_and_product_exact(self, label, shape):
        csr = MATRICES[label]
        beta = BetaMat.from_csr(csr, block_shape=shape)
        back = beta.to_csr()
        assert np.array_equal(back.rowptr, csr.rowptr)
        assert np.array_equal(back.colidx, csr.colidx)
        assert np.array_equal(back.val, csr.val)
        x = default_x(csr.shape[1])
        np.testing.assert_allclose(beta.multiply(x), csr.multiply(x))

    @pytest.mark.parametrize("shape", SHAPES)
    def test_kernel_executes_no_padding(self, shape):
        csr = MATRICES["long-tail"]
        ctx = ExecutionContext(use_traces=False)
        meas = ctx.measure(BETA_AVX512, csr, block_shape=shape)
        assert meas.counters.padded_flops == 0
        assert meas.counters.flops == 2 * csr.nnz
        np.testing.assert_allclose(
            meas.y[: csr.shape[0]], csr.multiply(default_x(csr.shape[1]))
        )

    def test_block_shape_is_part_of_the_measure_key(self):
        csr = MATRICES["stencil"]
        ctx = ExecutionContext()
        a = ctx.measure(BETA_AVX512, csr, block_shape=(2, 4))
        b = ctx.measure(BETA_AVX512, csr, block_shape=(4, 4))
        assert a is ctx.measure(BETA_AVX512, csr, block_shape=(2, 4))
        assert a is not b
        assert a.mat.block_shape == (2, 4)
        assert b.mat.block_shape == (4, 4)

    def test_sell_keys_ignore_the_block_shape_knob(self):
        csr = MATRICES["stencil"]
        ctx = ExecutionContext()
        a = ctx.measure(SELL_AVX512, csr)
        assert ctx.measure(SELL_AVX512, csr, block_shape=(4, 4)) is a


class TestBestPlan:
    """The enlarged (variant, sigma, block shape) autotune sweep."""

    def test_default_plan_matches_best_variant(self):
        csr = gray_scott_jacobian(8)
        ctx = ExecutionContext()
        plan = ctx.best_plan(csr)
        assert isinstance(plan, FormatPlan)
        assert ctx.best_variant(csr) is plan.variant
        assert ctx.autotune_sweeps == 1  # wrapper shares the plan cache
        assert plan.sigma == ctx.sigma

    def test_wider_knob_space_never_reuses_the_narrow_verdict(self):
        csr = gray_scott_jacobian(8)
        ctx = ExecutionContext()
        ctx.best_plan(csr)
        ctx.best_plan(csr, sigmas=(1, 64))
        assert ctx.autotune_sweeps == 2
        ctx.best_plan(csr, sigmas=(1, 64))
        assert ctx.autotune_sweeps == 2  # same knob space: cache hit

    def test_sigma_scope_wins_on_the_long_tail(self):
        # Single-core pricing is compute-leg dominated, where the padding
        # a sigma-sorted window removes is real work removed (Section 5.4).
        csr = irregular_rows(160, min_len=2, max_len=40, alpha=1.1, seed=3)
        ctx = ExecutionContext(model=make_model(KNL_7230), nprocs=1)
        plan = ctx.best_plan(csr, candidates=(SELL_AVX512,), sigmas=(1, 64))
        assert plan.sigma == 64

    def test_block_shape_knob_reaches_the_plan(self):
        csr = MATRICES["stencil"]
        ctx = ExecutionContext()
        plan = ctx.best_plan(
            csr, candidates=(BETA_AVX512,), block_shapes=((2, 4), (2, 8))
        )
        assert plan.variant is BETA_AVX512
        assert plan.block_shape in ((2, 4), (2, 8))

    def test_reformat_uses_the_context_block_shape(self):
        csr = MATRICES["stencil"]
        ctx = ExecutionContext(
            default_variant="BETA using AVX512", block_shape=(4, 4)
        )
        mat = ctx.reformat(csr)
        assert isinstance(mat, BetaMat)
        assert mat.block_shape == (4, 4)

    def test_default_block_shape_matches_the_converter_default(self):
        assert ExecutionContext().block_shape == DEFAULT_BLOCK_SHAPE


class TestA64fxContext:
    """The first non-x86 machine: SVE is its widest modeled ISA."""

    def test_widest_isa_is_sve(self):
        ctx = ExecutionContext(model=make_model(A64FX))
        assert ctx.isa.name == "SVE"
        assert ctx.nprocs == A64FX.cores

    def test_supported_variants_are_sve_or_scalar(self):
        ctx = ExecutionContext(model=make_model(A64FX))
        pool = ctx.supported_variants()
        assert pool, "A64FX must support at least the SVE and novec kernels"
        assert all(v.isa.name in ("SVE", "novec") for v in pool)
        assert any(v.name == "SELL using SVE" for v in pool)
        assert any(v.name == "BETA using SVE" for v in pool)

    def test_autotunes_to_an_sve_kernel_on_the_stencil(self):
        ctx = ExecutionContext(model=make_model(A64FX))
        plan = ctx.best_plan(gray_scott_jacobian(8))
        assert plan.variant.isa.name == "SVE"


class TestShootoutSmoke:
    """The bench module's sweep and gates, on one trimmed family."""

    def test_long_tail_sweep_and_sigma_gate(self):
        from repro.bench.format_shootout import (
            _gate_sigma_sorting,
            _sweep_family,
            families,
        )

        csr = families()["long-tail"]
        ctx = ExecutionContext(model=make_model(KNL_7230), nprocs=1)
        entries = _sweep_family(ctx, "KNL", "long-tail", csr)
        assert entries
        sell = [e for e in entries if e.variant == "SELL using AVX512"]
        assert {e.sigma for e in sell} == {1, 16, 64}
        beta = [e for e in entries if e.variant == "BETA using AVX512"]
        assert beta and all(e.padded_flops == 0 for e in beta)
        gate = _gate_sigma_sorting(entries)
        assert gate["ok"], gate

    def test_families_cover_the_documented_structures(self):
        from repro.bench.format_shootout import families

        mats = families()
        assert set(mats) == {
            "stencil", "banded", "long-tail", "block", "near-empty",
        }
        near_empty = mats["near-empty"]
        lengths = np.diff(near_empty.rowptr)
        assert (lengths == 0).any(), "family must contain empty rows"
