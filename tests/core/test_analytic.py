"""Closed-form counter predictions cross-checked against the engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analytic import (
    counters_match,
    predict_csr_counters,
    predict_sell_counters,
)
from repro.core.dispatch import CSR_AVX512, SELL_AVX, SELL_AVX2, SELL_AVX512
from repro.core.sell import SellMat
from repro.pde.problems import gray_scott_jacobian, irregular_rows, tridiagonal
from repro.simd.isa import AVX512, SCALAR

from ..conftest import make_random_csr

MATRICES = {
    "gray-scott": lambda: gray_scott_jacobian(8),
    "random": lambda: make_random_csr(23, density=0.25, seed=7),
    "irregular": lambda: irregular_rows(24, max_len=12, seed=13),
    "tridiagonal": lambda: tridiagonal(17),
    "with-empty-rows": lambda: make_random_csr(16, density=0.08, seed=12),
}


@pytest.mark.parametrize("matrix_name", sorted(MATRICES))
@pytest.mark.parametrize("variant", [SELL_AVX512, SELL_AVX2, SELL_AVX],
                         ids=lambda v: v.name)
def test_sell_prediction_is_exact(matrix_name, variant):
    """Every counter field, bit for bit, across ISAs and structures."""
    csr = MATRICES[matrix_name]()
    sell = SellMat.from_csr(csr)
    x = np.random.default_rng(1).standard_normal(csr.shape[1])
    _, measured = variant.run(sell, x)
    predicted = predict_sell_counters(sell, variant.isa)
    assert counters_match(predicted, measured) == []


@pytest.mark.parametrize("matrix_name", sorted(MATRICES))
def test_csr_prediction_is_exact(matrix_name):
    csr = MATRICES[matrix_name]()
    x = np.random.default_rng(2).standard_normal(csr.shape[1])
    _, measured = CSR_AVX512.run(csr, x)
    predicted = predict_csr_counters(csr, AVX512)
    assert counters_match(predicted, measured) == []


def test_sorted_sell_prediction_is_exact():
    csr = irregular_rows(32, max_len=10, seed=16)
    sell = SellMat.from_csr(csr, sigma=16)
    x = np.random.default_rng(3).standard_normal(32)
    _, measured = SELL_AVX512.run(sell, x)
    predicted = predict_sell_counters(sell, AVX512)
    assert counters_match(predicted, measured) == []


def test_scalar_isa_rejected():
    sell = SellMat.from_csr(gray_scott_jacobian(4))
    with pytest.raises(ValueError):
        predict_sell_counters(sell, SCALAR)
    with pytest.raises(ValueError):
        predict_csr_counters(gray_scott_jacobian(4), SCALAR)


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=30),
    density=st.floats(min_value=0.0, max_value=0.6),
    seed=st.integers(0, 10_000),
)
def test_predictions_hold_for_arbitrary_structures(m, density, seed):
    """Property form: the closed forms track the kernels everywhere."""
    rng = np.random.default_rng(seed)
    dense = np.where(
        rng.random((m, m)) < density, rng.standard_normal((m, m)), 0.0
    )
    from repro.mat.aij import AijMat

    csr = AijMat.from_dense(dense)
    x = rng.standard_normal(m)

    sell = SellMat.from_csr(csr)
    _, measured = SELL_AVX512.run(sell, x)
    assert counters_match(predict_sell_counters(sell, AVX512), measured) == []

    _, measured_csr = CSR_AVX512.run(csr, x)
    assert counters_match(predict_csr_counters(csr, AVX512), measured_csr) == []
