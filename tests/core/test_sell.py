"""The SELL format: layout, padding, sorting, conversions (paper Sec 5)."""

import numpy as np
import pytest

from repro.core.sell import SellMat
from repro.mat.aij import AijMat
from repro.pde.problems import gray_scott_jacobian, irregular_rows

from ..conftest import make_random_csr


def figure6_matrix() -> AijMat:
    """A small matrix with known uneven row lengths (like Figure 6)."""
    rows = np.array([0, 0, 0, 1, 2, 2, 3, 4, 4, 4, 4, 5, 6, 7, 7])
    cols = np.array([0, 2, 5, 1, 0, 3, 4, 1, 2, 5, 7, 6, 3, 0, 7])
    vals = np.arange(1.0, 16.0)
    return AijMat.from_coo((8, 8), rows, cols, vals)


class TestLayout:
    def test_slice_widths_are_per_slice_maxima(self):
        sell = SellMat.from_csr(figure6_matrix(), slice_height=4)
        # Rows 0-3 have lengths 3,1,2,1 -> width 3; rows 4-7: 4,1,1,2 -> 4.
        assert sell.nslices == 2
        assert sell.slice_width(0) == 3
        assert sell.slice_width(1) == 4

    def test_column_major_slot_positions(self):
        """Element (lane i, column j) of slice s sits at base + j*C + i."""
        csr = figure6_matrix()
        sell = SellMat.from_csr(csr, slice_height=4)
        for s in range(sell.nslices):
            base = int(sell.sliceptr[s])
            for i in range(4):
                row = s * 4 + i
                cols, vals = csr.get_row(row)
                for j in range(cols.shape[0]):
                    slot = base + j * 4 + i
                    assert sell.val[slot] == vals[j]
                    assert sell.colidx[slot] == cols[j]

    def test_padding_reuses_the_rows_last_column(self):
        """Section 5.5: padded indices copy a local nonzero's column."""
        csr = figure6_matrix()
        sell = SellMat.from_csr(csr, slice_height=4)
        # Row 1 has a single entry at column 1; its padded slots (j=1,2)
        # must carry column 1 and value 0.
        base = int(sell.sliceptr[0])
        for j in (1, 2):
            slot = base + j * 4 + 1
            assert sell.val[slot] == 0.0
            assert sell.colidx[slot] == 1

    def test_padded_entries_count(self):
        sell = SellMat.from_csr(figure6_matrix(), slice_height=4)
        # Slice 0: 4*3 slots for 7 nnz -> 5 pads; slice 1: 16 for 8 -> 8.
        assert sell.padded_entries == 13
        assert sell.padding_fraction == pytest.approx(13 / 28)

    def test_trailing_partial_slice_is_padded_to_full_height(self):
        csr = make_random_csr(10, density=0.4, seed=1)
        sell = SellMat.from_csr(csr, slice_height=8)
        assert sell.nslices == 2
        # Slots for 16 logical rows exist even though only 10 are real.
        assert sell.sliceptr[-1] % 8 == 0

    def test_rlen_stores_true_row_lengths(self):
        csr = figure6_matrix()
        sell = SellMat.from_csr(csr)
        assert np.array_equal(sell.rlen, csr.row_lengths())

    def test_storage_is_aligned(self):
        sell = SellMat.from_csr(figure6_matrix())
        assert sell.val.ctypes.data % 64 == 0
        assert sell.colidx.ctypes.data % 64 == 0

    def test_regular_matrix_has_no_padding(self, gray_scott_small):
        """Section 7: Gray-Scott in SELL has very few padded zeros."""
        sell = SellMat.from_csr(gray_scott_small, slice_height=8)
        assert sell.padded_entries == 0

    def test_slice_height_one_is_csr_storage(self):
        """Section 2.5: C=1 makes sliced ELLPACK identical to CSR."""
        csr = figure6_matrix()
        sell = SellMat.from_csr(csr, slice_height=1)
        assert sell.padded_entries == 0
        assert np.array_equal(sell.val, csr.val)
        assert np.array_equal(sell.colidx, csr.colidx)


class TestOperations:
    @pytest.mark.parametrize("c", [1, 2, 4, 8, 16])
    def test_multiply_matches_csr_for_any_height(self, c):
        csr = make_random_csr(21, density=0.3, seed=2)
        x = np.random.default_rng(3).standard_normal(21)
        sell = SellMat.from_csr(csr, slice_height=c)
        assert np.allclose(sell.multiply(x), csr.multiply(x))

    def test_round_trip_to_csr(self):
        csr = figure6_matrix()
        assert SellMat.from_csr(csr, 4).to_csr().equal(csr, tol=0.0)

    def test_diagonal(self, small_csr):
        sell = SellMat.from_csr(small_csr)
        assert np.allclose(sell.diagonal(), small_csr.diagonal())

    def test_memory_bytes_accounts_for_padding(self):
        sell = SellMat.from_csr(figure6_matrix(), 4)
        slots = int(sell.sliceptr[-1])
        expected = slots * 12 + sell.sliceptr.shape[0] * 8 + 8 * 8
        assert sell.memory_bytes() == expected

    def test_empty_matrix(self):
        empty = AijMat.from_coo((0, 0), np.array([]), np.array([]), np.array([]))
        sell = SellMat.from_csr(empty)
        assert sell.nslices == 0
        assert sell.multiply(np.zeros(0)).shape == (0,)


class TestSigmaSorting:
    def test_sorting_reduces_padding_on_irregular_matrices(self):
        csr = irregular_rows(128, max_len=32, seed=4)
        plain = SellMat.from_csr(csr, 8, sigma=1)
        windowed = SellMat.from_csr(csr, 8, sigma=64)
        assert windowed.padded_entries < plain.padded_entries

    def test_sorted_multiply_still_matches(self):
        csr = irregular_rows(100, max_len=24, seed=5)
        x = np.random.default_rng(6).standard_normal(100)
        for sigma in (8, 32, 96):
            sell = SellMat.from_csr(csr, 8, sigma=sigma)
            assert np.allclose(sell.multiply(x), csr.multiply(x)), sigma

    def test_perm_is_a_window_local_permutation(self):
        csr = irregular_rows(64, max_len=16, seed=7)
        sell = SellMat.from_csr(csr, 8, sigma=16)
        assert sell.perm is not None
        for start in range(0, 64, 16):
            window = sell.perm[start : start + 16]
            assert sorted(window.tolist()) == list(range(start, start + 16))

    def test_sorted_round_trip(self):
        csr = irregular_rows(60, max_len=16, seed=8)
        sell = SellMat.from_csr(csr, 4, sigma=12)
        assert sell.to_csr().equal(csr, tol=0.0)

    def test_sigma_must_be_a_multiple_of_the_slice_height(self):
        with pytest.raises(ValueError):
            SellMat.from_csr(figure6_matrix(), 4, sigma=6)

    def test_sigma_one_has_no_permutation(self):
        assert SellMat.from_csr(figure6_matrix()).perm is None


class TestValidation:
    def test_bad_slice_height(self):
        with pytest.raises(ValueError):
            SellMat.from_csr(figure6_matrix(), 0)

    def test_inconsistent_sliceptr_rejected(self):
        csr = figure6_matrix()
        good = SellMat.from_csr(csr, 4)
        bad_ptr = good.sliceptr.copy()
        bad_ptr[1] += 1  # no longer a multiple of the height
        with pytest.raises(ValueError):
            SellMat(
                csr.shape, 4, bad_ptr, good.val, good.colidx, good.rlen
            )
