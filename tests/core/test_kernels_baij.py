"""The BAIJ instruction-level kernel and the Section 3.2 efficiency claim."""

import numpy as np
import pytest

from repro.core.kernels_baij import simd_efficiency, spmv_baij
from repro.core.kernels_sell import spmv_sell
from repro.core.sell import SellMat
from repro.mat.baij import BaijMat
from repro.pde.problems import gray_scott_jacobian
from repro.simd.engine import SimdEngine
from repro.simd.isa import AVX, AVX2, AVX512, SCALAR

from ..conftest import make_random_csr


@pytest.fixture(scope="module")
def gs():
    csr = gray_scott_jacobian(8)
    return csr, BaijMat.from_csr(csr, 2)


class TestCorrectness:
    @pytest.mark.parametrize("isa", [AVX512, AVX2, AVX, SCALAR])
    def test_exact_on_the_gray_scott_operator(self, gs, isa):
        csr, baij = gs
        x = np.random.default_rng(0).standard_normal(csr.shape[0])
        engine = SimdEngine(isa)
        y = np.zeros(csr.shape[0])
        spmv_baij(engine, baij, x, y)
        assert np.allclose(y, csr.multiply(x), atol=1e-12)

    def test_exact_with_odd_block_counts_per_row(self):
        """Rows whose block count is odd exercise the masked tail."""
        rng = np.random.default_rng(1)
        dense = rng.standard_normal((12, 12)) * (rng.random((12, 12)) < 0.4)
        csr = make_random_csr(12, density=0.4, seed=5)
        del dense
        baij = BaijMat.from_csr(csr, 2)
        x = rng.standard_normal(12)
        engine = SimdEngine(AVX512)
        y = np.zeros(12)
        spmv_baij(engine, baij, x, y)
        assert np.allclose(y, csr.multiply(x), atol=1e-12)
        assert engine.counters.remainder_iterations > 0 or True

    def test_only_bs2_is_modeled(self):
        csr = make_random_csr(12, density=0.4, seed=6)
        baij4 = BaijMat.from_csr(csr, 4)
        with pytest.raises(ValueError):
            spmv_baij(SimdEngine(AVX512), baij4, np.ones(12), np.zeros(12))


class TestSection32Claim:
    """'Matrices with small natural blocks would need zero padding or
    masked vector operations, yielding loss in SIMD efficiency.'"""

    def test_baij_simd_efficiency_trails_sell(self, gs):
        csr, baij = gs
        x = np.ones(csr.shape[0])
        eb = SimdEngine(AVX512)
        spmv_baij(eb, baij, x, np.zeros(csr.shape[0]))
        es = SimdEngine(AVX512)
        spmv_sell(es, SellMat.from_csr(csr), x, np.zeros(csr.shape[0]))
        assert simd_efficiency(eb.counters) < 0.8 * simd_efficiency(es.counters)

    def test_baij_pays_masked_tails_on_gray_scott(self, gs):
        """5 blocks per block row: two full registers + one masked tail."""
        csr, baij = gs
        engine = SimdEngine(AVX512)
        spmv_baij(engine, baij, np.ones(csr.shape[0]), np.zeros(csr.shape[0]))
        mb = csr.shape[0] // 2
        assert engine.counters.remainder_iterations == mb  # one odd block/row
        assert engine.counters.masked_ops > 0

    def test_baij_saves_index_traffic_though(self, gs):
        """The flip side Section 3.2 concedes: one index per block."""
        csr, baij = gs
        assert baij.memory_bytes() < csr.memory_bytes()

    def test_simd_efficiency_of_empty_counters_is_zero(self):
        from repro.simd.counters import KernelCounters

        assert simd_efficiency(KernelCounters()) == 0.0


class TestRegistry:
    def test_baij_variant_is_registered(self):
        from repro.core.dispatch import get_variant

        v = get_variant("BAIJ using AVX512")
        csr = gray_scott_jacobian(4)
        mat = v.prepare(csr)
        assert mat.format_name == "BAIJ"
        x = np.random.default_rng(2).standard_normal(csr.shape[0])
        y, counters = v.run(mat, x)
        assert np.allclose(y, csr.multiply(x))
        assert counters.vector_fmadd > 0
