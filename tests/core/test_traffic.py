"""The Section 6 analytic memory-traffic model."""

import pytest

from repro.core.sell import SellMat
from repro.core.traffic import (
    csr_traffic,
    gray_scott_intensity,
    sell_traffic,
    traffic_for,
)
from repro.pde.problems import gray_scott_jacobian, irregular_rows


class TestFormulas:
    def test_csr_is_12nnz_24m_8n(self):
        """The exact Section 6 expression."""
        est = csr_traffic(m=100, n=80, nnz=500)
        assert est.total_bytes == 12 * 500 + 24 * 100 + 8 * 80

    def test_sell_is_12nnz_10m_8n(self):
        est = sell_traffic(m=100, n=80, nnz=500)
        assert est.total_bytes == 12 * 500 + 10 * 100 + 8 * 80

    def test_sell_saves_fourteen_bytes_per_row(self):
        """The formats differ only in per-row metadata: 24m vs 10m."""
        c = csr_traffic(1000, 1000, 10_000).total_bytes
        s = sell_traffic(1000, 1000, 10_000).total_bytes
        assert c - s == 14 * 1000

    def test_flops_are_two_per_nonzero(self):
        assert csr_traffic(10, 10, 55).flops == 110
        assert sell_traffic(10, 10, 55).flops == 110

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            csr_traffic(-1, 10, 10)
        with pytest.raises(ValueError):
            sell_traffic(10, 10, -5)


class TestArithmeticIntensity:
    def test_paper_quotes_0132_for_gray_scott_csr(self):
        """Figure 9: 'The arithmetic intensity ... is around 0.132'."""
        assert gray_scott_intensity("CSR") == pytest.approx(20 / 152)
        assert f"{gray_scott_intensity('CSR'):.3f}" == "0.132"

    def test_sell_intensity_is_higher(self):
        assert gray_scott_intensity("SELL") == pytest.approx(20 / 138)
        assert gray_scott_intensity("SELL") > gray_scott_intensity("CSR")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            gray_scott_intensity("BAIJ")

    def test_aij_is_an_alias_for_csr(self):
        assert gray_scott_intensity("AIJ") == gray_scott_intensity("CSR")


class TestTrafficFor:
    def test_dispatches_on_the_format(self, gray_scott_small):
        m, n = gray_scott_small.shape
        nnz = gray_scott_small.nnz
        assert (
            traffic_for(gray_scott_small).total_bytes
            == csr_traffic(m, n, nnz).total_bytes
        )
        sell = SellMat.from_csr(gray_scott_small)
        assert (
            traffic_for(sell).total_bytes == sell_traffic(m, n, nnz).total_bytes
        )

    def test_padding_is_excluded_by_default(self):
        """Section 6: padded zeros deliberately not counted."""
        csr = irregular_rows(64, max_len=16, seed=1)
        sell = SellMat.from_csr(csr)
        assert sell.padded_entries > 0
        base = traffic_for(sell).total_bytes
        padded = traffic_for(sell, include_padding=True).total_bytes
        assert padded - base == 12 * sell.padded_entries

    def test_intensity_field(self):
        est = csr_traffic(10, 10, 100)
        assert est.arithmetic_intensity == pytest.approx(
            est.flops / est.total_bytes
        )
