"""SELL triangular solves and ILU(0): the future-work kernels."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.core.triangular import (
    SellILU0PC,
    SellTriangular,
    ilu0,
    level_schedule,
    solve_sell_triangular,
)
from repro.ksp.gmres import GMRES
from repro.ksp.pc.ilu import ILU0PC
from repro.mat.aij import AijMat
from repro.pde.problems import gray_scott_jacobian, random_sparse, tridiagonal
from repro.simd.engine import SimdEngine
from repro.simd.isa import AVX, AVX512, SCALAR


@pytest.fixture(scope="module")
def factored():
    a = random_sparse(36, density=0.12, seed=3)
    lower, upper = ilu0(a)
    return a, lower, upper


class TestIlu0:
    def test_factors_have_the_right_triangles(self, factored):
        _, lower, upper = factored
        ld, ud = lower.to_dense(), upper.to_dense()
        assert np.allclose(np.triu(ld, 1), 0.0)
        assert np.allclose(np.diag(ld), 1.0)  # unit lower
        assert np.allclose(np.tril(ud, -1), 0.0)

    def test_matches_the_existing_ilu_preconditioner(self, factored):
        a, lower, upper = factored
        pc = ILU0PC()
        pc.setup(a)
        r = np.random.default_rng(0).standard_normal(a.shape[0])
        y = sla.solve_triangular(lower.to_dense(), r, lower=True,
                                 unit_diagonal=True)
        z = sla.solve_triangular(upper.to_dense(), y, lower=False)
        assert np.allclose(z, pc.apply(r), atol=1e-12)

    def test_exact_lu_on_a_tridiagonal_matrix(self):
        """No fill for tridiagonal: ILU(0) reproduces the matrix exactly."""
        a = tridiagonal(14)
        lower, upper = ilu0(a)
        product = lower.to_dense() @ upper.to_dense()
        assert np.allclose(product, a.to_dense(), atol=1e-12)

    def test_missing_diagonal_rejected(self):
        bad = AijMat.from_coo((2, 2), np.array([0, 1]), np.array([1, 0]),
                              np.ones(2))
        with pytest.raises(ValueError, match="diagonal"):
            ilu0(bad)

    def test_rectangular_rejected(self):
        from tests.conftest import make_random_csr

        with pytest.raises(ValueError):
            ilu0(make_random_csr(4, 5, density=0.5))


class TestLevelSchedule:
    def test_diagonal_matrix_is_a_single_level(self):
        d = AijMat.from_dense(np.diag([1.0, 2.0, 3.0]))
        levels = level_schedule(d, lower=True)
        assert len(levels) == 1
        assert np.array_equal(levels[0], [0, 1, 2])

    def test_dense_lower_triangle_is_fully_serial(self):
        d = AijMat.from_dense(np.tril(np.ones((5, 5))))
        levels = level_schedule(d, lower=True)
        assert len(levels) == 5
        assert all(lvl.size == 1 for lvl in levels)

    def test_levels_partition_the_rows(self, factored):
        _, lower, upper = factored
        for tri, is_lower in ((lower, True), (upper, False)):
            levels = level_schedule(tri, lower=is_lower)
            seen = np.concatenate(levels)
            assert sorted(seen.tolist()) == list(range(tri.shape[0]))

    def test_dependencies_respect_level_order(self, factored):
        _, lower, _ = factored
        levels = level_schedule(lower, lower=True)
        level_of = {}
        for lvl, rows in enumerate(levels):
            for r in rows:
                level_of[int(r)] = lvl
        for i in range(lower.shape[0]):
            cols, _ = lower.get_row(i)
            for j in cols[cols < i]:
                assert level_of[int(j)] < level_of[i]

    def test_upper_triangle_levels_run_backwards(self):
        d = AijMat.from_dense(np.triu(np.ones((4, 4))))
        levels = level_schedule(d, lower=False)
        # Row 3 depends on nothing; row 0 on everything.
        assert 3 in levels[0].tolist()
        assert 0 in levels[-1].tolist()


class TestSellTriangularSolve:
    @pytest.mark.parametrize("c", [1, 2, 4, 8])
    def test_lower_solve_matches_dense(self, factored, c):
        _, lower, _ = factored
        tri = SellTriangular(lower, lower=True, slice_height=c)
        b = np.random.default_rng(1).standard_normal(lower.shape[0])
        x = tri.solve(b)
        ref = sla.solve_triangular(lower.to_dense(), b, lower=True,
                                   unit_diagonal=True)
        assert np.allclose(x, ref, atol=1e-11)

    def test_upper_solve_matches_dense(self, factored):
        _, _, upper = factored
        tri = SellTriangular(upper, lower=False)
        b = np.random.default_rng(2).standard_normal(upper.shape[0])
        ref = sla.solve_triangular(upper.to_dense(), b, lower=False)
        assert np.allclose(tri.solve(b), ref, atol=1e-11)

    @pytest.mark.parametrize("isa", [AVX512, AVX, SCALAR])
    def test_engine_kernel_matches_fast_path(self, factored, isa):
        _, lower, _ = factored
        tri = SellTriangular(lower, lower=True)
        b = np.random.default_rng(3).standard_normal(lower.shape[0])
        ref = tri.solve(b)
        engine = SimdEngine(isa)
        x = np.zeros_like(b)
        solve_sell_triangular(engine, tri, b, x)
        assert np.allclose(x, ref, atol=1e-11)
        assert engine.counters.flops > 0 or isa is SCALAR

    def test_zero_diagonal_rejected(self):
        singular = AijMat.from_dense(np.array([[0.0, 0.0], [1.0, 1.0]]))
        with pytest.raises(ZeroDivisionError):
            SellTriangular(singular, lower=True)

    def test_gray_scott_exposes_the_future_work_problem(self):
        """The diagnostic the paper's caution predicts: banded matrices
        have long dependency chains, so slices run far below occupancy."""
        lower, _ = ilu0(gray_scott_jacobian(8))
        tri = SellTriangular(lower, lower=True)
        spmv_parallelism = tri.shape[0] / 8  # rows per SpMV "wavefront"
        solve_parallelism = tri.mean_level_width / 8
        assert tri.nlevels > 10
        assert solve_parallelism < spmv_parallelism / 4
        assert tri.slice_occupancy < 0.9

    def test_diagonal_matrix_solves_in_one_level_full_occupancy(self):
        d = AijMat.from_dense(np.diag(np.arange(1.0, 17.0)))
        tri = SellTriangular(d, lower=True)
        assert tri.nlevels == 1
        assert tri.slice_occupancy == 1.0
        b = np.arange(1.0, 17.0)
        assert np.allclose(tri.solve(b), np.ones(16))


class TestSellILU0PC:
    def test_matches_the_csr_ilu_preconditioner(self, factored):
        a, _, _ = factored
        csr_pc = ILU0PC()
        csr_pc.setup(a)
        sell_pc = SellILU0PC()
        sell_pc.setup(a)
        r = np.random.default_rng(4).standard_normal(a.shape[0])
        assert np.allclose(sell_pc.apply(r), csr_pc.apply(r), atol=1e-11)

    def test_usable_inside_gmres(self, factored):
        a, _, _ = factored
        b = np.random.default_rng(5).standard_normal(a.shape[0])
        result = GMRES(pc=SellILU0PC(), rtol=1e-10).solve(a, b)
        assert result.reason.converged
        assert np.linalg.norm(a.multiply(result.x) - b) < 1e-6

    def test_apply_before_setup_raises(self):
        with pytest.raises(RuntimeError):
            SellILU0PC().apply(np.ones(3))
