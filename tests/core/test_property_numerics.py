"""Property-based tests on engine arithmetic and the triangular machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simd.engine import SimdEngine
from repro.simd.isa import AVX, AVX2, AVX512
from repro.simd.register import VectorRegister

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@settings(max_examples=50, deadline=None)
@given(
    a=st.lists(finite, min_size=8, max_size=8),
    b=st.lists(finite, min_size=8, max_size=8),
    c=st.lists(finite, min_size=8, max_size=8),
)
def test_engine_fmadd_matches_numpy(a, b, c):
    engine = SimdEngine(AVX512)
    result = engine.fmadd(
        VectorRegister(np.array(a)),
        VectorRegister(np.array(b)),
        VectorRegister(np.array(c)),
    )
    assert np.array_equal(result.data, np.array(a) * np.array(b) + np.array(c))


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(finite, min_size=1, max_size=64),
    seed=st.integers(0, 2**31 - 1),
)
def test_gather_and_emulated_gather_agree(values, seed):
    """Hardware gather and the AVX emulation fetch identical lanes."""
    x = np.array(values, dtype=np.float64)
    rng = np.random.default_rng(seed)
    hw_idx = rng.integers(0, x.shape[0], size=4)
    hw = SimdEngine(AVX2).gather(x, VectorRegister(hw_idx))
    sw = SimdEngine(AVX).emulated_gather(x, VectorRegister(hw_idx))
    assert np.array_equal(hw.data, sw.data)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(finite, min_size=8, max_size=8),
    active=st.integers(min_value=0, max_value=8),
)
def test_reduce_of_masked_load_sums_the_prefix(values, active):
    engine = SimdEngine(AVX512)
    buf = np.array(values, dtype=np.float64)
    reg = engine.masked_load(buf, 0, engine.make_mask(active))
    # NumPy's pairwise summation groups differently for 8 lanes than for
    # the bare prefix, so agreement is to rounding, not bitwise.
    expected = float(buf[:active].sum())
    assert engine.reduce_add(reg) == pytest.approx(expected, rel=1e-12, abs=1e-9)


@st.composite
def lower_triangular(draw, max_dim: int = 20):
    """A random nonsingular lower-triangular CSR matrix."""
    from repro.mat.aij import AijMat

    n = draw(st.integers(min_value=1, max_value=max_dim))
    density = draw(st.floats(min_value=0.0, max_value=0.6))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    dense = np.tril(rng.standard_normal((n, n)) * (rng.random((n, n)) < density), -1)
    dense[np.arange(n), np.arange(n)] = rng.uniform(0.5, 2.0, n) * np.where(
        rng.random(n) < 0.5, -1.0, 1.0
    )
    return AijMat.from_dense(dense)


@settings(max_examples=25, deadline=None)
@given(tri_csr=lower_triangular(), seed=st.integers(0, 1000))
def test_sell_triangular_solve_property(tri_csr, seed):
    """T @ solve(b) == b for arbitrary lower-triangular systems, and the
    level schedule respects every dependency."""
    import scipy.linalg as sla

    from repro.core.triangular import SellTriangular, level_schedule

    n = tri_csr.shape[0]
    b = np.random.default_rng(seed).standard_normal(n)
    tri = SellTriangular(tri_csr, lower=True, slice_height=4)
    x = tri.solve(b)
    ref = sla.solve_triangular(tri_csr.to_dense(), b, lower=True)
    assert np.allclose(x, ref, atol=1e-8 * max(1.0, np.abs(ref).max()))

    levels = level_schedule(tri_csr, lower=True)
    level_of = np.empty(n, dtype=int)
    for lvl, rows in enumerate(levels):
        level_of[rows] = lvl
    for i in range(n):
        cols, _ = tri_csr.get_row(i)
        deps = cols[cols < i]
        if deps.size:
            assert level_of[deps].max() < level_of[i]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), m=st.integers(2, 16), n=st.integers(2, 16))
def test_transpose_fast_paths_property(seed, m, n):
    """csr/sell transpose products equal the dense transpose product."""
    from repro.core.sell import SellMat
    from repro.core.transpose import (
        csr_multiply_transpose,
        sell_multiply_transpose,
    )
    from tests.conftest import make_random_csr

    csr = make_random_csr(m, n, density=0.4, seed=seed % 1000)
    x = np.random.default_rng(seed).standard_normal(m)
    ref = csr.to_dense().T @ x
    assert np.allclose(csr_multiply_transpose(csr, x), ref, atol=1e-10)
    if m == n:
        sell = SellMat.from_csr(csr, slice_height=4)
        assert np.allclose(sell_multiply_transpose(sell, x), ref, atol=1e-10)
