"""ExecutionContext: policy bundling, memoization, and derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.context import ExecutionContext
from repro.core.dispatch import (
    CSR_BASELINE,
    CSR_AVX512,
    CSR_NOVEC,
    SELL_AVX512,
    registered_variants,
)
from repro.core.sell import SellMat
from repro.core.spmv import measure, predict
from repro.machine.perf_model import MemoryMode, make_model
from repro.machine.specs import BROADWELL, KNL_7230
from repro.mat.aij import AijMat
from repro.pde.problems import gray_scott_jacobian

from ..conftest import make_random_csr


def _with_values_scaled(csr: AijMat, factor: float) -> AijMat:
    """A fresh matrix: same sparsity structure, different coefficients."""
    return AijMat(csr.shape, csr.rowptr, csr.colidx, csr.val * factor)


@pytest.fixture
def ctx() -> ExecutionContext:
    return ExecutionContext()


@pytest.fixture
def gs() -> "np.ndarray":
    return gray_scott_jacobian(8)


class TestDefaults:
    def test_defaults_to_knl_flat_mcdram_full_node(self, ctx):
        assert ctx.spec is KNL_7230
        assert ctx.memory_mode is MemoryMode.FLAT_MCDRAM
        assert ctx.nprocs == KNL_7230.cores
        assert ctx.isa.name == "AVX512"

    def test_widest_isa_tracks_the_machine(self):
        bdw = ExecutionContext(model=make_model(BROADWELL))
        assert bdw.isa.name == "AVX2"

    def test_nprocs_validated_against_the_spec(self):
        with pytest.raises(ValueError, match="out of range"):
            ExecutionContext(nprocs=KNL_7230.cores + 1)

    def test_default_variant_resolves_legend_names(self, gs):
        ctx = ExecutionContext(default_variant="SELL using AVX512")
        assert ctx.default_variant is SELL_AVX512
        assert ctx.resolve_variant(gs) is SELL_AVX512

    def test_supports_follows_the_spec_isa_set(self, ctx):
        bdw = ExecutionContext(model=make_model(BROADWELL))
        assert ctx.supports(SELL_AVX512)
        assert not bdw.supports(SELL_AVX512)
        assert bdw.supports(CSR_NOVEC)
        assert SELL_AVX512 not in bdw.supported_variants()


class TestMeasurePredict:
    def test_measure_matches_the_direct_api(self, ctx, gs):
        via_ctx = ctx.measure(SELL_AVX512, gs)
        direct = measure(SELL_AVX512, gs)
        np.testing.assert_array_equal(via_ctx.y, direct.y)
        assert via_ctx.counters == direct.counters

    def test_predict_matches_the_direct_api(self, ctx, gs):
        meas = ctx.measure(CSR_BASELINE, gs)
        via_ctx = ctx.predict(meas, scale=64.0)
        direct = predict(meas, ctx.model, nprocs=ctx.nprocs, scale=64.0)
        assert via_ctx == direct

    def test_measure_is_memoized_per_matrix_values(self, ctx, gs):
        first = ctx.measure(SELL_AVX512, gs)
        assert ctx.measure(SELL_AVX512, gs) is first
        # New coefficients, same structure: the *measurement* must rerun.
        assert (
            ctx.measure(SELL_AVX512, _with_values_scaled(gs, 2.0)) is not first
        )

    def test_explicit_input_vector_bypasses_the_cache(self, ctx, gs):
        x = np.ones(gs.shape[1])
        a = ctx.measure(SELL_AVX512, gs, x=x)
        b = ctx.measure(SELL_AVX512, gs, x=x)
        assert a is not b
        np.testing.assert_allclose(a.y, gs.multiply(x))


class TestAutotuneMemoization:
    def test_best_variant_sweeps_once_per_sparsity_signature(self, ctx, gs):
        first = ctx.best_variant(gs)
        assert ctx.autotune_sweeps == 1
        # Repeated solves on the same structure (fresh objects, new
        # values — every Newton step of the Gray-Scott) hit the cache.
        for newton_step in range(3):
            reassembled = _with_values_scaled(gs, 2.0 + newton_step)
            assert ctx.best_variant(reassembled) is first
        assert ctx.autotune_sweeps == 1
        # A genuinely different structure is a fresh sweep.
        ctx.best_variant(make_random_csr(24, density=0.3, seed=3))
        assert ctx.autotune_sweeps == 2

    def test_best_variant_picks_sell_on_gray_scott(self, ctx, gs):
        assert ctx.best_variant(gs).name == "SELL using AVX512"

    def test_best_variant_honours_an_explicit_candidate_pool(self, ctx, gs):
        pool = (CSR_BASELINE, CSR_AVX512)
        assert ctx.best_variant(gs, candidates=pool) in pool

    def test_best_variant_skips_variants_rejecting_the_matrix(self, ctx):
        # 23x23 cannot be 2x2-blocked: BAIJ must be skipped, not fatal.
        odd = make_random_csr(23, density=0.25, seed=7)
        assert ctx.best_variant(odd) in registered_variants()

    def test_tune_memoized_per_structure(self, ctx, gs):
        first = ctx.tune(gs)
        assert ctx.autotune_sweeps == 1
        assert ctx.tune(gs) is first
        assert ctx.autotune_sweeps == 1


class TestReformat:
    def test_reformat_gray_scott_to_sell(self, gs):
        ctx = ExecutionContext(default_variant=SELL_AVX512)
        mat = ctx.reformat(gs)
        assert isinstance(mat, SellMat)
        x = np.arange(gs.shape[1], dtype=np.float64)
        np.testing.assert_allclose(mat.multiply(x), gs.multiply(x))

    def test_reformat_respects_context_slice_height(self, gs):
        ctx = ExecutionContext(default_variant=SELL_AVX512, slice_height=16)
        assert ctx.reformat(gs).slice_height == 16


class TestDerivation:
    def test_with_nprocs_shares_the_measurement_cache(self, ctx, gs):
        meas = ctx.measure(SELL_AVX512, gs)
        derived = ctx.with_nprocs(4)
        assert derived.nprocs == 4
        assert derived.measure(SELL_AVX512, gs) is meas

    def test_with_nprocs_changes_the_prediction(self, ctx, gs):
        meas = ctx.measure(CSR_BASELINE, gs)
        few = ctx.with_nprocs(4).predict(meas, scale=4096.0)
        many = ctx.predict(meas, scale=4096.0)
        assert few.gflops < many.gflops

    def test_with_model_rederives_the_isa(self, ctx):
        bdw = ctx.with_model(make_model(BROADWELL))
        assert bdw.isa.name == "AVX2"
        assert bdw.nprocs == BROADWELL.cores

    def test_derived_tuning_caches_start_fresh(self, ctx, gs):
        ctx.best_variant(gs)
        derived = ctx.with_model(make_model(BROADWELL))
        derived.best_variant(gs)
        assert derived.autotune_sweeps == 1
