"""ISA descriptions: lane widths, feature flags, lookup."""

import pytest

from repro.simd.isa import (
    AVX,
    AVX2,
    AVX512,
    ISAS,
    SCALAR,
    SSE2,
    UnsupportedInstructionError,
    get_isa,
)


class TestLaneWidths:
    def test_avx512_has_eight_double_lanes(self):
        assert AVX512.lanes(8) == 8

    def test_avx_and_avx2_have_four_double_lanes(self):
        assert AVX.lanes(8) == 4
        assert AVX2.lanes(8) == 4

    def test_sse2_has_two_double_lanes(self):
        assert SSE2.lanes(8) == 2

    def test_scalar_has_one_lane(self):
        assert SCALAR.lanes(8) == 1

    def test_int32_lanes_double_the_float64_lanes(self):
        assert AVX512.lanes(4) == 16
        assert AVX.lanes(4) == 8

    def test_vector_bytes(self):
        assert AVX512.vector_bytes == 64
        assert AVX.vector_bytes == 32

    def test_is_vector_flag(self):
        assert AVX512.is_vector and AVX.is_vector
        assert not SCALAR.is_vector


class TestFeatureFlags:
    def test_avx_lacks_gather_and_fma(self):
        """Paper Section 5.5: AVX has neither gather nor fmadd."""
        assert not AVX.has_gather
        assert not AVX.has_fma

    def test_avx2_adds_gather_and_fma(self):
        assert AVX2.has_gather and AVX2.has_fma

    def test_only_avx512_has_masks(self):
        assert AVX512.has_masks
        assert not AVX2.has_masks
        assert not AVX.has_masks

    def test_require_passes_on_supported_feature(self):
        AVX512.require("gather")
        AVX512.require("fma")
        AVX512.require("masks")

    def test_require_raises_on_missing_feature(self):
        with pytest.raises(UnsupportedInstructionError, match="gather"):
            AVX.require("gather")
        with pytest.raises(UnsupportedInstructionError, match="masks"):
            AVX2.require("masks")

    def test_require_unknown_feature_is_a_key_error(self):
        with pytest.raises(KeyError):
            AVX512.require("teleport")


class TestLookup:
    def test_lookup_is_case_insensitive(self):
        assert get_isa("avx512") is AVX512
        assert get_isa("AVX2") is AVX2
        assert get_isa("Novec") is SCALAR

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="AVX"):
            get_isa("AVX1024")

    def test_registry_contains_all_six(self):
        assert set(ISAS) == {"novec", "SSE2", "AVX", "AVX2", "AVX512", "SVE"}
