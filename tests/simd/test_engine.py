"""The executing SIMD engine: semantics, validation, and accounting."""

import numpy as np
import pytest

from repro.memory.spaces import aligned_alloc
from repro.simd.alignment import AlignmentFault
from repro.simd.engine import SimdEngine
from repro.simd.isa import AVX, AVX2, AVX512, SCALAR, UnsupportedInstructionError
from repro.simd.register import LaneMismatchError, VectorRegister


@pytest.fixture
def engine() -> SimdEngine:
    return SimdEngine(AVX512)


@pytest.fixture
def buf() -> np.ndarray:
    b = aligned_alloc(32, np.float64, 64)
    b[:] = np.arange(32, dtype=np.float64)
    return b


class TestLoadsStores:
    def test_load_reads_lanes_and_counts(self, engine, buf):
        r = engine.load(buf, 4)
        assert np.array_equal(r.data, np.arange(4, 12))
        assert engine.counters.vector_load == 1
        assert engine.counters.bytes_loaded == 64

    def test_load_overrun_raises(self, engine, buf):
        with pytest.raises(IndexError):
            engine.load(buf, 30)

    def test_load_copies_do_not_alias(self, engine, buf):
        r = engine.load(buf, 0)
        buf[0] = 99.0
        assert r.data[0] == 0.0

    def test_aligned_load_counts_the_alignment(self, engine, buf):
        engine.load_aligned(buf, 0)
        assert engine.counters.vector_load_aligned == 1

    def test_aligned_load_on_misaligned_address_degrades(self, engine, buf):
        engine.load_aligned(buf, 3)  # 24-byte offset: not 64-aligned
        assert engine.counters.vector_load == 1
        assert engine.counters.vector_load_aligned == 0

    def test_strict_alignment_faults(self, buf):
        """The model of the 16-byte-alignment hang (Section 3.1)."""
        engine = SimdEngine(AVX512, strict_alignment=True)
        with pytest.raises(AlignmentFault):
            engine.load_aligned(buf, 3)

    def test_index_load_charges_four_bytes_per_lane(self, engine):
        idx = np.arange(16, dtype=np.int32)
        engine.load_index(idx, 0)
        assert engine.counters.bytes_loaded == 8 * 4

    def test_store_writes_and_counts(self, engine, buf):
        out = np.zeros(16)
        engine.store(out, 8, engine.set1(5.0))
        assert np.all(out[8:16] == 5.0) and np.all(out[:8] == 0.0)
        assert engine.counters.vector_store == 1
        assert engine.counters.bytes_stored == 64

    def test_store_overrun_raises(self, engine):
        with pytest.raises(IndexError):
            engine.store(np.zeros(4), 0, SimdEngine(AVX512).set1(1.0))

    def test_store_aligned_strict_faults(self):
        engine = SimdEngine(AVX512, strict_alignment=True)
        out = aligned_alloc(16, np.float64, 64)
        engine.store_aligned(out, 0, engine.set1(1.0))  # fine
        with pytest.raises(AlignmentFault):
            engine.store_aligned(out, 1, engine.set1(1.0))

    def test_prefetch_counts_only(self, engine, buf):
        engine.prefetch(buf, 0)
        assert engine.counters.prefetch == 1
        assert engine.counters.bytes_loaded == 0


class TestGathers:
    def test_gather_semantics_and_per_lane_cost(self, engine, buf):
        idx = VectorRegister(np.array([0, 2, 4, 6, 8, 10, 12, 14]))
        r = engine.gather(buf, idx)
        assert np.array_equal(r.data, buf[::2][:8])
        assert engine.counters.vector_gather == 1
        assert engine.counters.gather_lanes == 8
        assert engine.counters.bytes_loaded == 64

    def test_gather_requires_hardware_support(self, buf):
        engine = SimdEngine(AVX)
        idx = VectorRegister(np.arange(4))
        with pytest.raises(UnsupportedInstructionError):
            engine.gather(buf, idx)

    def test_emulated_gather_counts_inserts_not_gathers(self, buf):
        engine = SimdEngine(AVX)
        idx = VectorRegister(np.array([3, 1, 4, 1]))
        r = engine.emulated_gather(buf, idx)
        assert np.array_equal(r.data, buf[[3, 1, 4, 1]])
        assert engine.counters.vector_gather == 0
        assert engine.counters.emulated_gather_lanes == 4
        assert engine.counters.vector_insert == 3  # 2 merges + 1 vinsertf128

    def test_gather_auto_picks_hardware_when_available(self, buf):
        hw = SimdEngine(AVX2)
        hw.gather_auto(buf, VectorRegister(np.arange(4)))
        assert hw.counters.vector_gather == 1
        sw = SimdEngine(AVX)
        sw.gather_auto(buf, VectorRegister(np.arange(4)))
        assert sw.counters.vector_gather == 0
        assert sw.counters.emulated_gather_lanes == 4

    def test_gather_lane_width_must_match(self, engine, buf):
        with pytest.raises(ValueError):
            engine.gather(buf, VectorRegister(np.arange(4)))


class TestMasks:
    def test_masks_require_avx512(self):
        with pytest.raises(UnsupportedInstructionError):
            SimdEngine(AVX2).make_mask(2)

    def test_mask_population_bounds(self, engine):
        with pytest.raises(ValueError):
            engine.make_mask(9)
        assert engine.make_mask(0).popcount == 0
        assert engine.make_mask(8).popcount == 8

    def test_masked_load_zeroes_inactive_lanes(self, engine, buf):
        mask = engine.make_mask(3)
        r = engine.masked_load(buf, 10, mask)
        assert np.array_equal(r.data[:3], buf[10:13])
        assert np.all(r.data[3:] == 0.0)
        assert engine.counters.bytes_loaded == 3 * 8

    def test_masked_gather_only_touches_active_lanes(self, engine):
        x = np.arange(10, dtype=np.float64)
        # Inactive lanes carry an out-of-range index: must not be read.
        idx = VectorRegister(np.array([1, 2, 3, 999, 999, 999, 999, 999]))
        mask = engine.make_mask(3)
        r = engine.masked_gather(x, idx, mask)
        assert np.array_equal(r.data[:3], [1.0, 2.0, 3.0])
        assert np.all(r.data[3:] == 0.0)
        assert engine.counters.gather_lanes == 3

    def test_masked_store_leaves_inactive_lanes(self, engine):
        out = np.full(8, -1.0)
        engine.masked_store(out, 0, engine.set1(2.0), engine.make_mask(5))
        assert np.all(out[:5] == 2.0) and np.all(out[5:] == -1.0)
        assert engine.counters.bytes_stored == 5 * 8

    def test_masked_fmadd_passes_through_inactive_lanes(self, engine):
        a = engine.set1(2.0)
        b = engine.set1(3.0)
        c = engine.set1(1.0)
        r = engine.masked_fmadd(a, b, c, engine.make_mask(2))
        assert np.array_equal(r.data[:2], [7.0, 7.0])
        assert np.all(r.data[2:] == 1.0)
        assert engine.counters.flops == 4  # two active lanes, two flops each

    def test_masked_fmadd_flop_count_is_popcount_based(self):
        engine = SimdEngine(AVX512)
        r = engine.masked_fmadd(
            engine.set1(1.0), engine.set1(1.0), engine.setzero(), engine.make_mask(5)
        )
        assert engine.counters.flops == 10
        assert r.data.sum() == 5.0


class TestArithmetic:
    def test_fmadd_math_and_flops(self, engine):
        r = engine.fmadd(engine.set1(2.0), engine.set1(3.0), engine.set1(1.0))
        assert np.all(r.data == 7.0)
        assert engine.counters.vector_fmadd == 1
        assert engine.counters.flops == 16

    def test_fmadd_requires_fma(self):
        engine = SimdEngine(AVX)
        with pytest.raises(UnsupportedInstructionError):
            engine.fmadd(engine.set1(1.0), engine.set1(1.0), engine.set1(1.0))

    def test_mul_add_equals_fmadd_numerically(self):
        avx = SimdEngine(AVX)
        a, b, c = avx.set1(1.5), avx.set1(-2.0), avx.set1(0.25)
        split = avx.mul_add(a, b, c)
        fused = SimdEngine(AVX2).fmadd(
            SimdEngine(AVX2).set1(1.5),
            SimdEngine(AVX2).set1(-2.0),
            SimdEngine(AVX2).set1(0.25),
        )
        assert split.data[0] == fused.data[0] == pytest.approx(-2.75)
        assert avx.counters.vector_mul == 1 and avx.counters.vector_add == 1

    def test_fmadd_auto_dispatches_by_isa(self):
        for isa, fused in ((AVX, False), (AVX2, True), (AVX512, True)):
            e = SimdEngine(isa)
            e.fmadd_auto(e.set1(1.0), e.set1(1.0), e.set1(0.0))
            assert (e.counters.vector_fmadd == 1) is fused

    def test_lane_mismatch_raises(self):
        e8 = SimdEngine(AVX512)
        e4 = SimdEngine(AVX2)
        with pytest.raises(LaneMismatchError):
            e8.fmadd(e8.set1(1.0), e4.set1(1.0), e8.set1(0.0))

    def test_reduce_add(self, engine):
        r = VectorRegister(np.arange(8, dtype=np.float64))
        assert engine.reduce_add(r) == 28.0
        assert engine.counters.vector_reduce == 1

    def test_setzero(self, engine):
        assert np.all(engine.setzero().data == 0.0)
        assert engine.counters.vector_set == 1


class TestScalarOps:
    def test_scalar_roundtrip_and_counts(self):
        e = SimdEngine(SCALAR)
        buf = np.array([1.0, 2.0, 3.0])
        out = np.zeros(3)
        v = e.scalar_load(buf, 1)
        acc = e.scalar_fma(v, 10.0, 0.5)
        e.scalar_store(out, 2, acc)
        assert out[2] == 20.5
        assert e.counters.scalar_load == 1
        assert e.counters.scalar_fma == 1
        assert e.counters.scalar_store == 1
        assert e.counters.flops == 2

    def test_independent_scalar_ops_count_separately(self):
        e = SimdEngine(AVX512)
        buf = np.array([4.0])
        e.scalar_load_indep(buf, 0)
        e.scalar_fma_indep(1.0, 2.0, 3.0)
        assert e.counters.scalar_load_indep == 1
        assert e.counters.scalar_fma_indep == 1
        assert e.counters.scalar_load == 0
        assert e.counters.scalar_fma == 0
        assert e.counters.flops == 2
