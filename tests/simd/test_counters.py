"""Counter arithmetic: accumulation, scaling, derived quantities."""

from dataclasses import fields

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simd.counters import KernelCounters


def make(**kwargs) -> KernelCounters:
    c = KernelCounters()
    for k, v in kwargs.items():
        setattr(c, k, v)
    return c


class TestArithmetic:
    def test_add_is_fieldwise(self):
        a = make(vector_load=3, flops=10, bytes_loaded=100)
        b = make(vector_load=1, vector_store=2, bytes_loaded=50)
        c = a + b
        assert c.vector_load == 4
        assert c.vector_store == 2
        assert c.flops == 10
        assert c.bytes_loaded == 150

    def test_add_leaves_operands_untouched(self):
        a = make(vector_load=3)
        b = make(vector_load=1)
        _ = a + b
        assert a.vector_load == 3 and b.vector_load == 1

    def test_iadd_mutates_in_place(self):
        a = make(scalar_fma=5)
        a += make(scalar_fma=2)
        assert a.scalar_fma == 7

    def test_add_with_non_counter_is_not_implemented(self):
        with pytest.raises(TypeError):
            _ = make() + 3

    def test_reset_zeroes_everything(self):
        a = make(vector_load=3, flops=10)
        a.reset()
        assert all(getattr(a, f.name) == 0 for f in fields(a))

    def test_copy_is_independent(self):
        a = make(vector_gather=4)
        b = a.copy()
        b.vector_gather = 9
        assert a.vector_gather == 4


class TestScaling:
    def test_scaled_multiplies_every_field(self):
        a = make(vector_load=3, bytes_loaded=100, flops=7)
        b = a.scaled(4.0)
        assert b.vector_load == 12
        assert b.bytes_loaded == 400
        assert b.flops == 28

    def test_scaled_rounds_fractional_results(self):
        a = make(vector_load=3)
        assert a.scaled(0.5).vector_load == 2  # banker's rounding of 1.5

    def test_negative_scale_raises(self):
        with pytest.raises(ValueError):
            make().scaled(-1.0)


class TestDerived:
    def test_total_bytes(self):
        assert make(bytes_loaded=30, bytes_stored=12).total_bytes == 42

    def test_arithmetic_intensity(self):
        c = make(flops=20, bytes_loaded=100, bytes_stored=52)
        assert c.arithmetic_intensity == pytest.approx(20 / 152)

    def test_arithmetic_intensity_of_empty_counters_is_zero(self):
        assert KernelCounters().arithmetic_intensity == 0.0

    def test_total_vector_instructions_excludes_scalar(self):
        c = make(vector_load=2, vector_fmadd=3, scalar_load=100, masked_ops=5)
        assert c.total_vector_instructions == 5

    def test_as_dict_roundtrip(self):
        c = make(vector_load=2, flops=4)
        d = c.as_dict()
        assert d["vector_load"] == 2 and d["flops"] == 4
        assert len(d) == len(fields(c))


@given(factor=st.integers(min_value=0, max_value=1000))
def test_integer_scaling_is_exact(factor):
    a = make(vector_load=3, gather_lanes=17, flops=11)
    b = a.scaled(factor)
    assert b.vector_load == 3 * factor
    assert b.gather_lanes == 17 * factor
    assert b.flops == 11 * factor
