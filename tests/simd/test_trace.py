"""Unit tests for the trace recorder and the batched replayer."""

import numpy as np
import pytest

from repro.simd.isa import AVX512
from repro.simd.register import VectorRegister
from repro.simd.replay import compile_trace
from repro.simd.trace import TracedFloat, TracedRegister, TraceError, TraceRecorder


def recorder() -> TraceRecorder:
    return TraceRecorder(AVX512)


class TestProvenance:
    def test_registers_and_scalars_carry_trace_ids(self):
        rec = recorder()
        buf = np.arange(8, dtype=np.float64)
        rec.bind("buf", buf)
        reg = rec.load(buf, 0)
        assert isinstance(reg, TracedRegister)
        total = rec.reduce_add(reg)
        assert isinstance(total, TracedFloat)
        assert float(total) == float(buf.sum())

    def test_traced_float_is_a_float(self):
        """Kernel arithmetic must flow through untouched."""
        value = TracedFloat(2.5, 0)
        assert value + 1.0 == 3.5
        assert isinstance(value + 1.0, float)


class TestBufferBinding:
    def test_store_to_unbound_buffer_raises(self):
        rec = recorder()
        y = np.zeros(8)
        reg = rec.setzero()
        with pytest.raises(TraceError):
            rec.store(y, 0, reg)

    def test_unbound_read_only_array_is_snapshotted(self):
        rec = recorder()
        stray = np.arange(8, dtype=np.float64)
        rec.load(stray, 0)
        consts = [s for s in rec.buffers if not s.is_named]
        assert len(consts) == 1
        assert np.array_equal(consts[0].const, stray)

    def test_contiguous_multidim_buffer_binds_as_flat_view(self):
        rec = recorder()
        buf = np.arange(16, dtype=np.float64).reshape(4, 4)
        rec.bind("buf", buf)
        reg = rec.load(buf.reshape(-1), 8)
        assert np.array_equal(reg.data, np.arange(8, 16))
        assert rec.buffers[0].name == "buf"

    def test_non_contiguous_buffer_rejected(self):
        rec = recorder()
        buf = np.arange(32, dtype=np.float64).reshape(4, 8)[:, ::2]
        with pytest.raises(TraceError):
            rec.bind("buf", buf)

    def test_rebinding_same_array_under_new_name_raises(self):
        rec = recorder()
        buf = np.zeros(8)
        rec.bind("a", buf)
        with pytest.raises(TraceError):
            rec.bind("b", buf)


def record_axpy_like(rec, val, x, y):
    """A miniature kernel: y[0:8] = val * gathered(x) summed pairwise."""
    vec_vals = rec.load(val, 0)
    idx = VectorRegister(np.arange(8, dtype=np.int64)[::-1].copy())
    vec_x = rec.gather(x, idx)
    acc = rec.fmadd(vec_vals, vec_x, rec.setzero())
    rec.store(y, 0, acc)


class TestReplay:
    def test_replay_binds_fresh_buffers(self):
        rec = recorder()
        val = np.linspace(1.0, 2.0, 8)
        x = np.linspace(-1.0, 1.0, 8)
        y = np.zeros(8)
        rec.bind_buffers({"val": val, "x": x, "y": y})
        record_axpy_like(rec, val, x, y)
        trace = compile_trace(rec)

        val2 = np.linspace(3.0, 5.0, 8)
        x2 = np.linspace(2.0, 4.0, 8)
        y2 = np.zeros(8)
        trace.replay({"val": val2, "x": x2, "y": y2})
        assert np.array_equal(y2, val2 * x2[::-1])

    def test_replay_missing_buffer_raises(self):
        rec = recorder()
        val, x, y = np.ones(8), np.ones(8), np.zeros(8)
        rec.bind_buffers({"val": val, "x": x, "y": y})
        record_axpy_like(rec, val, x, y)
        trace = compile_trace(rec)
        with pytest.raises(TraceError):
            trace.replay({"val": val, "x": x})

    def test_replay_shape_mismatch_raises(self):
        rec = recorder()
        val, x, y = np.ones(8), np.ones(8), np.zeros(8)
        rec.bind_buffers({"val": val, "x": x, "y": y})
        record_axpy_like(rec, val, x, y)
        trace = compile_trace(rec)
        with pytest.raises(TraceError):
            trace.replay({"val": np.ones(16), "x": x, "y": y})

    def test_counters_are_returned_as_a_copy(self):
        rec = recorder()
        val, x, y = np.ones(8), np.ones(8), np.zeros(8)
        rec.bind_buffers({"val": val, "x": x, "y": y})
        record_axpy_like(rec, val, x, y)
        trace = compile_trace(rec)
        first = trace.replay({"val": val, "x": x, "y": y})
        first.vector_fmadd += 999
        second = trace.replay({"val": val, "x": x, "y": y})
        assert second.vector_fmadd == rec.counters.vector_fmadd

    def test_batching_collapses_independent_ops(self):
        """Many independent load/FMA chains become a handful of steps."""
        rec = recorder()
        n = 64
        val = np.arange(8 * n, dtype=np.float64)
        y = np.zeros(8 * n)
        rec.bind_buffers({"val": val, "y": y})
        for i in range(n):
            reg = rec.load(val, 8 * i)
            acc = rec.fmadd(reg, reg, rec.setzero())
            rec.store(y, 8 * i, acc)
        trace = compile_trace(rec)
        assert trace.nops == 4 * n
        assert trace.nsteps <= 4
        trace.replay({"val": val, "y": y})
        assert np.array_equal(y, val * val)

    def test_write_after_read_hazard_is_ordered(self):
        """A store to a cell must not overtake an earlier load of it."""
        rec = recorder()
        buf = np.arange(8, dtype=np.float64)
        rec.bind("buf", buf)
        reg = rec.load(buf, 0)              # reads buf[0:8]
        doubled = rec.add(reg, reg)
        rec.store(buf, 0, doubled)          # writes buf[0:8]
        reg2 = rec.load(buf, 0)             # must see the doubled values
        rec.store(buf, 0, rec.add(reg2, reg2))
        trace = compile_trace(rec)
        fresh = np.arange(8, dtype=np.float64)
        trace.replay({"buf": fresh})
        assert np.array_equal(fresh, 4 * np.arange(8))
