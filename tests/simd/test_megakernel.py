"""Megakernel fusion: bit-identical whole-matrix passes, or clean fallback.

The megakernel compiler (:mod:`repro.simd.megakernel`) mines a compiled
trace for lockstep FMA chains and fuses each run into one gather-plan +
one fused multiply-accumulate sweep.  Its contract is the trace layer's,
unchanged: ``np.array_equal`` outputs and identical counters against
plain replay for *every* registered variant over the full structure
panel — fusion may only change how many NumPy dispatches a replay costs,
never a bit of the answer.  Traces with no minable chain raise
:class:`FusionError` and the caller keeps plain replay.
"""

import numpy as np
import pytest

from repro.analysis import lint_megakernel
from repro.core.context import ExecutionContext
from repro.core.dispatch import ALL_VARIANTS, get_variant
from repro.mat.aij import AijMat
from repro.memory.spaces import aligned_alloc
from repro.pde.problems import gray_scott_jacobian, irregular_rows
from repro.simd.isa import AVX512
from repro.simd.megakernel import FusionError, compile_megakernel
from repro.simd.replay import compile_trace
from repro.simd.trace import TraceError, TraceRecorder

from ..conftest import make_random_csr

#: Same structure panel as tests/core/test_trace_replay.py — the
#: equivalence pin must hold on every store path plain replay covers.
STRUCTURES = {
    "stencil": (lambda: gray_scott_jacobian(6), 8, 1),
    "random": (lambda: make_random_csr(24, density=0.25, seed=3), 8, 1),
    "partial-slice": (
        lambda: make_random_csr(19, n=24, density=0.3, seed=5),
        8,
        1,
    ),
    "sorted-sell": (lambda: irregular_rows(26, max_len=9, seed=8), 8, 16),
}


def revalued(csr: AijMat, seed: int) -> AijMat:
    """Same sparsity structure, fresh random values — a "reassembly"."""
    vals = np.random.default_rng(seed).standard_normal(csr.val.shape[0])
    return AijMat(csr.shape, csr.rowptr, csr.colidx, vals)


@pytest.mark.parametrize("variant_name", sorted(ALL_VARIANTS))
@pytest.mark.parametrize("structure", sorted(STRUCTURES))
def test_megakernel_matches_plain_replay_bit_for_bit(variant_name, structure):
    """Fused replay == plain replay (y and counters) across reassembly.

    Combos whose traces carry no minable chain must raise
    :class:`FusionError` — the dispatch layer's signal to stay on plain
    replay — rather than fuse incorrectly or crash.
    """
    variant = ALL_VARIANTS[variant_name]
    factory, c, s = STRUCTURES[structure]
    csr1 = factory()
    if variant.fmt == "BAIJ" and (csr1.shape[0] % 2 or csr1.shape[1] % 2):
        pytest.skip("BAIJ(bs=2) needs even dimensions")
    rng = np.random.default_rng(17)
    x1 = rng.standard_normal(csr1.shape[1])
    mat1 = variant.prepare(csr1, slice_height=c, sigma=s)
    trace, _, _ = variant.record(mat1, x1)

    try:
        mega = compile_megakernel(trace)
    except FusionError:
        return  # unfusable: plain replay remains the tier for this combo

    # Fused replay on the recording matrix.
    y_plain, counters_plain = variant.replay(trace, mat1, x1)
    y_mega, counters_mega = variant.replay(mega, mat1, x1)
    assert np.array_equal(y_plain, y_mega), (variant_name, structure)
    assert counters_plain.as_dict() == counters_mega.as_dict()

    # And across reassembly: new values, new input, same structure.
    csr2 = revalued(csr1, seed=23)
    mat2 = variant.prepare(csr2, slice_height=c, sigma=s)
    x2 = rng.standard_normal(csr2.shape[1])
    y_plain2, counters_plain2 = variant.replay(trace, mat2, x2)
    y_mega2, counters_mega2 = variant.replay(mega, mat2, x2)
    assert np.array_equal(y_plain2, y_mega2), (variant_name, structure)
    assert counters_plain2.as_dict() == counters_mega2.as_dict()
    assert np.allclose(y_mega2, csr2.multiply(x2), atol=1e-12)

    # The fusion must actually shrink the dispatch count, cover the
    # source program exactly, and lint clean under the VEC05x passes.
    assert mega.regions
    assert mega.nsteps < mega.source_nsteps
    plain_steps = sum(
        len(seg) for tag, seg in mega.segments if tag == "steps"
    )
    assert plain_steps + mega.fused_steps == mega.source_nsteps
    assert lint_megakernel(mega) == []


def test_smoke_variant_fuses_whole_matrix():
    """The paper's headline kernel fuses its entire batched program."""
    variant = get_variant("SELL using AVX512")
    csr = gray_scott_jacobian(8)
    mat = variant.prepare(csr)
    x = np.random.default_rng(3).standard_normal(csr.shape[1])
    trace, _, _ = variant.record(mat, x)
    mega = compile_megakernel(trace)
    assert len(mega.regions) == 1
    assert mega.fused_steps == mega.source_nsteps  # nothing left unfused
    assert mega.nsteps == 1  # one whole-matrix pass
    # The absorbed loads are the wide register ids: the replay register
    # file shrinks accordingly.
    assert 0 <= mega.nregs_used < trace.nregs


def test_unfusable_trace_raises_fusion_error():
    """A program with no FMA chain is not a megakernel candidate."""
    eng = TraceRecorder(AVX512)
    val = aligned_alloc(2 * eng.lanes, np.float64, 64)
    val[:] = np.arange(2 * eng.lanes, dtype=np.float64)
    out = aligned_alloc(2 * eng.lanes, np.float64, 64)
    eng.bind("val", val)
    eng.bind("out", out)
    eng.store(out, 0, eng.load(val, 0))  # load/store, no chain anywhere
    trace = compile_trace(eng)
    with pytest.raises(FusionError):
        compile_megakernel(trace)


def test_min_levels_floor_rejects_short_chains():
    """Chains shorter than ``min_levels`` stay on plain replay."""
    variant = get_variant("SELL using AVX512")
    csr = gray_scott_jacobian(6)
    mat = variant.prepare(csr)
    x = np.random.default_rng(5).standard_normal(csr.shape[1])
    trace, _, _ = variant.record(mat, x)
    mega = compile_megakernel(trace)
    with pytest.raises(FusionError):
        compile_megakernel(trace, min_levels=mega.regions[0].levels + 1)


def test_megakernel_rejects_structure_mismatch():
    """Fused replay keeps the trace layer's structure guard."""
    variant = get_variant("SELL using AVX512")
    csr = gray_scott_jacobian(4)
    other = gray_scott_jacobian(6)
    x = np.random.default_rng(0).standard_normal(csr.shape[1])
    mat = variant.prepare(csr)
    trace, _, _ = variant.record(mat, x)
    mega = compile_megakernel(trace)
    other_mat = variant.prepare(other)
    other_x = np.random.default_rng(1).standard_normal(other.shape[1])
    with pytest.raises(TraceError):
        variant.replay(mega, other_mat, other_x)


def test_counters_are_the_recorded_ones():
    """Replay returns a *copy* of the recorded counters, never a view."""
    variant = get_variant("SELL using AVX512")
    csr = gray_scott_jacobian(6)
    mat = variant.prepare(csr)
    x = np.random.default_rng(9).standard_normal(csr.shape[1])
    trace, _, counters_rec = variant.record(mat, x)
    mega = compile_megakernel(trace)
    _, c1 = variant.replay(mega, mat, x)
    _, c2 = variant.replay(mega, mat, x)
    assert c1.as_dict() == counters_rec.as_dict() == c2.as_dict()
    assert c1 is not c2


class TestContextTiering:
    def test_megakernel_context_matches_plain_replay_context(self):
        csr = gray_scott_jacobian(5)
        fused = ExecutionContext(use_megakernels=True)
        plain = ExecutionContext(use_megakernels=False)
        for name in ("SELL using AVX512", "CSR using AVX512", "CSR baseline"):
            # Second measure per context goes through the replay tier.
            for ctx in (fused, plain):
                ctx.measure(name, csr)
            m_f = fused.measure(name, csr, x=np.full(csr.shape[1], 0.5))
            m_p = plain.measure(name, csr, x=np.full(csr.shape[1], 0.5))
            assert np.array_equal(m_f.y, m_p.y), name
            assert m_f.counters.as_dict() == m_p.counters.as_dict()
        assert fused.compiler_tier == "megakernel"
        assert plain.compiler_tier == "replay"
        assert ExecutionContext(use_traces=False).compiler_tier == "interpret"

    def test_unfusable_verdict_is_memoized_not_fatal(self):
        """A trace the compiler rejects measures fine and memoizes None."""
        ctx = ExecutionContext(use_megakernels=True)
        csr = gray_scott_jacobian(5)
        variant = "SELL using AVX512"
        ctx.measure(variant, csr)

        from repro.core import context as context_mod

        calls = []
        original = context_mod.ExecutionContext._compile_megakernel

        def counting(trace):
            calls.append(1)
            return original(trace)

        ctx2 = ExecutionContext(use_megakernels=True)
        ctx2._compile_megakernel = counting
        ctx2.measure(variant, csr)
        x = np.full(csr.shape[1], 0.25)
        m1 = ctx2.measure(variant, csr, x=x)
        m2 = ctx2.measure(variant, csr, x=x + 1.0)
        assert len(calls) == 1  # the verdict (fusable or not) is memoized
        assert np.allclose(m1.y, csr.multiply(x), atol=1e-12)
        assert m2 is not m1
