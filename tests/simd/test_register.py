"""Vector and mask register semantics."""

import numpy as np
import pytest

from repro.simd.register import (
    LaneMismatchError,
    MaskRegister,
    VectorRegister,
    check_lanes,
)


class TestVectorRegister:
    def test_lane_and_dtype_exposure(self):
        r = VectorRegister(np.arange(8, dtype=np.float64))
        assert r.lanes == 8
        assert r.dtype == np.float64

    def test_rejects_multidimensional_data(self):
        with pytest.raises(ValueError):
            VectorRegister(np.zeros((2, 4)))

    def test_copy_is_deep(self):
        src = np.arange(4, dtype=np.float64)
        r = VectorRegister(src)
        c = r.copy()
        src[0] = 99.0
        assert r.data[0] == 99.0  # register views its source...
        assert c.data[0] == 0.0   # ...but the copy does not


class TestMaskRegister:
    def test_popcount(self):
        m = MaskRegister(np.array([True, False, True, True]))
        assert m.popcount == 3
        assert m.lanes == 4

    def test_bits_coerced_to_bool(self):
        m = MaskRegister(np.array([1, 0, 2]))
        assert m.bits.dtype == bool
        assert m.popcount == 2

    def test_rejects_multidimensional(self):
        with pytest.raises(ValueError):
            MaskRegister(np.zeros((2, 2), dtype=bool))


class TestCheckLanes:
    def test_matching_widths_pass(self):
        a = VectorRegister(np.zeros(4))
        b = VectorRegister(np.ones(4))
        assert check_lanes(a, b) == 4

    def test_mismatch_raises(self):
        a = VectorRegister(np.zeros(4))
        b = VectorRegister(np.zeros(8))
        with pytest.raises(LaneMismatchError):
            check_lanes(a, b)
