"""Cost tables and cycle pricing."""

import pytest

from repro.simd.cost_model import DEFAULT_COSTS, CostTable, cycles
from repro.simd.counters import KernelCounters


def counters(**kwargs) -> KernelCounters:
    c = KernelCounters()
    for k, v in kwargs.items():
        setattr(c, k, v)
    return c


class TestPricing:
    def test_empty_counters_cost_nothing(self):
        assert cycles(KernelCounters()) == 0.0

    def test_each_class_is_priced_by_its_entry(self):
        table = CostTable(vload=2.0, fma=3.0)
        c = counters(vector_load=5, vector_fmadd=4)
        assert cycles(c, table) == 5 * 2.0 + 4 * 3.0

    def test_gather_has_base_plus_lane_cost(self):
        table = CostTable(gather_base=4.0, gather_lane=1.5)
        c = counters(vector_gather=2, gather_lanes=16)
        assert cycles(c, table) == 2 * 4.0 + 16 * 1.5

    def test_aligned_loads_get_the_discount(self):
        table = CostTable(vload=2.0, vload_aligned_discount=0.5)
        c = counters(vector_load=4, vector_load_aligned=4)
        assert cycles(c, table) == 4 * 2.0 - 4 * 0.5

    def test_emulated_gather_lanes_priced_separately(self):
        table = CostTable(emulated_gather_lane=0.7, gather_lane=9.9)
        c = counters(emulated_gather_lanes=10)
        assert cycles(c, table) == pytest.approx(7.0)

    def test_independent_scalars_priced_separately_from_chained(self):
        table = CostTable(sload=5.0, sload_indep=0.5, sfma=8.0, sfma_indep=1.0)
        chained = counters(scalar_load=10, scalar_fma=10)
        indep = counters(scalar_load_indep=10, scalar_fma_indep=10)
        assert cycles(chained, table) == 130.0
        assert cycles(indep, table) == 15.0

    def test_total_is_clamped_non_negative(self):
        table = CostTable(vload=0.0, vload_aligned_discount=10.0)
        c = counters(vector_load=1, vector_load_aligned=1)
        assert cycles(c, table) == 0.0

    def test_monotone_in_counts(self):
        a = counters(vector_load=1, vector_fmadd=1, mask_setup=1)
        b = counters(vector_load=2, vector_fmadd=2, mask_setup=2)
        assert cycles(b) == pytest.approx(2 * cycles(a))


class TestCostTable:
    def test_scaled_multiplies_every_entry(self):
        t = DEFAULT_COSTS.scaled(2.0)
        assert t.vload == 2 * DEFAULT_COSTS.vload
        assert t.sfma == 2 * DEFAULT_COSTS.sfma

    def test_with_overrides_replaces_only_named_entries(self):
        t = DEFAULT_COSTS.with_overrides(fma=9.0)
        assert t.fma == 9.0
        assert t.vload == DEFAULT_COSTS.vload

    def test_tables_are_immutable(self):
        with pytest.raises(AttributeError):
            DEFAULT_COSTS.fma = 1.0  # type: ignore[misc]
