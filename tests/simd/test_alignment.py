"""Loop decomposition and alignment arithmetic (paper Figure 5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simd.alignment import (
    decompose_loop,
    misalignment_elements,
    pointer_is_aligned,
)


class TestFigure5:
    def test_paper_example(self):
        """28 doubles at a 16-byte boundary: peel 6, two vectors, tail 6."""
        d = decompose_loop(28, lanes=8, byte_offset=16)
        assert (d.peel, d.body, d.remainder) == (6, 2, 6)

    def test_aligned_start_needs_no_peel(self):
        d = decompose_loop(28, lanes=8, byte_offset=0)
        assert d.peel == 0
        assert d.body == 3
        assert d.remainder == 4

    def test_64_byte_alignment_eliminates_peel_for_any_size(self):
        """The paper's --with-mem-align=64 fix: no peel code at all."""
        for n in (1, 7, 8, 9, 100):
            assert decompose_loop(n, 8, byte_offset=0).peel == 0


class TestEdgeCases:
    def test_trip_count_smaller_than_peel_is_all_peel(self):
        d = decompose_loop(3, lanes=8, byte_offset=16)
        assert (d.peel, d.body, d.remainder) == (3, 0, 0)

    def test_scalar_lanes_are_one_body_loop(self):
        d = decompose_loop(17, lanes=1, byte_offset=24)
        assert (d.peel, d.body, d.remainder) == (0, 17, 0)

    def test_zero_trip_count(self):
        d = decompose_loop(0, lanes=8)
        assert d.total == 0

    def test_negative_trip_count_raises(self):
        with pytest.raises(ValueError):
            decompose_loop(-1, 8)

    def test_zero_lanes_raises(self):
        with pytest.raises(ValueError):
            decompose_loop(8, 0)

    def test_vector_fraction(self):
        d = decompose_loop(28, lanes=8, byte_offset=16)
        assert d.vector_fraction == pytest.approx(16 / 28)
        assert decompose_loop(0, 8).vector_fraction == 0.0


class TestMisalignment:
    def test_element_misaligned_offset_raises(self):
        with pytest.raises(ValueError):
            misalignment_elements(13, itemsize=8, alignment=64)

    def test_alignment_not_multiple_of_itemsize_raises(self):
        with pytest.raises(ValueError):
            misalignment_elements(0, itemsize=12, alignment=64)

    def test_known_values(self):
        assert misalignment_elements(0) == 0
        assert misalignment_elements(16) == 6
        assert misalignment_elements(56) == 1
        assert misalignment_elements(64) == 0


class TestPointerAlignment:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            pointer_is_aligned(0, 48)
        with pytest.raises(ValueError):
            pointer_is_aligned(0, 0)

    def test_basic(self):
        assert pointer_is_aligned(128, 64)
        assert not pointer_is_aligned(136, 64)
        assert pointer_is_aligned(136, 8)


@given(
    n=st.integers(min_value=0, max_value=10_000),
    lanes=st.sampled_from([2, 4, 8, 16]),
    offset_elems=st.integers(min_value=0, max_value=7),
)
def test_decomposition_covers_exactly_the_trip_count(n, lanes, offset_elems):
    """peel + body*lanes + remainder == n for any configuration."""
    d = decompose_loop(n, lanes, byte_offset=offset_elems * 8)
    assert d.total == n
    assert 0 <= d.remainder < lanes or (d.body == 0 and d.remainder == 0)
    assert d.peel >= 0 and d.body >= 0
