"""The -log_view-style event profiler."""

import pytest

from repro.profiling import EventLog


def fake_clock(times):
    """A clock returning queued values (deterministic timing tests)."""
    it = iter(times)
    return lambda: next(it)


class TestDeprecationShim:
    def test_import_warns_and_reexports_obs(self):
        """The shim warns once per import and stays a pure re-export."""
        import importlib

        import repro.obs as obs
        import repro.profiling as profiling

        # The module-level warning fired at first import (cached by now);
        # reload to observe it deterministically.
        with pytest.warns(DeprecationWarning, match="repro.obs"):
            profiling = importlib.reload(profiling)
        for name in profiling.__all__:
            assert getattr(profiling, name) is getattr(obs, name)


class TestEventTiming:
    def test_single_event(self):
        # created, start, end, (render calls skipped)
        log = EventLog(clock=fake_clock([0.0, 1.0, 3.0]))
        with log.event("MatMult"):
            pass
        rec = log.record("MatMult")
        assert rec.calls == 1
        assert rec.total_seconds == 2.0
        assert rec.self_seconds == 2.0

    def test_nested_events_attribute_self_time_to_the_inner(self):
        # created, outer-start, inner-start, inner-end, outer-end
        log = EventLog(clock=fake_clock([0.0, 0.0, 1.0, 4.0, 10.0]))
        with log.event("KSPSolve"):
            with log.event("MatMult"):
                pass
        assert log.record("MatMult").self_seconds == 3.0
        assert log.record("KSPSolve").total_seconds == 10.0
        assert log.record("KSPSolve").self_seconds == 7.0

    def test_repeat_calls_accumulate(self):
        log = EventLog(clock=fake_clock([0.0, 0.0, 1.0, 2.0, 5.0]))
        for _ in range(2):
            with log.event("VecAXPY"):
                pass
        rec = log.record("VecAXPY")
        assert rec.calls == 2
        assert rec.total_seconds == 4.0

    def test_exceptions_still_close_the_event(self):
        log = EventLog(clock=fake_clock([0.0, 0.0, 2.0]))
        with pytest.raises(RuntimeError):
            with log.event("MatMult"):
                raise RuntimeError("kernel died")
        assert log.record("MatMult").calls == 1
        assert log.record("MatMult").total_seconds == 2.0


class TestFlops:
    def test_flop_rate_uses_self_time(self):
        log = EventLog(clock=fake_clock([0.0, 0.0, 2.0]))
        with log.event("MatMult", flops=4_000_000_000):
            pass
        assert log.record("MatMult").gflops_rate == pytest.approx(2.0)

    def test_zero_time_rate_is_zero(self):
        assert EventLog().record("x").gflops_rate == 0.0


class TestReporting:
    def test_fraction_partitions_unity(self):
        log = EventLog(clock=fake_clock([0.0, 0.0, 1.0, 1.0, 4.0]))
        with log.event("MatMult"):
            pass
        with log.event("VecDot"):
            pass
        assert log.fraction("MatMult") + log.fraction("VecDot") == pytest.approx(1.0)
        assert log.fraction("MatMult") == pytest.approx(0.25)

    def test_summary_sorted_by_self_time(self):
        log = EventLog(clock=fake_clock([0.0, 0.0, 1.0, 1.0, 9.0]))
        with log.event("small"):
            pass
        with log.event("big"):
            pass
        assert [r.name for r in log.summary()] == ["big", "small"]

    def test_render_contains_every_event(self):
        log = EventLog()
        with log.event("MatMult", flops=10):
            pass
        out = log.render()
        assert "MatMult" in out and "Gflop/s" in out

    def test_decorator(self):
        log = EventLog()

        @log.timed("work")
        def work(a, b):
            return a + b

        assert work(1, b=2) == 3
        assert log.record("work").calls == 1

    def test_decorator_preserves_function_metadata(self):
        log = EventLog()

        @log.timed("work")
        def work(a, b):
            """Add two numbers."""
            return a + b

        assert work.__name__ == "work"
        assert work.__doc__ == "Add two numbers."
        assert work.__wrapped__(1, 2) == 3

    def test_reset(self):
        log = EventLog()
        with log.event("x"):
            pass
        log.reset()
        assert log.record("x").calls == 0


class TestRealSolveAttribution:
    def test_matmult_dominates_a_jacobi_gmres_solve(self):
        """Instrument a real solve: the operator events must be visible."""
        import numpy as np

        from repro.ksp import GMRES, JacobiPC
        from repro.pde.problems import gray_scott_jacobian

        a = gray_scott_jacobian(16)
        log = EventLog()

        class LoggedOperator:
            shape = a.shape

            def multiply(self, x, y=None):
                with log.event("MatMult", flops=2 * a.nnz):
                    return a.multiply(x, y)

            def diagonal(self):
                return a.diagonal()

        b = np.random.default_rng(0).standard_normal(a.shape[0])
        with log.event("KSPSolve"):
            result = GMRES(pc=JacobiPC(), rtol=1e-8).solve(LoggedOperator(), b)
        assert result.reason.converged
        assert log.record("MatMult").calls >= result.iterations
        assert log.record("KSPSolve").total_seconds >= log.record(
            "MatMult"
        ).total_seconds
