"""numactl-style placement policies for KNL flat mode."""

import pytest

from repro.memory.numa import NumaPolicy, Placement
from repro.memory.spaces import DRAM, MCDRAM, MemoryKindExhausted


class TestBindDram:
    def test_everything_lands_in_dram(self):
        policy = NumaPolicy(placement=Placement.BIND_DRAM)
        assert policy.place(1 << 30) is DRAM
        assert policy.mcdram_used == 0


class TestPreferMcdram:
    def test_mcdram_while_it_lasts(self):
        policy = NumaPolicy(placement=Placement.PREFER_MCDRAM, mcdram_capacity=100)
        assert policy.place(60) is MCDRAM
        assert policy.place(40) is MCDRAM
        assert policy.mcdram_used == 100

    def test_silent_fallback_to_dram_on_overflow(self):
        policy = NumaPolicy(placement=Placement.PREFER_MCDRAM, mcdram_capacity=100)
        policy.place(90)
        assert policy.place(20) is DRAM
        assert policy.mcdram_used == 90


class TestBindMcdram:
    def test_overflow_is_an_allocation_error(self):
        """membind faults instead of spilling — the OS behaviour."""
        policy = NumaPolicy(placement=Placement.BIND_MCDRAM, mcdram_capacity=100)
        policy.place(90)
        with pytest.raises(MemoryKindExhausted):
            policy.place(20)

    def test_exact_fit_is_allowed(self):
        policy = NumaPolicy(placement=Placement.BIND_MCDRAM, mcdram_capacity=100)
        assert policy.place(100) is MCDRAM


def test_negative_allocation_raises():
    with pytest.raises(ValueError):
        NumaPolicy().place(-1)


def test_default_capacity_is_the_mcdram_module():
    assert NumaPolicy().mcdram_capacity == MCDRAM.capacity_bytes
