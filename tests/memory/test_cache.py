"""Direct-mapped MCDRAM cache-mode model."""

import pytest

from repro.memory.cache import DirectMappedCache


class TestHitFraction:
    def test_empty_working_set_always_hits(self):
        assert DirectMappedCache().hit_fraction(0) == 1.0

    def test_small_working_set_nearly_always_hits(self):
        cache = DirectMappedCache(conflict_pressure=0.08)
        assert cache.hit_fraction(cache.capacity_bytes // 100) > 0.99

    def test_conflict_misses_grow_with_occupancy(self):
        cache = DirectMappedCache()
        h25 = cache.hit_fraction(cache.capacity_bytes // 4)
        h100 = cache.hit_fraction(cache.capacity_bytes)
        assert h100 < h25 < 1.0

    def test_at_capacity_the_conflict_pressure_binds(self):
        cache = DirectMappedCache(conflict_pressure=0.08)
        assert cache.hit_fraction(cache.capacity_bytes) == pytest.approx(0.92)

    def test_oversubscribed_stream_hits_like_capacity_over_ws(self):
        cache = DirectMappedCache(conflict_pressure=0.0)
        assert cache.hit_fraction(4 * cache.capacity_bytes) == pytest.approx(0.25)

    def test_hit_fraction_is_monotone_decreasing(self):
        cache = DirectMappedCache()
        sizes = [cache.capacity_bytes * f // 10 for f in range(1, 30)]
        hits = [cache.hit_fraction(s) for s in sizes]
        assert all(b <= a + 1e-12 for a, b in zip(hits, hits[1:], strict=False))

    def test_negative_working_set_raises(self):
        with pytest.raises(ValueError):
            DirectMappedCache().hit_fraction(-1)


class TestEffectiveBandwidth:
    def test_all_hits_gives_cache_bandwidth(self):
        cache = DirectMappedCache(conflict_pressure=0.0)
        assert cache.effective_bandwidth(0, 400.0, 90.0) == pytest.approx(400.0)

    def test_spilled_working_set_approaches_dram_bandwidth(self):
        cache = DirectMappedCache(conflict_pressure=0.0)
        bw = cache.effective_bandwidth(100 * cache.capacity_bytes, 400.0, 90.0)
        assert 60.0 < bw < 90.0  # miss path pays both interfaces

    def test_blend_lies_between_the_two(self):
        cache = DirectMappedCache()
        bw = cache.effective_bandwidth(2 * cache.capacity_bytes, 400.0, 90.0)
        assert 60.0 < bw < 400.0

    def test_invalid_bandwidths_raise(self):
        with pytest.raises(ValueError):
            DirectMappedCache().effective_bandwidth(0, 0.0, 90.0)
        with pytest.raises(ValueError):
            DirectMappedCache().effective_bandwidth(0, 400.0, -1.0)
