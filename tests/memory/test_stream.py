"""STREAM kernels and the Figure 4 series generator."""

import numpy as np
import pytest

from repro.memory.stream import add, copy, figure4_series, run_all, scale, triad


@pytest.fixture
def arrays():
    rng = np.random.default_rng(0)
    a = rng.random(1000)
    b = rng.random(1000)
    c = np.zeros(1000)
    return a, b, c


class TestKernels:
    def test_copy(self, arrays):
        a, _, c = arrays
        res = copy(a, c, repeats=1)
        assert np.array_equal(c, a)
        assert res.bytes_moved == 16 * 1000

    def test_scale(self, arrays):
        a, _, c = arrays
        scale(a, c, s=3.0, repeats=1)
        assert np.allclose(c, 3.0 * a)

    def test_add(self, arrays):
        a, b, c = arrays
        res = add(a, b, c, repeats=1)
        assert np.allclose(c, a + b)
        assert res.bytes_moved == 24 * 1000

    def test_triad(self, arrays):
        a, b, c = arrays
        c[:] = np.arange(1000)
        expect = b + 3.0 * c
        res = triad(a, b, c, s=3.0, repeats=1)
        assert np.allclose(a, expect)
        assert res.kernel == "triad"

    def test_gbs_is_positive_and_finite(self, arrays):
        a, _, c = arrays
        res = copy(a, c, repeats=2)
        assert 0 < res.gbs < float("inf")

    def test_run_all_produces_four_kernels(self):
        results = run_all(n=10_000, repeats=1)
        assert [r.kernel for r in results] == ["copy", "scale", "add", "triad"]


class TestFigure4Series:
    def test_series_names_match_the_legend(self):
        series = figure4_series()
        assert set(series) == {
            "Flat:AVX512",
            "Flat:novec",
            "Cache:AVX512",
            "Cache:novec",
        }

    def test_each_series_covers_the_paper_axis(self):
        series = figure4_series()
        for points in series.values():
            assert [p for p, _ in points] == [8, 16, 24, 32, 40, 48, 56, 64]

    def test_flat_avx512_dominates_everywhere_beyond_saturation(self):
        series = figure4_series()
        flat = dict(series["Flat:AVX512"])
        for name in ("Flat:novec", "Cache:AVX512", "Cache:novec"):
            other = dict(series[name])
            assert flat[64] > other[64]
