"""Bandwidth-saturation curves (the Figure 4 calibration)."""

import pytest

from repro.memory.bandwidth import (
    FIGURE4_CURVES,
    FIGURE4_PROCESS_COUNTS,
    KNL_CACHE_AVX512,
    KNL_CACHE_NOVEC,
    KNL_FLAT_DRAM,
    KNL_FLAT_MCDRAM_AVX512,
    KNL_FLAT_MCDRAM_NOVEC,
    BandwidthCurve,
    sustained_fraction,
)


class TestCurveShape:
    def test_reaches_98_percent_at_saturation_point(self):
        curve = BandwidthCurve(100.0, 40)
        assert curve.at(40) == pytest.approx(100.0, rel=2e-2)

    def test_monotonically_increasing(self):
        curve = KNL_FLAT_MCDRAM_AVX512
        values = [curve.at(p) for p in range(1, 70)]
        assert all(b > a for a, b in zip(values, values[1:], strict=False))

    def test_never_exceeds_peak_by_much(self):
        curve = BandwidthCurve(100.0, 10)
        assert curve.at(1000) <= 100.0 / 0.98 + 1e-9

    def test_invalid_process_count_raises(self):
        with pytest.raises(ValueError):
            KNL_FLAT_DRAM.at(0)

    def test_bytes_per_second_is_decimal_gb(self):
        curve = BandwidthCurve(100.0, 10)
        assert curve.bytes_per_second(10) == pytest.approx(curve.at(10) * 1e9)

    def test_sustained_fraction(self):
        # The curve is normalized so peak is reached exactly at p_sat.
        curve = BandwidthCurve(100.0, 40)
        assert sustained_fraction(curve, 40) == pytest.approx(1.0, rel=1e-6)
        assert sustained_fraction(curve, 4) < 0.5


class TestPaperCalibration:
    """The qualitative facts of paper Figure 4 / Section 2.6."""

    def test_flat_mcdram_approaches_500_gbs(self):
        assert 480 <= KNL_FLAT_MCDRAM_AVX512.at(64) <= 510

    def test_flat_mode_saturates_around_58_processes(self):
        assert KNL_FLAT_MCDRAM_AVX512.p_sat == 58

    def test_cache_mode_saturates_around_40_processes(self):
        assert KNL_CACHE_AVX512.p_sat == 40
        # By 40 processes cache mode is nearly flat...
        assert KNL_CACHE_AVX512.at(40) / KNL_CACHE_AVX512.at(64) > 0.95
        # ...while flat mode is still climbing.
        assert KNL_FLAT_MCDRAM_AVX512.at(40) / KNL_FLAT_MCDRAM_AVX512.at(64) < 0.95

    def test_cache_mode_runs_below_flat_mode_at_scale(self):
        assert KNL_CACHE_AVX512.at(64) < KNL_FLAT_MCDRAM_AVX512.at(64)

    def test_vectorization_matters_dramatically_in_flat_mode(self):
        ratio = KNL_FLAT_MCDRAM_AVX512.at(64) / KNL_FLAT_MCDRAM_NOVEC.at(64)
        assert ratio > 1.35

    def test_vectorization_barely_matters_in_cache_mode(self):
        ratio = KNL_CACHE_AVX512.at(64) / KNL_CACHE_NOVEC.at(64)
        assert 1.0 < ratio < 1.15

    def test_dram_is_an_order_below_mcdram(self):
        assert KNL_FLAT_DRAM.at(64) < KNL_FLAT_MCDRAM_AVX512.at(64) / 4

    def test_figure4_axis_matches_the_paper(self):
        assert FIGURE4_PROCESS_COUNTS == (8, 16, 24, 32, 40, 48, 56, 64)
        assert len(FIGURE4_CURVES) == 4
