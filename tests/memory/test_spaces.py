"""Memory kinds, aligned allocation, and the memkind-style heap."""

import numpy as np
import pytest

from repro.memory.spaces import (
    DRAM,
    MCDRAM,
    MemkindAllocator,
    MemoryKindExhausted,
    aligned_alloc,
)


class TestAlignedAlloc:
    @pytest.mark.parametrize("alignment", [16, 32, 64, 128, 4096])
    def test_base_address_is_truly_aligned(self, alignment):
        buf = aligned_alloc(100, np.float64, alignment)
        assert buf.ctypes.data % alignment == 0
        assert buf.shape == (100,)
        assert buf.dtype == np.float64

    def test_non_power_of_two_alignment_raises(self):
        with pytest.raises(ValueError):
            aligned_alloc(10, np.float64, 48)

    def test_zero_length_allocation(self):
        buf = aligned_alloc(0, np.float64, 64)
        assert buf.shape == (0,)

    def test_integer_dtype(self):
        buf = aligned_alloc(10, np.int32, 64)
        assert buf.dtype == np.int32
        assert buf.ctypes.data % 64 == 0

    def test_buffer_is_zero_initialized(self):
        assert np.all(aligned_alloc(50) == 0.0)


class TestKinds:
    def test_mcdram_is_sixteen_gigabytes(self):
        """Paper Section 2.6: 16 GB of on-package MCDRAM."""
        assert MCDRAM.capacity_bytes == 16 * 1024**3
        assert MCDRAM.bandwidth_class == "high"

    def test_dram_is_the_normal_class(self):
        assert DRAM.bandwidth_class == "normal"


class TestMemkindAllocator:
    def test_allocate_tracks_usage(self):
        alloc = MemkindAllocator()
        alloc.allocate(1000, np.float64, MCDRAM)
        assert alloc.used_bytes(MCDRAM) == 8000
        assert alloc.used_bytes(DRAM) == 0

    def test_allocate_returns_aligned_buffer(self):
        alloc = MemkindAllocator(alignment=64)
        buf = alloc.allocate(10)
        assert buf.ctypes.data % 64 == 0

    def test_capacity_enforced_via_reserve(self):
        alloc = MemkindAllocator()
        alloc.reserve(MCDRAM.capacity_bytes - 100, MCDRAM)
        with pytest.raises(MemoryKindExhausted):
            alloc.reserve(200, MCDRAM)

    def test_free_releases_reservation(self):
        alloc = MemkindAllocator()
        r = alloc.reserve(1 << 30, MCDRAM)
        alloc.free(r)
        assert alloc.used_bytes(MCDRAM) == 0
        alloc.reserve(MCDRAM.capacity_bytes, MCDRAM)  # fits again

    def test_free_locates_buffer_without_kind(self):
        """The memkind property: the caller need not remember the heap."""
        alloc = MemkindAllocator()
        buf = alloc.allocate(100, np.float64, MCDRAM)
        alloc.free(buf)
        assert alloc.used_bytes(MCDRAM) == 0

    def test_free_unknown_buffer_raises(self):
        alloc = MemkindAllocator()
        with pytest.raises(KeyError):
            alloc.free(np.zeros(4))

    def test_negative_reserve_raises(self):
        with pytest.raises(ValueError):
            MemkindAllocator().reserve(-1)

    def test_footprint_reports_per_kind(self):
        alloc = MemkindAllocator()
        alloc.reserve(100, MCDRAM)
        alloc.reserve(300, DRAM)
        assert alloc.footprint() == {"MCDRAM": 100, "DRAM": 300}

    def test_paper_scale_working_set_fits_check(self):
        """The 4096^2-grid simulation fits MCDRAM; 16384^2 does not.

        Matrix (12 B/nnz, 10 nnz/row) + vectors for m = 2*grid^2 rows.
        """
        alloc = MemkindAllocator()
        small = 2 * 4096**2 * (12 * 10 + 8 * 8)
        alloc.reserve(small, MCDRAM)  # fits
        alloc.free(alloc._allocations[0])
        big = 2 * 16384**2 * (12 * 10 + 8 * 8)
        with pytest.raises(MemoryKindExhausted):
            alloc.reserve(big, MCDRAM)
