"""ElasticGMRES: bit-identical recovery, and the 19-variant resize panel."""

import numpy as np
import pytest

from repro.core.context import ExecutionContext
from repro.core.dispatch import registered_variants
from repro.elastic import ElasticEvent, ElasticGMRES, ElasticWorld
from repro.faults.plan import FaultInjector, FaultPlan, FaultSpec, inject
from repro.ksp import GMRES, CheckpointStore, JacobiPC
from repro.pde.problems import gray_scott_jacobian

VARIANT_NAMES = tuple(v.name for v in registered_variants())


def _system(grid=8, seed=1):
    csr = gray_scott_jacobian(grid, seed=seed)
    b = np.random.default_rng(9).standard_normal(csr.shape[0])
    return csr, b


def _baseline(csr, b):
    return GMRES(
        restart=20, pc=JacobiPC(), rtol=1e-10, max_it=400, use_superops=False
    ).solve(csr, b)


def _elastic(csr, b, store, size, events, **kw):
    return ElasticGMRES(restart=20, rtol=1e-10, max_it=400, cadence=2, **kw).solve(
        csr, b, store, size=size, events=events
    )


class TestBitIdenticalRecovery:
    def test_kill_mid_solve_matches_the_uninterrupted_run(self, tmp_path):
        csr, b = _system()
        base = _baseline(csr, b)
        result = _elastic(
            csr, b, CheckpointStore(tmp_path), size=4,
            events=(ElasticEvent("kill", at_iteration=4, rank=2),),
        )
        assert result.reason.converged and result.schedule_ok
        assert result.x.tobytes() == base.x.tobytes()
        assert result.residual_norms == base.residual_norms
        assert len(result.resizes) == 1
        assert result.resizes[0].kind == "shrink"

    def test_grow_mid_solve_matches_too(self, tmp_path):
        csr, b = _system()
        base = _baseline(csr, b)
        result = _elastic(
            csr, b, CheckpointStore(tmp_path), size=3,
            events=(ElasticEvent("grow", at_iteration=3, add=2),),
        )
        assert result.reason.converged and result.schedule_ok
        assert result.x.tobytes() == base.x.tobytes()
        assert result.resizes[0].kind == "grow"

    def test_chained_kill_then_grow(self, tmp_path):
        csr, b = _system(grid=10, seed=2)
        base = _baseline(csr, b)
        result = _elastic(
            csr, b, CheckpointStore(tmp_path), size=4,
            events=(
                ElasticEvent("kill", at_iteration=3, rank=1),
                ElasticEvent("grow", at_iteration=6, add=1),
            ),
        )
        assert result.reason.converged and result.schedule_ok
        assert result.x.tobytes() == base.x.tobytes()
        assert [ev.kind for ev in result.resizes] == ["shrink", "grow"]
        assert len(result.epochs) == 3

    def test_undisturbed_elastic_run_matches_sequential(self, tmp_path):
        csr, b = _system()
        base = _baseline(csr, b)
        result = _elastic(csr, b, CheckpointStore(tmp_path), size=4, events=())
        assert result.x.tobytes() == base.x.tobytes()
        assert result.residual_norms == base.residual_norms
        assert len(result.epochs) == 1

    def test_corrupted_checkpoint_falls_back_and_still_matches(self, tmp_path):
        csr, b = _system()
        base = _baseline(csr, b)
        faults = FaultInjector(
            FaultPlan([FaultSpec("ckpt.write", 1, "bitflip")])
        )
        with inject(faults):
            result = _elastic(
                csr, b, CheckpointStore(tmp_path), size=4,
                events=(ElasticEvent("kill", at_iteration=5, rank=1),),
            )
        assert faults.pending() == 0
        assert result.reason.converged
        assert result.x.tobytes() == base.x.tobytes()
        # The resumed epoch restarted from an *earlier* iteration than the
        # torn snapshot would have allowed.
        assert result.epochs[1].resumed_from is not None

    def test_recovery_is_bit_reproducible(self, tmp_path):
        csr, b = _system()
        events = (ElasticEvent("kill", at_iteration=4, rank=2),)
        a = _elastic(csr, b, CheckpointStore(tmp_path / "a"), 4, events)
        c = _elastic(csr, b, CheckpointStore(tmp_path / "b"), 4, events)
        assert a.x.tobytes() == c.x.tobytes()
        assert a.residual_norms == c.residual_norms
        assert [ev.kind for ev in a.resizes] == [ev.kind for ev in c.resizes]


class TestEventValidation:
    def test_event_fields_are_checked(self):
        with pytest.raises(ValueError):
            ElasticEvent("explode", at_iteration=1)
        with pytest.raises(ValueError):
            ElasticEvent("kill", at_iteration=0)

    def test_solver_config_is_checked(self):
        with pytest.raises(ValueError):
            ElasticGMRES(cadence=0)


class TestVariantResizePanel:
    """The 19-variant x shrink/grow recovery panel.

    Every registered kernel variant must measure bit-identically — same
    ``y``, same counter ledger — after its host world shrinks or grows
    and the cached per-rank row blocks are invalidated, compared against
    an uninterrupted sequential measurement in a fresh context.
    """

    @pytest.fixture(scope="class")
    def system(self):
        csr = gray_scott_jacobian(6, seed=1)
        x = np.random.default_rng(11).standard_normal(csr.shape[1])
        return csr, x

    @pytest.mark.parametrize("resize", ["shrink", "grow"])
    @pytest.mark.parametrize("variant", VARIANT_NAMES)
    def test_variant_measures_identically_across_a_resize(
        self, system, variant, resize
    ):
        csr, x = system
        baseline = ExecutionContext().measure(variant, csr, x=x)

        ctx = ExecutionContext()
        world = ElasticWorld(csr.shape[0], 4, registry=ctx.registry)
        for rank in range(world.size):
            ctx.registry.get_or_compute(
                "prepare", ("rowblock", 4, rank, "sig"), lambda: object()
            )
        event = world.shrink([1]) if resize == "shrink" else world.grow(1)
        assert event.invalidated == 4 and event.report.ok

        measured = ctx.measure(variant, csr, x=x)
        assert measured.y.tobytes() == baseline.y.tobytes()
        assert measured.counters.as_dict() == baseline.counters.as_dict()


def test_the_panel_really_covers_nineteen_variants():
    assert len(VARIANT_NAMES) == 19
