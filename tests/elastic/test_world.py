"""Online repartitioning: plans, schedules, migration, registry hygiene."""

import numpy as np
import pytest

from repro.comm.partition import RowLayout
from repro.core.registry import SignatureRegistry
from repro.elastic import (
    ElasticWorld,
    Transfer,
    assemble_block,
    check_migration,
    csr_rows_payload,
    execute_migration,
    invalidate_row_blocks,
    plan_transfers,
    row_block,
    survivor_map,
)
from repro.faults.events import capture
from repro.faults.plan import FaultInjector, FaultPlan, FaultSpec, inject
from repro.pde.problems import gray_scott_jacobian


class TestSurvivorMap:
    def test_survivors_keep_relative_order(self):
        assert survivor_map(4, [1]) == {0: 0, 2: 1, 3: 2}
        assert survivor_map(4, [0, 2]) == {1: 0, 3: 1}

    def test_grow_is_the_identity(self):
        assert survivor_map(3, []) == {0: 0, 1: 1, 2: 2}

    def test_validation(self):
        with pytest.raises(ValueError):
            survivor_map(2, [5])
        with pytest.raises(ValueError):
            survivor_map(2, [0, 1])  # no survivors


class TestPlanTransfers:
    @pytest.mark.parametrize(
        "old_size,new_size,dead",
        [(4, 3, (1,)), (4, 2, (0, 3)), (3, 5, ()), (2, 2, ()), (5, 1, (1, 2, 3, 4))],
    )
    def test_plan_covers_every_row_exactly_once(self, old_size, new_size, dead):
        n = 37
        old = RowLayout.uniform(n, old_size)
        new = RowLayout.uniform(n, new_size)
        transfers = plan_transfers(old, new, dead)
        covered = np.zeros(n, dtype=int)
        for t in transfers:
            covered[t.start : t.end] += 1
        assert (covered == 1).all()
        # And each destination's ranges land inside its new-world slice.
        for t in transfers:
            lo, hi = new.range_of(t.dst)
            assert lo <= t.start < t.end <= hi

    def test_dead_owners_are_sourced_from_the_recovery_root(self):
        old = RowLayout.uniform(40, 4)
        new = RowLayout.uniform(40, 3)
        dead_rows = set(range(*old.range_of(2)))
        transfers = plan_transfers(old, new, dead=(2,), recovery_root=0)
        for t in transfers:
            if set(range(t.start, t.end)) & dead_rows:
                assert t.src == 0

    def test_layout_size_mismatch_is_an_error(self):
        with pytest.raises(ValueError):
            plan_transfers(RowLayout.uniform(10, 2), RowLayout.uniform(12, 2))

    def test_schedules_pass_the_vector_clock_checker(self):
        old = RowLayout.uniform(64, 5)
        for new_size, dead in ((4, (3,)), (7, ()), (2, (0, 1, 4))):
            transfers = plan_transfers(old, RowLayout.uniform(64, new_size), dead)
            assert check_migration(transfers, new_size).ok


class TestRegistryHygiene:
    def _seed_blocks(self, registry, size):
        for rank in range(size):
            registry.get_or_compute(
                "prepare", ("rowblock", size, rank, "sig"), lambda: object()
            )

    def test_invalidate_evicts_only_the_resized_partition(self):
        registry = SignatureRegistry()
        self._seed_blocks(registry, 4)
        self._seed_blocks(registry, 3)
        registry.get_or_compute("prepare", ("other", 4), lambda: "keep")
        assert invalidate_row_blocks(registry, 4) == 4
        keys = set(registry.keys("prepare"))
        assert ("rowblock", 4, 0, "sig") not in keys
        assert ("rowblock", 3, 0, "sig") in keys
        assert ("other", 4) in keys

    def test_none_registry_is_a_noop(self):
        assert invalidate_row_blocks(None, 4) == 0

    def test_resize_invalidates_through_the_world(self):
        registry = SignatureRegistry()
        self._seed_blocks(registry, 4)
        world = ElasticWorld(40, 4, registry=registry)
        event = world.shrink([1])
        assert event.invalidated == 4
        assert not [
            k
            for k in registry.keys("prepare")
            if isinstance(k, tuple) and k[:2] == ("rowblock", 4)
        ]


class TestExecuteMigration:
    @pytest.mark.parametrize("old_size,new_size,dead", [(4, 3, (2,)), (2, 4, ())])
    def test_migrated_operator_reassembles_bit_identically(
        self, old_size, new_size, dead
    ):
        csr = gray_scott_jacobian(6)
        n = csr.shape[0]
        old = RowLayout.uniform(n, old_size)
        new = RowLayout.uniform(n, new_size)
        transfers = plan_transfers(old, new, dead)
        world = ElasticWorld(n, new_size)
        assembled, report = execute_migration(
            world.make_world(),
            transfers,
            source_of=lambda t: csr_rows_payload(csr, t.start, t.end),
        )
        assert report.ok
        x = np.random.default_rng(0).standard_normal(n)
        want = csr.multiply(x)
        for rank in range(new_size):
            block = assemble_block(assembled[rank], n)
            lo, hi = new.range_of(rank)
            assert block.multiply(x).tobytes() == want[lo:hi].tobytes()
        # The assembled blocks match a direct slice of the operator too.
        for rank in range(new_size):
            direct = row_block(csr, new, rank)
            block = assemble_block(assembled[rank], n)
            assert block.val.tobytes() == direct.val.tobytes()
            assert block.colidx.tobytes() == direct.colidx.tobytes()

    def test_keeps_never_hit_the_wire(self):
        n = 30
        old = RowLayout.uniform(n, 3)
        new = RowLayout.uniform(n, 3)
        transfers = plan_transfers(old, new)
        assert all(t.src == t.dst for t in transfers)
        from repro.elastic import migration_schedule

        assert migration_schedule(transfers, 3) == [[], [], []]


class TestResizeFaultSite:
    def test_dropped_directive_is_reissued(self):
        world = ElasticWorld(40, 4)
        plan = FaultPlan([FaultSpec("world.resize", 0, "drop")])
        with capture() as log:
            with inject(FaultInjector(plan)):
                event = world.resize(3, dead=(1,))
        assert event.new_size == 3 and world.size == 3
        actions = {(ev[0], ev[1], ev[2]) for ev in log.fingerprint()}
        assert ("recovered", "world.resize", "retry") in actions

    def test_shrink_emits_degraded_and_grow_emits_recovered(self):
        world = ElasticWorld(40, 4)
        with capture() as log:
            shrink = world.shrink([3])
            grow = world.grow(2)
        assert (shrink.kind, grow.kind) == ("shrink", "grow")
        assert world.size == 5 and world.epoch == 2
        actions = {(ev[0], ev[2]) for ev in log.fingerprint()}
        assert ("degraded", "shrink") in actions
        assert ("recovered", "grow") in actions

    def test_validation(self):
        world = ElasticWorld(40, 2)
        with pytest.raises(ValueError):
            world.shrink([])
        with pytest.raises(ValueError):
            world.grow(0)
        with pytest.raises(ValueError):
            world.resize(0)
        with pytest.raises(ValueError):
            ElasticWorld(0, 1)


def test_transfer_rows_property():
    assert Transfer(src=0, dst=1, start=3, end=9).rows == 6
