"""Tests for the elastic SPMD world stack (repro.elastic)."""
