"""Checkpoint store: round-trips, fallback, corruption, write-behind.

Mirrors ``tests/core/test_plan_cache.py`` for the solver-checkpoint
format: exact (bit-identical) round-trips of the recurrence state,
newest-wins scans that fall back past anything invalid, corrupt or
stale files rejected at load and never resurrected, the ``ckpt.write``
fault site degrading to "fall back a cadence", and the write-behind
store draining before every read.
"""

import numpy as np
import pytest

from repro.faults.events import capture
from repro.faults.plan import FaultInjector, FaultPlan, FaultSpec, inject
from repro.ksp import GMRES, JacobiPC
from repro.ksp.checkpoint import (
    CheckpointError,
    Checkpointer,
    CheckpointStore,
    SolverCheckpoint,
    read_checkpoint,
)
from repro.ksp import checkpoint as checkpoint_mod
from repro.pde.problems import laplacian_2d


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "ckpts")


def _ckpt(iteration=10, solver="gmres", seed=0):
    rng = np.random.default_rng(seed)
    return SolverCheckpoint(
        solver=solver,
        iteration=iteration,
        x=rng.standard_normal(32),
        norms=[1.0, 0.25, 0.0625],
        rnorm0=4.0,
        state={
            "basis": rng.standard_normal((5, 32)),
            "givens": rng.standard_normal((4, 2)),
        },
        counters={"rng": 7, "epoch": 2},
    )


class TestRoundTrip:
    def test_save_load_is_bit_exact(self, store):
        ckpt = _ckpt()
        assert store.save(ckpt)
        loaded = store.load(10)
        assert loaded.solver == "gmres" and loaded.iteration == 10
        assert loaded.x.tobytes() == ckpt.x.tobytes()
        assert loaded.norms == ckpt.norms and loaded.rnorm0 == ckpt.rnorm0
        for key in ckpt.state:
            assert loaded.state[key].tobytes() == ckpt.state[key].tobytes()
        assert loaded.counters == ckpt.counters
        assert store.stats()["saves"] == 1 and store.stats()["loads"] == 1

    def test_latest_returns_the_newest(self, store):
        for it in (5, 10, 15):
            store.save(_ckpt(iteration=it, seed=it))
        assert store.latest().iteration == 15
        assert [p.name for p in store.entries()] == [
            "solve-00000005.ckpt",
            "solve-00000010.ckpt",
            "solve-00000015.ckpt",
        ]

    def test_latest_rejects_a_mismatched_solver_tag(self, store):
        store.save(_ckpt(iteration=5, solver="cg"))
        store.save(_ckpt(iteration=9, solver="gmres"))
        assert store.latest(solver="cg").iteration == 5
        # The gmres file was newer, rejected, and discarded by the scan.
        assert store.latest(solver="cg") is not None

    def test_empty_store_has_no_latest(self, store):
        assert store.latest() is None

    def test_job_tags_partition_the_directory(self, tmp_path):
        a = CheckpointStore(tmp_path, job="a")
        b = CheckpointStore(tmp_path, job="b")
        a.save(_ckpt(iteration=1))
        b.save(_ckpt(iteration=2))
        assert a.latest().iteration == 1
        assert b.latest().iteration == 2
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, job="bad/name")

    def test_clear_empties_the_job(self, store):
        for it in (1, 2, 3):
            store.save(_ckpt(iteration=it))
        assert store.clear() == 3
        assert store.entries() == []


class TestCorruption:
    def test_truncated_payload_is_rejected_and_falls_back(self, store):
        store.save(_ckpt(iteration=5, seed=5))
        store.save(_ckpt(iteration=10, seed=10))
        path = store.path_for(10)
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path)
        latest = store.latest()
        assert latest.iteration == 5  # fell back one snapshot
        assert not path.exists()  # rejected file discarded, never retried
        assert store.stats()["corrupt"] == 1

    def test_crc_mismatch_is_rejected(self, store):
        store.save(_ckpt(iteration=10))
        path = store.path_for(10)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a payload byte under an intact header
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="CRC"):
            read_checkpoint(path)
        assert store.latest() is None

    def test_garbage_header_is_rejected(self, store):
        store.save(_ckpt(iteration=10))
        store.path_for(10).write_bytes(b"not a checkpoint\ngarbage")
        with pytest.raises(CheckpointError):
            read_checkpoint(store.path_for(10))
        assert store.latest() is None

    def test_stale_format_version_never_loads(self, store, monkeypatch):
        store.save(_ckpt(iteration=10))
        monkeypatch.setattr(
            checkpoint_mod,
            "CKPT_FORMAT_VERSION",
            checkpoint_mod.CKPT_FORMAT_VERSION + 1,
        )
        with pytest.raises(CheckpointError, match="stale"):
            read_checkpoint(store.path_for(10))
        assert store.latest() is None

    def test_corrupt_file_never_resurrects(self, store):
        """Corrupt -> rejected+discarded -> a fresh save wins the slot."""
        store.save(_ckpt(iteration=10, seed=1))
        path = store.path_for(10)
        path.write_bytes(b"bit rot")
        assert store.latest() is None
        fresh = _ckpt(iteration=10, seed=2)
        assert store.save(fresh)
        assert store.latest().x.tobytes() == fresh.x.tobytes()


class TestFaultSite:
    def test_dropped_write_is_benign_and_skipped(self, store):
        plan = FaultPlan([FaultSpec("ckpt.write", 0, "drop")])
        with capture() as log:
            with inject(FaultInjector(plan)):
                assert store.save(_ckpt(iteration=5)) is False
        assert store.stats()["skipped"] == 1
        assert store.latest() is None
        assert ("benign", "ckpt.write") in {
            (ev[0], ev[1]) for ev in log.fingerprint()
        }

    def test_bitflipped_write_is_caught_on_load(self, store):
        store.save(_ckpt(iteration=5, seed=5))
        plan = FaultPlan([FaultSpec("ckpt.write", 0, "bitflip")])
        with capture() as log:
            with inject(FaultInjector(plan)):
                assert store.save(_ckpt(iteration=10, seed=10))
            latest = store.latest()
        assert latest.iteration == 5  # the torn write fell back a cadence
        assert ("detected", "ckpt.write") in {
            (ev[0], ev[1]) for ev in log.fingerprint()
        }


class TestWriteBehind:
    def test_round_trip_drains_before_reading(self, tmp_path):
        store = CheckpointStore(tmp_path, write_behind=True)
        ckpt = _ckpt(iteration=10)
        assert store.save(ckpt)  # enqueued, not yet on disk necessarily
        loaded = store.load(10)  # load() drains the queue first
        assert loaded.x.tobytes() == ckpt.x.tobytes()
        assert store.stats()["saves"] == 1

    def test_many_queued_saves_all_land(self, tmp_path):
        store = CheckpointStore(tmp_path, write_behind=True)
        for it in range(1, 9):
            store.save(_ckpt(iteration=it, seed=it))
        assert len(store.entries()) == 8
        assert store.latest().iteration == 8


class TestCheckpointer:
    def test_cadence_schedule(self, store):
        cp = Checkpointer(store, cadence=25)
        assert [it for it in range(0, 101) if cp.due(it)] == [25, 50, 75, 100]
        with pytest.raises(ValueError):
            Checkpointer(store, cadence=0)

    def test_capture_snapshots_caller_counters(self, store):
        calls = {"n": 3}
        cp = Checkpointer(store, cadence=1, counters=lambda: dict(calls))
        assert cp.capture(_ckpt(iteration=1))
        calls["n"] = 9  # later mutation must not leak into the snapshot
        assert store.load(1).counters == {"n": 3}
        assert cp.taken == 1


class TestSolverResume:
    def test_gmres_resume_is_bit_identical(self, store):
        """Resume mid-solve from a snapshot: same iterates, same norms."""
        csr = laplacian_2d(12)
        b = np.random.default_rng(3).standard_normal(csr.shape[0])
        solver = GMRES(
            restart=20, pc=JacobiPC(), rtol=1e-10, max_it=400,
            use_superops=False,
        )
        ref = solver.solve(csr, b, checkpointer=Checkpointer(store, 10))
        snap = store.load(10)
        resumed = solver.solve(csr, b, resume=snap)
        assert resumed.x.tobytes() == ref.x.tobytes()
        assert resumed.residual_norms == ref.residual_norms
        assert resumed.iterations == ref.iterations
