"""The matrix gallery."""

import numpy as np
import pytest

from repro.pde.problems import (
    gray_scott_jacobian,
    irregular_rows,
    laplacian_2d,
    nine_point_2d,
    random_sparse,
    spd_laplacian,
    tridiagonal,
)


class TestGrayScottJacobian:
    def test_paper_structure(self):
        a = gray_scott_jacobian(8)
        assert a.shape == (128, 128)
        assert set(a.row_lengths().tolist()) == {10}

    def test_crank_nicolson_shift_makes_it_well_conditioned(self):
        """I - 0.5 J is strongly diagonally dominant at dt=1 for this
        problem, hence the fast Jacobi-preconditioned convergence."""
        a = gray_scott_jacobian(8)
        d = np.abs(a.diagonal())
        dense = np.abs(a.to_dense())
        off = dense.sum(axis=1) - np.abs(np.diag(dense))
        assert np.all(d > 0.5 * off)


class TestGallery:
    def test_laplacians(self):
        assert set(laplacian_2d(8).row_lengths().tolist()) == {5}
        assert set(nine_point_2d(8).row_lengths().tolist()) == {9}

    def test_tridiagonal_row_lengths(self):
        t = tridiagonal(10)
        lengths = t.row_lengths()
        assert lengths[0] == 2 and lengths[-1] == 2
        assert np.all(lengths[1:-1] == 3)

    def test_spd_laplacian_is_spd(self):
        a = spd_laplacian(6).to_dense()
        assert np.allclose(a, a.T)
        eigenvalues = np.linalg.eigvalsh(a)
        assert eigenvalues.min() > 0

    def test_random_sparse_is_diagonally_dominant(self):
        a = random_sparse(30, density=0.1, seed=3).to_dense()
        d = np.abs(np.diag(a))
        off = np.abs(a).sum(axis=1) - d
        assert np.all(d > off)

    def test_random_sparse_symmetric_option(self):
        a = random_sparse(20, density=0.2, seed=4, symmetric=True).to_dense()
        assert np.allclose(a, a.T)

    def test_random_sparse_density_validated(self):
        with pytest.raises(ValueError):
            random_sparse(10, density=0.0)

    def test_irregular_rows_length_distribution(self):
        a = irregular_rows(200, min_len=2, max_len=40, seed=5)
        lengths = a.row_lengths()
        assert lengths.min() >= 2
        assert lengths.max() <= 40
        # Power-law: the longest rows greatly exceed the median.
        assert lengths.max() > 3 * np.median(lengths)

    def test_irregular_rows_deterministic(self):
        a = irregular_rows(40, max_len=12, seed=6)
        b = irregular_rows(40, max_len=12, seed=6)
        assert a.equal(b)

    def test_irregular_rows_bounds_validated(self):
        with pytest.raises(ValueError):
            irregular_rows(10, min_len=5, max_len=3)
        with pytest.raises(ValueError):
            irregular_rows(10, max_len=20)
