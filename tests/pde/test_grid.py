"""Structured grids: indexing, periodicity, hierarchy."""

import numpy as np
import pytest

from repro.pde.grid import Grid2D


class TestIndexing:
    def test_interleaved_unknown_numbering(self):
        g = Grid2D(4, 3, dof=2)
        assert g.unknown_index(0, 0, 0) == 0
        assert g.unknown_index(0, 0, 1) == 1
        assert g.unknown_index(1, 0, 0) == 2
        assert g.unknown_index(0, 1, 0) == 8

    def test_periodic_wrap(self):
        g = Grid2D(4, 4)
        assert g.point_index(-1, 0) == g.point_index(3, 0)
        assert g.point_index(4, 2) == g.point_index(0, 2)
        assert g.point_index(0, -1) == g.point_index(0, 3)

    def test_component_bounds(self):
        g = Grid2D(2, 2, dof=2)
        with pytest.raises(IndexError):
            g.unknown_index(0, 0, 2)

    def test_neighbors_are_the_four_stencil_points(self):
        g = Grid2D(5, 5)
        nbrs = g.neighbors(0, 0)
        assert set(nbrs) == {(4, 0), (1, 0), (0, 4), (0, 1)}

    def test_shifted_points_vectorized_matches_scalar(self):
        g = Grid2D(5, 4)
        shifted = g.shifted_points(1, -1)
        for j in range(4):
            for i in range(5):
                assert shifted[j * 5 + i] == g.point_index(i + 1, j - 1)

    def test_sizes(self):
        g = Grid2D(8, 4, dof=2, length=2.5)
        assert g.npoints == 32
        assert g.ndof == 64
        assert g.hx == pytest.approx(2.5 / 8)
        assert g.hy == pytest.approx(2.5 / 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid2D(0, 4)
        with pytest.raises(ValueError):
            Grid2D(4, 4, dof=0)
        with pytest.raises(ValueError):
            Grid2D(4, 4, length=-1.0)


class TestFields:
    def test_round_trip(self):
        g = Grid2D(4, 3, dof=2)
        rng = np.random.default_rng(0)
        w = rng.standard_normal(g.ndof)
        assert np.array_equal(g.fields_as_unknowns(g.unknowns_as_fields(w)), w)

    def test_field_shapes(self):
        g = Grid2D(4, 3, dof=2)
        fields = g.unknowns_as_fields(np.zeros(g.ndof))
        assert len(fields) == 2
        assert fields[0].shape == (3, 4)  # (ny, nx)

    def test_shape_validation(self):
        g = Grid2D(4, 3, dof=1)
        with pytest.raises(ValueError):
            g.unknowns_as_fields(np.zeros(5))
        with pytest.raises(ValueError):
            g.fields_as_unknowns([np.zeros((4, 3))])  # transposed

    def test_coordinates_span_the_domain(self):
        g = Grid2D(4, 4, length=2.0)
        x, y = g.point_coordinates()
        assert x.min() == 0.0 and x.max() == pytest.approx(1.5)
        assert y.min() == 0.0 and y.max() == pytest.approx(1.5)


class TestHierarchy:
    def test_factor_two_coarsening(self):
        g = Grid2D(16, 8, dof=2)
        c = g.coarsen()
        assert (c.nx, c.ny, c.dof) == (8, 4, 2)
        assert c.length == g.length

    def test_hierarchy_finest_first(self):
        grids = Grid2D(32, 32).hierarchy(4)
        assert [g.nx for g in grids] == [32, 16, 8, 4]

    def test_odd_grids_cannot_coarsen(self):
        assert not Grid2D(6, 7).can_coarsen()
        with pytest.raises(ValueError):
            Grid2D(6, 7).coarsen()

    def test_too_small_grids_cannot_coarsen(self):
        assert not Grid2D(2, 2).can_coarsen()

    def test_hierarchy_validation(self):
        with pytest.raises(ValueError):
            Grid2D(8, 8).hierarchy(0)
