"""Advection-diffusion: the nonsymmetric linear problem."""

import numpy as np
import pytest

from repro.ksp.gmres import GMRES
from repro.ksp.pc.jacobi import JacobiPC
from repro.ksp.ts import ThetaMethod
from repro.pde.advection import AdvectionDiffusion, AdvectionDiffusionProblem
from repro.pde.grid import Grid2D


@pytest.fixture
def problem() -> AdvectionDiffusionProblem:
    return AdvectionDiffusionProblem(Grid2D(8, 8, dof=1))


class TestModel:
    def test_requires_scalar_grid(self):
        with pytest.raises(ValueError):
            AdvectionDiffusionProblem(Grid2D(4, 4, dof=2))

    def test_negative_diffusivity_rejected(self):
        with pytest.raises(ValueError):
            AdvectionDiffusion(diffusivity=-1.0)


class TestJacobian:
    def test_matches_finite_differences(self, problem):
        w = problem.initial_state()
        analytic = problem.jacobian().to_dense()
        fd = problem.jacobian_fd(w)
        assert np.abs(analytic - fd).max() < 1e-6

    @pytest.mark.parametrize("vx,vy", [(1.0, 0.5), (-1.0, 0.5), (1.0, -0.5), (-0.7, -0.2)])
    def test_upwind_direction_follows_velocity_sign(self, vx, vy):
        grid = Grid2D(6, 6, dof=1)
        p = AdvectionDiffusionProblem(
            grid, AdvectionDiffusion(vx=vx, vy=vy)
        )
        w = p.initial_state()
        assert np.abs(p.jacobian().to_dense() - p.jacobian_fd(w)).max() < 1e-6

    def test_pattern_is_five_point(self, problem):
        assert set(problem.jacobian().row_lengths().tolist()) == {5}

    def test_nonsymmetric(self, problem):
        j = problem.jacobian().to_dense()
        assert not np.allclose(j, j.T)

    def test_jacobian_is_state_independent(self, problem):
        a = problem.jacobian(problem.initial_state())
        b = problem.jacobian(None)
        assert a.equal(b, tol=0.0)

    def test_shift_scale(self, problem):
        j = problem.jacobian().to_dense()
        composed = problem.jacobian(shift=2.0, scale=-0.5).to_dense()
        assert np.allclose(composed, 2.0 * np.eye(j.shape[0]) - 0.5 * j)


class TestDynamics:
    def test_rhs_conserves_mass(self, problem):
        """Both the periodic Laplacian and upwind advection are
        conservative: the rhs sums to zero."""
        w = problem.initial_state()
        assert abs(problem.rhs(w).sum()) < 1e-10

    def test_pure_advection_preserves_the_total(self):
        """A few implicit steps of advection keep sum(u) constant."""
        grid = Grid2D(12, 12, dof=1)
        p = AdvectionDiffusionProblem(
            grid, AdvectionDiffusion(diffusivity=1e-12, vx=1.0, vy=0.0)
        )
        ts = ThetaMethod(
            rhs=p.rhs,
            jacobian=p.jacobian,
            ksp_factory=lambda: GMRES(pc=JacobiPC(), rtol=1e-12),
            dt=0.05,
        )
        w0 = p.initial_state()
        result = ts.integrate(w0, 4)
        assert result.final_state.sum() == pytest.approx(w0.sum(), rel=1e-9)

    def test_diffusion_damps_the_peak(self):
        grid = Grid2D(12, 12, dof=1)
        p = AdvectionDiffusionProblem(
            grid, AdvectionDiffusion(diffusivity=0.05, vx=0.0, vy=0.0)
        )
        ts = ThetaMethod(
            rhs=p.rhs,
            jacobian=p.jacobian,
            ksp_factory=lambda: GMRES(pc=JacobiPC(), rtol=1e-12),
            dt=0.1,
        )
        w0 = p.initial_state()
        result = ts.integrate(w0, 3)
        assert result.final_state.max() < w0.max()
