"""The Gray-Scott problem: residual, Jacobian, initial data."""

import numpy as np
import pytest

from repro.pde.grayscott import GrayScott, GrayScottProblem
from repro.pde.grid import Grid2D


@pytest.fixture
def problem() -> GrayScottProblem:
    return GrayScottProblem(Grid2D(6, 6, dof=2))


class TestModel:
    def test_default_parameters_follow_the_literature(self):
        m = GrayScott()
        assert m.d1 == 8.0e-5
        assert m.d2 == 4.0e-5
        assert m.gamma == 0.024
        assert m.kappa == 0.06

    def test_diffusivities_must_be_positive(self):
        with pytest.raises(ValueError):
            GrayScott(d1=0.0)

    def test_requires_two_dofs(self):
        with pytest.raises(ValueError):
            GrayScottProblem(Grid2D(4, 4, dof=1))


class TestInitialState:
    def test_trivial_state_outside_the_seeded_square(self, problem):
        w = problem.initial_state(noise=0.0)
        u, v = problem.split(w)
        # Corners are far from the centered square.
        assert u[0, 0] == 1.0
        assert v[0, 0] == 0.0

    def test_seeded_square_carries_the_pearson_values(self, problem):
        w = problem.initial_state(noise=0.0)
        u, v = problem.split(w)
        mid = 3  # center of a 6x6 grid
        assert u[mid, mid] == pytest.approx(0.5)
        assert v[mid, mid] == pytest.approx(0.25)

    def test_deterministic_for_a_fixed_seed(self, problem):
        a = problem.initial_state(seed=7)
        b = problem.initial_state(seed=7)
        c = problem.initial_state(seed=8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestResidual:
    def test_uniform_steady_state_of_the_reaction(self):
        """(u, v) = (1, 0) is an equilibrium: f vanishes identically."""
        g = Grid2D(5, 5, dof=2)
        problem = GrayScottProblem(g)
        w = np.empty(g.ndof)
        w[0::2] = 1.0
        w[1::2] = 0.0
        assert np.allclose(problem.rhs(w), 0.0, atol=1e-14)

    def test_rhs_shape_validation(self, problem):
        with pytest.raises(ValueError):
            problem.rhs(np.zeros(5))


class TestJacobian:
    def test_matches_finite_differences(self, problem):
        w = problem.initial_state()
        analytic = problem.jacobian(w).to_dense()
        fd = problem.jacobian_fd(w)
        assert np.abs(analytic - fd).max() < 1e-5

    def test_every_row_has_exactly_ten_entries(self, problem):
        """Paper Section 7: 'Each row has 10 elements.'"""
        j = problem.jacobian(problem.initial_state())
        assert set(j.row_lengths().tolist()) == {10}
        assert j.nnz == 10 * problem.grid.ndof

    def test_shift_scale_convention(self, problem):
        """jacobian(w, shift, scale) == shift*I + scale*J."""
        w = problem.initial_state()
        j = problem.jacobian(w).to_dense()
        composed = problem.jacobian(w, shift=3.0, scale=-0.25).to_dense()
        expected = 3.0 * np.eye(w.shape[0]) - 0.25 * j
        assert np.abs(composed - expected).max() < 1e-13

    def test_sparsity_pattern_is_state_independent(self, problem):
        """The same stencil pattern at every Newton iteration — what makes
        re-assembly cheap and SELL slicing reusable."""
        w1 = problem.initial_state(seed=1)
        w2 = problem.initial_state(seed=2) * 1.7
        j1 = problem.jacobian(w1)
        j2 = problem.jacobian(w2)
        assert np.array_equal(j1.rowptr, j2.rowptr)
        assert np.array_equal(j1.colidx, j2.colidx)

    def test_jacobian_fd_guard_for_large_problems(self):
        big = GrayScottProblem(Grid2D(32, 32, dof=2))
        with pytest.raises(ValueError):
            big.jacobian_fd(big.initial_state())

    def test_state_length_validated(self, problem):
        with pytest.raises(ValueError):
            problem.jacobian(np.zeros(3))
