"""Finite-difference stencils: consistency and spectral exactness."""

import numpy as np
import pytest

from repro.pde.grid import Grid2D
from repro.pde.stencil import (
    apply_laplacian,
    laplacian_csr,
    nine_point_laplacian_csr,
)


class TestFivePoint:
    def test_assembled_matches_matrix_free(self):
        g = Grid2D(8, 8)
        rng = np.random.default_rng(0)
        field = rng.standard_normal((8, 8))
        w = g.fields_as_unknowns([field])
        assembled = laplacian_csr(g).multiply(w)
        direct = g.fields_as_unknowns([apply_laplacian(g, field)])
        assert np.allclose(assembled, direct)

    def test_constants_are_in_the_nullspace(self):
        g = Grid2D(6, 6)
        lap = laplacian_csr(g)
        assert np.allclose(lap.multiply(np.ones(36)), 0.0, atol=1e-12)

    def test_fourier_modes_are_eigenvectors(self):
        """On a periodic grid, e^{ikx} is an exact eigenvector of the
        discrete Laplacian with eigenvalue -4 sin^2(k h / 2) / h^2."""
        g = Grid2D(16, 16)
        lap = laplacian_csr(g)
        x, _ = g.point_coordinates()
        k = 2 * np.pi * 3 / g.length  # mode 3 in x
        v = np.cos(k * x)
        expected = -4.0 * np.sin(k * g.hx / 2.0) ** 2 / g.hx**2
        out = lap.multiply(v)
        assert np.allclose(out, expected * v, atol=1e-9)

    def test_five_entries_per_row(self):
        g = Grid2D(8, 8)
        assert set(laplacian_csr(g).row_lengths().tolist()) == {5}

    def test_component_selector_leaves_other_components_empty(self):
        g = Grid2D(4, 4, dof=2)
        lap = laplacian_csr(g, component=1)
        lengths = lap.row_lengths()
        assert np.all(lengths[1::2] == 5)
        assert np.all(lengths[0::2] == 0)

    def test_scale_factor(self):
        g = Grid2D(8, 8)
        a = laplacian_csr(g, scale=2.0)
        b = laplacian_csr(g, scale=1.0)
        assert np.allclose(a.to_dense(), 2.0 * b.to_dense())

    def test_nonsquare_cells_rejected(self):
        g = Grid2D(8, 4)  # hx != hy
        with pytest.raises(ValueError):
            laplacian_csr(g)

    def test_matrix_free_shape_validation(self):
        g = Grid2D(4, 4)
        with pytest.raises(ValueError):
            apply_laplacian(g, np.zeros((4, 5)))


class TestNinePoint:
    def test_nine_entries_per_row(self):
        g = Grid2D(8, 8)
        assert set(nine_point_laplacian_csr(g).row_lengths().tolist()) == {9}

    def test_constants_in_the_nullspace(self):
        g = Grid2D(6, 6)
        lap = nine_point_laplacian_csr(g)
        assert np.allclose(lap.multiply(np.ones(36)), 0.0, atol=1e-12)

    def test_consistent_with_five_point_on_smooth_data(self):
        """Both discretize the same operator to at least O(h^2)."""
        g = Grid2D(64, 64)
        x, y = g.point_coordinates()
        kx = 2 * np.pi / g.length
        v = np.sin(kx * x) * np.cos(kx * y)
        five = laplacian_csr(g).multiply(v)
        nine = nine_point_laplacian_csr(g).multiply(v)
        exact = -2.0 * kx * kx * v
        assert np.abs(five - exact).max() < 0.05 * np.abs(exact).max()
        assert np.abs(nine - exact).max() < 0.05 * np.abs(exact).max()
