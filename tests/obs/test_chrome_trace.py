"""Chrome trace-event export and the schema validator."""

import json

from repro.obs import ChromeTrace, validate_trace


def fake_clock(times):
    it = iter(times)
    return lambda: next(it)


class TestExport:
    def test_begin_end_pair(self):
        trace = ChromeTrace(clock=fake_clock([0.0, 1.0, 3.0]))
        trace.begin("MatMult", rank=0)
        trace.end("MatMult", rank=0)
        spans = [e for e in trace.events if e["ph"] in ("B", "E")]
        assert [e["ph"] for e in spans] == ["B", "E"]
        # Timestamps are microseconds from the trace origin.
        assert spans[0]["ts"] == 1e6 and spans[1]["ts"] == 3e6

    def test_metadata_names_the_rank_tracks(self):
        trace = ChromeTrace()
        trace.begin("a", rank=2)
        trace.end("a", rank=2)
        meta = [e for e in trace.events if e["ph"] == "M"]
        names = {e["name"]: e["args"] for e in meta}
        assert names["process_name"]["name"] == "repro"
        assert names["thread_name"]["name"] == "rank 2"

    def test_complete_event_is_retroactive(self):
        trace = ChromeTrace(clock=fake_clock([0.0, 5.0]))
        now = 5.0
        trace.complete("comm.retry", start=now - 2.0, duration=2.0, rank=1)
        (x,) = (e for e in trace.events if e["ph"] == "X")
        assert x["ts"] == 3e6
        assert x["dur"] == 2e6

    def test_instant_marker(self):
        trace = ChromeTrace(clock=fake_clock([0.0, 1.0]))
        trace.instant("health.nonfinite", rank=0, args={"rnorm": "nan"})
        (i,) = (e for e in trace.events if e["ph"] == "i")
        assert i["s"] == "t"
        assert i["args"]["rnorm"] == "nan"

    def test_json_document_shape(self, tmp_path):
        trace = ChromeTrace()
        trace.begin("a", rank=0)
        trace.end("a", rank=0)
        path = tmp_path / "trace.json"
        trace.write_json(path)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert validate_trace(doc) == []


class TestValidator:
    def test_clean_trace_validates(self):
        trace = ChromeTrace(clock=fake_clock([0.0, 1.0, 2.0, 3.0, 4.0]))
        trace.begin("outer", rank=0)
        trace.begin("inner", rank=0)
        trace.end("inner", rank=0)
        trace.end("outer", rank=0)
        assert validate_trace({"traceEvents": trace.events}) == []

    def test_unclosed_begin_is_reported(self):
        trace = ChromeTrace()
        trace.begin("leak", rank=0)
        problems = validate_trace({"traceEvents": trace.events})
        assert any("leak" in p for p in problems)

    def test_mismatched_end_is_reported(self):
        events = [
            {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 0},
            {"name": "b", "ph": "E", "ts": 1.0, "pid": 1, "tid": 0},
        ]
        problems = validate_trace({"traceEvents": events})
        assert problems

    def test_non_monotonic_track_is_reported(self):
        events = [
            {"name": "a", "ph": "B", "ts": 5.0, "pid": 1, "tid": 0},
            {"name": "a", "ph": "E", "ts": 1.0, "pid": 1, "tid": 0},
        ]
        problems = validate_trace({"traceEvents": events})
        assert any("monotonic" in p or "ts" in p for p in problems)

    def test_retroactive_x_events_are_exempt_from_monotonicity(self):
        """Retry gaps are written once the backoff is known — after later
        B/E events on the same track.  The format allows it (viewers
        sort); the validator must not flag it."""
        events = [
            {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 0},
            {"name": "a", "ph": "E", "ts": 10.0, "pid": 1, "tid": 0},
            {"name": "gap", "ph": "X", "ts": 2.0, "dur": 3.0, "pid": 1, "tid": 0},
        ]
        assert validate_trace({"traceEvents": events}) == []

    def test_negative_duration_x_is_reported(self):
        events = [
            {"name": "gap", "ph": "X", "ts": 2.0, "dur": -1.0, "pid": 1, "tid": 0}
        ]
        assert validate_trace({"traceEvents": events})

    def test_missing_required_key_is_reported(self):
        assert validate_trace({"traceEvents": [{"name": "a", "ph": "B"}]})

    def test_separate_tracks_do_not_interleave_nesting(self):
        """Each (pid, tid) nests independently — rank 1's events must not
        close rank 0's."""
        events = [
            {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 0},
            {"name": "b", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 2.0, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 3.0, "pid": 1, "tid": 0},
        ]
        assert validate_trace({"traceEvents": events}) == []
