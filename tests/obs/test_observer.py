"""The Observer, the observing() installer, and the passive obs_* hooks."""

import numpy as np
import pytest

from repro.obs import Observer, active_observer, observing
from repro.obs.observer import obs_bump, obs_counter, obs_event, obs_stage


def fake_clock(times):
    it = iter(times)
    return lambda: next(it)


class TestInstallation:
    def test_no_observer_by_default(self):
        assert active_observer() is None

    def test_observing_installs_and_restores(self):
        with observing() as obs:
            assert active_observer() is obs
            with observing() as inner:
                assert active_observer() is inner
            assert active_observer() is obs
        assert active_observer() is None

    def test_observing_restores_on_raise(self):
        with pytest.raises(RuntimeError):
            with observing():
                raise RuntimeError("boom")
        assert active_observer() is None


class TestHooks:
    def test_hooks_are_noops_when_inactive(self):
        with obs_event("MatMult") as rec:
            assert rec is None
        with obs_stage("KSPSolve"):
            pass
        obs_bump("Fault:benign:spmv.output")
        obs_counter("context.measurements")
        assert active_observer() is None

    def test_hooks_record_when_active(self):
        with observing() as obs:
            with obs_stage("KSPSolve"):
                with obs_event("MatMult") as rec:
                    assert rec is not None
            obs_counter("context.measurements", 2)
        log = obs.log()
        assert log.record("MatMult", stage="KSPSolve").calls == 1
        assert obs.metrics.snapshot()["context.measurements"] == 2

    def test_event_mirrors_into_the_trace(self):
        with observing() as obs:
            with obs_event("MatMult"):
                pass
        phases = [e["ph"] for e in obs.trace.events if e["name"] == "MatMult"]
        assert phases == ["B", "E"]


class TestRankAttribution:
    def test_default_rank_is_zero(self):
        assert Observer().rank == 0

    def test_at_rank_routes_to_that_log(self):
        obs = Observer()
        with obs.at_rank(3):
            with obs.event("MatMult"):
                pass
        assert set(obs.rank_logs) == {3}
        assert obs.rank_logs[3].record("MatMult").calls == 1

    def test_at_rank_restores_previous(self):
        obs = Observer()
        with obs.at_rank(1):
            with obs.at_rank(2):
                assert obs.rank == 2
            assert obs.rank == 1
        assert obs.rank == 0

    def test_rank_clock_factory_gives_each_rank_its_clock(self):
        obs = Observer(rank_clock_factory=lambda r: fake_clock([0.0, 0.0, float(r + 1)]))
        for rank in range(2):
            with obs.at_rank(rank):
                with obs.event("work"):
                    pass
        assert obs.rank_logs[0].record("work").self_seconds == 1.0
        assert obs.rank_logs[1].record("work").self_seconds == 2.0

    def test_events_land_on_their_rank_trace_track(self):
        obs = Observer()
        with obs.at_rank(2):
            with obs.event("MatMult"):
                pass
        (b,) = (e for e in obs.trace.events if e["ph"] == "B")
        assert b["tid"] == 2


class TestResilienceBridge:
    def test_observer_is_a_valid_resilience_log_target(self):
        """ResilienceLog.attach(log) calls bump(name) — an Observer
        satisfies that contract, so fault events mirror in."""
        from repro.faults.events import ResilienceLog

        obs = Observer()
        rlog = ResilienceLog()
        rlog.attach(obs)
        rlog.emit("detected", "spmv.output", kind="bitflip")
        rec = obs.log().record("Fault:detected:spmv.output")
        assert rec.calls == 1


class TestContextIntegration:
    def test_context_observe_and_cache_counters(self, gray_scott_small):
        from repro.core.context import ExecutionContext

        ctx = ExecutionContext(default_variant="SELL using AVX512")
        with ctx.observe() as obs:
            ctx.measure("SELL using AVX512", gray_scott_small)
            ctx.measure("SELL using AVX512", gray_scott_small)
        snap = obs.metrics.snapshot()
        assert snap["context.measurements"] == 1
        assert snap["context.measure_cache_hits"] == 1
        assert snap['simd.flops{variant="SELL using AVX512"}'] > 0
        assert obs.log().record("Measure:SELL using AVX512").calls == 1

    def test_solver_events_appear_under_observation(self, gray_scott_small):
        from repro.ksp import GMRES, JacobiPC

        b = np.ones(gray_scott_small.shape[0])
        with observing() as obs:
            result = GMRES(pc=JacobiPC(), rtol=1e-8).solve(gray_scott_small, b)
        assert result.reason.converged
        log = obs.log()
        assert log.record("KSPSolve").calls == 1
        assert log.record("MatMult").calls >= result.iterations
        assert log.record("PCApply").calls >= result.iterations
        assert log.record("PCSetUp").calls == 1


class TestPassivity:
    def test_measurement_is_bit_identical_with_and_without_observer(
        self, gray_scott_small
    ):
        """Observability must be passive: observed results match
        unobserved results bit for bit (the figure fixtures depend on it)."""
        from repro.core.context import ExecutionContext

        plain = ExecutionContext(default_variant="SELL using AVX512")
        bare = plain.measure("SELL using AVX512", gray_scott_small)

        observed_ctx = ExecutionContext(default_variant="SELL using AVX512")
        with observing():
            seen = observed_ctx.measure("SELL using AVX512", gray_scott_small)

        assert np.array_equal(bare.y, seen.y)
        assert bare.counters == seen.counters

    def test_solver_trajectory_is_identical_under_observation(self, gray_scott_small):
        from repro.ksp import GMRES, JacobiPC

        b = np.linspace(0.0, 1.0, gray_scott_small.shape[0])
        x_bare = GMRES(pc=JacobiPC(), rtol=1e-10).solve(gray_scott_small, b).x
        with observing():
            x_seen = GMRES(pc=JacobiPC(), rtol=1e-10).solve(gray_scott_small, b).x
        assert np.array_equal(x_bare, x_seen)
