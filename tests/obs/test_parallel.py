"""Per-rank reduction, the SPMD bridge, and end-to-end traces."""

import json

import numpy as np
import pytest

from repro.obs import Observer, merge_rank_logs, observing, validate_trace


def fake_clock(times):
    """A queued clock that repeats its final value once exhausted (the
    merge reads each log's wall clock more than once)."""
    it = iter(times)
    last = times[-1]

    def clock():
        nonlocal last
        for value in it:
            last = value
            return value
        return last

    return clock


class TestMergeRankLogs:
    def test_min_max_avg_ratio_with_deterministic_clocks(self):
        """Pin the load-imbalance arithmetic with per-rank fake clocks:
        rank r's one event takes r+1 seconds."""
        obs = Observer(
            rank_clock_factory=lambda r: fake_clock([0.0, 0.0, float(r + 1), 100.0])
        )
        for rank in range(4):
            with obs.at_rank(rank):
                with obs.event("MatMult", trace=False):
                    pass
        summary = merge_rank_logs(obs.rank_logs)
        row = summary.event("MatMult")
        assert summary.nranks == 4
        assert row.calls == 4
        assert row.min == 1.0 and row.max == 4.0
        assert row.avg == pytest.approx(2.5)
        assert row.ratio == pytest.approx(4.0)

    def test_absent_rank_contributes_zero(self):
        obs = Observer(rank_clock_factory=lambda r: fake_clock([0.0, 0.0, 2.0, 9.0]))
        with obs.at_rank(0):
            with obs.event("MatMult", trace=False):
                pass
        with obs.at_rank(1):
            with obs.event("VecNorm", trace=False):
                pass
        row = merge_rank_logs(obs.rank_logs).event("MatMult")
        assert row.min == 0.0 and row.max == 2.0
        assert row.ratio == float("inf")

    def test_stages_union_across_ranks(self):
        obs = Observer()
        with obs.at_rank(0), obs.stage("A"):
            pass
        with obs.at_rank(1), obs.stage("B"):
            pass
        summary = merge_rank_logs(obs.rank_logs)
        assert [s.name for s in summary.stages] == ["Main Stage", "A", "B"]

    def test_render_has_the_imbalance_columns(self):
        obs = Observer()
        with obs.at_rank(0):
            with obs.event("MatMult", trace=False):
                pass
        out = merge_rank_logs(obs.rank_logs).render()
        assert "max/min" in out and "MatMult" in out


class TestSpmdIntegration:
    @pytest.fixture
    def observed_parallel_solve(self, gray_scott_small):
        """One observed 4-rank parallel GMRES solve, shared per test run."""
        from repro.comm.communicator import World
        from repro.comm.spmd import run_spmd
        from repro.ksp import ParallelBlockJacobiPC, ParallelGMRES
        from repro.mat.mpi_aij import MPIAij
        from repro.obs.observer import obs_stage
        from repro.vec.mpi_vec import MPIVec

        csr = gray_scott_small
        b = np.linspace(0.0, 1.0, csr.shape[0])

        def prog(comm):
            with obs_stage("KSPSolve"):
                a = MPIAij.from_global_csr(comm, csr)
                bv = MPIVec.from_global(comm, a.layout, b)
                res = ParallelGMRES(pc=ParallelBlockJacobiPC(), rtol=1e-8).solve(a, bv)
            return res.reason.converged

        obs = Observer()
        with observing(obs):
            results = run_spmd(4, prog, world=World(4))
        assert all(results)
        return obs

    def test_each_rank_gets_its_own_log(self, observed_parallel_solve):
        obs = observed_parallel_solve
        assert set(obs.rank_logs) == {0, 1, 2, 3}
        for rank in range(4):
            log = obs.rank_logs[rank]
            assert log.record("MatMult", stage="KSPSolve").calls > 0
            assert log.record("PCApply", stage="KSPSolve").calls > 0

    def test_per_rank_summary_reduces_all_ranks(self, observed_parallel_solve):
        summary = merge_rank_logs(observed_parallel_solve.rank_logs)
        assert summary.nranks == 4
        row = summary.event("MatMult", stage="KSPSolve")
        assert row.calls >= 4                 # every rank multiplied
        assert row.max >= row.avg >= row.min >= 0.0
        assert row.ratio >= 1.0
        stage = summary.stage("KSPSolve")
        assert stage.max > 0.0

    def test_trace_validates_with_one_track_per_rank(self, observed_parallel_solve):
        doc = json.loads(observed_parallel_solve.trace.to_json())
        assert validate_trace(doc) == []
        tids = {
            e["tid"] for e in doc["traceEvents"] if e["ph"] in ("B", "E", "X", "i")
        }
        assert tids == {0, 1, 2, 3}

    def test_world_traffic_folds_into_metrics(self, observed_parallel_solve):
        snap = observed_parallel_solve.metrics.snapshot()
        assert snap["comm.messages"] > 0
        assert snap["comm.bytes"] > 0


class TestCampaignTrace:
    def test_seeded_campaign_trace_contains_retry_gaps(self):
        """The acceptance trace: a seeded fault campaign produces a valid
        Chrome trace containing at least one comm-retry gap (an X event
        covering the retransmission backoff)."""
        from repro.faults.campaign import run_campaign

        with observing() as obs:
            result = run_campaign(3, grid=12)
        assert result.accounted()

        doc = json.loads(obs.trace.to_json())
        assert validate_trace(doc) == []
        retries = [e for e in doc["traceEvents"] if e["name"] == "comm.retry"]
        assert len(retries) >= 1
        for gap in retries:
            assert gap["ph"] == "X"
            assert gap["dur"] > 0
            assert "site" in gap["args"]
