"""The labeled metrics registry and its subsystem adapters."""

import json

import pytest

from repro.obs import MetricsRegistry


class TestPrimitives:
    def test_counter_accumulates(self):
        m = MetricsRegistry()
        m.counter("a").inc()
        m.counter("a").inc(2.5)
        assert m.snapshot()["a"] == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="Gauge"):
            MetricsRegistry().counter("a").inc(-1)

    def test_gauge_moves_both_ways(self):
        m = MetricsRegistry()
        g = m.gauge("residual")
        g.set(10.0)
        g.add(-4.0)
        assert m.snapshot()["residual"] == 6

    def test_histogram_summary(self):
        m = MetricsRegistry()
        h = m.histogram("t")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        d = m.snapshot()["t"]
        assert d["count"] == 3
        assert d["min"] == 1.0 and d["max"] == 3.0
        assert d["mean"] == pytest.approx(2.0)

    def test_empty_histogram_has_no_min_max(self):
        m = MetricsRegistry()
        m.histogram("t")
        assert m.snapshot()["t"] == {"count": 0, "sum": 0.0}

    def test_labels_make_distinct_series(self):
        m = MetricsRegistry()
        m.counter("simd.flops", labels={"variant": "sell"}).inc(10)
        m.counter("simd.flops", labels={"variant": "csr"}).inc(20)
        snap = m.snapshot()
        assert snap['simd.flops{variant="sell"}'] == 10
        assert snap['simd.flops{variant="csr"}'] == 20

    def test_label_order_is_canonical(self):
        m = MetricsRegistry()
        m.counter("x", labels={"b": "2", "a": "1"}).inc()
        m.counter("x", labels={"a": "1", "b": "2"}).inc()
        assert m.snapshot() == {'x{a="1",b="2"}': 2}

    def test_kind_mismatch_raises(self):
        m = MetricsRegistry()
        m.counter("a")
        with pytest.raises(TypeError, match="Counter"):
            m.gauge("a")


class TestAdapters:
    def test_kernel_counters_land_in_simd_namespace(self):
        from repro.core.dispatch import get_variant
        from repro.core.spmv import measure

        meas = measure(get_variant("SELL using AVX512"), _small())
        m = MetricsRegistry()
        m.record_kernel_counters(meas.counters, "SELL using AVX512")
        snap = m.snapshot()
        assert snap['simd.flops{variant="SELL using AVX512"}'] == meas.counters.flops
        assert 'simd.bytes_loaded{variant="SELL using AVX512"}' in snap

    def test_traffic_lands_in_comm_namespace(self):
        from repro.comm.communicator import TrafficStats

        m = MetricsRegistry()
        m.record_traffic(TrafficStats(messages=7, bytes=1024))
        assert m.snapshot() == {"comm.bytes": 1024, "comm.messages": 7}

    def test_resilience_counts_land_in_faults_namespace(self):
        from repro.faults.events import ResilienceLog

        log = ResilienceLog()
        log.emit("injected", "spmv.output", kind="bitflip")
        log.emit("detected", "spmv.output", kind="bitflip")
        m = MetricsRegistry()
        m.record_resilience(log)
        snap = m.snapshot()
        assert snap["faults.injected"] == 1
        assert snap["faults.detected"] == 1


class TestExport:
    def test_snapshot_is_sorted_and_integral_values_are_ints(self):
        m = MetricsRegistry()
        m.counter("b").inc(2)
        m.gauge("a").set(1.5)
        snap = m.snapshot()
        assert list(snap) == ["a", "b"]
        assert isinstance(snap["b"], int)
        assert snap["a"] == 1.5

    def test_json_round_trip(self, tmp_path):
        m = MetricsRegistry()
        m.counter("a").inc()
        m.histogram("h").observe(2.0)
        path = tmp_path / "metrics.json"
        m.write_json(path)
        assert json.loads(path.read_text()) == m.snapshot()

    def test_reset_and_len(self):
        m = MetricsRegistry()
        m.counter("a")
        m.gauge("b")
        assert len(m) == 2
        m.reset()
        assert len(m) == 0


def _small():
    from repro.pde.problems import gray_scott_jacobian

    return gray_scott_jacobian(4)
