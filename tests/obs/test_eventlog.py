"""Log stages: wall-clock tiling, nesting, and exception safety."""

import pytest

from repro.obs import MAIN_STAGE, EventLog, LogStage


def fake_clock(times):
    """A clock returning queued values (deterministic timing tests)."""
    it = iter(times)
    return lambda: next(it)


class TestStages:
    def test_events_account_to_the_active_stage(self):
        log = EventLog(clock=fake_clock([0.0, 0.0, 1.0, 2.0, 3.0]))
        with log.stage("KSPSolve"):
            with log.event("MatMult"):
                pass
        assert log.record("MatMult", stage="KSPSolve").calls == 1
        # Nothing leaked into Main Stage.
        assert ("Main Stage", "MatMult") not in log._records

    def test_flat_api_is_stage_zero(self):
        """An EventLog used without stages is the original flat profiler."""
        log = EventLog(clock=fake_clock([0.0, 0.0, 2.0]))
        with log.event("MatMult"):
            pass
        rec = log.record("MatMult")
        assert rec.stage == MAIN_STAGE
        assert rec.total_seconds == 2.0
        assert log.current_stage == MAIN_STAGE

    def test_stage_self_times_tile_the_wall_clock(self):
        """PETSc's stage-table invariant, pinned with a fake clock.

        created=0; stage A [1,4]; stage B [5,9]; wall read at 10.
        Main Stage self = 10 - 3 - 4 = 3.
        """
        log = EventLog(clock=fake_clock([0.0, 1.0, 4.0, 5.0, 9.0, 10.0]))
        with log.stage("MatAssembly"):
            pass
        with log.stage("KSPSolve"):
            pass
        stages = log.stage_summary()
        assert [s.name for s in stages] == [MAIN_STAGE, "MatAssembly", "KSPSolve"]
        assert [s.self_seconds for s in stages] == [3.0, 3.0, 4.0]
        # wall_seconds was consumed by stage_summary's clock read above, so
        # assert the tiling against the recorded totals directly.
        assert sum(s.self_seconds for s in stages) == stages[0].total_seconds == 10.0

    def test_nested_stage_subtracts_from_parent_self(self):
        # created; outer push 1; inner push 2; inner pop 5; outer pop 8; wall 8
        log = EventLog(clock=fake_clock([0.0, 1.0, 2.0, 5.0, 8.0, 8.0]))
        with log.stage("Outer"):
            with log.stage("Inner"):
                pass
        stages = {s.name: s for s in log.stage_summary()}
        assert stages["Outer"].total_seconds == 7.0
        assert stages["Outer"].self_seconds == 4.0
        assert stages["Inner"].self_seconds == 3.0
        # Tiling holds with nesting: 1 (main) + 4 + 3 == 8.
        assert sum(s.self_seconds for s in stages.values()) == 8.0

    def test_repeated_pushes_accumulate(self):
        log = EventLog(clock=fake_clock([0.0, 0.0, 1.0, 2.0, 4.0, 5.0]))
        stage = LogStage("Assembly")
        for _ in range(2):
            with stage.on(log):
                pass
        rec = log.stage_summary()[1]
        assert rec.pushes == 2
        assert rec.total_seconds == 3.0

    def test_main_stage_cannot_be_pushed(self):
        with pytest.raises(ValueError, match="implicit"):
            EventLog().push_stage(MAIN_STAGE)

    def test_pop_without_push_raises(self):
        with pytest.raises(ValueError, match="no stage"):
            EventLog().pop_stage()

    def test_render_groups_by_stage(self):
        log = EventLog()
        with log.stage("KSPSolve"):
            with log.event("MatMult"):
                pass
        out = log.render()
        assert "stage 1: KSPSolve" in out
        assert "MatMult" in out

    def test_reset_restores_main_stage(self):
        log = EventLog()
        with log.stage("KSPSolve"):
            pass
        log.reset()
        assert log.current_stage == MAIN_STAGE
        assert [s.name for s in log.stage_summary()] == [MAIN_STAGE]


class TestExceptionSafety:
    """The regression suite for the raised-body bug: timing must never be
    lost and the stacks must never corrupt when an instrumented region
    raises (fault-recovery paths raise on purpose)."""

    def test_event_attributes_elapsed_time_on_raise(self):
        log = EventLog(clock=fake_clock([0.0, 1.0, 4.0]))
        with pytest.raises(RuntimeError):
            with log.event("MatMult"):
                raise RuntimeError("SDC detected")
        rec = log.record("MatMult")
        assert rec.calls == 1
        assert rec.total_seconds == 3.0
        assert rec.self_seconds == 3.0

    def test_event_stack_is_popped_on_raise(self):
        """A survived inner raise must not miscredit later siblings."""
        # created; outer 0; inner 1..3 (raises); sibling 3..5; outer end 6
        log = EventLog(clock=fake_clock([0.0, 0.0, 1.0, 3.0, 3.0, 5.0, 6.0]))
        with log.event("KSPSolve"):
            with pytest.raises(RuntimeError):
                with log.event("MatMult"):
                    raise RuntimeError("kernel died")
            with log.event("PCApply"):
                pass
        assert log._stack == []
        assert log.record("MatMult").total_seconds == 2.0
        assert log.record("PCApply").total_seconds == 2.0
        # Both children subtracted from the parent's self time.
        assert log.record("KSPSolve").self_seconds == 2.0

    def test_stage_is_popped_on_raise(self):
        log = EventLog(clock=fake_clock([0.0, 1.0, 3.0, 4.0]))
        with pytest.raises(RuntimeError):
            with log.stage("KSPSolve"):
                raise RuntimeError("diverged")
        assert log.current_stage == MAIN_STAGE
        assert log._stage_stack == []
        stages = {s.name: s for s in log.stage_summary()}
        assert stages["KSPSolve"].total_seconds == 2.0
