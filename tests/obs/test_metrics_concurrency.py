"""Metric instruments under thread contention: no lost updates."""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry


def _hammer(n_threads, fn):
    barrier = threading.Barrier(n_threads)

    def worker():
        barrier.wait()
        fn()

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_counter_increments_are_exact_under_threads():
    registry = MetricsRegistry()
    counter = registry.counter("registry.hits", labels={"namespace": "prepare"})
    n_threads, per_thread = 8, 5000
    _hammer(n_threads, lambda: [counter.inc() for _ in range(per_thread)])
    assert counter.value == n_threads * per_thread


def test_gauge_add_is_exact_under_threads():
    registry = MetricsRegistry()
    gauge = registry.gauge("serve.depth")
    n_threads, per_thread = 8, 2000
    _hammer(
        n_threads,
        lambda: [(gauge.add(1.0), gauge.add(-1.0)) for _ in range(per_thread)],
    )
    assert gauge.value == 0.0


def test_histogram_count_and_sum_are_exact_under_threads():
    registry = MetricsRegistry()
    hist = registry.histogram("serve.batch_width")
    n_threads, per_thread = 8, 2000
    _hammer(n_threads, lambda: [hist.observe(2.0) for _ in range(per_thread)])
    snapshot = hist.as_dict()
    assert snapshot["count"] == n_threads * per_thread
    assert snapshot["sum"] == 2.0 * n_threads * per_thread
    assert snapshot["mean"] == 2.0
