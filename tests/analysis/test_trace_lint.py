"""Static trace lint: clean on every shipped kernel, loud on defects."""

import numpy as np
import pytest

from repro.analysis import (
    CODES,
    AnalysisReport,
    BufferInfo,
    Diagnostic,
    TraceSubject,
    analyze_all,
    analyze_variant,
    default_structures,
    lint_trace,
    summarize,
)
from repro.core.context import ExecutionContext
from repro.core.dispatch import KernelVariant, get_variant, registered_variants
from repro.pde.problems import gray_scott_jacobian
from repro.simd.isa import AVX512


class TestDiagnostics:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("VEC999", "nowhere", "not a real code")

    def test_report_roundtrip(self):
        report = AnalysisReport(subject="s")
        assert report.ok
        report.diagnostics.append(Diagnostic("VEC020", "op 3", "use of r7"))
        assert not report.ok
        assert report.codes == {"VEC020"}
        doc = report.as_dict()
        assert doc["subject"] == "s"
        assert doc["diagnostics"][0]["code"] == "VEC020"

    def test_every_code_documented(self):
        for code, summary in CODES.items():
            assert code.startswith(("VEC0", "NUM0", "COMM0"))
            assert summary


class TestShippedKernelsAreClean:
    """The acceptance sweep: all registered variants x the full panel."""

    @pytest.mark.parametrize(
        "variant", [v.name for v in registered_variants()]
    )
    def test_variant_clean_on_panel(self, variant):
        for label, csr, slice_height, sigma in default_structures():
            try:
                report = analyze_variant(
                    variant, csr,
                    slice_height=slice_height, sigma=sigma, label=label,
                )
            except (ValueError, NotImplementedError):
                continue  # format constraint, same skip rule as tuning
            assert report.ok, (
                f"{report.subject}: " + "; ".join(map(str, report.diagnostics))
            )

    def test_analyze_all_summary(self):
        reports = analyze_all()
        doc = summarize(reports)
        assert doc["analyzed"] == len(reports) > 0
        assert doc["dirty"] == 0
        assert doc["clean"] == doc["analyzed"]


def _subject(ops, buffers=None, **kwargs):
    if buffers is None:
        buffers = (
            BufferInfo("val", 64, 8),
            BufferInfo("x", 8, 8),
            BufferInfo("y", 8, 8),
        )
    return TraceSubject(
        ops=tuple(ops), lanes=8, isa=AVX512, buffers=buffers, **kwargs
    )


class TestSyntheticDataflow:
    """Hand-built traces pin each dataflow rule independently."""

    def test_register_read_before_write(self):
        diags = lint_trace(_subject([
            ("vload", 0, 0, 0),
            ("add", 1, ("r", 0), ("r", 5)),   # r5 never defined
            ("vstore", 2, 0, ("r", 1)),
        ]))
        assert "VEC020" in {d.code for d in diags}

    def test_scalar_read_before_write(self):
        diags = lint_trace(_subject([
            ("sstore", 2, 0, ("s", 3)),       # s3 never defined
        ]))
        assert "VEC020" in {d.code for d in diags}

    def test_dead_scalar_flagged(self):
        diags = lint_trace(_subject([
            ("vload", 0, 0, 0),
            ("reduce", 0, ("r", 0), None),    # s0 computed, never consumed
            ("vstore", 2, 0, ("r", 0)),
        ]))
        assert "VEC021" in {d.code for d in diags}

    def test_clean_scalar_chain_has_no_findings(self):
        diags = lint_trace(_subject([
            ("sload", 0, 0, 0),
            ("sload", 1, 1, 0),
            ("sfma", 2, ("s", 0), ("s", 1), ("l", 0.0)),
            ("sstore", 2, 0, ("s", 2)),
        ], outputs=()))
        assert diags == []

    def test_lane_width_mismatch_on_index_vector(self):
        diags = lint_trace(_subject([
            ("gather", 0, 1, np.arange(4, dtype=np.int64)),
            ("vstore", 2, 0, ("r", 0)),
        ]))
        assert "VEC013" in {d.code for d in diags}

    def test_output_read_before_store(self):
        diags = lint_trace(_subject([
            ("vload", 0, 2, 0),               # reads y before any store
            ("vstore", 2, 0, ("r", 0)),
        ]))
        assert "VEC022" in {d.code for d in diags}

    def test_double_store_and_missing_row(self):
        diags = lint_trace(_subject(
            [
                ("setzero", 0),
                ("vstore", 2, 0, ("r", 0)),
                ("vstore", 2, 0, ("r", 0)),   # same 8 cells again
            ],
            buffers=(
                BufferInfo("val", 64, 8),
                BufferInfo("x", 8, 8),
                BufferInfo("y", 16, 8),       # rows 8..15 never written
            ),
        ))
        codes = {d.code for d in diags}
        assert "VEC040" in codes
        assert "VEC041" in codes


class TestVerifyVariantHook:
    def test_shipped_variant_verifies_clean_and_memoizes(self):
        ctx = ExecutionContext()
        csr = gray_scott_jacobian(6)
        report = ctx.verify_variant("SELL using AVX512", csr)
        assert report.ok
        assert ctx.verify_variant("SELL using AVX512", csr) is report

    def test_tuning_refuses_statically_broken_variant(self):
        def broken_csr(engine, a, x, y):
            # Forgets the last row: a coverage defect, not a crash.
            for r in range(a.shape[0] - 1):
                acc = 0.0
                for k in range(a.rowptr[r], a.rowptr[r + 1]):
                    acc = engine.scalar_fma(
                        engine.scalar_load(a.val, int(k)),
                        engine.scalar_load(x, int(a.colidx[k])),
                        acc,
                    )
                engine.scalar_store(y, r, acc)

        broken = KernelVariant("broken CSR", "CSR", AVX512, broken_csr)
        good = get_variant("CSR using novec")
        csr = gray_scott_jacobian(6)

        ctx = ExecutionContext(verify_variants=True)
        report = ctx.verify_variant(broken, csr)
        assert not report.ok
        assert "VEC041" in report.codes

        assert ctx.best_variant(csr, candidates=(broken, good)) is good
        with pytest.raises(ValueError):
            ctx.best_variant(csr, candidates=(broken,))

        # Without verification the defective kernel is still eligible.
        lax = ExecutionContext(verify_variants=False)
        assert lax.best_variant(csr, candidates=(broken,)) is broken
