"""Comm-schedule checker: races, leaks, and deadlocks, static and live."""

import numpy as np

from repro.analysis import (
    ANY,
    Coll,
    Recv,
    Send,
    check_log,
    check_schedule,
    solver_iteration_schedule,
)
from repro.comm.schedule import ScheduleLog, concurrent, happens_before
from repro.comm.spmd import run_spmd
from repro.comm.communicator import World
from repro.ksp.parallel import ParallelGMRES, ParallelJacobiPC
from repro.mat.mpi_aij import MPIAij
from repro.pde.problems import gray_scott_jacobian
from repro.vec.mpi_vec import MPIVec


class TestStaticChecker:
    def test_clean_exchange_plus_collective(self):
        n = 4
        sched = [
            [Send((r + 1) % n, 5), Recv((r - 1) % n, 5), Coll()]
            for r in range(n)
        ]
        report = check_schedule(sched)
        assert report.ok, [str(d) for d in report.diagnostics]

    def test_seeded_ring_deadlock_in_solver_exchange(self):
        """The acceptance case: every rank posts its ghost receive before
        its ghost send — the classic blocking-exchange cycle."""
        n = 4
        sched = [
            [Recv((r - 1) % n, 7001), Send((r + 1) % n, 7001), Coll()]
            for r in range(n)
        ]
        report = check_schedule(sched)
        assert "COMM004" in report.codes
        (cycle,) = [d for d in report.diagnostics if d.code == "COMM004"]
        assert "deadlock" in cycle.detail

    def test_two_rank_cycle(self):
        sched = [[Recv(1), Send(1)], [Recv(0), Send(0)]]
        report = check_schedule(sched)
        assert "COMM004" in report.codes

    def test_leaked_send(self):
        report = check_schedule([[Send(1, 3)], []])
        assert report.codes == {"COMM001"}

    def test_unmatched_recv(self):
        report = check_schedule([[], [Recv(0, 3)]])
        assert report.codes == {"COMM002"}

    def test_tag_mismatch(self):
        report = check_schedule([[Send(1, 7001)], [Recv(0, 7002)]])
        assert "COMM003" in report.codes

    def test_collective_kind_mismatch(self):
        report = check_schedule(
            [[Coll("allreduce:sum")], [Coll("allreduce:max")]]
        )
        assert "COMM006" in report.codes

    def test_abandoned_collective(self):
        report = check_schedule([[Coll()], []])
        assert "COMM002" in report.codes

    def test_wildcard_race_between_concurrent_senders(self):
        sched = [
            [Send(2, 1)],
            [Send(2, 2)],
            [Recv(ANY, ANY), Recv(ANY, ANY)],
        ]
        report = check_schedule(sched)
        assert "COMM005" in report.codes

    def test_causally_ordered_sends_do_not_race(self):
        # Rank 0's message to rank 2 happens-before rank 1's: rank 1 only
        # sends after hearing from rank 0, and rank 0 messaged rank 2
        # first — the wildcard's candidates are causally ordered.
        sched = [
            [Send(2, 1), Send(1, 1)],
            [Recv(0, 1), Send(2, 2)],
            [Recv(ANY, ANY), Recv(ANY, ANY)],
        ]
        report = check_schedule(sched)
        assert "COMM005" not in report.codes

    def test_solver_iteration_schedule_is_clean(self):
        send_peers = [[1], [0, 2], [1]]
        recv_peers = [[1], [0, 2], [1]]
        sched = solver_iteration_schedule(send_peers, recv_peers)
        report = check_schedule(sched)
        assert report.ok

    def test_asymmetric_scatter_plan_is_flagged(self):
        # Rank 2 expects a ghost from rank 0 that rank 0 never sends.
        send_peers = [[1], [0, 2], [1]]
        recv_peers = [[1], [0, 2], [1, 0]]
        sched = solver_iteration_schedule(send_peers, recv_peers)
        report = check_schedule(sched)
        assert "COMM002" in report.codes


class TestVectorClocks:
    def test_happens_before_is_a_strict_partial_order(self):
        a, b = (1, 0), (1, 1)
        assert happens_before(a, b)
        assert not happens_before(b, a)
        assert not happens_before(a, a)

    def test_concurrent(self):
        assert concurrent((1, 0), (0, 1))
        assert not concurrent((1, 0), (1, 1))

    def test_send_happens_before_matching_recv(self):
        log = ScheduleLog(2)
        log.record_send(0, 1, 9)
        log.record_recv(0, 1, 9)
        send, recv = log.events
        assert happens_before(send.clock, recv.clock)


class TestLiveLogAudit:
    def test_leaked_message_and_wildcard_ambiguity(self):
        log = ScheduleLog(2)
        log.record_send(0, 1, 5)
        log.record_send(0, 1, 6)
        log.record_recv(0, 1, 5, wildcard=True)
        report = check_log(log)
        assert report.codes == {"COMM001", "COMM005"}

    def test_clean_spmd_region_audits_clean(self):
        world = World(2)
        world.schedule_log = ScheduleLog(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send("ghost", dest=1, tag=7001)
                return comm.allreduce(1.0)
            payload = comm.recv(source=0, tag=7001)
            comm.allreduce(2.0)
            return payload

        results = run_spmd(2, prog, world=world)
        assert results[1] == "ghost"
        report = check_log(world.schedule_log)
        assert report.ok
        kinds = [e.kind for e in world.schedule_log.events]
        assert kinds.count("send") == 1
        assert kinds.count("recv") == 1
        assert kinds.count("collective") == 2

    def test_parallel_gmres_run_audits_clean(self):
        """The motivating subject: a full distributed GMRES solve leaves
        no leaked ghost messages and no ambiguous wildcard matches."""
        csr = gray_scott_jacobian(8)
        b = np.random.default_rng(3).standard_normal(csr.shape[0])
        world = World(3)
        world.schedule_log = ScheduleLog(3)

        def prog(comm):
            a = MPIAij.from_global_csr(comm, csr)
            bv = MPIVec.from_global(comm, a.layout, b)
            return ParallelGMRES(pc=ParallelJacobiPC(), rtol=1e-8).solve(
                a, bv
            ).iterations

        iterations = run_spmd(3, prog, world=world)
        assert min(iterations) >= 1
        log = world.schedule_log
        assert log.events, "solver traffic was not captured"
        report = check_log(log)
        assert report.ok, [str(d) for d in report.diagnostics]
        assert log.unreceived() == []
