"""The mutation corpus: every seeded defect must trigger its code."""

import pytest

from repro.analysis import CASES, run_case, run_corpus


class TestCorpus:
    @pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
    def test_mutant_triggers_expected_codes(self, case):
        report = run_case(case)
        assert not report.ok, f"{case.name} produced no diagnostics at all"
        for code in case.expect:
            assert code in report.codes, (
                f"{case.name}: expected {code}, found {sorted(report.codes)}"
            )

    def test_corpus_spans_the_code_space(self):
        """The ISSUE's floor: at least six distinct codes exercised."""
        expected = {code for case in CASES for code in case.expect}
        assert len(expected) >= 6
        # One mutant per lint pass family at minimum.
        assert {"VEC010", "VEC020", "VEC030", "VEC041"} <= expected

    def test_run_corpus_document(self):
        doc = run_corpus()
        assert doc["ok"], f"mutants slipped through: {doc['missed']}"
        assert doc["caught"] == doc["cases"] == len(CASES)
        for entry in doc["results"]:
            assert entry["ok"]
            assert entry["diagnostics"], entry["name"]
