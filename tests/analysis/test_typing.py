"""The typing gate over the analyzer's typed surface.

``pyproject.toml``'s ``[tool.mypy]`` section declares ``repro.analysis``
and ``repro.simd`` as the type-checked surface (with a hand-audited
grandfather baseline for the pre-gate modules).  CI runs ``mypy`` as a
dedicated job; this test runs the identical check locally when mypy is
installed and skips otherwise — the gate must never depend on a tool the
minimal environment does not ship.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def test_mypy_clean_on_typed_surface():
    pytest.importorskip(
        "mypy", reason="mypy not installed here; CI's mypy job runs the gate"
    )
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"mypy found errors:\n{proc.stdout}{proc.stderr}"


def test_mypy_config_names_the_audited_surface():
    """The config itself is load-bearing: the gate covers analysis + simd
    and the new certifier modules are not grandfathered."""
    text = (REPO / "pyproject.toml").read_text()
    assert "[tool.mypy]" in text
    assert 'files = ["src/repro/analysis", "src/repro/simd"]' in text
    grandfathered = text.split("[[tool.mypy.overrides]]", 1)[1]
    grandfathered = grandfathered.split("[tool.ruff]", 1)[0]
    assert '"repro.analysis.numlint"' not in grandfathered
    assert '"repro.simd.trace_ir"' not in grandfathered
