"""Property test: every kernel's empirical error obeys its certificate.

For random value draws over the differential panel's sparsity structures,
every registered variant's output must satisfy, per logical row,

    |y_variant - y_ref|  <=  bound(variant) + bound(reference)

where ``y_ref`` is an ``np.longdouble`` re-accumulation and both bounds
are evaluated from the certificates of :mod:`repro.analysis.numlint` —
the soundness property the entire "derived, not guessed" tolerance
discipline rests on.  Certificates are structure-derived, so the
registry-cached certificate for a structure must cover *every* value
draw; a single row exceeding its bound falsifies the analysis.
"""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.bench.diffverify import _certified_bound, _reference, panel
from repro.core.context import ExecutionContext
from repro.core.dispatch import registered_variants
from repro.mat.aij import AijMat

PANEL = panel()
VARIANTS = registered_variants()

# One context per panel structure: the numcert cache makes every value
# draw after the first reuse the same structure-keyed certificate.
_CTX = {
    label: ExecutionContext(slice_height=c, sigma=s)
    for label, _, c, s in PANEL
}


def _with_values(csr: AijMat, seed: int) -> tuple[AijMat, np.ndarray]:
    """The same sparsity structure with fresh random values and input."""
    rng = np.random.default_rng(seed)
    scale = 10.0 ** rng.uniform(-3.0, 3.0, csr.nnz)
    val = rng.standard_normal(csr.nnz) * scale
    x = rng.standard_normal(csr.shape[1]) * 10.0 ** rng.uniform(
        -2.0, 2.0, csr.shape[1]
    )
    return AijMat(csr.shape, csr.rowptr, csr.colidx, val), x


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    structure=st.integers(0, len(PANEL) - 1),
    variant=st.integers(0, len(VARIANTS) - 1),
    seed=st.integers(0, 2**32 - 1),
)
def test_empirical_error_within_certified_bound(structure, variant, seed):
    label, base, slice_height, sigma = PANEL[structure]
    var = VARIANTS[variant]
    ctx = _CTX[label]
    try:
        cert = ctx.certify_variant(var, base)
    except (ValueError, NotImplementedError):
        # Format constraint (e.g. BAIJ on odd dims): discard the draw.
        assume(False)
        return
    assert cert.ok, f"{var.name} on {label}: {cert.diagnostics}"

    csr, x = _with_values(base, seed)
    y = np.asarray(ctx.measure(var, csr, x=x).y, dtype=np.float64)
    y_ref, ref_bound = _reference(csr, x)
    bound = _certified_bound(var, csr, x, slice_height, sigma, cert)

    err = np.abs(y.astype(np.longdouble) - y_ref).astype(np.float64)
    tol = bound + ref_bound
    worst = int(np.argmax(err - tol))
    assert np.all(err <= tol), (
        f"{var.name} on {label} (seed {seed}): row {worst} error "
        f"{err[worst]:.3e} exceeds certified bound {tol[worst]:.3e}"
    )


def test_certificates_cover_all_variants_and_structures():
    """Every (variant, structure) pair the formats admit certifies clean —
    the all-19-variants acceptance sweep, structure-cached."""
    certified = 0
    for label, csr, _c, _s in PANEL:
        for var in VARIANTS:
            try:
                cert = _CTX[label].certify_variant(var, csr)
            except (ValueError, NotImplementedError):
                continue
            assert cert.ok, f"{var.name} on {label}: {cert.diagnostics}"
            assert cert.nrows == csr.shape[0]
            certified += 1
    assert len(VARIANTS) == 19
    assert certified >= 3 * len(VARIANTS)  # BAIJ may skip odd-dim panels
