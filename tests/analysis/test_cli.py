"""``python -m repro analyze`` CLI contract."""

import json

from repro.analysis.cli import main


class TestAnalyzeCli:
    def test_corpus_only_exits_zero(self, capsys):
        assert main(["--corpus-only"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"]
        assert doc["corpus"]["caught"] == doc["corpus"]["cases"]
        assert "kernels" not in doc

    def test_single_variant_json_report(self, tmp_path):
        out = tmp_path / "report.json"
        code = main([
            "--variant", "SELL using AVX512",
            "--no-corpus",
            "--json", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["ok"]
        assert doc["kernels"]["dirty"] == 0
        assert doc["kernels"]["analyzed"] >= 3  # one per panel structure

    def test_all_variants_and_corpus(self, tmp_path):
        out = tmp_path / "full.json"
        assert main(["--all-variants", "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["kernels"]["dirty"] == 0
        assert doc["corpus"]["ok"]

    def test_dispatch_through_module_main(self):
        from repro.__main__ import main as repro_main

        assert repro_main(["analyze", "--corpus-only"]) == 0
