"""Unit tests for the rounding-error certifier (repro.analysis.numlint).

Each NUM0xx code gets a minimal trigger, the Higham bound is checked
against hand-computed gamma sums on a trace small enough to reason about
on paper, and the ``fused_fma`` switch is pinned to the two arithmetic
models it selects (engine-faithful mul-then-add vs hardware FMA).
"""

import numpy as np
import pytest

from repro.analysis.numlint import (
    UNIT_ROUNDOFF,
    certify_recorder,
    compare_certificates,
    gamma,
)
from repro.simd.isa import AVX512
from repro.simd.trace import TraceRecorder


def _recorder():
    """A fresh AVX-512 recorder with the standard val/x/y bindings."""
    eng = TraceRecorder(AVX512)
    val = np.arange(1.0, 33.0)
    x = np.full(8, 0.5)
    y = np.zeros(8)
    for name, buf in (("val", val), ("x", x), ("y", y)):
        eng.bind(name, buf)
    return eng, val, x, y


# ---------------------------------------------------------------------------
# gamma
# ---------------------------------------------------------------------------


def test_gamma_basics():
    u = UNIT_ROUNDOFF
    assert gamma(0) == 0.0
    assert float(gamma(1)) == pytest.approx(u / (1 - u))
    ks = np.array([1, 2, 5, 100])
    g = gamma(ks)
    assert g.shape == (4,)
    assert np.all(np.diff(g) > 0)  # strictly increasing in k
    # Custom unit roundoff (the longdouble reference path).
    assert float(gamma(3, unit=2.0**-64)) == pytest.approx(
        3 * 2.0**-64 / (1 - 3 * 2.0**-64)
    )


def test_gamma_overflow_on_astronomical_depth():
    with pytest.raises(OverflowError):
        gamma(2**53)  # k*u == 1: the bound is no longer finite


# ---------------------------------------------------------------------------
# clean certificates and the hand-checked bound
# ---------------------------------------------------------------------------


def test_sequential_mul_add_bound_matches_hand_computation():
    """y[j] = sum_l val[8l+j] * x[j], accumulated sequentially.

    The first add folds into an exact zero (charges nothing), so the four
    terms pass through k_total = 2, 3, 4, 4 roundings (one mul each plus
    their share of the chain's three adds).
    """
    eng, val, x, y = _recorder()
    xv = eng.load(x, 0)
    acc = eng.setzero()
    for level in range(4):
        acc = eng.add(acc, eng.mul(eng.load(val, 8 * level), xv))
    eng.store(y, 0, acc)

    cert = certify_recorder(eng)
    assert cert.ok and not cert.codes
    assert cert.nrows == 8
    assert cert.max_depth == 3  # 4 terms -> 3 additions
    assert cert.max_roundings == 4  # deepest term: 1 mul + 3 adds
    assert cert.max_terms == 4

    bound = cert.bound({"val": val, "x": x, "y": y})
    for j in range(8):
        mags = [abs(val[8 * level + j] * x[j]) for level in range(4)]
        expect = sum(
            float(gamma(k)) * m for k, m in zip((2, 3, 4, 4), mags)
        )
        assert bound[j] == pytest.approx(expect, rel=1e-12)


def test_power_of_two_scaling_is_exact():
    """Multiplying by a power-of-two literal charges no rounding."""
    eng, val, x, y = _recorder()
    eng.store(y, 0, eng.mul(eng.load(x, 0), eng.set1(0.5)))
    cert = certify_recorder(eng)
    assert cert.ok
    assert cert.max_roundings == 0
    assert np.all(cert.bound({"val": val, "x": x, "y": y}) == 0.0)

    # ... while a non-pow2 literal charges exactly one.
    eng2, val2, x2, y2 = _recorder()
    eng2.store(y2, 0, eng2.mul(eng2.load(x2, 0), eng2.set1(3.0)))
    cert2 = certify_recorder(eng2)
    assert cert2.ok and cert2.max_roundings == 1
    bound2 = cert2.bound({"val": val2, "x": x2, "y": y2})
    assert np.allclose(bound2, float(gamma(1)) * 3.0 * np.abs(x2))


# ---------------------------------------------------------------------------
# the fused_fma switch
# ---------------------------------------------------------------------------


def _fma_chain():
    eng, val, x, y = _recorder()
    xv = eng.load(x, 0)
    acc = eng.setzero()
    for level in range(4):
        acc = eng.fmadd(eng.load(val, 8 * level), xv, acc)
    eng.store(y, 0, acc)
    return eng


def _profiles(cert, row=0):
    terms = cert.rows[row]
    return sorted(t.k_add for t in terms), sorted(t.k_total for t in terms)


def test_default_model_charges_fmadd_two_roundings():
    """By default fmadd certifies as the engine computes it: mul + add.

    Each term rounds once in its multiply plus once per addition it
    passes through, so the totals are the depths shifted up by one.
    """
    cert = certify_recorder(_fma_chain())
    assert cert.ok
    assert cert.max_depth == 3
    assert _profiles(cert) == ([1, 2, 3, 3], [2, 3, 4, 4])


def test_fused_contract_charges_fmadd_one_rounding():
    """Under the hardware contract each fmadd rounds once, so every term's
    total equals its chain position (the first still rounds its bare
    product: fl(a*b + 0) is one rounding)."""
    cert = certify_recorder(_fma_chain(), fused_fma=True)
    assert cert.ok
    assert cert.max_depth == 3
    assert _profiles(cert) == ([1, 2, 3, 3], [1, 2, 3, 4])


def test_fused_vs_default_differ_only_in_rounding_counts():
    fused = certify_recorder(_fma_chain(), fused_fma=True)
    default = certify_recorder(_fma_chain())
    codes = [d.code for d in compare_certificates(fused, default)]
    assert codes == ["NUM012"]  # same leaves and depths, more roundings


# ---------------------------------------------------------------------------
# NUM00x triggers
# ---------------------------------------------------------------------------


def test_num001_product_of_two_sums_poisons_the_row():
    eng, val, x, y = _recorder()
    a = eng.add(eng.load(val, 0), eng.load(val, 8))
    b = eng.add(eng.load(val, 16), eng.load(val, 24))
    eng.store(y, 0, eng.mul(a, b))
    cert = certify_recorder(eng)
    assert not cert.ok and cert.codes == {"NUM001"}
    assert np.all(np.isinf(cert.bound({"val": val, "x": x, "y": y})))


def test_num002_missing_output_buffer():
    eng = TraceRecorder(AVX512)
    val = np.arange(1.0, 9.0)
    eng.bind("val", val)
    eng.store(val, 0, eng.load(val, 0))  # no buffer named "y" anywhere
    cert = certify_recorder(eng, output="y")
    assert not cert.ok and "NUM002" in cert.codes
    assert cert.nrows == 0


def test_num003_non_float64_buffer_in_the_dataflow():
    eng = TraceRecorder(AVX512)
    x32 = np.full(8, 0.5, dtype=np.float32)
    y = np.zeros(8)
    eng.bind("x", x32)
    eng.bind("y", y)
    eng.store(y, 0, eng.load(x32, 0))
    cert = certify_recorder(eng)
    assert "NUM003" in cert.codes


# ---------------------------------------------------------------------------
# compare_certificates precedence
# ---------------------------------------------------------------------------


def _products(eng, val, x):
    xv = eng.load(x, 0)
    return [eng.mul(eng.load(val, 8 * lvl), xv) for lvl in range(4)]


def _record(combine):
    eng, val, x, y = _recorder()
    eng.store(y, 0, combine(eng, _products(eng, val, x)))
    return certify_recorder(eng)


def test_num010_wins_over_num011_when_depths_change():
    seq = _record(lambda e, p: e.add(e.add(e.add(p[0], p[1]), p[2]), p[3]))
    tree = _record(lambda e, p: e.add(e.add(p[0], p[1]), e.add(p[2], p[3])))
    assert [d.code for d in compare_certificates(seq, tree)] == ["NUM010"]


def test_num011_fires_only_for_pure_reordering():
    lo_hi = _record(lambda e, p: e.add(e.add(p[0], p[1]), e.add(p[2], p[3])))
    hi_lo = _record(lambda e, p: e.add(e.add(p[2], p[3]), e.add(p[0], p[1])))
    assert [d.code for d in compare_certificates(lo_hi, hi_lo)] == ["NUM011"]


def test_identical_traces_compare_clean():
    seq = _record(lambda e, p: e.add(e.add(e.add(p[0], p[1]), p[2]), p[3]))
    again = _record(lambda e, p: e.add(e.add(e.add(p[0], p[1]), p[2]), p[3]))
    assert compare_certificates(seq, again) == []


def test_extent_mismatch_reports_num010():
    full = _record(lambda e, p: e.add(p[0], p[1]))
    short = certify_recorder(_fma_chain(), nrows=4)
    diags = compare_certificates(full, short)
    assert any(d.code == "NUM010" and "extent" in d.detail for d in diags)
