#!/usr/bin/env python
"""Adjoint sensitivity of the Gray-Scott pattern — the 'adj' in ex5adj.

The paper's test code is PETSc's adjoint tutorial: after the forward
Crank-Nicolson run, a backward sweep of *transposed* solves computes the
gradient of a terminal cost with respect to the initial state in one pass
(versus one forward solve per input for finite differences).  Every
backward step applies the transposed Jacobian — the MatMultTranspose
kernels this library implements for both CSR and SELL.

This example:
1. integrates Gray-Scott forward, storing the trajectory (the checkpoints
   of paper Section 3.4's DRAM-vs-MCDRAM discussion);
2. runs the adjoint sweep for Psi = mean inhibitor concentration at the
   final time, with the Jacobians converted to SELL;
3. verifies two directional derivatives against central finite
   differences;
4. prints a -log_view-style event summary showing where the time went.

Run:  python examples/adjoint_sensitivity.py
"""

import numpy as np

from repro import Grid2D, GrayScottProblem, SellMat
from repro.ksp import GMRES, JacobiPC, ThetaMethod
from repro.ksp.adjoint import AdjointThetaMethod
from repro.profiling import EventLog

GRID = 12
STEPS = 3

log = EventLog()


def main() -> None:
    grid = Grid2D(GRID, GRID, dof=2)
    problem = GrayScottProblem(grid)
    n = grid.ndof

    def ksp_factory():
        return GMRES(pc=JacobiPC(), rtol=1e-12)

    ts = ThetaMethod(
        rhs=problem.rhs,
        jacobian=problem.jacobian,
        ksp_factory=ksp_factory,
        dt=1.0,
        snes_rtol=1e-12,
    )
    w0 = problem.initial_state()

    with log.event("TSSolve (forward)"):
        forward = ts.integrate(w0, STEPS)
    print(f"forward: {STEPS} steps, {forward.total_newton_iterations} Newton "
          f"/ {forward.total_linear_iterations} Krylov iterations, "
          f"{len(forward.states)} checkpointed states")

    # Psi(w) = mean of the inhibitor component v.
    grad_terminal = np.zeros(n)
    grad_terminal[1::2] = 1.0 / (n // 2)

    adjoint = AdjointThetaMethod(
        jacobian=problem.jacobian,
        ksp_factory=ksp_factory,
        dt=1.0,
        operator_wrapper=lambda m: SellMat.from_csr(m.to_csr(), 8),
    )
    with log.event("TSAdjointSolve (backward)"):
        lam0 = adjoint.integrate_adjoint(forward, grad_terminal)
    print(f"adjoint gradient: |lambda_0| = {np.linalg.norm(lam0):.3e} "
          f"(one backward sweep vs {n} forward runs for FD)")

    def psi(w):
        return float(ts.integrate(w, STEPS).final_state[1::2].mean())

    rng = np.random.default_rng(1)
    print("\nfinite-difference verification (central, eps=1e-6):")
    for trial in range(2):
        d = rng.standard_normal(n)
        d /= np.linalg.norm(d)
        eps = 1e-6
        with log.event("FD verification"):
            fd = (psi(w0 + eps * d) - psi(w0 - eps * d)) / (2 * eps)
        adj = float(lam0 @ d)
        print(f"  direction {trial}: adjoint {adj:+.8e}  fd {fd:+.8e}  "
              f"rel.err {abs(adj - fd) / max(abs(fd), 1e-30):.1e}")
        assert abs(adj - fd) / max(abs(fd), 1e-30) < 1e-4

    print()
    print(log.render())


if __name__ == "__main__":
    main()
