#!/usr/bin/env python
"""Parallel SpMV walkthrough: the 4-step overlapped algorithm, step by step.

Runs the paper's Section 2.2 algorithm on the simulated MPI runtime with a
Gray-Scott operator distributed over four ranks, printing what each rank
owns, which ghost values it requests, and verifying the distributed result
against the sequential product.  Then converts the distributed matrix to
MPISELL and shows that the communication pattern is unchanged — the
padding rule of Section 5.5 at work.

Run:  python examples/parallel_spmv_demo.py [ranks]
"""

import sys

import numpy as np

from repro import MPIAij, MPISell, MPIVec, gray_scott_jacobian
from repro.comm import World, run_spmd

RANKS = int(sys.argv[1]) if len(sys.argv) > 1 else 4


def main() -> None:
    csr = gray_scott_jacobian(16)  # 512 unknowns, 10 nnz/row
    n = csr.shape[0]
    x = np.random.default_rng(42).standard_normal(n)
    expected = csr.multiply(x)

    world = World(RANKS)

    def prog(comm):
        # Distribute by row blocks (PETSc's default layout).
        aij = MPIAij.from_global_csr(comm, csr)
        start, end = aij.layout.range_of(comm.rank)
        lines = [
            f"rank {comm.rank}: rows [{start}, {end}), "
            f"diag nnz {aij.diag.nnz}, off-diag nnz {aij.offdiag.nnz}, "
            f"ghosts {aij.garray.size} "
            f"(from ranks {sorted(set(aij.scatter.recv_peers))})"
        ]

        # The overlapped product: begin -> diag -> end -> off-diag.
        xv = MPIVec.from_global(comm, aij.layout, x)
        y = aij.multiply(xv)

        # Same layout, SELL diagonal block: identical ghost set.
        sell = MPISell.from_mpiaij(aij)
        y_sell = sell.multiply(xv)
        assert np.array_equal(aij.garray, sell.garray)

        ok = np.allclose(y.to_global(), expected) and np.allclose(
            y_sell.to_global(), expected
        )
        return "\n".join(lines), ok

    results = run_spmd(RANKS, prog, world=world)
    for lines, _ in results:
        print(lines)
    assert all(ok for _, ok in results)

    print(f"\ndistributed SpMV == sequential SpMV on {RANKS} ranks: OK")
    print(f"messages exchanged: {world.stats.messages}, "
          f"bytes on the wire: {world.stats.bytes}")
    print("MPISELL reused the exact MPIAIJ ghost pattern "
          "(padding never widens communication)")


if __name__ == "__main__":
    main()
