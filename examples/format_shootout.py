#!/usr/bin/env python
"""Format shootout: choose a sparse format for *your* matrix, KNL-style.

A downstream-user scenario: you have a matrix — one of the gallery
generators, or any Matrix Market ``.mtx`` file — and want to know
(a) which format/ISA combination the calibrated KNL model favours,
(b) how the padding economics look, (c) whether sigma-sorting would pay,
and (d) what the SELL autotuner recommends.  This exercises the format
zoo, the measurement API, Matrix Market I/O, and the tuning machinery on
matrices very unlike the paper's friendly banded operator.

Run:  python examples/format_shootout.py [gray-scott|irregular|tridiag|nine-point|/path/to/matrix.mtx]
"""

import sys

from repro import FIGURE8_VARIANTS, measure, predict
from repro.core.sell import SellMat
from repro.machine import KNL_7230, make_model
from repro.mat.sparsity import profile, sliced_padding
from repro.pde.problems import (
    gray_scott_jacobian,
    irregular_rows,
    nine_point_2d,
    tridiagonal,
)

GALLERY = {
    "gray-scott": lambda: gray_scott_jacobian(32),
    "irregular": lambda: irregular_rows(2048, min_len=2, max_len=64, seed=1),
    "tridiag": lambda: tridiagonal(2048),
    "nine-point": lambda: nine_point_2d(48),
}


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gray-scott"
    if name.endswith(".mtx"):
        from repro.mat.io import read_matrix_market

        csr = read_matrix_market(name)
    elif name in GALLERY:
        csr = GALLERY[name]()
    else:
        raise SystemExit(
            f"unknown matrix {name!r}; choose from {sorted(GALLERY)} or "
            "pass a .mtx path"
        )
    p = profile(csr)
    print(f"matrix {name!r}: {p.rows} rows, {p.nnz} nnz, row lengths "
          f"{p.min_row}..{p.max_row} (mean {p.mean_row:.1f}, std {p.std_row:.1f})\n")

    # Padding economics per slice height.
    print("SELL padding by slice height:")
    for c in (1, 2, 4, 8, 16):
        pad = sliced_padding(csr, c)
        print(f"  C={c:<3d} padding {pad:7d} slots "
              f"({100 * pad / (pad + csr.nnz):5.1f}%)")
    print()

    # Would sigma-sorting pay?
    base = sliced_padding(csr, 8, sigma=1)
    sigma_gain = {
        sigma: sliced_padding(csr, 8, sigma) for sigma in (8, 64, 512)
        if sigma <= p.rows
    }
    print("padding with sigma-window sorting (C=8):")
    print(f"  sigma=1 (no sorting): {base}")
    for sigma, pad in sigma_gain.items():
        print(f"  sigma={sigma:<4d}          : {pad}")
    print()

    # Model every Figure 8 variant on a full KNL node.
    model = make_model(KNL_7230)
    print(f"{'variant':22s} {'Gflop/s':>8s}  bound")
    results = []
    for variant in FIGURE8_VARIANTS:
        meas = measure(variant, csr)
        perf = predict(meas, model, nprocs=64)
        results.append((perf.gflops, variant.name, perf.bound))
        print(f"{variant.name:22s} {perf.gflops:8.1f}  {perf.bound}")
    best = max(results)
    print(f"\nrecommended: {best[1]} ({best[0]:.1f} Gflop/s)")

    # Let the autotuner pick SELL parameters for this structure.
    from repro.core.autotune import tune_sell

    tuned = tune_sell(csr, model, nprocs=64)
    print(f"\nSELL autotuner: best {tuned.best.label} "
          f"({tuned.best.gflops:.1f} Gflop/s, padding "
          f"{100 * tuned.best.padding_fraction:.1f}%)", end="")
    default = tuned.paper_default
    if default is not None and tuned.best.gflops > 1.05 * default.gflops:
        print(f" -- {tuned.best.gflops / default.gflops:.2f}x over the "
              f"paper's C=8/sigma=1 default on this matrix")
    else:
        print(" -- the paper's C=8/sigma=1 default stands")

    sell = SellMat.from_csr(csr, 8)
    if sell.padding_fraction > 0.3:
        print("note: heavy padding -- consider sigma-sorting or the "
              "hybrid ELL+COO format for this structure")


if __name__ == "__main__":
    main()
