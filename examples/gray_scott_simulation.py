#!/usr/bin/env python
"""The paper's application: Gray-Scott reaction-diffusion with the full stack.

Reproduces the Section 7 experiment end to end at laptop scale: Crank-
Nicolson timestepping (dt = 1), Newton with a rebuilt Jacobian every
iteration, GMRES with a 3-level geometric-multigrid preconditioner, Jacobi
smoothing on every level — and the operator converted to SELL exactly the
way ``-dm_mat_type sell`` does it in PETSc.  At the end it verifies that
the SELL trajectory is identical to a CSR rerun and prints the solver
statistics plus an ASCII rendering of the developing pattern.

Run:  python examples/gray_scott_simulation.py [grid] [steps]
"""

import sys

import numpy as np

from repro import Grid2D, GrayScottProblem, SellMat
from repro.ksp import GMRES, MGPC, ThetaMethod


def ascii_field(field: np.ndarray, width: int = 48) -> str:
    """Render a 2D field as ASCII shades."""
    shades = " .:-=+*#%@"
    ny, nx = field.shape
    step = max(1, nx // width)
    sampled = field[::step, ::step]
    lo, hi = sampled.min(), sampled.max()
    span = hi - lo if hi > lo else 1.0
    rows = []
    for row in sampled:
        idx = ((row - lo) / span * (len(shades) - 1)).astype(int)
        rows.append("".join(shades[i] for i in idx))
    return "\n".join(rows)


def run(grid_size: int, steps: int, use_sell: bool) -> tuple[np.ndarray, dict]:
    grid = Grid2D(grid_size, grid_size, dof=2)
    problem = GrayScottProblem(grid)
    mg_pcs = []

    def ksp_factory():
        pc = MGPC(grids=grid.hierarchy(3))
        mg_pcs.append(pc)
        return GMRES(pc=pc, rtol=1e-8, restart=30)

    wrapper = (lambda m: SellMat.from_csr(m.to_csr(), 8)) if use_sell else None
    ts = ThetaMethod(
        rhs=problem.rhs,
        jacobian=problem.jacobian,
        ksp_factory=ksp_factory,
        operator_wrapper=wrapper,
        theta=0.5,
        dt=1.0,
    )
    result = ts.integrate(problem.initial_state(), steps, keep_states=False)
    level_matvecs = [0, 0, 0]
    for pc in mg_pcs:
        for lvl, c in enumerate(pc.matvec_counts()):
            level_matvecs[lvl] += c
    stats = {
        "newton": result.total_newton_iterations,
        "linear": result.total_linear_iterations,
        "level_matvecs": level_matvecs,
    }
    return result.final_state, stats


def main() -> None:
    grid_size = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    print(f"Gray-Scott on a {grid_size}x{grid_size} periodic grid, "
          f"{steps} Crank-Nicolson steps (dt=1), GMRES + 3-level MG + Jacobi\n")

    sell_state, sell_stats = run(grid_size, steps, use_sell=True)
    csr_state, _ = run(grid_size, steps, use_sell=False)

    drift = float(np.abs(sell_state - csr_state).max())
    print(f"SELL-vs-CSR trajectory drift: {drift:.2e} "
          f"(the format changes performance, never results)")
    print(f"Newton iterations : {sell_stats['newton']}")
    print(f"Krylov iterations : {sell_stats['linear']}")
    print(f"MatMults per level: {sell_stats['level_matvecs']} (fine -> coarse)\n")

    problem = GrayScottProblem(Grid2D(grid_size, grid_size, dof=2))
    _, v = problem.split(sell_state)
    print("inhibitor concentration v after the run:")
    print(ascii_field(v))


if __name__ == "__main__":
    main()
