#!/usr/bin/env python
"""Profiling tour: observe a Gray-Scott solve end to end.

The walkthrough of the observability layer (`docs/observability.md`):

1. run an observed sequential Gray-Scott GMRES solve under PETSc-style
   log stages (MatAssembly / KSPSolve), with the solver's MatMult /
   PCApply events attributed per stage;
2. print the staged ``-log_view`` summary and check the stage-tiling
   invariant (stage self times sum to the wall clock);
3. run the same system distributed over four simulated MPI ranks and
   print the per-rank load-imbalance report (max / max-min ratio / avg —
   PETSc's parallel ``-log_view`` columns);
4. export ``metrics.json`` (the labeled counter/gauge namespace) and
   ``trace.json`` — open the latter in https://ui.perfetto.dev or
   ``chrome://tracing`` to see one timeline track per rank.

Run:  python examples/profiling_tour.py [outdir]
"""

import sys
from pathlib import Path

import numpy as np

from repro import ExecutionContext, gray_scott_jacobian
from repro.comm.communicator import World
from repro.comm.spmd import run_spmd
from repro.ksp import GMRES, JacobiPC, ParallelBlockJacobiPC, ParallelGMRES
from repro.mat.mpi_aij import MPIAij
from repro.obs import Observer, merge_rank_logs, observing, validate_trace
from repro.obs.observer import obs_stage
from repro.vec.mpi_vec import MPIVec

GRID = 16
RANKS = 4


def sequential_solve(obs: Observer) -> None:
    """One observed sequential solve under MatAssembly/KSPSolve stages."""
    ctx = ExecutionContext(default_variant="SELL using AVX512")
    with obs.stage("MatAssembly"):
        csr = gray_scott_jacobian(GRID)
        ctx.measure("SELL using AVX512", csr)   # SIMD counters -> metrics
    b = np.random.default_rng(0).standard_normal(csr.shape[0])
    with obs.stage("KSPSolve"):
        result = GMRES(pc=JacobiPC(), rtol=1e-8, context=ctx).solve(csr, b)
    obs.metrics.gauge("ksp.iterations").set(result.iterations)

    # The staged -log_view table: events grouped under their stage.
    print(obs.log().render())

    # The invariant the docs promise: stage self times tile the wall clock.
    log = obs.log()
    stages = log.stage_summary()
    tiled = sum(s.self_seconds for s in stages)
    print(f"stage self times {tiled:.4f}s == wall {stages[0].total_seconds:.4f}s\n")


def parallel_solve(obs: Observer) -> None:
    """The same system over four simulated ranks: the imbalance report."""
    csr = gray_scott_jacobian(GRID)
    b = np.random.default_rng(0).standard_normal(csr.shape[0])

    def _prog(comm):
        with obs_stage("KSPSolve"):
            a = MPIAij.from_global_csr(comm, csr)
            bv = MPIVec.from_global(comm, a.layout, b)
            res = ParallelGMRES(pc=ParallelBlockJacobiPC(), rtol=1e-8).solve(a, bv)
        return res.reason.converged

    world = World(RANKS)
    assert all(run_spmd(RANKS, _prog, world=world))
    print(merge_rank_logs(obs.rank_logs).render())
    ratio = merge_rank_logs(obs.rank_logs).event("MatMult", stage="KSPSolve").ratio
    print(f"MatMult load imbalance (max/min over {RANKS} ranks): {ratio:.2f}\n")


def main() -> None:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")

    print("=== 1. sequential solve, staged -log_view ===\n")
    seq = Observer()
    with observing(seq):
        sequential_solve(seq)

    print("=== 2. four-rank solve, per-rank imbalance report ===\n")
    par = Observer()
    with observing(par):
        parallel_solve(par)

    print("=== 3. export ===\n")
    outdir.mkdir(parents=True, exist_ok=True)
    # The sequential run has the richer metrics (simd.*, context.*, ksp.*);
    # the parallel run has the multi-track timeline.
    seq.metrics.write_json(outdir / "metrics.json")
    par.trace.write_json(outdir / "trace.json")
    problems = validate_trace({"traceEvents": par.trace.events})
    assert problems == [], problems
    print(f"wrote {outdir / 'metrics.json'} ({len(seq.metrics)} metrics)")
    print(f"wrote {outdir / 'trace.json'} ({len(par.trace)} events, "
          f"schema-valid) — load it in https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
