#!/usr/bin/env python
"""The paper's parallel simulation, with no global state anywhere.

Runs the Gray-Scott Crank-Nicolson solve the way the paper's multinode
experiments do: the grid strip-decomposed across ranks, residuals built
from halo exchanges, each rank assembling only its own Jacobian rows
directly into the distributed matrix's diagonal/off-diagonal blocks,
Newton iterating collectively over parallel GMRES — once with MPIAIJ and
once with MPISELL diagonal blocks, verifying the trajectories agree and
reporting the communication volume the run generated.

Run:  python examples/parallel_simulation.py [ranks] [grid] [steps]
"""

import sys

import numpy as np

from repro.comm import World, run_spmd
from repro.ksp.parallel import ParallelGMRES, ParallelJacobiPC
from repro.pde import DistributedGrayScott, Grid2D, ParallelThetaMethod

RANKS = int(sys.argv[1]) if len(sys.argv) > 1 else 4
GRID = int(sys.argv[2]) if len(sys.argv) > 2 else 24
STEPS = int(sys.argv[3]) if len(sys.argv) > 3 else 4


def simulate(matrix_format: str) -> tuple[np.ndarray, dict, World]:
    grid = Grid2D(GRID, GRID, dof=2)
    world = World(RANKS)

    def prog(comm):
        problem = DistributedGrayScott(comm, grid, matrix_format=matrix_format)
        start, end = problem.decomp.my_rows
        ts = ParallelThetaMethod(
            problem,
            lambda: ParallelGMRES(pc=ParallelJacobiPC(), rtol=1e-8),
            dt=1.0,
        )
        final, stats = ts.integrate(problem.initial_state(), STEPS)
        return {
            "rows": (start, end),
            "final": final.to_global(),
            "stats": stats,
        }

    results = run_spmd(RANKS, prog, world=world)
    return results[0]["final"], results[0]["stats"], world, results


def main() -> None:
    print(f"Gray-Scott {GRID}x{GRID}, {STEPS} Crank-Nicolson steps, "
          f"{RANKS} simulated ranks (strip decomposition)\n")

    final_aij, stats, world_aij, results = simulate("aij")
    for r in results:
        lo, hi = r["rows"]
        print(f"  rank owns grid rows [{lo:3d}, {hi:3d})")
    print(f"\nMPIAIJ run : {stats['newton']} Newton, {stats['linear']} Krylov "
          f"iterations; {world_aij.stats.messages} messages, "
          f"{world_aij.stats.bytes:,} bytes exchanged")

    final_sell, stats_sell, world_sell, _ = simulate("sell")
    print(f"MPISELL run: {stats_sell['newton']} Newton, "
          f"{stats_sell['linear']} Krylov iterations; "
          f"{world_sell.stats.messages} messages, "
          f"{world_sell.stats.bytes:,} bytes exchanged")

    drift = float(np.abs(final_aij - final_sell).max())
    print(f"\ntrajectory drift MPISELL vs MPIAIJ: {drift:.2e}")
    assert drift < 1e-9
    print("the format changes the kernels, never the simulation")


if __name__ == "__main__":
    main()
