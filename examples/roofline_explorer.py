#!/usr/bin/env python
"""Roofline explorer: where does your kernel sit on the KNL roofline?

Recreates the Figure 9 analysis interactively: for a chosen matrix and a
chosen set of kernel variants, compute the Section 6 arithmetic intensity,
the attainable ceiling, and the model's achieved performance, and render a
log-log ASCII roofline with the points placed on it.

Run:  python examples/roofline_explorer.py
"""

import math

from repro import gray_scott_jacobian, measure, predict
from repro.core.dispatch import CSR_BASELINE, CSR_NOVEC, SELL_AVX512
from repro.machine import KNL_7230, make_model
from repro.machine.roofline import THETA_CEILINGS, THETA_PEAK_GFLOPS, attainable

VARIANTS = (SELL_AVX512, CSR_BASELINE, CSR_NOVEC)
SCALE = (2048 / 48) ** 2  # model at the paper's grid


def ascii_roofline(points, width=68, height=16) -> str:
    """Log-log plot: ceilings as slopes, kernels as letters."""
    ai_lo, ai_hi = 0.03, 30.0
    gf_lo, gf_hi = 1.0, 2000.0

    def to_col(ai):
        return int(
            (math.log10(ai) - math.log10(ai_lo))
            / (math.log10(ai_hi) - math.log10(ai_lo))
            * (width - 1)
        )

    def to_row(gf):
        frac = (math.log10(gf) - math.log10(gf_lo)) / (
            math.log10(gf_hi) - math.log10(gf_lo)
        )
        return height - 1 - int(frac * (height - 1))

    canvas = [[" "] * width for _ in range(height)]
    for ceiling in THETA_CEILINGS:
        for col in range(width):
            ai = 10 ** (
                math.log10(ai_lo)
                + col / (width - 1) * (math.log10(ai_hi) - math.log10(ai_lo))
            )
            gf = min(THETA_PEAK_GFLOPS, ceiling.bandwidth_gbs * ai)
            row = to_row(max(gf, gf_lo))
            if 0 <= row < height:
                canvas[row][col] = "." if canvas[row][col] == " " else canvas[row][col]
    legend = []
    for marker, (label, ai, gf) in zip("ABCDEFG", points):
        row, col = to_row(max(gf, gf_lo)), to_col(ai)
        if 0 <= row < height and 0 <= col < width:
            canvas[row][col] = marker
        legend.append(f"  {marker} = {label} (AI {ai:.3f}, {gf:.1f} Gflop/s)")
    plot = "\n".join("".join(row) for row in canvas)
    return plot + "\n" + "\n".join(legend)


def main() -> None:
    csr = gray_scott_jacobian(48)
    model = make_model(KNL_7230)
    points = []
    print(f"{'kernel':20s} {'AI':>7s} {'Gflop/s':>8s} {'MCDRAM roof':>12s} {'of roof':>8s}")
    for variant in VARIANTS:
        meas = measure(variant, csr)
        perf = predict(meas, model, nprocs=64, scale=SCALE)
        ai = meas.traffic.arithmetic_intensity
        roof = attainable(ai)["MCDRAM"]
        points.append((variant.name, ai, perf.gflops))
        print(f"{variant.name:20s} {ai:7.3f} {perf.gflops:8.1f} "
              f"{roof:12.1f} {100 * perf.gflops / roof:7.0f}%")

    print("\nroofline (log-log; dots are the L1/L2/MCDRAM ceilings):\n")
    print(ascii_roofline(points))


if __name__ == "__main__":
    main()
