#!/usr/bin/env python
"""Quickstart: build the paper's operator, run the SELL kernel, predict KNL.

The five-minute tour of the library:

1. assemble the Gray-Scott Crank-Nicolson operator (10 nonzeros per row,
   natural 2x2 blocks — the matrix every figure of the paper measures);
2. convert it to sliced ELLPACK and check the format's storage properties;
3. execute the hand-vectorized AVX-512 SpMV kernel (Algorithm 2) on the
   simulated SIMD engine, verifying the result against the CSR fast path;
4. price the measured instruction stream on the calibrated KNL model at
   the paper's scale (2048x2048 grid, 64 ranks) and compare CSR vs SELL.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SellMat, gray_scott_jacobian, measure, predict
from repro.machine import KNL_7230, make_model


def main() -> None:
    # 1. The paper's operator on a small reference grid.
    csr = gray_scott_jacobian(64)
    m, n = csr.shape
    print(f"Gray-Scott CN operator: {m} x {n}, nnz = {csr.nnz} "
          f"({csr.nnz // m} per row)")

    # 2. Sliced ELLPACK conversion (slice height 8 = one ZMM of doubles).
    sell = SellMat.from_csr(csr, slice_height=8)
    print(f"SELL: {sell.nslices} slices, padded entries = "
          f"{sell.padded_entries} ({100 * sell.padding_fraction:.2f}%)")
    print(f"storage: CSR {csr.memory_bytes():,} B vs SELL "
          f"{sell.memory_bytes():,} B")

    # 3. Run Algorithm 2 on the simulated AVX-512 engine; numerics are real.
    x = np.random.default_rng(0).standard_normal(n)
    meas_sell = measure("SELL using AVX512", csr, x)
    meas_csr = measure("CSR baseline", csr, x)
    assert np.allclose(meas_sell.y, csr.multiply(x))
    c = meas_sell.counters
    print(f"\nSELL AVX-512 kernel on the engine: "
          f"{c.vector_fmadd} fmadds, {c.vector_gather} gathers, "
          f"{c.total_bytes:,} bytes issued")
    print(f"analytic minimum traffic (Sec 6 model): "
          f"{meas_sell.traffic.total_bytes:,} B, "
          f"AI = {meas_sell.traffic.arithmetic_intensity:.3f} flop/B")

    # 4. Predict the paper's single-node experiment: 2048^2 grid, 64 ranks.
    model = make_model(KNL_7230)
    scale = (2048 / 64) ** 2  # reference grid -> paper grid
    perf_sell = predict(meas_sell, model, nprocs=64, scale=scale)
    perf_csr = predict(meas_csr, model, nprocs=64, scale=scale)
    print(f"\nKNL 7230, flat-MCDRAM, 64 ranks, 2048x2048 grid:")
    print(f"  CSR baseline      : {perf_csr.gflops:5.1f} Gflop/s "
          f"({perf_csr.bound}-bound)")
    print(f"  SELL using AVX512 : {perf_sell.gflops:5.1f} Gflop/s "
          f"({perf_sell.bound}-bound)")
    print(f"  speedup           : {perf_sell.gflops / perf_csr.gflops:.2f}x "
          f"(paper: ~2x)")


if __name__ == "__main__":
    main()
