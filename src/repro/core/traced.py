"""Record/replay wiring: per-format buffer maps and variant-level helpers.

The trace layer (:mod:`repro.simd.trace` / :mod:`repro.simd.replay`)
identifies the arrays a kernel touches by *name* so a recorded trace can be
re-bound to fresh data.  Which arrays those are is a property of the
matrix *format*, so this module keeps a registry parallel to the format
converter table: :func:`register_trace_buffers` maps a format name to a
function returning the format's value-carrying float buffers.  Only float
buffers appear — column indices, slice pointers, row lengths and mask bits
are structure-derived and get baked into the trace by value.

:func:`record_trace` runs a kernel once through a
:class:`~repro.simd.trace.TraceRecorder` (returning the compiled trace
*and* that run's exact y/counters, so the recording doubles as the first
measurement), and :func:`replay_trace` executes a compiled trace against a
same-structure matrix and a new input vector.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..mat.base import Mat
from ..memory.spaces import aligned_alloc
from ..obs.observer import obs_counter
from ..simd.counters import KernelCounters
from ..simd.replay import KernelTrace, compile_trace
from ..simd.trace import TraceError, TraceRecorder

#: format name -> fn(mat) returning the format's named value buffers.
TRACE_BUFFERS: dict[str, Callable[[Mat], dict[str, np.ndarray]]] = {}


def register_trace_buffers(*fmts: str):
    """Register a format's value-buffer map (decorator).

    The returned dict must name every float array the kernel loads matrix
    values from or stores results to, excluding ``x``/``y`` (bound by the
    harness).  A format without a registered map cannot be traced and
    falls back to interpreted execution.
    """

    def decorate(fn: Callable[[Mat], dict[str, np.ndarray]]):
        for fmt in fmts:
            TRACE_BUFFERS[fmt] = fn
        return fn

    return decorate


def trace_buffers(fmt: str, mat: Mat) -> dict[str, np.ndarray]:
    """The named value buffers of a prepared matrix, by format name."""
    fn = TRACE_BUFFERS.get(fmt)
    if fn is None:
        raise TraceError(f"format {fmt!r} has no registered trace buffers")
    return fn(mat)


@register_trace_buffers("SELL", "ESB", "CSR", "MKL", "BETA")
def _val_buffer(mat: Mat) -> dict[str, np.ndarray]:
    return {"val": mat.val}


@register_trace_buffers("CSRPerm")
def _csrperm_buffers(mat) -> dict[str, np.ndarray]:
    return {"val": mat.csr.val}


@register_trace_buffers("BAIJ")
def _baij_buffers(mat) -> dict[str, np.ndarray]:
    return {"val": mat.val}


@register_trace_buffers("ELLPACK", "ELLPACK-R")
def _ellpack_buffers(mat) -> dict[str, np.ndarray]:
    return {"val": mat.val_f}


@register_trace_buffers("HYB")
def _hybrid_buffers(mat) -> dict[str, np.ndarray]:
    return {"val": mat.ell.val_f, "coo_vals": mat.coo.vals}


def record_trace(
    variant, mat: Mat, x: np.ndarray, strict_alignment: bool = False
) -> tuple[KernelTrace, np.ndarray, KernelCounters]:
    """Record one kernel execution; return (trace, y, counters).

    ``y`` and ``counters`` come from the recording run itself — the
    recorder defers every instruction to the interpreted engine, so they
    are exactly what :meth:`KernelVariant.run` would have produced, and
    the recording serves as the first measurement for free.
    """
    # The cold-start gate counts these: a process replaying from a warm
    # on-disk plan cache must perform zero recordings.
    obs_counter("compiler.recordings")
    recorder = TraceRecorder(variant.isa, strict_alignment=strict_alignment)
    y = aligned_alloc(mat.shape[0], np.float64, 64)
    recorder.bind_buffers(trace_buffers(variant.fmt, mat))
    recorder.bind("x", x)
    recorder.bind("y", y)
    variant.kernel(recorder, mat, x, y)
    return compile_trace(recorder), y, recorder.counters


def replay_trace(
    variant, trace: KernelTrace, mat: Mat, x: np.ndarray
) -> tuple[np.ndarray, KernelCounters]:
    """Replay a compiled trace against a same-structure matrix and new x."""
    y = aligned_alloc(mat.shape[0], np.float64, 64)
    buffers = trace_buffers(variant.fmt, mat)
    buffers["x"] = x
    buffers["y"] = y
    counters = trace.replay(buffers)
    return y, counters


def acquire_trace(
    variant,
    registry,
    key: tuple,
    mat: Mat,
    x: np.ndarray,
    strict_alignment: bool = False,
) -> tuple[KernelTrace, tuple[np.ndarray, KernelCounters] | None]:
    """Get the trace under ``key``, recording it at most once.

    The registry's single-flight semantics elect one leader among
    concurrent callers for an uncached structure; only the leader runs
    the recording, and it gets the recording run's exact ``(y,
    counters)`` back as the second element (the recording doubles as the
    first measurement).  Everyone else — cache hits and single-flight
    waiters alike — receives ``(trace, None)`` and replays.

    ``key`` must come from
    :meth:`repro.core.registry.SignatureRegistry.trace_key` — the single
    definition of the trace cache key.  A kernel the trace layer cannot
    represent raises :class:`TraceError` out of the recording (nothing
    is cached) for the caller to fall back to interpretation.
    """
    recorded: dict[str, tuple[np.ndarray, KernelCounters]] = {}

    def record() -> KernelTrace:
        trace, y, counters = record_trace(
            variant, mat, x, strict_alignment=strict_alignment
        )
        recorded["run"] = (y, counters)
        return trace

    trace = registry.get_or_compute("trace", key, record)
    return trace, recorded.get("run")
