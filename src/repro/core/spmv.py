"""Public SpMV API: execute, measure, and predict.

Ties the layers together for users and for the figure harnesses:

* :func:`spmv` — the production matvec for any format (fast NumPy path);
* :func:`measure` — run one named variant's instruction-level kernel on a
  concrete matrix, returning the result vector, the instruction counters,
  and the Section 6 traffic estimate;
* :func:`predict` — price a measurement on a machine model, optionally
  *scaling* the measured instruction stream to a larger matrix with the
  same per-row structure (how the benchmarks reach the paper's 2048^2 and
  16384^2 grids without instantiating them — see
  :meth:`repro.simd.counters.KernelCounters.scaled`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.perf_model import KernelPerformance, PerfModel
from ..mat.aij import AijMat
from ..mat.base import Mat
from ..simd.counters import KernelCounters
from ..simd.engine import SimdEngine
from .dispatch import KernelVariant, get_variant
from .traffic import TrafficEstimate, traffic_for


def spmv(a: Mat, x: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
    """y = A @ x through the format's production path."""
    return a.multiply(x, y)


@dataclass(frozen=True)
class SpmvMeasurement:
    """One instruction-level kernel execution, fully accounted."""

    variant: KernelVariant
    mat: Mat
    y: np.ndarray
    counters: KernelCounters
    traffic: TrafficEstimate

    @property
    def useful_flops(self) -> int:
        """Flops excluding SELL padding work."""
        return self.counters.flops - self.counters.padded_flops


def default_x(n: int) -> np.ndarray:
    """The reproducible default input vector of :func:`measure`."""
    return np.random.default_rng(12345).standard_normal(n)


def measure(
    variant: KernelVariant | str,
    csr: AijMat,
    x: np.ndarray | None = None,
    slice_height: int = 8,
    sigma: int = 1,
    strict_alignment: bool = False,
    engine: "SimdEngine | None" = None,
    mat: Mat | None = None,
    trace=None,
) -> SpmvMeasurement:
    """Convert, execute, and account one kernel variant on one matrix.

    ``x`` defaults to a reproducible random vector.  The returned ``y`` is
    exact (the engine performs real arithmetic), so callers can verify it
    against ``csr.multiply(x)`` — the measurement doubles as a test.
    ``engine`` lets an :class:`~repro.core.context.ExecutionContext` supply
    a policy-carrying engine instead of the default per-call one.

    ``mat`` supplies an already-prepared format (skipping the conversion),
    and ``trace`` a recorded :class:`~repro.simd.replay.KernelTrace` to
    replay instead of interpreting — both are how the context's caches
    avoid redundant work on repeated measurements of one structure.
    """
    if isinstance(variant, str):
        variant = get_variant(variant)
    if x is None:
        x = default_x(csr.shape[1])
    if mat is None:
        mat = variant.prepare(csr, slice_height=slice_height, sigma=sigma)
    y, counters = variant.run(
        mat, x, strict_alignment=strict_alignment, engine=engine, trace=trace
    )
    return SpmvMeasurement(
        variant=variant,
        mat=mat,
        y=y,
        counters=counters,
        traffic=traffic_for(mat),
    )


def predict(
    measurement: SpmvMeasurement,
    model: PerfModel,
    nprocs: int,
    scale: float = 1.0,
    working_set: int | None = None,
) -> KernelPerformance:
    """Price a measurement on a machine model.

    ``scale`` linearly extrapolates both the instruction stream and the
    traffic to ``scale`` copies of the measured matrix (valid because the
    per-row instruction mix is size-independent for a fixed stencil —
    Section 7.1's observation).  ``working_set`` feeds the cache-mode
    blend; when omitted it defaults to the scaled matrix footprint plus
    vectors.

    The Gflop/s numerator comes from the *measured* counters
    (``counters.flops - counters.padded_flops``), so formats whose padding
    accounting differs from the analytic traffic model (ESB executes no
    padded arithmetic, plain ELLPACK executes all of it) report exactly
    what :attr:`SpmvMeasurement.useful_flops` reports.
    """
    counters = (
        measurement.counters if scale == 1.0 else measurement.counters.scaled(scale)
    )
    traffic_bytes = round(measurement.traffic.total_bytes * scale)
    if working_set is None:
        m, n = measurement.mat.shape
        working_set = round(
            (measurement.mat.memory_bytes() + 8 * (m + n)) * scale
        )
    return model.predict(
        counters,
        measurement.variant.isa,
        nprocs,
        traffic_bytes=traffic_bytes,
        working_set=working_set,
        efficiency=measurement.variant.efficiency,
        useful_flops=round(measurement.useful_flops * scale),
    )
