"""SELL parameter autotuning: choose C and sigma from the model.

The paper fixes C = 8 and sigma = 1 for its regular PDE matrices
(Sections 5.1 and 5.4) but frames both as tunable trade-offs.  This module
closes the loop for arbitrary matrices: sweep the candidate space, run the
instruction-level kernel on each configuration, price it on a machine
model, and return the winner with the full sweep attached — exactly the
kind of inspector step MKL's inspector-executor performs, but transparent.

For the paper's own operator the tuner confirms the paper's choice (a test
pins that); on irregular matrices it discovers when sigma-sorting pays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..machine.perf_model import PerfModel
from ..mat.aij import AijMat
from .dispatch import SELL_AVX512
from .spmv import measure, predict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .context import ExecutionContext


@dataclass(frozen=True)
class TuneCandidate:
    """One (C, sigma) configuration with its modeled outcome."""

    slice_height: int
    sigma: int
    gflops: float
    padding_fraction: float

    @property
    def label(self) -> str:
        """Human-readable configuration name."""
        return f"C={self.slice_height}, sigma={self.sigma}"


@dataclass(frozen=True)
class TuneResult:
    """The autotuner's verdict plus the full sweep for inspection."""

    best: TuneCandidate
    sweep: tuple[TuneCandidate, ...]

    @property
    def paper_default(self) -> TuneCandidate | None:
        """The paper's C=8, sigma=1 point, when it was in the sweep."""
        for cand in self.sweep:
            if cand.slice_height == 8 and cand.sigma == 1:
                return cand
        return None


def tune_sell(
    csr: AijMat,
    model: PerfModel | None = None,
    nprocs: int | None = None,
    slice_heights: tuple[int, ...] = (8, 16),
    sigmas: tuple[int, ...] = (1, 4, 16, 64),
    scale: float = 1.0,
    ctx: "ExecutionContext | None" = None,
) -> TuneResult:
    """Sweep (C, sigma) and return the best modeled configuration.

    ``sigmas`` entries are interpreted as multiples of the slice height
    (sigma must divide into whole slices); sigma = 1 means no sorting.
    Candidates whose window would exceed the matrix are skipped.

    Execution state comes either from an :class:`ExecutionContext` (which
    also supplies its measurement cache and engine policy) or from an
    explicit ``model`` + ``nprocs`` pair; passing neither is an error.
    Prefer :meth:`ExecutionContext.tune`, which additionally memoizes the
    whole sweep per sparsity signature.
    """
    if not slice_heights:
        raise ValueError("need at least one slice height")
    if ctx is None and (model is None or nprocs is None):
        raise ValueError("tune_sell needs a ctx or a model + nprocs pair")
    m = csr.shape[0]
    candidates: list[TuneCandidate] = []
    for c in slice_heights:
        for sigma_factor in sigmas:
            sigma = 1 if sigma_factor == 1 else c * sigma_factor
            if sigma > max(m, 1) and sigma != 1:
                continue
            if ctx is not None:
                meas = ctx.measure(SELL_AVX512, csr, slice_height=c, sigma=sigma)
                perf = ctx.predict(meas, scale=scale)
            else:
                meas = measure(SELL_AVX512, csr, slice_height=c, sigma=sigma)
                perf = predict(meas, model, nprocs=nprocs, scale=scale)
            candidates.append(
                TuneCandidate(
                    slice_height=c,
                    sigma=sigma,
                    gflops=perf.gflops,
                    padding_fraction=meas.mat.padding_fraction,  # type: ignore[attr-defined]
                )
            )
    if not candidates:
        raise ValueError("no admissible configurations for this matrix")
    best = max(candidates, key=lambda cand: cand.gflops)
    return TuneResult(best=best, sweep=tuple(candidates))
