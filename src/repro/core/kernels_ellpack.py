"""ELLPACK-family SpMV kernels (paper Section 2.5's GPU-era formats).

Three kernels over the :class:`~repro.mat.ellpack.EllpackMat` /
:class:`~repro.mat.hybrid.HybridMat` storage, written so the simulated
engine can price them against SELL:

* :func:`spmv_ellpack` — classic ELLPACK: vector registers span *rows*
  (the column-major storage makes each column of the padded array a
  contiguous load), every padded slot is multiplied, and the padding is
  reported as ``padded_flops`` exactly like SELL's;
* :func:`spmv_ellpack_r` — Vazquez et al.'s ELLPACK-R: the per-row length
  array bounds each strip's inner loop and masks off padded lanes, so no
  padded arithmetic executes — at the price of materializing one mask
  register per column (AVX-512 only, like the ESB ablation kernel);
* :func:`spmv_hybrid` — Bell & Garland's ELL+COO hybrid: the regular part
  runs the ELLPACK kernel, the spilled tail entries run a scalar COO
  accumulation (the CPU stand-in for the GPU's atomic path).

The storage is column-major, so the strip of rows ``[r0, r0+lanes)`` at
column ``j`` sits at flat offset ``j*m + r0`` of the Fortran-raveled
arrays — memory order equals consumption order down the rows, the same
property SELL engineers per slice.
"""

from __future__ import annotations

import numpy as np

from ..mat.ellpack import EllpackMat
from ..mat.hybrid import HybridMat
from ..simd.engine import SimdEngine
from ..simd.register import MaskRegister


def _spmv_ellpack_scalar(
    engine: SimdEngine, ell: EllpackMat, x: np.ndarray, y: np.ndarray
) -> None:
    """Scalar traversal of the padded layout (full width, padding included)."""
    m = ell.shape[0]
    width = ell.width
    valf, colf = ell.val_f, ell.colidx_f
    counters = engine.counters
    for i in range(m):
        acc = 0.0
        for j in range(width):
            v = engine.scalar_load(valf, j * m + i)
            col = int(engine.scalar_load(colf, j * m + i))
            xv = engine.scalar_load(x, col)
            acc = engine.scalar_fma(v, xv, acc)
        engine.scalar_store(y, i, acc)
        counters.body_iterations += 1
    counters.padded_flops += 2 * ell.padded_entries


def spmv_ellpack(
    engine: SimdEngine, ell: EllpackMat, x: np.ndarray, y: np.ndarray
) -> None:
    """Classic ELLPACK SpMV: vectorized down the rows of the padded array.

    Every row runs the full padded width; padded slots multiply zeros
    through a valid column index (the same Section 5.5 trick SELL uses),
    and their arithmetic is recorded as ``padded_flops``.
    """
    if not engine.isa.is_vector:
        _spmv_ellpack_scalar(engine, ell, x, y)
        return
    m = ell.shape[0]
    lanes = engine.lanes
    width = ell.width
    # Flat Fortran views of the column-major storage (cached on the mat).
    valf, colf = ell.val_f, ell.colidx_f
    counters = engine.counters
    tail = m % lanes
    full = m - tail
    for r0 in range(0, full, lanes):
        acc = engine.setzero()
        for j in range(width):
            off = j * m + r0
            vec_vals = engine.load(valf, off)
            vec_idx = engine.load_index(colf, off)
            vec_x = engine.gather_auto(x, vec_idx)
            acc = engine.fmadd_auto(vec_vals, vec_x, acc)
            counters.body_iterations += 1
        engine.store(y, r0, acc)
    if tail:
        if engine.isa.has_masks:
            prefix = engine.make_mask(tail)
            acc = engine.setzero()
            for j in range(width):
                off = j * m + full
                vec_vals = engine.masked_load(valf, off, prefix)
                vec_idx = engine.masked_load_index(colf, off, prefix)
                vec_x = engine.masked_gather(x, vec_idx, prefix)
                acc = engine.masked_fmadd(vec_vals, vec_x, acc, prefix)
                counters.remainder_iterations += 1
            engine.masked_store(y, full, acc, prefix)
        else:
            for i in range(full, m):
                acc = 0.0
                for j in range(width):
                    v = engine.scalar_load(valf, j * m + i)
                    col = int(engine.scalar_load(colf, j * m + i))
                    xv = engine.scalar_load(x, col)
                    acc = engine.scalar_fma(v, xv, acc)
                engine.scalar_store(y, i, acc)
                counters.remainder_iterations += 1
    counters.padded_flops += 2 * ell.padded_entries


def spmv_ellpack_r(
    engine: SimdEngine, ell: EllpackMat, x: np.ndarray, y: np.ndarray
) -> None:
    """ELLPACK-R SpMV: the ``rlen`` array masks off all padded arithmetic.

    Each row strip runs only to its own longest row, and every column
    materializes a mask of the lanes still inside their row — built from
    ``rlen`` like the ESB kernel builds its masks from the bit array, so
    no padded flop ever executes (``padded_flops`` stays zero).  Requires
    mask support (AVX-512).
    """
    engine.isa.require("masks")
    m = ell.shape[0]
    lanes = engine.lanes
    valf, colf = ell.val_f, ell.colidx_f
    rlen = ell.rlen
    counters = engine.counters
    for r0 in range(0, m, lanes):
        active = min(lanes, m - r0)
        strip_rlen = rlen[r0 : r0 + active]
        strip_width = int(strip_rlen.max()) if active else 0
        prefix = engine.make_mask(active)
        acc = engine.setzero()
        for j in range(strip_width):
            off = j * m + r0
            # Materialize the lanes-still-active mask from rlen.
            bits = np.zeros(lanes, dtype=bool)
            bits[:active] = strip_rlen > j
            counters.mask_setup += 1
            mask = MaskRegister(bits)
            vec_vals = engine.masked_load(valf, off, prefix)
            vec_idx = engine.masked_load_index(colf, off, prefix)
            vec_x = engine.masked_gather(x, vec_idx, mask)
            acc = engine.masked_fmadd(vec_vals, vec_x, acc, mask)
            counters.body_iterations += 1
        if active == lanes:
            engine.store(y, r0, acc)
        else:
            engine.masked_store(y, r0, acc, prefix)


def spmv_hybrid(
    engine: SimdEngine, hyb: HybridMat, x: np.ndarray, y: np.ndarray
) -> None:
    """Hybrid ELL+COO SpMV: vector ELLPACK part plus a scalar COO spill.

    The ELL part carries the regular bulk through :func:`spmv_ellpack`;
    the spilled tail entries accumulate scalar-wise into ``y`` — a
    read-modify-write per triplet, the serialization the hybrid accepts
    in exchange for a narrow padded width.
    """
    spmv_ellpack(engine, hyb.ell, x, y)
    coo = hyb.coo
    counters = engine.counters
    for k in range(coo.nnz):
        v = engine.scalar_load(coo.vals, k)
        col = int(engine.scalar_load(coo.cols, k))
        row = int(engine.scalar_load(coo.rows, k))
        xv = engine.scalar_load(x, col)
        cur = engine.scalar_load(y, row)
        engine.scalar_store(y, row, engine.scalar_fma(v, xv, cur))
        counters.remainder_iterations += 1
