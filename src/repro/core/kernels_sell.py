"""Sliced-ELLPACK SpMV kernels (paper Algorithm 2 and the ESB ablation).

:func:`spmv_sell` is Algorithm 2, generalized over vector width: a slice of
``C`` rows is processed as ``C / lanes`` independent accumulator strips (one
for AVX-512 with C=8, two for AVX/AVX2).  Each inner-loop iteration loads a
*contiguous, aligned* column of matrix values and indices — the whole point
of the format: memory order equals consumption order, so no remainder loop
and no strided access ever occurs.  Padded lanes multiply zeros; the kernel
records those as ``padded_flops`` so reported Gflop/s counts useful work
only, as PETSc's flop logging does.

The trailing partial slice is handled exactly as Section 5.5 describes:
rows are padded to a full slice, and only the final *store* is masked (on
AVX-512) or scalarized (elsewhere).

:func:`spmv_sell_esb` is the bit-array variant of Liu et al.'s ESB format
that Section 5.3 measures ~10% slower: same traversal, but each column
loads a mask byte, materializes a mask register, and executes masked loads,
gathers, and FMAs — saving the padded arithmetic at the price of mask
overhead and unaligned value access.
"""

from __future__ import annotations

import numpy as np

from .esb import EsbMat
from ..simd.engine import SimdEngine
from ..simd.register import MaskRegister
from .sell import SellMat


def _store_rows(
    engine: SimdEngine,
    sell: SellMat,
    y: np.ndarray,
    first_storage_row: int,
    acc,
) -> None:
    """Store one accumulator strip into y, honouring permutation and edge.

    With no sorting the store is a contiguous (aligned) vector store; a
    sorted matrix needs scalar scatter stores — one of the locality costs
    of sorting the paper cites in Section 5.4.  The trailing partial slice
    uses a masked store on AVX-512, scalar stores otherwise.
    """
    m = sell.shape[0]
    lanes = engine.lanes
    active = min(lanes, m - first_storage_row)
    if sell.perm is not None:
        for lane in range(active):
            row = int(sell.perm[first_storage_row + lane])
            engine.scalar_store(y, row, engine.extract_lane(acc, lane))
        return
    if active == lanes:
        engine.store_aligned(y, first_storage_row, acc)
    elif engine.isa.has_masks:
        mask = engine.make_mask(active)
        engine.masked_store(y, first_storage_row, acc, mask)
    else:
        for lane in range(active):
            engine.scalar_store(
                y, first_storage_row + lane, engine.extract_lane(acc, lane)
            )


def _spmv_sell_scalar(
    engine: SimdEngine, sell: SellMat, x: np.ndarray, y: np.ndarray
) -> None:
    """Scalar traversal of the SELL layout (the "SELL using novec" series)."""
    m = sell.shape[0]
    c = sell.slice_height
    counters = engine.counters
    for s in range(sell.nslices):
        base = int(sell.sliceptr[s])
        width = sell.slice_width(s)
        for i in range(c):
            k = s * c + i
            if k >= m:
                continue
            row = sell.storage_row(k)
            acc = 0.0
            for j in range(width):
                slot = base + j * c + i
                v = engine.scalar_load(sell.val, slot)
                col = int(engine.scalar_load(sell.colidx, slot))
                xv = engine.scalar_load(x, col)
                acc = engine.scalar_fma(v, xv, acc)
            engine.scalar_store(y, row, acc)
            counters.body_iterations += 1
    counters.padded_flops += 2 * sell.padded_entries


def spmv_sell(engine: SimdEngine, sell: SellMat, x: np.ndarray, y: np.ndarray) -> None:
    """Algorithm 2: vectorized SpMV over the sliced-ELLPACK layout."""
    if not engine.isa.is_vector:
        _spmv_sell_scalar(engine, sell, x, y)
        return
    lanes = engine.lanes
    c = sell.slice_height
    if c % lanes:
        raise ValueError(
            f"slice height {c} must be a multiple of the vector length {lanes}"
        )
    val, colidx = sell.val, sell.colidx
    counters = engine.counters
    for s in range(sell.nslices):
        base = int(sell.sliceptr[s])
        end = int(sell.sliceptr[s + 1])
        width = (end - base) // c
        # Manual prefetch ahead of the slice (Section 5.5: it does not
        # change performance much, but the kernel issues it).
        if end < val.shape[0]:
            engine.prefetch(val, end)
        for strip in range(0, c, lanes):
            acc = engine.setzero()
            idx = base + strip
            for _ in range(width):
                vec_vals = engine.load_aligned(val, idx)
                vec_idx = engine.load_index(colidx, idx)
                vec_x = engine.gather_auto(x, vec_idx)
                acc = engine.fmadd_auto(vec_vals, vec_x, acc)
                idx += c
                counters.body_iterations += 1
            _store_rows(engine, sell, y, s * c + strip, acc)
    counters.padded_flops += 2 * sell.padded_entries


def spmv_sell_esb(
    engine: SimdEngine, esb: EsbMat, x: np.ndarray, y: np.ndarray
) -> None:
    """ESB variant: mask out padded slots with the bit array (Section 5.3).

    Requires mask support (AVX-512 / AVX2 with compiler support, per the
    paper's discussion); narrower ISAs should use the maskless kernel.
    """
    engine.isa.require("masks")
    lanes = engine.lanes
    c = esb.slice_height
    if c % lanes:
        raise ValueError(
            f"slice height {c} must be a multiple of the vector length {lanes}"
        )
    val, colidx, bits = esb.val, esb.colidx, esb.bits
    packed = esb.packed
    counters = engine.counters
    m = esb.shape[0]
    for s in range(esb.nslices):
        base = int(esb.sliceptr[s])
        end = int(esb.sliceptr[s + 1])
        width = (end - base) // c
        for strip in range(0, c, lanes):
            acc = engine.setzero()
            idx = base + strip
            for _ in range(width):
                # Load the precomputed mask byte for this column strip and
                # materialize a mask register from it.  Strips start on
                # 8-slot boundaries (C is a multiple of lanes == 8 wherever
                # masks exist), so the byte is simply packed[idx >> 3].
                engine.scalar_load(packed, idx >> 3)
                lane_bits = bits[idx : idx + lanes]
                counters.mask_setup += 1
                mask = MaskRegister(np.asarray(lane_bits, dtype=bool))
                # Unaligned: skipping padding breaks the alignment
                # guarantee of the padded layout.
                vec_vals = engine.masked_load(val, idx, _full_prefix(mask))
                vec_vals = engine.blend_zero(vec_vals, mask)
                vec_idx = engine.masked_load_index(colidx, idx, _full_prefix(mask))
                vec_x = engine.masked_gather(x, vec_idx, mask)
                acc = engine.masked_fmadd(vec_vals, vec_x, acc, mask)
                idx += c
                counters.body_iterations += 1
            _store_rows(engine, esb, y, s * c + strip, acc)
    del m


def _full_prefix(mask: MaskRegister) -> MaskRegister:
    """A dense prefix mask covering the same lane count.

    ESB loads the packed value/index words contiguously and *then* masks
    the arithmetic; the memory instruction itself reads all lanes of the
    (unaligned) word, which this prefix mask expresses.
    """
    return MaskRegister(np.ones(mask.lanes, dtype=bool))
