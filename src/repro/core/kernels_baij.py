"""BAIJ (block CSR) SpMV at instruction level — the Section 3.2 story.

The paper argues that register blocking, the classic CSR optimization for
narrow-SIMD CPUs, turns counterproductive on KNL: "matrices with small
natural blocks would need zero padding or masked vector operations,
yielding loss in SIMD efficiency" (Section 3.2), which is why it ships
SELL instead of leaning on BAIJ.  This kernel makes that argument
measurable.

For block size 2 on an 8-lane machine, one ZMM register holds two whole
2x2 blocks.  The kernel processes a block row's blocks two at a time:

* a contiguous load of 8 block values (aligned — dense blocks pack
  perfectly, BAIJ's real strength: no column index per scalar);
* a gather of the two blocks' x pairs *duplicated per block row*
  (indices ``[x0, x1, x0, x1, x2, x3, x2, x3]``) — the register-blocking
  data reuse, expressed as redundant gather lanes;
* an FMA, then a horizontal pairwise reduction (shuffle + add, counted as
  insert + add) to compress per-lane products into the two output rows.

The efficiency loss the paper predicts shows up directly in the counters:
the pairwise reductions and the odd-block masked tail do work that SELL's
layout never needs, and the benchmarks compare ``useful flops per vector
instruction`` across the two kernels.
"""

from __future__ import annotations

import numpy as np

from ..mat.baij import BaijMat
from ..simd.engine import SimdEngine
from ..simd.register import VectorRegister


def spmv_baij(engine: SimdEngine, a: BaijMat, x: np.ndarray, y: np.ndarray) -> None:
    """Block-CSR SpMV on the engine (block size 2, the Gray-Scott shape).

    Exact numerics; supports any ISA (scalar fallback below 4 lanes).
    """
    if a.bs != 2:
        raise ValueError("the instruction-level BAIJ kernel models bs=2")
    m, _ = a.shape
    y[:] = 0.0
    if not engine.isa.is_vector or engine.lanes < 4:
        _spmv_baij_scalar(engine, a, x, y)
        return

    lanes = engine.lanes
    blocks_per_reg = lanes // 4  # 2x2 blocks per vector register
    counters = engine.counters
    val_flat = a.val.reshape(-1)  # (nblocks*4,), row-major within blocks
    mb = m // 2
    for bi in range(mb):
        lo, hi = int(a.browptr[bi]), int(a.browptr[bi + 1])
        acc = engine.setzero()
        k = lo
        full = lo + ((hi - lo) // blocks_per_reg) * blocks_per_reg
        while k < full:
            # blocks_per_reg whole blocks: 4*blocks_per_reg contiguous values.
            vec_vals = engine.load(val_flat, 4 * k)
            # x pairs, duplicated per block row: the register-blocking reuse.
            idx = np.empty(lanes, dtype=np.int64)
            for b in range(blocks_per_reg):
                bj = int(a.bcolidx[k + b])
                idx[4 * b : 4 * b + 4] = [2 * bj, 2 * bj + 1, 2 * bj, 2 * bj + 1]
            vec_x = engine.gather_auto(x, VectorRegister(idx))
            acc = engine.fmadd_auto(vec_vals, vec_x, acc)
            k += blocks_per_reg
            counters.body_iterations += 1
        # Odd tail block: masked on AVX-512, scalar otherwise (the
        # Section 3.2 "zero padding or masked vector operations").
        for kk in range(k, hi):
            bj = int(a.bcolidx[kk])
            if engine.isa.has_masks:
                mask = engine.make_mask(4)
                vec_vals = engine.masked_load(val_flat, 4 * kk, mask)
                idx = np.zeros(lanes, dtype=np.int64)
                idx[:4] = [2 * bj, 2 * bj + 1, 2 * bj, 2 * bj + 1]
                vec_x = engine.masked_gather(x, VectorRegister(idx), mask)
                acc = engine.masked_fmadd(vec_vals, vec_x, acc, mask)
            else:
                for oi in range(2):
                    for oj in range(2):
                        v = engine.scalar_load_indep(val_flat, 4 * kk + 2 * oi + oj)
                        xv = engine.scalar_load_indep(x, 2 * bj + oj)
                        partial = engine.scalar_fma_indep(v, xv, 0.0)
                        acc = engine.lane_add(acc, 2 * oi + oj, partial)
            counters.remainder_iterations += 1
        # Pairwise horizontal reduction.  Within each block's four lanes,
        # lanes (0, 1) hold output-row-0 products and (2, 3) row 1; one
        # shuffle + add per halving step (counted as insert + add), then
        # two scalar stores.
        row0 = engine.reduce_select(
            acc, (tuple(range(0, lanes, 4)), tuple(range(1, lanes, 4)))
        )
        row1 = engine.reduce_select(
            acc, (tuple(range(2, lanes, 4)), tuple(range(3, lanes, 4)))
        )
        steps = max(int(np.log2(max(blocks_per_reg, 1))) + 1, 1)
        counters.vector_insert += steps
        counters.vector_add += steps
        engine.scalar_store(y, 2 * bi, row0)
        engine.scalar_store(y, 2 * bi + 1, row1)


def _spmv_baij_scalar(
    engine: SimdEngine, a: BaijMat, x: np.ndarray, y: np.ndarray
) -> None:
    """Scalar BAIJ traversal (novec builds and sub-4-lane ISAs)."""
    val_flat = a.val.reshape(-1)
    mb = a.shape[0] // 2
    for bi in range(mb):
        acc0 = 0.0
        acc1 = 0.0
        for k in range(int(a.browptr[bi]), int(a.browptr[bi + 1])):
            bj = int(a.bcolidx[k])
            x0 = engine.scalar_load(x, 2 * bj)
            x1 = engine.scalar_load(x, 2 * bj + 1)
            acc0 = engine.scalar_fma(engine.scalar_load(val_flat, 4 * k), x0, acc0)
            acc0 = engine.scalar_fma(engine.scalar_load(val_flat, 4 * k + 1), x1, acc0)
            acc1 = engine.scalar_fma(engine.scalar_load(val_flat, 4 * k + 2), x0, acc1)
            acc1 = engine.scalar_fma(engine.scalar_load(val_flat, 4 * k + 3), x1, acc1)
        engine.scalar_store(y, 2 * bi, acc0)
        engine.scalar_store(y, 2 * bi + 1, acc1)


def simd_efficiency(counters) -> float:
    """Useful flops per vector instruction: the Section 3.2 quantity.

    SELL's maskless full-width kernel sets the reference; blocked kernels
    fall below it through masked tails and horizontal reductions.
    """
    instructions = counters.total_vector_instructions
    if instructions == 0:
        return 0.0
    return (counters.flops - counters.padded_flops) / instructions
