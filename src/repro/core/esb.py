"""ESB-style sliced ELLPACK with a bit array (Liu et al., paper Section 5.3).

The ELLPACK-Sparse-Block format masks out padded slots with one bit per
stored element, letting the SpMV kernel skip the padding entirely via
masked vector instructions.  The paper implements both variants and keeps
the maskless one: the bit array costs ~1/64 of the value storage, adds a
mask load + materialization per column, and loses aligned access to the
value array — a measured ~10% slowdown (Section 5.3).  This class exists
so the ablation benchmark can reproduce that comparison.
"""

from __future__ import annotations

import numpy as np

from .sell import SellMat
from ..mat.aij import AijMat
from ..mat.base import register_format


class EsbMat(SellMat):
    """Sliced ELLPACK plus a per-element validity bit array."""

    format_name = "ESB"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.bits = self._build_bits()
        # Packed mask bytes, precomputed once at conversion: the kernel
        # reads one byte per column strip, so packing in the inner loop
        # would allocate per strip (and did, before this cache).
        self.packed = np.packbits(self.bits)

    @classmethod
    def from_csr(
        cls,
        csr: AijMat,
        slice_height: int = 8,
        sigma: int = 1,
        alignment: int = 64,
    ) -> "EsbMat":
        """Convert from CSR; identical layout to SELL plus the bit array."""
        sell = SellMat.from_csr(csr, slice_height, sigma, alignment)
        return cls(
            sell.shape,
            sell.slice_height,
            sell.sliceptr,
            sell.val,
            sell.colidx,
            sell.rlen,
            perm=sell.perm,
            sigma=sell.sigma,
            alignment=alignment,
        )

    def _build_bits(self) -> np.ndarray:
        """One boolean per stored slot: True for real nonzeros.

        A slot (lane ``i``, column ``j``) of slice ``s`` is real when
        ``j < rlen`` of the row in that lane.
        """
        m, _ = self.shape
        c = self.slice_height
        bits = np.zeros(self.val.shape[0], dtype=bool)
        for s in range(self.nslices):
            base, width = self.sliceptr[s], self.slice_width(s)
            for i in range(c):
                k = s * c + i
                if k >= m:
                    continue
                length = int(self.rlen[self.storage_row(k)])
                slots = base + np.arange(min(length, width), dtype=np.int64) * c + i
                bits[slots] = True
        return bits

    @property
    def bit_array_bytes(self) -> int:
        """Packed size of the bit array: one bit per stored slot."""
        return int((self.val.shape[0] + 7) // 8)

    def packed_bits(self) -> np.ndarray:
        """The bit array as packed bytes (what the real format stores)."""
        return self.packed

    def memory_bytes(self) -> int:
        return super().memory_bytes() + self.bit_array_bytes

    def multiply_masked(
        self, x: np.ndarray, y: np.ndarray | None = None
    ) -> np.ndarray:
        """Matvec through the mask, skipping padded slots.

        Numerically identical to the maskless product (padding values are
        zero); the instruction-level difference is what the ablation
        kernel in :mod:`repro.core.kernels_sell` measures.
        """
        x, y = self._check_multiply_args(x, y)
        if self.val.shape[0] == 0:
            y[:] = 0.0
            return y
        products = np.where(self.bits, self.val * x[self.colidx], 0.0)
        y[:] = np.bincount(
            self._row_of_element, weights=products, minlength=self.shape[0]
        )[: self.shape[0]]
        return y


@register_format("ESB")
def _esb_from_csr(csr: AijMat, *, slice_height: int = 8, sigma: int = 1) -> EsbMat:
    return EsbMat.from_csr(csr, slice_height=slice_height, sigma=sigma)
