"""β(r,c) SpMV: mask-driven block kernel for AVX-512 and SVE.

One kernel body serves both ISAs (SPC5's portability claim, carried to
arXiv 2307.14774's SVE port): the only ISA-specific choice is how the
per-chunk lane mask is produced — an AVX-512 ``kmov`` from a lane count
(``make_mask``) or an SVE ``whilelt`` loop predicate — and which flavor
of governed memory/arithmetic op is issued.  Everything else is shared:

* per band (r logical rows) one vector accumulator per row;
* per block, one scalar load of the 64-bit presence mask (the only
  per-block structure traffic besides the anchor);
* per row of the block, the packed values are loaded with a prefix mask
  (they are contiguous — no padding exists to skip) and the gather
  columns are expanded from (anchor, mask bits), the register-resident
  integer unpack SPC5 performs with table lookups;
* after the band's blocks, each row reduces its accumulator and stores —
  every logical row, so rows with no entries still define their output.

The kernel performs exactly ``2*nnz`` useful flops: ``padded_flops``
stays zero by construction, which is the format's whole argument.
"""

from __future__ import annotations

import numpy as np

from ..simd.engine import SimdEngine
from ..simd.register import MaskRegister, VectorRegister
from .beta import BetaMat


def _chunk_mask(engine: SimdEngine, done: int, total: int) -> MaskRegister:
    """The governing lane mask for packed elements [done, done+lanes)."""
    if engine.isa.has_predicates:
        return engine.whilelt(done, total)
    return engine.make_mask(min(engine.lanes, total - done))


def spmv_beta(
    engine: SimdEngine, beta: BetaMat, x: np.ndarray, y: np.ndarray
) -> None:
    """Mask-driven SpMV over β(r,c) storage (lane-masked ISAs only)."""
    isa = engine.isa
    predicated = isa.has_predicates
    if not predicated:
        isa.require("masks")
    lanes = engine.lanes
    r, c = beta.block_shape
    val, block_mask = beta.val, beta.block_mask
    valptr, block_col = beta.valptr, beta.block_col
    counters = engine.counters
    m = beta.shape[0]
    row_mask = (1 << c) - 1
    for band in range(beta.nbands):
        first = band * r
        nrows = min(r, m - first)
        acc = [engine.setzero() for _ in range(nrows)]
        for b in range(int(beta.blockptr[band]), int(beta.blockptr[band + 1])):
            # The mask word is the block's structure descriptor; loading
            # it is counted (8 bytes) but, being integer control flow,
            # baked into the trace rather than replayed.
            mask = int(engine.scalar_load(block_mask, b))
            anchor = int(block_col[b])
            offset = int(valptr[b])
            for i in range(nrows):
                row_bits = (mask >> (i * c)) & row_mask
                k = row_bits.bit_count()
                if k == 0:
                    continue
                # Gather columns, unpacked from the mask word the way
                # SPC5 expands its permutation tables: register-resident
                # integer work the instruction model does not price.
                cols = np.flatnonzero(
                    [(row_bits >> j) & 1 for j in range(c)]
                ).astype(np.int64) + anchor
                for j0 in range(0, k, lanes):
                    lane_mask = _chunk_mask(engine, j0, k)
                    idx_data = np.zeros(lanes, dtype=np.int64)
                    idx_data[: min(lanes, k - j0)] = cols[j0 : j0 + lanes]
                    vec_idx = VectorRegister(idx_data)
                    if predicated:
                        vec_vals = engine.predicated_load(
                            val, offset + j0, lane_mask
                        )
                        vec_x = engine.predicated_gather(x, vec_idx, lane_mask)
                        acc[i] = engine.predicated_fmadd(
                            vec_vals, vec_x, acc[i], lane_mask
                        )
                    else:
                        vec_vals = engine.masked_load(
                            val, offset + j0, lane_mask
                        )
                        vec_x = engine.masked_gather(x, vec_idx, lane_mask)
                        acc[i] = engine.masked_fmadd(
                            vec_vals, vec_x, acc[i], lane_mask
                        )
                    counters.body_iterations += 1
                offset += k
        for i in range(nrows):
            engine.scalar_store(y, first + i, engine.reduce_add(acc[i]))


__all__ = ["spmv_beta"]
