"""ExecutionContext: one object owning how kernels run and are priced.

The paper's experiments are parameterized by a small bundle of execution
state — which processor and memory mode (Table 1, Figure 4), how many
ranks, which ISA the kernels were built for, whether alignment is strictly
enforced (Section 3.1), and the SELL ``C``/``sigma`` knobs (Sections 5.1
and 5.4).  Before this module that bundle was hand-threaded through every
``measure()``/``predict()`` call; the :class:`ExecutionContext` carries it
once and becomes the object callers hand around:

* ``ctx.measure(variant, csr)`` — run a kernel under the context's policy,
  memoized per (variant, configuration, matrix);
* ``ctx.predict(meas)`` — price a measurement on the context's machine;
* ``ctx.best_plan(csr)`` / ``ctx.best_variant(csr)`` / ``ctx.tune(csr)``
  — inspector-executor style format selection and parameter tuning over
  the full (format, sigma, block shape, ISA) knob space, memoized per
  sparsity signature (:func:`repro.mat.sparsity.signature`), so repeated
  solves on the same stencil never re-sweep;
* ``ctx.reformat(csr)`` — convert an assembled operator to the context's
  chosen format, the seam the solver stack (``ksp``) uses to retune
  operators per multigrid level.

Contexts are cheap to derive (:meth:`with_nprocs`, :meth:`with_model`)
and derived contexts share the measurement cache — engine measurements
depend only on the kernel and the matrix, never on the machine model.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..faults.abft import AbftChecker, SdcDetected, corrupt_product
from ..faults.events import emit as emit_fault_event
from ..faults.plan import CORRUPTION_KINDS
from ..faults.plan import fire as fire_fault
from ..machine.perf_model import (
    KernelPerformance,
    MemoryMode,
    PerfModel,
    make_model,
)
from ..machine.specs import KNL_7230, ProcessorSpec
from ..mat.aij import AijMat
from ..mat.base import BLOCK_SHAPE_FORMATS, Mat
from ..obs.observer import active_observer, obs_counter, obs_event
from ..simd.engine import AlignmentFault, SimdEngine
from ..simd.isa import Isa, get_isa
from ..simd.counters import KernelCounters
from ..simd.trace import TraceError
from .autotune import TuneResult, tune_sell
from .dispatch import ALL_VARIANTS, KernelVariant, get_variant
from .registry import SignatureRegistry
from .spmv import SpmvMeasurement
from .spmv import default_x as spmv_default_x
from .spmv import predict as _predict
from .traffic import traffic_for

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..mat.mpi_aij import MPIAij

#: Preference order when picking the widest ISA a machine supports.  SVE
#: sits beside AVX-512 (no modeled machine offers both, so the relative
#: order between them is never exercised); a spec naming "SVE" builds for
#: the predicate-register backend the way an x86 spec builds for masks.
_ISA_PREFERENCE = ("AVX512", "SVE", "AVX2", "AVX", "SSE2", "novec")


def _widest_isa(spec: ProcessorSpec) -> Isa:
    """The widest ISA in the spec's supported set (Table 1's build target)."""
    for name in _ISA_PREFERENCE:
        if name in spec.isa_names:
            return get_isa(name)
    raise ValueError(f"{spec.name} supports none of the modeled ISAs")


@dataclass(frozen=True)
class FormatPlan:
    """An autotuned execution plan: the winning variant plus its knobs.

    What :meth:`ExecutionContext.best_plan` returns and
    :meth:`ExecutionContext.reformat` consumes.  Once the search space
    spans sorting scopes and block shapes, the variant alone is not a
    complete decision, so the plan carries every knob the winning
    measurement was taken at.  ``block_shape`` is ``None`` for formats
    outside :data:`repro.mat.base.BLOCK_SHAPE_FORMATS`.
    """

    variant: KernelVariant
    slice_height: int
    sigma: int
    block_shape: tuple[int, int] | None
    gflops: float


@dataclass
class ExecutionContext:
    """Execution policy + machine model + memoized tuning decisions.

    Parameters
    ----------
    model:
        The machine to price kernels on (processor spec + memory mode +
        overlap rule).  Defaults to the paper's primary platform: KNL 7230
        in flat-MCDRAM mode.
    nprocs:
        MPI ranks sharing the node.  Defaults to every core of the model's
        processor (the full-node configuration of Figures 8/9/11).
    isa:
        The ISA kernels are built for.  Defaults to the widest ISA the
        processor supports — the ``-march`` flag of the paper's builds.
    strict_alignment:
        When true, engines fault on misaligned aligned-ops
        (Section 3.1's behavior) instead of degrading them.
    slice_height / sigma:
        Default SELL ``C`` and sorting window for format conversions and
        measurements made through this context.
    block_shape:
        Default β(r,c) block dimensions for conversions to block-masked
        formats (:data:`repro.mat.base.BLOCK_SHAPE_FORMATS`).  Ignored —
        and normalized to ``None`` in every cache key — for all other
        formats, so SELL/CSR-family keys are unaffected by the knob.
    default_variant:
        When set (a variant or legend name), :meth:`reformat` uses it
        unconditionally; when ``None`` the autotuned
        :meth:`best_variant` decides.
    use_traces:
        When true (the default), each (variant, structure) pair records
        its instruction stream once and replays it for subsequent
        measurements — bit-identical results, 1-2 orders of magnitude
        faster (see ``docs/performance.md``).  Set false to force full
        interpreted execution on every call.
    use_megakernels:
        When true (the default), each compiled trace is further fused by
        the megakernel tier (:mod:`repro.simd.megakernel`) — whole-matrix
        sweeps instead of per-level dispatches, bit-identical ``y`` and
        counters — and solvers dispatch fused super-ops
        (:meth:`dispatch_superop`).  Traces the fuser cannot handle fall
        back to plain replay transparently (the ``None`` verdict is
        cached so unfusable structures are mined once).
    plan_cache_dir:
        When set (or via the ``REPRO_PLAN_CACHE`` environment variable),
        compiled traces and megakernel programs persist to an on-disk
        :class:`~repro.simd.plan_cache.PlanCache` rooted there, so a
        cold process with a warm store skips record+compile entirely
        (see ``docs/performance.md``).  Attached to the registry, hence
        shared by every derived view.
    abft / abft_rtol:
        When ``abft`` is true, every product run through the context is
        ABFT-verified (checksum cross-check, :mod:`repro.faults.abft`)
        and a detected corruption degrades down the recovery ladder:
        traced replay → interpreted kernel → scalar CSR reference.  Off
        by default — results are then bit-identical to a context without
        the feature.  Solvers attached to the context also inherit the
        toggle (their operators are wrapped in
        :class:`~repro.faults.abft.AbftOperator`).
    audit_interval:
        When positive, every ``audit_interval``-th replay of a cached
        trace is cross-checked bit-exactly against a fresh interpreted
        execution; a mismatch invalidates the cached trace and returns
        the interpreted result.  Zero (default) disables auditing.
    max_send_retries:
        Retransmission budget for a dropped simulated-MPI message before
        a send fails (``None`` → the communicator default,
        :data:`repro.comm.communicator.MAX_SEND_RETRIES`).  Layers that
        build :class:`~repro.comm.communicator.World` objects from a
        context (the serve executor, the elastic driver) thread it
        through.
    verify_variants:
        When true, the :meth:`best_variant` sweep statically verifies
        each candidate with :meth:`verify_variant` (the
        :mod:`repro.analysis` trace linter) and refuses any variant with
        findings — a kernel that lints dirty on this matrix never wins
        tuning, however fast the model prices it.  Off by default; the
        shipped kernels all verify clean, so enabling it only changes
        the outcome when a registered kernel is actually broken.
    """

    model: PerfModel = field(default_factory=lambda: make_model(KNL_7230))
    nprocs: int | None = None
    isa: Isa | None = None
    strict_alignment: bool = False
    slice_height: int = 8
    sigma: int = 1
    block_shape: tuple[int, int] = (2, 4)
    default_variant: KernelVariant | str | None = None
    use_traces: bool = True
    use_megakernels: bool = True
    plan_cache_dir: str | os.PathLike | None = None
    abft: bool = False
    abft_rtol: float = 1.0e-9
    audit_interval: int = 0
    verify_variants: bool = False
    max_send_retries: int | None = None

    #: Autotune sweeps actually executed (cache misses); tests assert this
    #: stays at one per sparsity signature across repeated solves.
    autotune_sweeps: int = field(default=0, repr=False, compare=False)

    #: The memoization store: every cache the context historically owned
    #: (measure/tune/best memos, the structure-keyed trace cache, prepared
    #: formats, default inputs, verifier verdicts) lives in this shared,
    #: concurrency-safe :class:`~repro.core.registry.SignatureRegistry`.
    #: A fresh context makes its own private registry (identical per-call
    #: behavior to the historical dicts); pass one registry to many
    #: contexts — or derive views with :meth:`view` — to share every
    #: recorded trace and tuning decision across them.
    registry: SignatureRegistry | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.registry is None:
            self.registry = SignatureRegistry()
        if self.plan_cache_dir is None:
            env = os.environ.get("REPRO_PLAN_CACHE")
            if env:
                self.plan_cache_dir = env
        if (
            self.plan_cache_dir is not None
            and self.registry.plan_cache is None
        ):
            from ..simd.plan_cache import PlanCache

            self.registry.attach_plan_cache(PlanCache(self.plan_cache_dir))
        if self.nprocs is None:
            self.nprocs = self.model.spec.cores
        if not 1 <= self.nprocs <= self.model.spec.cores:
            raise ValueError(
                f"nprocs {self.nprocs} out of range for "
                f"{self.model.spec.name} ({self.model.spec.cores} cores)"
            )
        if self.isa is None:
            self.isa = _widest_isa(self.model.spec)
        if isinstance(self.default_variant, str):
            self.default_variant = get_variant(self.default_variant)

    # -- derived state -------------------------------------------------
    @property
    def spec(self) -> ProcessorSpec:
        """The processor being modeled."""
        return self.model.spec

    @property
    def compiler_tier(self) -> str:
        """The deepest compiler tier this context dispatches through.

        One of ``"interpret"`` (traces off), ``"replay"`` (traced replay,
        megakernels off), ``"megakernel"`` (fused in-memory plans), or
        ``"persisted"`` (megakernels plus the on-disk plan cache).
        """
        if not self.use_traces:
            return "interpret"
        if not self.use_megakernels:
            return "replay"
        if self.registry is not None and self.registry.plan_cache is not None:
            return "persisted"
        return "megakernel"

    @property
    def memory_mode(self) -> MemoryMode:
        """The node memory configuration (flat-MCDRAM, cache, DDR, ...)."""
        return self.model.mode

    def supports(self, variant: KernelVariant) -> bool:
        """Whether this machine can run a kernel built for the variant's ISA."""
        return variant.isa.name in self.spec.isa_names

    def supported_variants(self) -> tuple[KernelVariant, ...]:
        """Registered variants this machine can run, in name order."""
        return tuple(
            ALL_VARIANTS[name]
            for name in sorted(ALL_VARIANTS)
            if self.supports(ALL_VARIANTS[name])
        )

    # -- engines and measurement ---------------------------------------
    def engine(self, isa: Isa | None = None) -> SimdEngine:
        """A fresh engine under this context's alignment policy."""
        return SimdEngine(
            isa if isa is not None else self.isa,
            strict_alignment=self.strict_alignment,
        )

    def _block_shape_for(
        self,
        variant: KernelVariant,
        block_shape: tuple[int, int] | None = None,
    ) -> tuple[int, int] | None:
        """The effective β block shape for a variant (``None`` off-format).

        Normalizing to ``None`` for formats without the knob keeps every
        SELL/CSR-family cache key identical to what it was before the
        knob existed.
        """
        if variant.fmt not in BLOCK_SHAPE_FORMATS:
            return None
        return self.block_shape if block_shape is None else block_shape

    def measure(
        self,
        variant: KernelVariant | str,
        csr: AijMat,
        x: np.ndarray | None = None,
        slice_height: int | None = None,
        sigma: int | None = None,
        block_shape: tuple[int, int] | None = None,
    ) -> SpmvMeasurement:
        """Run one variant's kernel on one matrix under this context.

        ``slice_height``/``sigma``/``block_shape`` default to the
        context's.  Calls with the default input vector are memoized —
        keyed by the variant, the configuration, and a value-inclusive
        matrix signature — so figure harnesses and repeated tuner sweeps
        share one engine execution.
        """
        if isinstance(variant, str):
            variant = get_variant(variant)
        c = self.slice_height if slice_height is None else slice_height
        s = self.sigma if sigma is None else sigma
        bs = self._block_shape_for(variant, block_shape)
        if x is not None:
            return self._measure_once(variant, csr, x, c, s, bs)
        key = SignatureRegistry.measure_key(
            variant.name, c, s, self.strict_alignment, csr, block_shape=bs
        )
        ran = []

        def factory() -> SpmvMeasurement:
            ran.append(True)
            return self._measure_once(variant, csr, None, c, s, bs)

        hit = self.registry.get_or_compute("measure", key, factory)
        if not ran:
            obs_counter("context.measure_cache_hits")
        return hit

    def _measure_once(
        self,
        variant: KernelVariant,
        csr: AijMat,
        x: np.ndarray | None,
        slice_height: int,
        sigma: int,
        block_shape: tuple[int, int] | None = None,
    ) -> SpmvMeasurement:
        mat = self._prepared(variant, csr, slice_height, sigma, block_shape)
        if x is None:
            x = self._default_x(csr.shape[1])
        with obs_event(f"Measure:{variant.name}"):
            y, counters = self._execute(
                variant, csr, mat, x, slice_height, sigma, block_shape
            )
        obs = active_observer()
        if obs is not None:
            obs.metrics.record_kernel_counters(counters, variant.name)
            obs.metrics.counter("context.measurements").inc()
        return SpmvMeasurement(
            variant=variant,
            mat=mat,
            y=y,
            counters=counters,
            traffic=traffic_for(mat),
        )

    def _prepared(
        self,
        variant: KernelVariant,
        csr: AijMat,
        slice_height: int,
        sigma: int,
        block_shape: tuple[int, int] | None = None,
    ) -> Mat:
        """Format conversion, memoized per (format, knobs, matrix values).

        Repeated measurements of one operator — tuner sweeps, figure
        harnesses iterating variants of one format — share a single
        conversion instead of re-running it per call.
        """
        return variant.prepare(
            csr, slice_height=slice_height, sigma=sigma,
            registry=self.registry, block_shape=block_shape,
        )

    def _default_x(self, n: int) -> np.ndarray:
        """The reproducible default input vector, built once per size."""
        return self.registry.get_or_compute(
            "default_x",
            SignatureRegistry.default_x_key(n),
            lambda: spmv_default_x(n),
        )

    def _execute(
        self,
        variant: KernelVariant,
        csr: AijMat,
        mat: Mat,
        x: np.ndarray,
        slice_height: int,
        sigma: int,
        block_shape: tuple[int, int] | None = None,
    ) -> tuple[np.ndarray, "KernelCounters"]:
        """Run one kernel down the graceful-degradation ladder.

        Rung 1 is the normal path (traced replay, or interpreted when
        traces are off); its output passes through the ``engine.output``
        fault-injection site and, with :attr:`abft` on, the checksum
        verification.  A detected corruption invalidates any cached trace
        and retries on rung 2 (fresh interpreted execution); if that also
        fails verification — or faults on alignment — rung 3 runs the
        trusted scalar CSR reference kernel, which is never injected.
        With ABFT off the ladder collapses to rung 1 exactly as before.
        """
        checker = AbftChecker(mat, rtol=self.abft_rtol) if self.abft else None
        try:
            if self.use_traces:
                y, counters = self._traced_run(
                    variant, csr, mat, x, slice_height, sigma, block_shape
                )
            else:
                y, counters = self._interpreted_run(variant, mat, x)
            spec = fire_fault("engine.output")
            if spec is not None and spec.kind in CORRUPTION_KINDS:
                corrupt_product(spec, y, x, checker, site="engine.output")
            if checker is not None:
                checker.verify(x, y, site="engine.output")
            return y, counters
        except SdcDetected:
            self._invalidate_trace(
                variant, csr, slice_height, sigma, block_shape
            )
        emit_fault_event(
            "degraded", "dispatch", "interpreted", detail=variant.name
        )
        with contextlib.suppress(SdcDetected, AlignmentFault):
            y, counters = self._interpreted_run(variant, mat, x)
            if checker is not None:
                checker.verify(x, y, site="engine.output")
            emit_fault_event(
                "recovered", "dispatch", "interpreted", detail=variant.name
            )
            return y, counters
        emit_fault_event(
            "degraded", "dispatch", "reference", detail=variant.name
        )
        reference = get_variant("CSR using novec")
        y, counters = reference.run(
            csr,
            x,
            strict_alignment=False,
            engine=SimdEngine(reference.isa, strict_alignment=False),
        )
        emit_fault_event(
            "recovered", "dispatch", "reference", detail=variant.name
        )
        return y, counters

    def _interpreted_run(
        self, variant: KernelVariant, mat: Mat, x: np.ndarray
    ) -> tuple[np.ndarray, "KernelCounters"]:
        return variant.run(
            mat,
            x,
            strict_alignment=self.strict_alignment,
            engine=self.engine(variant.isa),
        )

    def _trace_key(
        self,
        variant: KernelVariant,
        csr: AijMat,
        slice_height: int,
        sigma: int,
        block_shape: tuple[int, int] | None = None,
    ) -> tuple:
        return SignatureRegistry.trace_key(
            variant.name, slice_height, sigma, self.strict_alignment, csr,
            block_shape=block_shape,
        )

    def _invalidate_trace(
        self,
        variant: KernelVariant,
        csr: AijMat,
        slice_height: int,
        sigma: int,
        block_shape: tuple[int, int] | None = None,
    ) -> None:
        """Drop a cached trace (and its fused plan) that failed verification.

        Both the ``trace`` and ``mega`` entries go, in memory *and* on
        the attached plan cache (``registry.invalidate`` evicts the disk
        file for persisted namespaces) — a corrupted plan must never
        resurrect in a later process.
        """
        key = self._trace_key(variant, csr, slice_height, sigma, block_shape)
        removed = self.registry.invalidate("trace", key)
        removed = self.registry.invalidate("mega", key) or removed
        if removed:
            self.registry.clear_replay(key)
            emit_fault_event(
                "recovered", "trace.cache", "invalidated", detail=variant.name
            )

    def _traced_run(
        self,
        variant: KernelVariant,
        csr: AijMat,
        mat: Mat,
        x: np.ndarray,
        slice_height: int,
        sigma: int,
        block_shape: tuple[int, int] | None = None,
    ) -> tuple[np.ndarray, "KernelCounters"]:
        """Record-once/replay-many execution of one variant on one structure.

        The trace cache is keyed by the *structural* signature: the
        instruction stream is value-independent, so a reassembled operator
        (same stencil, new coefficients) replays the existing trace.  A
        kernel the trace layer cannot represent falls back to interpreted
        execution transparently.

        A cache hit is the ``trace.replay`` fault-injection site (a stale
        or corrupted cached trace); with :attr:`audit_interval` set, every
        Nth replay is additionally cross-checked bit-exactly against a
        fresh interpreted run, and a mismatch invalidates the trace and
        returns the interpreted result.
        """
        from .traced import acquire_trace

        key = self._trace_key(variant, csr, slice_height, sigma, block_shape)
        try:
            trace, recorded = acquire_trace(
                variant, self.registry, key, mat, x,
                strict_alignment=self.strict_alignment,
            )
        except TraceError:
            return self._interpreted_run(variant, mat, x)
        if recorded is not None:
            # This call was the single-flight leader: the recording run
            # doubles as the measurement, exactly as before.
            return recorded
        y, counters = self._replay_best_tier(variant, trace, key, mat, x)
        spec = fire_fault("trace.replay")
        if spec is not None and spec.kind in CORRUPTION_KINDS:
            checker = (
                AbftChecker(csr, rtol=self.abft_rtol) if self.abft else None
            )
            corrupt_product(spec, y, x, checker, site="trace.replay")
        if self.audit_interval > 0:
            count = self.registry.bump_replay(key)
            if count % self.audit_interval == 0:
                audited, audited_counters = self._interpreted_run(
                    variant, mat, x
                )
                if not np.array_equal(y, audited):
                    emit_fault_event(
                        "detected", "trace.audit", "mismatch",
                        detail=variant.name,
                    )
                    self.registry.invalidate("trace", key)
                    self.registry.invalidate("mega", key)
                    self.registry.clear_replay(key)
                    emit_fault_event(
                        "recovered", "trace.cache", "invalidated",
                        detail=variant.name,
                    )
                    return audited, audited_counters
        return y, counters

    def _replay_best_tier(
        self,
        variant: KernelVariant,
        trace,
        key: tuple,
        mat: Mat,
        x: np.ndarray,
    ) -> tuple[np.ndarray, "KernelCounters"]:
        """Replay through the deepest enabled compiler tier.

        With :attr:`use_megakernels` on, the trace's fused program is
        compiled at most once per structure (``mega`` namespace, persisted
        alongside the trace when a plan cache is attached; an unfusable
        trace caches a ``None`` verdict so it is mined exactly once) and
        replayed; any :class:`TraceError` from fusion or fused replay
        degrades to plain trace replay — same ``y``, same counters.
        """
        if self.use_megakernels:
            mega = self.registry.get_or_compute(
                "mega", key, lambda: self._compile_megakernel(trace)
            )
            if mega is not None:
                try:
                    return variant.replay(mega, mat, x)
                except TraceError:
                    obs_counter("context.megakernel_fallbacks")
        return variant.replay(trace, mat, x)

    @staticmethod
    def _compile_megakernel(trace):
        """Fuse one compiled trace; ``None`` is the unfusable verdict."""
        from ..simd.megakernel import compile_megakernel

        # The cold-start gate counts these alongside recordings: a warm
        # plan cache must satisfy the mega namespace without compiling.
        obs_counter("compiler.megakernel_compiles")
        try:
            return compile_megakernel(trace)
        except TraceError:
            return None

    # -- fused solver-level dispatch -----------------------------------
    def dispatch_superop(self, name: str, *args):
        """Run a registered fused solver-level op by name.

        Resolves through :func:`repro.core.dispatch.get_superop` and
        ticks a ``context.superops`` counter per dispatch.  Callers keep
        their own fallback: an unfusable operand combination raises
        :class:`TraceError` from the super-op itself.
        """
        from .dispatch import get_superop

        sop = get_superop(name)
        obs_counter("context.superops", labels={"name": name})
        return sop.fn(*args)

    def predict(
        self,
        measurement: SpmvMeasurement,
        scale: float = 1.0,
        working_set: int | None = None,
    ) -> KernelPerformance:
        """Price a measurement on this context's machine and rank count."""
        return _predict(
            measurement,
            self.model,
            nprocs=self.nprocs,
            scale=scale,
            working_set=working_set,
        )

    # -- static verification (the analyzer hook) -----------------------
    def verify_variant(self, variant: KernelVariant | str, csr: AijMat):
        """Statically verify ``variant`` on ``csr``; an ``AnalysisReport``.

        Records one execution under the context's execution policy
        (``slice_height``/``sigma``/``strict_alignment``) and runs the
        full :mod:`repro.analysis` lint over the trace — including the
        numerical certifier, so a kernel whose rounding error cannot be
        bounded (``NUM0xx``) fails verification and is refused by
        :meth:`best_variant` under ``verify_variants=True`` exactly like
        a dataflow defect.  Memoized per sparsity signature — like
        traces, the verdict depends on the sparsity structure, never the
        coefficient values.
        """
        from ..analysis.kernel import analyze_variant

        if isinstance(variant, str):
            variant = get_variant(variant)
        bs = self._block_shape_for(variant)
        key = SignatureRegistry.verify_key(
            variant.name, csr, self.slice_height, self.sigma,
            self.strict_alignment, block_shape=bs,
        )
        return self.registry.get_or_compute(
            "verify",
            key,
            lambda: analyze_variant(
                variant,
                csr,
                slice_height=self.slice_height,
                sigma=self.sigma,
                strict_alignment=self.strict_alignment,
                block_shape=bs,
            ),
        )

    def certify_variant(self, variant: KernelVariant | str, csr: AijMat):
        """The variant's rounding certificate on ``csr``'s structure.

        A :class:`repro.analysis.numlint.NumericalCertificate`: the
        per-row accumulation terms and the analytic worst-case rounding
        bound the kernel's recorded instruction stream implies.  Replay
        and megakernel tiers execute the recorded accumulation order
        bit-identically (the record/replay equivalence contract), so one
        certificate covers every compiler tier.  Memoized under the
        structure-only signature, like the trace it derives from.
        """
        from ..analysis.kernel import certify_variant

        if isinstance(variant, str):
            variant = get_variant(variant)
        bs = self._block_shape_for(variant)
        key = SignatureRegistry.certificate_key(
            variant.name, csr, self.slice_height, self.sigma,
            self.strict_alignment, block_shape=bs,
        )
        return self.registry.get_or_compute(
            "numcert",
            key,
            lambda: certify_variant(
                variant,
                csr,
                slice_height=self.slice_height,
                sigma=self.sigma,
                strict_alignment=self.strict_alignment,
                block_shape=bs,
            ),
        )

    # -- tuning (the inspector step, memoized) -------------------------
    def tune(
        self,
        csr: AijMat,
        slice_heights: tuple[int, ...] = (8, 16),
        sigmas: tuple[int, ...] = (1, 4, 16, 64),
        scale: float = 1.0,
    ) -> TuneResult:
        """SELL (C, sigma) sweep, memoized per sparsity signature.

        Instruction counts and padding are pure functions of the sparsity
        *structure*, so the structural signature is the exact cache key:
        reassembling the operator with new coefficients (every Newton step
        of the Gray-Scott runs) hits the cache.
        """
        key = SignatureRegistry.tune_key(
            csr, slice_heights, sigmas, scale, self._policy_key()
        )

        def sweep() -> TuneResult:
            self.autotune_sweeps += 1
            obs_counter("context.tune_sweeps")
            return tune_sell(
                csr,
                slice_heights=slice_heights,
                sigmas=sigmas,
                scale=scale,
                ctx=self,
            )

        return self.registry.get_or_compute("tune", key, sweep)

    def best_plan(
        self,
        csr: AijMat,
        candidates: tuple[KernelVariant, ...] | None = None,
        scale: float = 1.0,
        sigmas: tuple[int, ...] | None = None,
        block_shapes: tuple[tuple[int, int], ...] | None = None,
    ) -> FormatPlan:
        """The fastest (variant, sigma, block shape) plan for this matrix.

        The enlarged autotune sweep: every supported registered variant
        (or ``candidates``) crossed with the sorting scopes in ``sigmas``
        and — for block-masked formats only — the block shapes in
        ``block_shapes``.  Both knob sets default to the context's single
        configured value, which makes the default sweep exactly the
        historical per-variant sweep of :meth:`best_variant`.  The
        winning :class:`FormatPlan` is cached per sparsity signature
        *and* per knob space (the ``knobs`` leg of
        :meth:`~repro.core.registry.SignatureRegistry.best_key`), so a
        wider search never reuses a narrower search's verdict.  Variants
        whose conversion rejects the matrix (e.g. BAIJ on odd
        dimensions) are skipped, as is — when :attr:`verify_variants` is
        set — any variant the static analyzer finds defects in.
        """
        pool = self.supported_variants() if candidates is None else candidates
        sigma_set = (self.sigma,) if sigmas is None else tuple(sigmas)
        shape_set = (
            (self.block_shape,)
            if block_shapes is None
            else tuple(block_shapes)
        )
        key = SignatureRegistry.best_key(
            csr, tuple(v.name for v in pool), scale, self.verify_variants,
            self._policy_key(),
            knobs=(self.slice_height, sigma_set, shape_set),
        )
        ran = []

        def sweep() -> FormatPlan:
            ran.append(True)
            self.autotune_sweeps += 1
            obs_counter("context.autotune_sweeps")
            best: FormatPlan | None = None
            for variant in pool:
                shapes: tuple[tuple[int, int] | None, ...] = (
                    shape_set
                    if variant.fmt in BLOCK_SHAPE_FORMATS
                    else (None,)
                )
                for sigma in sigma_set:
                    for shape in shapes:
                        try:
                            meas = self.measure(
                                variant, csr, sigma=sigma, block_shape=shape
                            )
                        except (ValueError, NotImplementedError):
                            continue  # format constraint (block size, masks)
                        if (
                            self.verify_variants
                            and not self.verify_variant(variant, csr).ok
                        ):
                            continue  # statically defective; refuse
                        perf = self.predict(meas, scale=scale)
                        if best is None or perf.gflops > best.gflops:
                            best = FormatPlan(
                                variant=variant,
                                slice_height=self.slice_height,
                                sigma=sigma,
                                block_shape=self._block_shape_for(
                                    variant, shape
                                ),
                                gflops=perf.gflops,
                            )
            if best is None:
                raise ValueError("no registered variant accepts this matrix")
            return best

        plan = self.registry.get_or_compute("best", key, sweep)
        if not ran:
            obs_counter("context.autotune_cache_hits")
        return plan

    def best_variant(
        self,
        csr: AijMat,
        candidates: tuple[KernelVariant, ...] | None = None,
        scale: float = 1.0,
    ) -> KernelVariant:
        """The fastest registered variant for this matrix on this machine.

        A thin wrapper over :meth:`best_plan` at the context's own knobs
        — the historical entry point, returning just the winning variant.
        The memoization keeps repeated solver iterations from ever
        re-running the sweep.
        """
        return self.best_plan(csr, candidates=candidates, scale=scale).variant

    # -- format conversion (the executor step) -------------------------
    def resolve_variant(self, csr: AijMat) -> KernelVariant:
        """The variant :meth:`reformat` would use: default or autotuned."""
        if self.default_variant is not None:
            return self.default_variant  # type: ignore[return-value]
        return self.best_variant(csr)

    def reformat(self, csr: AijMat) -> Mat:
        """Convert an assembled CSR operator to this context's format.

        With a :attr:`default_variant` set, its converter runs with the
        context's ``C``/``sigma``/``block_shape``; with none, both the
        variant *and* the knobs come from the memoized
        :meth:`best_plan`.  The conversion itself is memoized in the
        registry's ``prepare`` namespace, so repeated solver setups on
        an unchanged operator share one converted matrix.
        """
        if self.default_variant is not None:
            variant = self.default_variant
            return self._prepared(
                variant, csr, self.slice_height, self.sigma,
                self._block_shape_for(variant),  # type: ignore[arg-type]
            )
        plan = self.best_plan(csr)
        return self._prepared(
            plan.variant, csr, plan.slice_height, plan.sigma,
            plan.block_shape,
        )

    # -- serving (multi-vector products over the shared registry) -------
    def spmm(self, csr: AijMat, xs: np.ndarray) -> np.ndarray:
        """One multi-vector product pass ``Y = A @ [x1 ... xk]``.

        The serving path of :mod:`repro.serve`: resolves the operator's
        variant through the registry-memoized tuning decision, reuses the
        memoized format conversion, and runs a *single* SpMM pass over
        the prepared operator (:meth:`repro.mat.base.Mat.multiply_multi`).
        Column ``j`` of the result is bit-identical whether the request
        was served alone or batched with any other same-operator
        requests — the batch-size-invariance the request batcher relies
        on.  ``xs`` is ``(n, k)``; a 1-D input is treated as ``k = 1``.
        """
        xs = np.asarray(xs, dtype=np.float64)
        if xs.ndim == 1:
            xs = xs[:, None]
        variant = self.resolve_variant(csr)
        prepared = self._prepared(
            variant, csr, self.slice_height, self.sigma,
            self._block_shape_for(variant),
        )
        with obs_event(f"SpMM:{variant.name}"):
            return prepared.multiply_multi(xs)

    def spmv(self, csr: AijMat, x: np.ndarray) -> np.ndarray:
        """One serving-path product ``y = A @ x`` (a width-1 :meth:`spmm`)."""
        return self.spmm(csr, x)[:, 0]

    def reformat_parallel(self, op: "MPIAij") -> "MPIAij":
        """MatConvert for distributed operators (MPIAIJ -> MPISELL).

        Chooses on the rank-local diagonal block (the part the
        instruction-level kernels run on); non-SELL choices keep the
        operator as is — the distributed layer only implements the
        AIJ and SELL diagonal blocks, like PETSc's ``-dm_mat_type``.
        """
        from ..mat.mpi_sell import MPISell

        if isinstance(op, MPISell):
            return op
        variant = (
            self.default_variant
            if self.default_variant is not None
            else self.best_variant(op.diag.to_csr())
        )
        if variant.fmt == "SELL":  # type: ignore[union-attr]
            return MPISell.from_mpiaij(
                op, slice_height=self.slice_height, sigma=self.sigma
            )
        return op

    # -- observability -------------------------------------------------
    @contextlib.contextmanager
    def observe(self, observer=None):
        """Install an observer for the block; measure/tune record into it.

        Yields the active :class:`~repro.obs.observer.Observer` (a fresh
        one unless passed in).  While installed, every measurement made
        through this context snapshots its kernel counters into the
        observer's metrics registry (``simd.*`` labeled by variant),
        cache hits and autotune sweeps tick ``context.*`` counters, and
        kernel executions appear as ``Measure:<variant>`` events in the
        staged log and trace — all passively, with zero effect on the
        measured results::

            with ctx.observe() as obs:
                ctx.measure(variant, csr)
            print(obs.log().render())
        """
        from ..obs.observer import observing

        with observing(observer) as obs:
            yield obs

    # -- derivation ----------------------------------------------------
    def _policy_key(self) -> tuple:
        """What distinguishes this context's *pricing* in shared caches.

        Engine measurements, traces, and prepared formats depend only on
        the kernel and the matrix; tune results and autotune winners also
        depend on the machine being priced.  Their registry keys carry
        this tuple so context views at different rank counts or on
        different machines coexist in one shared registry.
        """
        return (self.spec.name, self.memory_mode.value, self.nprocs)

    def view(self) -> "ExecutionContext":
        """A cheap same-policy view sharing this context's registry.

        Views are what a multi-tenant server hands each shard: identical
        execution policy, every cache shared, but independent
        :attr:`autotune_sweeps` accounting.
        """
        return self._derive(model=self.model, nprocs=self.nprocs)

    def with_nprocs(self, nprocs: int) -> "ExecutionContext":
        """Same machine and policy at a different rank count.

        Shares the registry; machine-independent entries (measurements,
        traces, prepared formats) are reused directly, while tune/best
        entries are policy-keyed, so the re-priced rank count sweeps
        fresh without disturbing the original's decisions.
        """
        return self._derive(model=self.model, nprocs=nprocs)

    def with_model(
        self, model: PerfModel, nprocs: int | None = None
    ) -> "ExecutionContext":
        """Same policy on a different machine (ISA re-derived from it)."""
        return self._derive(model=model, nprocs=nprocs)

    def _derive(
        self, model: PerfModel, nprocs: int | None
    ) -> "ExecutionContext":
        # Shared by design: the registry's machine-independent namespaces
        # (measure/trace/prepare/default_x) serve every view, and the
        # policy-keyed namespaces (tune/best) partition by machine+ranks.
        return ExecutionContext(
            model=model,
            nprocs=nprocs,
            isa=None if model is not self.model else self.isa,
            strict_alignment=self.strict_alignment,
            slice_height=self.slice_height,
            sigma=self.sigma,
            block_shape=self.block_shape,
            default_variant=self.default_variant,
            use_traces=self.use_traces,
            use_megakernels=self.use_megakernels,
            plan_cache_dir=self.plan_cache_dir,
            abft=self.abft,
            abft_rtol=self.abft_rtol,
            audit_interval=self.audit_interval,
            verify_variants=self.verify_variants,
            max_send_retries=self.max_send_retries,
            registry=self.registry,
        )
