"""Vector-length-agnostic SELL SpMV for ARM SVE (Algorithm 2, predicated).

The AVX-512 kernel of :mod:`repro.core.kernels_sell` bakes the register
width into its control flow: slices must divide evenly into ``C / lanes``
accumulator strips, tails are handled by a separately materialized mask.
SVE inverts that contract — the *same* kernel must run at any hardware
vector length (128–2048 bits), so the loop structure may depend only on
logical extents and every memory or arithmetic op is governed by a
``whilelt`` predicate computed from (position, bound).  That is exactly
how this kernel is written:

* the strip loop advances by ``engine.lanes`` but its predicate is
  ``whilelt(strip, C)``, so a slice height that is *not* a multiple of
  the vector length simply yields a final partial strip — no remainder
  loop, no ISA-specific mask construction;
* nothing about the *trace structure* encodes the lane count beyond the
  width of the recorded registers themselves, which is what lets the
  bit-identity panel replay the same variant at ``vector_bits`` in
  {128, 256, 512} (see ``tests/core/test_format_frontier.py``).

Cross-VL the *output* is even bit-identical: each logical row owns one
accumulator lane and its products are added in storage order regardless
of how many rows share a register.
"""

from __future__ import annotations

import numpy as np

from ..simd.engine import SimdEngine
from ..simd.register import VectorRegister
from .sell import SellMat


def _store_rows_sve(
    engine: SimdEngine,
    sell: SellMat,
    y: np.ndarray,
    first_storage_row: int,
    acc: VectorRegister,
) -> None:
    """Store one predicated strip into y, honouring permutation and edges.

    The store predicate covers the lanes that are simultaneously inside
    the slice (a partial strip when C % lanes != 0) and inside the
    logical matrix (the trailing partial slice).  Sorted matrices scatter
    through the permutation with scalar stores, exactly like the AVX-512
    kernel — the locality cost of sorting is ISA-independent.
    """
    m = sell.shape[0]
    c = sell.slice_height
    strip = first_storage_row % c
    active = min(engine.lanes, c - strip, m - first_storage_row)
    if active <= 0:
        return
    if sell.perm is not None:
        for lane in range(active):
            row = int(sell.perm[first_storage_row + lane])
            engine.scalar_store(y, row, engine.extract_lane(acc, lane))
        return
    engine.predicated_store(y, first_storage_row, acc, engine.whilelt(0, active))


def spmv_sell_sve(
    engine: SimdEngine, sell: SellMat, x: np.ndarray, y: np.ndarray
) -> None:
    """Predicated, VL-agnostic SpMV over the sliced-ELLPACK layout."""
    engine.isa.require("predicates")
    lanes = engine.lanes
    c = sell.slice_height
    val, colidx = sell.val, sell.colidx
    counters = engine.counters
    for s in range(sell.nslices):
        base = int(sell.sliceptr[s])
        end = int(sell.sliceptr[s + 1])
        width = (end - base) // c
        if end < val.shape[0]:
            engine.prefetch(val, end)
        for strip in range(0, c, lanes):
            pred = engine.whilelt(strip, c)
            acc = engine.setzero()
            idx = base + strip
            for _ in range(width):
                vec_vals = engine.predicated_load(val, idx, pred)
                vec_idx = engine.predicated_load_index(colidx, idx, pred)
                vec_x = engine.predicated_gather(x, vec_idx, pred)
                acc = engine.predicated_fmadd(vec_vals, vec_x, acc, pred)
                idx += c
                counters.body_iterations += 1
            _store_rows_sve(engine, sell, y, s * c + strip, acc)
    # Predicates trim strips to the slice height, not to the row lengths:
    # padded slots inside covered rows are still multiplied, exactly as
    # on AVX-512, and are reported so Gflop/s counts useful work only.
    counters.padded_flops += 2 * sell.padded_entries


__all__ = ["spmv_sell_sve"]
