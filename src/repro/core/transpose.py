"""Transpose SpMV (MatMultTranspose) for CSR and SELL.

PETSc's MATSELL grew ``MatMultTranspose`` support shortly after the paper;
this module supplies both layers for it:

* fast paths: :func:`csr_multiply_transpose` and
  :func:`sell_multiply_transpose` compute ``y = A^T x`` *in the stored
  layout* — no transposed copy is materialized, matching how PETSc applies
  transposes inside (bi)conjugate-gradient-type methods and adjoint solves
  (the paper's own test problem ships as an adjoint example, ex5adj);
* instruction-level kernels: :func:`spmv_csr_transpose` and
  :func:`spmv_sell_transpose`, which invert Algorithm 1/2's memory
  behaviour — the matrix is still read contiguously, but the *output*
  vector is now the indirectly-accessed side, turning every gather into an
  AVX-512 scatter-accumulate.  On narrower ISAs (no scatter until AVX-512)
  the accumulation falls back to scalar stores, which is why transpose
  products vectorize even worse than forward ones — worth having on the
  record given the adjoint context.
"""

from __future__ import annotations

import numpy as np

from ..mat.aij import AijMat
from ..simd.engine import SimdEngine
from .sell import SellMat


# ---------------------------------------------------------------------------
# Fast paths.
# ---------------------------------------------------------------------------

def csr_multiply_transpose(
    a: AijMat, x: np.ndarray, y: np.ndarray | None = None
) -> np.ndarray:
    """y = A^T x over the CSR layout (row-wise scatter-accumulate)."""
    m, n = a.shape
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (m,):
        raise ValueError(f"input vector of length {x.shape[0]} != rows {m}")
    if y is None:
        y = np.zeros(n, dtype=np.float64)
    elif y.shape != (n,):
        raise ValueError(f"output vector of length {y.shape[0]} != cols {n}")
    else:
        y[:] = 0.0
    if a.nnz:
        rows = np.repeat(np.arange(m, dtype=np.int64), a.row_lengths())
        np.add.at(y, a.colidx, a.val * x[rows])
    return y


def sell_multiply_transpose(
    sell: SellMat, x: np.ndarray, y: np.ndarray | None = None
) -> np.ndarray:
    """y = A^T x over the SELL layout.

    Each stored slot contributes ``val * x[row]`` to ``y[col]``; the
    per-slot output row map built for the forward product provides the
    ``x`` indices, and padding contributes zero by construction.
    """
    m, n = sell.shape
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (m,):
        raise ValueError(f"input vector of length {x.shape[0]} != rows {m}")
    if y is None:
        y = np.zeros(n, dtype=np.float64)
    elif y.shape != (n,):
        raise ValueError(f"output vector of length {y.shape[0]} != cols {n}")
    else:
        y[:] = 0.0
    if sell.val.shape[0]:
        contributions = sell.val * x[sell.row_map]
        y += np.bincount(sell.colidx, weights=contributions, minlength=n)[:n]
    return y


# ---------------------------------------------------------------------------
# Instruction-level kernels.
# ---------------------------------------------------------------------------

def spmv_csr_transpose(
    engine: SimdEngine, a: AijMat, x: np.ndarray, y: np.ndarray
) -> None:
    """Transpose Algorithm 1: broadcast x[row], scatter into y.

    Per row: the row's values load contiguously, get scaled by the
    broadcast ``x[row]``, and scatter-accumulate through the column
    indices — a hardware scatter on AVX-512, scalar read-modify-writes
    elsewhere.
    """
    m, _ = a.shape
    y[:] = 0.0
    rowptr, colidx, val = a.rowptr, a.colidx, a.val
    c = engine.counters
    lanes = engine.lanes
    use_scatter = engine.isa.has_masks
    for row in range(m):
        start, end = int(rowptr[row]), int(rowptr[row + 1])
        if start == end:
            continue
        xi = engine.scalar_load(x, row)
        xv = engine.set1(xi) if engine.isa.is_vector else None
        idx = start
        body_end = start + ((end - start) // lanes) * lanes
        while idx < body_end and engine.isa.is_vector:
            vec_vals = engine.load(val, idx)
            vec_idx = engine.load_index(colidx, idx)
            scaled = engine.mul(vec_vals, xv)
            if use_scatter:
                engine.scatter_add(y, vec_idx, scaled)
            else:
                for lane in range(lanes):
                    col = int(vec_idx.data[lane])
                    prev = engine.scalar_load_indep(y, col)
                    engine.scalar_store(y, col, prev + float(scaled.data[lane]))
            idx += lanes
            c.body_iterations += 1
        for k in range(idx, end):
            v = engine.scalar_load_indep(val, k)
            col = int(engine.scalar_load_indep(colidx, k))
            prev = engine.scalar_load_indep(y, col)
            engine.scalar_store(y, col, prev + v * xi)
            c.flops += 2
        c.remainder_iterations += end - idx


def spmv_sell_transpose(
    engine: SimdEngine, sell: SellMat, x: np.ndarray, y: np.ndarray
) -> None:
    """Transpose Algorithm 2: gather x by output row, scatter into y.

    Per slice column: values and column indices load contiguously and
    aligned exactly as in the forward kernel; the C input values gather
    through the slice's row map, and the products scatter through the
    column indices.  Requires AVX-512 lanes to use the hardware scatter;
    degrades to scalar accumulation otherwise.
    """
    m, n = sell.shape
    y[:] = 0.0
    if not engine.isa.is_vector:
        # Scalar traversal of the layout.
        c = sell.slice_height
        for s in range(sell.nslices):
            base, end = int(sell.sliceptr[s]), int(sell.sliceptr[s + 1])
            for slot in range(base, end):
                lane = (slot - base) % c
                k = s * c + lane
                if k >= m:
                    continue
                row = sell.storage_row(k)
                v = engine.scalar_load(sell.val, slot)
                col = int(engine.scalar_load(sell.colidx, slot))
                xv = engine.scalar_load(x, row)
                prev = engine.scalar_load(y, col)
                engine.scalar_store(y, col, engine.scalar_fma(v, xv, prev))
        return
    c = sell.slice_height
    lanes = engine.lanes
    if c % lanes:
        raise ValueError(
            f"slice height {c} must be a multiple of the vector length {lanes}"
        )
    counters = engine.counters
    use_scatter = engine.isa.has_masks
    row_map = sell.row_map
    for s in range(sell.nslices):
        base = int(sell.sliceptr[s])
        end = int(sell.sliceptr[s + 1])
        width = (end - base) // c
        for strip in range(0, c, lanes):
            idx = base + strip
            # The strip's x values are fixed across the slice: gather once.
            from ..simd.register import VectorRegister

            row_idx = VectorRegister(row_map[idx : idx + lanes].copy())
            vec_x = engine.gather_auto(x, row_idx)
            for _ in range(width):
                vec_vals = engine.load_aligned(sell.val, idx)
                vec_idx = engine.load_index(sell.colidx, idx)
                scaled = engine.mul(vec_vals, vec_x)
                if use_scatter:
                    engine.scatter_add(y, vec_idx, scaled)
                else:
                    for lane in range(lanes):
                        col = int(vec_idx.data[lane])
                        prev = engine.scalar_load_indep(y, col)
                        engine.scalar_store(
                            y, col, prev + float(scaled.data[lane])
                        )
                idx += c
                counters.body_iterations += 1
    counters.padded_flops += 2 * sell.padded_entries
