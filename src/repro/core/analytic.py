"""Closed-form instruction-count predictions for the SpMV kernels.

The engine *measures* a kernel's instruction mix by executing it; this
module *predicts* the same counts from the sparsity structure alone —
pure arithmetic over the row-length distribution, no kernel execution.
Uses:

* cross-validation: tests assert the predictions match the engine's
  measured counters exactly, which pins down both the kernels (no stray
  instructions) and the model (no missing terms);
* scalability: predictions cost O(distinct row lengths), so paper-scale
  matrices can be priced without ever running a kernel — the analytic
  backbone behind the counter-scaling argument of Section 7.1.

Predictions cover the two formats the paper centers on: the maskless SELL
kernel (Algorithm 2) and the hand-vectorized CSR kernel (Algorithm 1 with
fully masked tails, the calibrated configuration).
"""

from __future__ import annotations

from ..mat.aij import AijMat
from ..simd.counters import KernelCounters
from ..simd.isa import Isa
from .sell import SellMat


def predict_sell_counters(sell: SellMat, isa: Isa) -> KernelCounters:
    """Exact counters of :func:`repro.core.kernels_sell.spmv_sell`.

    Derivation, per slice ``s`` of width ``W_s`` with ``C`` rows and
    ``S = C / lanes`` accumulator strips:

    * inner iterations: ``W_s * S`` — each does one aligned value load,
      one index load, one gather (hardware or emulated), one FMA (or
      mul+add on AVX);
    * per strip: one accumulator zero and one store (aligned vector store
      except in the trailing partial slice, where AVX-512 masks it and
      narrower ISAs scalarize);
    * one prefetch per slice whose end is not the end of the value array
      (i.e. all but the last non-degenerate slice).
    """
    if not isa.is_vector:
        raise ValueError("the scalar kernel has its own trivial model")
    c = sell.slice_height
    lanes = isa.lanes(8)
    if c % lanes:
        raise ValueError("slice height must be a multiple of the lane count")
    strips = c // lanes
    m, n = sell.shape
    out = KernelCounters()

    total_slots = int(sell.sliceptr[-1])
    inner = total_slots // lanes  # = sum_s W_s * strips
    out.body_iterations = inner
    out.vector_load = 2 * inner            # values + indices
    out.bytes_loaded = inner * lanes * (8 + 4)
    if isa.has_gather:
        out.vector_gather = inner
        out.gather_lanes = inner * lanes
    else:
        out.emulated_gather_lanes = inner * lanes
        out.vector_insert = inner * (lanes // 2 + lanes // 4)
    out.bytes_loaded += inner * lanes * 8   # gathered x values
    if isa.has_fma:
        out.vector_fmadd = inner
        out.flops = 2 * inner * lanes
    else:
        out.vector_mul = inner
        out.vector_add = inner
        out.flops = 2 * inner * lanes

    nslices = sell.nslices
    out.vector_set = nslices * strips       # setzero per strip
    # The kernel prefetches past each slice only while data remains —
    # zero-width trailing slices (all-empty rows) issue none.
    out.prefetch = sum(
        1 for sidx in range(nslices) if int(sell.sliceptr[sidx + 1]) < total_slots
    )

    # Stores: full strips store one aligned vector; the trailing partial
    # slice's strips mask (AVX-512) or scalarize.
    trailing = m % c
    full_strip_stores = nslices * strips
    masked_strip_stores = 0
    scalar_stores = 0
    if trailing and nslices:
        # Strips overlapping the tail: lanes beyond m are inactive.
        tail_strips = strips - trailing // lanes
        partial = 1 if trailing % lanes else 0
        dead_strips = tail_strips - partial
        full_strip_stores -= tail_strips
        if isa.has_masks:
            masked_strip_stores = partial
            active = trailing % lanes
            out.mask_setup += partial
            out.masked_ops += partial
            out.bytes_stored += partial * active * 8
        else:
            scalar_stores = trailing % lanes
            out.scalar_store += scalar_stores
            out.bytes_stored += scalar_stores * 8
        del dead_strips
    if sell.perm is not None:
        # Sorted matrices scatter every row with scalar stores instead.
        out.vector_store = 0
        out.scalar_store = m
        out.bytes_stored = m * 8
        out.vector_load_aligned = inner  # value loads still aligned
        out.padded_flops = 2 * sell.padded_entries
        return out
    out.vector_store = full_strip_stores + masked_strip_stores
    out.bytes_stored += full_strip_stores * lanes * 8
    out.vector_load_aligned = inner
    out.padded_flops = 2 * sell.padded_entries
    return out


def predict_csr_counters(csr: AijMat, isa: Isa) -> KernelCounters:
    """Exact counters of the hand CSR kernel (Algorithm 1, masked tails).

    Per row of length ``L`` with ``lanes``-wide registers:
    ``floor(L / lanes)`` body iterations (two loads, one gather, one FMA
    each), one accumulator zero and one horizontal reduce, then — when a
    tail remains — on AVX-512 a mask set-up, two masked loads, a masked
    gather, a masked FMA onto a freshly zeroed register, and a second
    reduce; finally one scalar store.  (Narrower ISAs scalarize the tail;
    only the masked configuration is modeled here.)
    """
    if not (isa.is_vector and isa.has_masks):
        raise ValueError("modeled for the masked (AVX-512) configuration")
    lanes = isa.lanes(8)
    lengths = csr.row_lengths()
    m = lengths.shape[0]
    body = lengths // lanes
    rem = lengths - body * lanes
    n_body = int(body.sum())
    tails = int((rem > 0).sum())
    total_rem = int(rem.sum())

    out = KernelCounters()
    out.body_iterations = n_body
    out.vector_load = 2 * n_body + 2 * tails          # masked loads count too
    out.vector_gather = n_body + tails
    out.gather_lanes = n_body * lanes + total_rem
    out.vector_fmadd = n_body + tails
    out.vector_set = m + tails  # acc zero + a fresh zero per tail FMA
    out.vector_reduce = m + tails
    out.mask_setup = tails
    out.masked_ops = 4 * tails  # two loads, gather, fmadd
    out.scalar_store = m
    out.flops = (
        2 * n_body * lanes          # body FMAs
        + 2 * total_rem             # masked FMAs (active lanes)
    )
    out.reduction_flops = (m + tails) * (lanes - 1)  # horizontal reductions
    out.bytes_loaded = (
        n_body * lanes * (8 + 4 + 8)  # values + indices + gathered x
        + tails * 0
        + total_rem * (8 + 4 + 8)     # masked: active lanes only
    )
    out.bytes_stored = m * 8
    return out


def counters_match(
    predicted: KernelCounters, measured: KernelCounters
) -> list[str]:
    """Field names where prediction and measurement disagree (empty = exact)."""
    from dataclasses import fields

    return [
        f.name
        for f in fields(KernelCounters)
        if getattr(predicted, f.name) != getattr(measured, f.name)
    ]
