"""The analytic minimum-memory-traffic model of paper Section 6.

SpMV is memory-bandwidth bound, so the paper compares kernels by the least
traffic each format *must* move, assuming 8-byte floats and 4-byte column
indices, for an m x n matrix with nnz nonzeros:

* **CSR**: ``12 nnz + 24 m + 8 n`` bytes — values + indices (12/nnz), the
  output vector (8 m), the row-pointer arrays of the diagonal *and*
  off-diagonal blocks (8 m each, 16 m total), and the input vector (8 n),
  counting each input element once (no redundancy);
* **SELL**: ``12 nnz + 10 m + 8 n`` bytes — the row pointers are replaced
  by slice pointers, one 8-byte entry per C=8 rows per block (2 m/8 = m/4
  bytes ~ rounded as 2 m in the paper's accounting together with the
  output), giving 8 m (y) + 2 m (slice pointers of both blocks).

Padded zeros are deliberately *excluded* (the paper: "extra memory
overhead contributed by padded zeros are not counted in order to eliminate
artifacts...") — padding-inclusive numbers are available separately for
the ablation studies.

The arithmetic intensity this model yields for the Gray-Scott matrices
(10 nonzeros/row, square) is 20/152 ~ 0.132 flop/byte for CSR — the exact
figure quoted with Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mat.base import Mat
from .beta import BetaMat
from .sell import SellMat

FLOAT_BYTES = 8
INDEX_BYTES = 4


@dataclass(frozen=True)
class TrafficEstimate:
    """Minimum bytes moved by one SpMV, split by contribution."""

    matrix_bytes: int     #: values + column indices
    row_meta_bytes: int   #: row pointers (CSR) or slice pointers (SELL)
    vector_bytes: int     #: input (8n) + output (8m)
    flops: int            #: useful flops, 2 per nonzero

    @property
    def total_bytes(self) -> int:
        """All traffic, the Section 6 quantity."""
        return self.matrix_bytes + self.row_meta_bytes + self.vector_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte — the roofline x-coordinate."""
        return self.flops / self.total_bytes if self.total_bytes else 0.0


def csr_traffic(
    m: int, n: int, nnz: int, index_bytes: int = INDEX_BYTES
) -> TrafficEstimate:
    """Section 6 CSR model: 12 nnz + 24 m + 8 n bytes (32-bit indices).

    ``index_bytes=8`` models a 64-bit-index PETSc build — needed once the
    global dimension approaches 2^31, which is why the paper caps its
    multinode grid at 16384^2 ("close to the largest case that does not
    require 64-bit integers for indexing"): the column-index traffic grows
    to 16 bytes/nnz.
    """
    _validate(m, n, nnz)
    return TrafficEstimate(
        matrix_bytes=(FLOAT_BYTES + index_bytes) * nnz,
        row_meta_bytes=16 * m,  # 8m per block's rowptr, diag + off-diag blocks
        vector_bytes=8 * m + 8 * n,
        flops=2 * nnz,
    )


def sell_traffic(
    m: int,
    n: int,
    nnz: int,
    slice_height: int = 8,
    index_bytes: int = INDEX_BYTES,
) -> TrafficEstimate:
    """Section 6 SELL model: 12 nnz + 10 m + 8 n bytes (32-bit indices).

    The 10 m splits as 8 m for the output vector and 2 m for the slice
    pointers of the diagonal and off-diagonal blocks (the paper counts
    m/8 integer values per block at 8 bytes each, i.e. m per block).
    ``index_bytes=8`` models a 64-bit-index build, as for
    :func:`csr_traffic`.
    """
    _validate(m, n, nnz)
    del slice_height  # the paper's accounting fixes C = 8
    return TrafficEstimate(
        matrix_bytes=(FLOAT_BYTES + index_bytes) * nnz,
        row_meta_bytes=2 * m,
        vector_bytes=8 * m + 8 * n,
        flops=2 * nnz,
    )


def beta_traffic(
    m: int,
    n: int,
    nnz: int,
    nblocks: int,
    nbands: int,
    index_bytes: int = INDEX_BYTES,
) -> TrafficEstimate:
    """β(r,c) model: ``8 nnz + 12 nblocks + 8 (nbands+1) + 8 m + 8 n``.

    The format stores exactly ``nnz`` values — no padding exists to
    stream, the Bramas & Kus argument in traffic terms — plus one
    12-byte descriptor per block (the 64-bit presence mask and the
    32-bit anchor column).  Row pointers are replaced by the per-band
    block pointer, one 8-byte entry per ``r`` rows.  Whether this beats
    SELL's ``12 nnz`` depends entirely on how many nonzeros each block
    captures: below ~3 nonzeros per block the descriptors cost more
    than the column indices they replace.
    """
    _validate(m, n, nnz)
    return TrafficEstimate(
        matrix_bytes=FLOAT_BYTES * nnz + (8 + index_bytes) * nblocks,
        row_meta_bytes=8 * (nbands + 1),
        vector_bytes=8 * m + 8 * n,
        flops=2 * nnz,
    )


def _validate(m: int, n: int, nnz: int) -> None:
    if m < 0 or n < 0 or nnz < 0:
        raise ValueError("matrix dimensions and nnz must be non-negative")


def traffic_for(mat: Mat, include_padding: bool = False) -> TrafficEstimate:
    """Traffic estimate for a concrete matrix object.

    ``include_padding`` adds the padded slots of a SELL matrix to the
    matrix traffic (what the hardware actually streams), for the ablation
    benchmarks; the default matches the paper's padding-free accounting.
    """
    m, n = mat.shape
    nnz = mat.nnz
    if isinstance(mat, BetaMat):
        # No padding exists in the format, so ``include_padding`` is a
        # no-op by construction.
        return beta_traffic(m, n, nnz, mat.nblocks, mat.nbands)
    if isinstance(mat, SellMat):
        est = sell_traffic(m, n, nnz, mat.slice_height)
        if include_padding:
            extra = (FLOAT_BYTES + INDEX_BYTES) * mat.padded_entries
            est = TrafficEstimate(
                matrix_bytes=est.matrix_bytes + extra,
                row_meta_bytes=est.row_meta_bytes,
                vector_bytes=est.vector_bytes,
                flops=est.flops,
            )
        return est
    return csr_traffic(m, n, nnz)


def gray_scott_intensity(fmt: str = "CSR") -> float:
    """Arithmetic intensity of the Gray-Scott operator (10 nnz/row, square).

    Returns the per-row closed form; ``"CSR"`` gives the paper's 0.132.
    """
    nnz_per_row = 10
    if fmt.upper() in ("CSR", "AIJ"):
        est = csr_traffic(1, 1, nnz_per_row)
    elif fmt.upper() == "SELL":
        est = sell_traffic(1, 1, nnz_per_row)
    else:
        raise ValueError(f"unknown format {fmt!r}")
    return est.arithmetic_intensity


def largest_grid_with_32bit_indices(dof: int = 2) -> int:
    """Largest power-of-two square grid indexable with 32-bit integers.

    A 32-bit PETSc build requires the global dimension ``dof * grid^2`` to
    stay below 2^31.  For the Gray-Scott system (dof = 2) the bound sits
    exactly at 32768^2 (2 * 32768^2 = 2^31), so 16384 is the largest
    power-of-two grid with headroom — the paper's Section 7.3 choice
    ("close to the largest case that does not require 64-bit integers").
    """
    if dof < 1:
        raise ValueError("dof must be positive")
    grid = 1
    while dof * (2 * grid) ** 2 < 2**31:
        grid *= 2
    return grid
