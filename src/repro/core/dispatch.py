"""Kernel variant registry: the legend entries of Figures 8, 9, and 11.

A :class:`KernelVariant` bundles everything one series of the paper's
plots needs: the matrix format conversion, the instruction-level kernel,
the ISA it targets, and any library-efficiency factor (MKL).  The figure
harnesses iterate these lists instead of hand-wiring format/ISA/kernel
triples, so every figure names its series exactly as the paper does.

Variants live in an open registry: :func:`register_variant` adds one
(every built-in series below registers itself this way), the format
conversion is dispatched through the :func:`~repro.mat.base.register_format`
converter table, and :func:`get_variant` resolves legend names — so a new
format/kernel pair is one ``register_format`` converter plus one
``register_variant`` call, and it immediately shows up in shootouts,
autotuning, and the registry-driven correctness tests.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..mat.aij import AijMat
from ..mat.base import BLOCK_SHAPE_FORMATS, Mat, converter_for
from ..obs.observer import obs_event
from ..simd.counters import KernelCounters
from ..simd.engine import SimdEngine
from ..simd.isa import AVX, AVX2, AVX512, SCALAR, SVE, Isa
from .kernels_csr import (
    spmv_csr_compiler,
    spmv_csr_perm,
    spmv_csr_scalar,
    spmv_csr_vectorized,
)
from .kernels_baij import spmv_baij
from .kernels_beta import spmv_beta
from .kernels_ellpack import spmv_ellpack, spmv_ellpack_r, spmv_hybrid
from .kernels_mkl import MKL_EFFICIENCY, spmv_csr_mkl
from .kernels_sell import spmv_sell, spmv_sell_esb
from .kernels_sve import spmv_sell_sve
from .traffic import TrafficEstimate, traffic_for

# Imported for their format-converter registrations (ESB registers "ESB",
# BETA rides in through kernels_beta; the SELL registration rides in
# through the kernels' own imports).
from . import esb as _esb  # noqa: F401


@dataclass(frozen=True)
class KernelVariant:
    """One plotted series: format + kernel + ISA + efficiency."""

    name: str
    fmt: str                      #: a registered format name ("CSR", "SELL", ...)
    isa: Isa
    kernel: Callable[[SimdEngine, Mat, np.ndarray, np.ndarray], None]
    efficiency: float = 1.0       #: time multiplier 1/efficiency at predict

    def prepare(
        self, csr: AijMat, slice_height: int = 8, sigma: int = 1,
        registry=None, block_shape: tuple[int, int] | None = None,
    ) -> Mat:
        """Convert the assembled CSR operator to this variant's format.

        Dispatches through the format-converter registry
        (:func:`repro.mat.base.register_format`); formats without the
        SELL tuning knobs ignore them, and ``block_shape`` is forwarded
        only to formats registered with the knob
        (:data:`repro.mat.base.BLOCK_SHAPE_FORMATS`) — ``None`` selects
        the format's own default.  Passing a
        :class:`~repro.core.registry.SignatureRegistry` memoizes the
        conversion per (format, knobs, matrix values) with single-flight
        semantics — concurrent preparations of one operator convert once
        and share the result.
        """
        kwargs: dict = {"slice_height": slice_height, "sigma": sigma}
        if block_shape is not None and self.fmt in BLOCK_SHAPE_FORMATS:
            kwargs["block_shape"] = block_shape
        if registry is None:
            return converter_for(self.fmt)(csr, **kwargs)
        key = registry.prepare_key(
            self.fmt, slice_height, sigma, csr,
            block_shape=kwargs.get("block_shape"),
        )
        return registry.get_or_compute(
            "prepare",
            key,
            lambda: converter_for(self.fmt)(csr, **kwargs),
        )

    def run(
        self,
        mat: Mat,
        x: np.ndarray,
        strict_alignment: bool = False,
        engine: SimdEngine | None = None,
        trace=None,
    ) -> tuple[np.ndarray, KernelCounters]:
        """Execute the instruction-level kernel; return (y, counters).

        ``engine`` lets an :class:`~repro.core.context.ExecutionContext`
        supply its own (policy-carrying) engine; by default a fresh one is
        built for this variant's ISA.  Passing a ``trace`` (a
        :class:`~repro.simd.replay.KernelTrace` recorded on a matrix with
        the same sparsity structure) replays it instead of interpreting —
        bit-identical y and counters, 1-2 orders of magnitude faster.
        """
        from ..memory.spaces import aligned_alloc

        if trace is not None:
            return self.replay(trace, mat, x)
        if engine is None:
            engine = SimdEngine(self.isa, strict_alignment=strict_alignment)
        # The output vector must sit on a cache-line boundary like every
        # PETSc Vec (Section 3.1); the SELL kernel stores to it aligned.
        y = aligned_alloc(mat.shape[0], np.float64, 64)
        with obs_event(f"Kernel:{self.name}"):
            self.kernel(engine, mat, x, y)
        return y, engine.counters

    def record(self, mat: Mat, x: np.ndarray, strict_alignment: bool = False):
        """Record one traced execution: (trace, y, counters).

        The recording run is a full interpreted execution (same numerics,
        same counters), so it doubles as the first measurement; the
        returned trace replays for any same-structure matrix.
        """
        from .traced import record_trace

        return record_trace(self, mat, x, strict_alignment=strict_alignment)

    def replay(
        self, trace, mat: Mat, x: np.ndarray
    ) -> tuple[np.ndarray, KernelCounters]:
        """Replay a recorded trace against this prepared matrix and x."""
        from .traced import replay_trace

        return replay_trace(self, trace, mat, x)

    def traffic(self, mat: Mat) -> TrafficEstimate:
        """The Section 6 minimum-traffic estimate for this variant."""
        return traffic_for(mat)


# ---------------------------------------------------------------------------
# The registry.  ALL_VARIANTS is the live dict behind it, kept under its
# historical name so existing callers (and figure legends) iterate it.
# ---------------------------------------------------------------------------

ALL_VARIANTS: dict[str, KernelVariant] = {}


def register_variant(variant: KernelVariant) -> KernelVariant:
    """Add a variant to the registry under its legend name.

    Returns the variant so registration composes with assignment::

        MINE = register_variant(KernelVariant("mine", "SELL", AVX512, my_kernel))

    Re-registering the same object is a no-op; a *different* variant under
    an existing name is an error (legend names are identities).
    """
    existing = ALL_VARIANTS.get(variant.name)
    if existing is not None and existing != variant:
        raise ValueError(f"variant {variant.name!r} is already registered")
    ALL_VARIANTS[variant.name] = variant
    return variant


def registered_variants() -> tuple[KernelVariant, ...]:
    """Every registered variant, in name order."""
    return tuple(ALL_VARIANTS[name] for name in sorted(ALL_VARIANTS))


def get_variant(name: str) -> KernelVariant:
    """Look up a series by its legend name."""
    if name not in ALL_VARIANTS:
        close = difflib.get_close_matches(name, ALL_VARIANTS, n=1, cutoff=0.4)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise KeyError(
            f"unknown variant {name!r}{hint} known: {sorted(ALL_VARIANTS)}"
        )
    return ALL_VARIANTS[name]


# ---------------------------------------------------------------------------
# The named series, exactly as the paper's legends spell them.
# ---------------------------------------------------------------------------

SELL_AVX512 = register_variant(
    KernelVariant("SELL using AVX512", "SELL", AVX512, spmv_sell)
)
SELL_AVX2 = register_variant(
    KernelVariant("SELL using AVX2", "SELL", AVX2, spmv_sell)
)
SELL_AVX = register_variant(KernelVariant("SELL using AVX", "SELL", AVX, spmv_sell))
SELL_NOVEC = register_variant(
    KernelVariant("SELL using novec", "SELL", SCALAR, spmv_sell)
)
CSR_AVX512 = register_variant(
    KernelVariant("CSR using AVX512", "CSR", AVX512, spmv_csr_vectorized)
)
CSR_AVX2 = register_variant(
    KernelVariant("CSR using AVX2", "CSR", AVX2, spmv_csr_vectorized)
)
CSR_AVX = register_variant(
    KernelVariant("CSR using AVX", "CSR", AVX, spmv_csr_vectorized)
)
CSR_NOVEC = register_variant(
    KernelVariant("CSR using novec", "CSR", SCALAR, spmv_csr_scalar)
)
CSR_PERM = register_variant(
    KernelVariant("CSRPerm", "CSRPerm", AVX512, spmv_csr_perm)
)
CSR_BASELINE = register_variant(
    KernelVariant("CSR baseline", "CSR", AVX512, spmv_csr_compiler)
)
MKL_CSR = register_variant(
    KernelVariant("MKL CSR", "MKL", AVX512, spmv_csr_mkl, efficiency=MKL_EFFICIENCY)
)
ESB_AVX512 = register_variant(
    KernelVariant("ESB using AVX512", "ESB", AVX512, spmv_sell_esb)
)
#: Register blocking on wide registers (Section 3.2's cautionary tale);
#: not a paper figure series, but the ablation compares it against SELL.
BAIJ_AVX512 = register_variant(
    KernelVariant("BAIJ using AVX512", "BAIJ", AVX512, spmv_baij)
)
#: The GPU-era formats of Section 2.5, dispatchable so shootouts and
#: ablations can price them against SELL on the same matrices.
ELLPACK_AVX512 = register_variant(
    KernelVariant("ELLPACK using AVX512", "ELLPACK", AVX512, spmv_ellpack)
)
ELLPACK_R_AVX512 = register_variant(
    KernelVariant("ELLPACK-R using AVX512", "ELLPACK-R", AVX512, spmv_ellpack_r)
)
HYBRID_AVX512 = register_variant(
    KernelVariant("HYB using AVX512", "HYB", AVX512, spmv_hybrid)
)
#: The format/ISA frontier (ROADMAP item 3): the vector-length-agnostic
#: SVE port of the SELL kernel and the β(r,c) no-padding block kernels
#: of Bramas & Kus, on both lane-masked ISAs.
SELL_SVE = register_variant(
    KernelVariant("SELL using SVE", "SELL", SVE, spmv_sell_sve)
)
BETA_AVX512 = register_variant(
    KernelVariant("BETA using AVX512", "BETA", AVX512, spmv_beta)
)
BETA_SVE = register_variant(
    KernelVariant("BETA using SVE", "BETA", SVE, spmv_beta)
)

#: Figure 8's nine series, in the paper's legend order.
FIGURE8_VARIANTS: tuple[KernelVariant, ...] = (
    SELL_AVX512,
    SELL_AVX2,
    SELL_AVX,
    CSR_AVX512,
    CSR_AVX2,
    CSR_AVX,
    CSR_PERM,
    CSR_BASELINE,
    MKL_CSR,
)

#: Figure 11's nine series, in the paper's legend order.
FIGURE11_VARIANTS: tuple[KernelVariant, ...] = (
    MKL_CSR,
    CSR_NOVEC,
    SELL_NOVEC,
    CSR_AVX,
    SELL_AVX,
    CSR_AVX2,
    SELL_AVX2,
    CSR_AVX512,
    SELL_AVX512,
)


# ---------------------------------------------------------------------------
# Solver-level super-ops: fused engine-op sequences above single kernels.
#
# The megakernel tier (:mod:`repro.simd.megakernel`) fuses *within* one
# kernel's trace; super-ops extend the same idea one level up, fusing the
# fixed op sequences a Krylov iteration dispatches back-to-back — the
# MatMult+PCApply pair and the Gram-Schmidt VecMDot/VecNorm tail — into
# single passes with bit-identical arithmetic order.  They live in the
# same open-registry style as kernel variants so a solver (or a context's
# :meth:`~repro.core.context.ExecutionContext.dispatch_superop`) resolves
# them by name; an operand combination a super-op cannot fuse raises
# :class:`~repro.simd.trace.TraceError` and the caller falls back to the
# separate ops.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SuperOp:
    """One registered fused solver-level operation."""

    name: str
    fn: Callable


SUPER_OPS: dict[str, SuperOp] = {}


def register_superop(name: str):
    """Register a fused solver-level op under ``name`` (decorator)."""

    def decorate(fn: Callable) -> Callable:
        existing = SUPER_OPS.get(name)
        if existing is not None and existing.fn is not fn:
            raise ValueError(f"super-op {name!r} is already registered")
        SUPER_OPS[name] = SuperOp(name, fn)
        return fn

    return decorate


def get_superop(name: str) -> SuperOp:
    """Look up a registered super-op by name."""
    if name not in SUPER_OPS:
        raise KeyError(
            f"unknown super-op {name!r}; known: {sorted(SUPER_OPS)}"
        )
    return SUPER_OPS[name]


@register_superop("matmult_pcapply")
def fused_matmult_pcapply(op, pc, x: np.ndarray) -> np.ndarray:
    """``z = D^-1 (A @ x)``: MatMult and Jacobi PCApply in one pass.

    The product vector is fresh, so the diagonal scaling lands in place —
    one dispatch and zero extra allocations instead of two dispatches and
    a temporary.  Bit-identical to ``pc.apply(op.multiply(x))``: the same
    elementwise multiply on the same operands in the same order.  A
    preconditioner without a fusable ``inv_diag`` (anything non-Jacobi,
    or one not yet set up) raises ``TraceError`` for the caller's
    fallback path.
    """
    from ..simd.trace import TraceError

    inv_diag = getattr(pc, "inv_diag", None)
    if inv_diag is None:
        raise TraceError(
            f"{type(pc).__name__} exposes no inverse diagonal to fuse"
        )
    ax = op.multiply(x)
    if inv_diag.shape != ax.shape:
        raise TraceError("preconditioner diagonal does not conform")
    np.multiply(inv_diag, ax, out=ax)
    return ax


@register_superop("gmres_mgs_tail")
def fused_mgs_tail(w: np.ndarray, basis: np.ndarray) -> np.ndarray:
    """Modified Gram-Schmidt sweep + norm as one fused tail.

    Orthogonalizes ``w`` (in place) against the ``basis`` rows and
    returns the Hessenberg column ``[h_0 .. h_{k}, ||w||]`` — GMRES's
    VecMDot/VecNorm tail in a single call.  The arithmetic is the
    textbook MGS recurrence verbatim (sequential dot, scale, subtract
    per basis vector, then ``sqrt(w.w)`` — exactly what
    ``np.linalg.norm`` computes for a real 1-D vector), so results are
    bit-identical to the unfused loop; the fusion removes the per-op
    dispatch and the per-step temporary via one reused scratch buffer.
    """
    k1 = basis.shape[0]
    h = np.empty(k1 + 1, dtype=np.float64)
    scratch = np.empty_like(w)
    for i in range(k1):
        hi = float(w @ basis[i])
        h[i] = hi
        np.multiply(basis[i], hi, out=scratch)
        np.subtract(w, scratch, out=w)
    h[k1] = np.sqrt(w @ w)
    return h
