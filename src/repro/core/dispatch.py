"""Kernel variant registry: the legend entries of Figures 8, 9, and 11.

A :class:`KernelVariant` bundles everything one series of the paper's
plots needs: the matrix format conversion, the instruction-level kernel,
the ISA it targets, and any library-efficiency factor (MKL).  The figure
harnesses iterate these lists instead of hand-wiring format/ISA/kernel
triples, so every figure names its series exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..mat.aij import AijMat
from ..mat.aij_perm import AijPermMat
from ..mat.base import Mat
from .esb import EsbMat
from ..simd.counters import KernelCounters
from ..simd.engine import SimdEngine
from ..simd.isa import AVX, AVX2, AVX512, SCALAR, Isa
from .kernels_csr import (
    spmv_csr_compiler,
    spmv_csr_perm,
    spmv_csr_scalar,
    spmv_csr_vectorized,
)
from .kernels_baij import spmv_baij
from .kernels_mkl import MKL_EFFICIENCY, spmv_csr_mkl
from .kernels_sell import spmv_sell, spmv_sell_esb
from .sell import SellMat
from .traffic import TrafficEstimate, traffic_for


@dataclass(frozen=True)
class KernelVariant:
    """One plotted series: format + kernel + ISA + efficiency."""

    name: str
    fmt: str                      #: "CSR", "SELL", "CSRPerm", "MKL", "ESB"
    isa: Isa
    kernel: Callable[[SimdEngine, Mat, np.ndarray, np.ndarray], None]
    efficiency: float = 1.0       #: time multiplier 1/efficiency at predict

    def prepare(
        self, csr: AijMat, slice_height: int = 8, sigma: int = 1
    ) -> Mat:
        """Convert the assembled CSR operator to this variant's format."""
        if self.fmt in ("CSR", "MKL"):
            return csr
        if self.fmt == "CSRPerm":
            return AijPermMat.from_csr(csr)
        if self.fmt == "SELL":
            return SellMat.from_csr(csr, slice_height=slice_height, sigma=sigma)
        if self.fmt == "ESB":
            return EsbMat.from_csr(csr, slice_height=slice_height, sigma=sigma)
        if self.fmt == "BAIJ":
            from ..mat.baij import BaijMat

            return BaijMat.from_csr(csr, 2)
        raise ValueError(f"unknown format {self.fmt!r}")

    def run(
        self, mat: Mat, x: np.ndarray, strict_alignment: bool = False
    ) -> tuple[np.ndarray, KernelCounters]:
        """Execute the instruction-level kernel; return (y, counters)."""
        from ..memory.spaces import aligned_alloc

        engine = SimdEngine(self.isa, strict_alignment=strict_alignment)
        # The output vector must sit on a cache-line boundary like every
        # PETSc Vec (Section 3.1); the SELL kernel stores to it aligned.
        y = aligned_alloc(mat.shape[0], np.float64, 64)
        self.kernel(engine, mat, x, y)
        return y, engine.counters

    def traffic(self, mat: Mat) -> TrafficEstimate:
        """The Section 6 minimum-traffic estimate for this variant."""
        return traffic_for(mat)


# ---------------------------------------------------------------------------
# The named series, exactly as the paper's legends spell them.
# ---------------------------------------------------------------------------

SELL_AVX512 = KernelVariant("SELL using AVX512", "SELL", AVX512, spmv_sell)
SELL_AVX2 = KernelVariant("SELL using AVX2", "SELL", AVX2, spmv_sell)
SELL_AVX = KernelVariant("SELL using AVX", "SELL", AVX, spmv_sell)
SELL_NOVEC = KernelVariant("SELL using novec", "SELL", SCALAR, spmv_sell)
CSR_AVX512 = KernelVariant("CSR using AVX512", "CSR", AVX512, spmv_csr_vectorized)
CSR_AVX2 = KernelVariant("CSR using AVX2", "CSR", AVX2, spmv_csr_vectorized)
CSR_AVX = KernelVariant("CSR using AVX", "CSR", AVX, spmv_csr_vectorized)
CSR_NOVEC = KernelVariant("CSR using novec", "CSR", SCALAR, spmv_csr_scalar)
CSR_PERM = KernelVariant("CSRPerm", "CSRPerm", AVX512, spmv_csr_perm)
CSR_BASELINE = KernelVariant("CSR baseline", "CSR", AVX512, spmv_csr_compiler)
MKL_CSR = KernelVariant(
    "MKL CSR", "MKL", AVX512, spmv_csr_mkl, efficiency=MKL_EFFICIENCY
)
ESB_AVX512 = KernelVariant("ESB using AVX512", "ESB", AVX512, spmv_sell_esb)
#: Register blocking on wide registers (Section 3.2's cautionary tale);
#: not a paper figure series, but the ablation compares it against SELL.
BAIJ_AVX512 = KernelVariant("BAIJ using AVX512", "BAIJ", AVX512, spmv_baij)

#: Figure 8's nine series, in the paper's legend order.
FIGURE8_VARIANTS: tuple[KernelVariant, ...] = (
    SELL_AVX512,
    SELL_AVX2,
    SELL_AVX,
    CSR_AVX512,
    CSR_AVX2,
    CSR_AVX,
    CSR_PERM,
    CSR_BASELINE,
    MKL_CSR,
)

#: Figure 11's nine series, in the paper's legend order.
FIGURE11_VARIANTS: tuple[KernelVariant, ...] = (
    MKL_CSR,
    CSR_NOVEC,
    SELL_NOVEC,
    CSR_AVX,
    SELL_AVX,
    CSR_AVX2,
    SELL_AVX2,
    CSR_AVX512,
    SELL_AVX512,
)

ALL_VARIANTS: dict[str, KernelVariant] = {
    v.name: v
    for v in (
        *FIGURE8_VARIANTS,
        CSR_NOVEC,
        SELL_NOVEC,
        ESB_AVX512,
        BAIJ_AVX512,
    )
}


def get_variant(name: str) -> KernelVariant:
    """Look up a series by its legend name."""
    if name not in ALL_VARIANTS:
        raise KeyError(f"unknown variant {name!r}; known: {sorted(ALL_VARIANTS)}")
    return ALL_VARIANTS[name]
