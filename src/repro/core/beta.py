"""β(r,c): block-based storage with no zero padding (Bramas & Kus, SPC5).

BCSR-style block formats pay for register-friendly access with dense
r-by-c tiles: every structural zero inside a tile is stored, loaded, and
multiplied.  The β(r,c) family (arXiv 1801.01134) keeps the blocking but
drops the padding — each block stores

* one anchor column (``block_col``),
* one r*c-bit presence mask (``block_mask``, bit ``i*c + j`` set iff row
  ``i`` of the block has an entry at column ``anchor + j``), and
* its true nonzeros only, packed row-major (a slice of ``val``).

The per-nonzero index overhead collapses from CSR's 4 bytes to
``(4 + 8) / nnz_per_block`` amortized bytes, and the kernel performs
exactly ``2*nnz`` flops: the mask, not padding, tells each lane what to
do.  Blocks are cut greedily left-to-right inside each r-row band, the
same streaming pass the SPC5 converter uses.

The arrays the SpMV *kernels* consume beyond that storage —
``valptr`` (prefix popcounts of the masks), the per-nonzero gather
columns, and the per-nonzero row map used by the NumPy product — are
derived, recomputable from (mask, anchor) alone; SPC5 expands them at
run time from the mask word, so :meth:`memory_bytes` counts only the
true format storage.
"""

from __future__ import annotations

import numpy as np

from ..mat.aij import AijMat
from ..mat.base import Mat, register_format

#: Default block shape: 2x4 doubles = one AVX-512 register per block row
#: pair, the shape SPC5 calls beta(2,4).
DEFAULT_BLOCK_SHAPE = (2, 4)


class BetaMat(Mat):
    """A sparse matrix in β(r,c) no-padding block storage."""

    format_name = "BETA"

    def __init__(
        self,
        shape: tuple[int, int],
        block_shape: tuple[int, int],
        blockptr: np.ndarray,
        block_col: np.ndarray,
        block_mask: np.ndarray,
        val: np.ndarray,
    ):
        self._shape = (int(shape[0]), int(shape[1]))
        self.block_shape = (int(block_shape[0]), int(block_shape[1]))
        self.blockptr = blockptr
        self.block_col = block_col
        self.block_mask = block_mask
        self.val = val
        r, c = self.block_shape
        if r < 1 or c < 1 or r * c > 64:
            raise ValueError(
                f"block shape {self.block_shape} must fit a 64-bit mask"
            )
        # Derived (recomputable) arrays: packed-order prefix offsets, the
        # gather column of every packed value, and its logical row.
        popcnt = np.array(
            [int(m).bit_count() for m in block_mask.tolist()], dtype=np.int64
        )
        self.valptr = np.concatenate(
            ([0], np.cumsum(popcnt, dtype=np.int64))
        )
        self.gathercol, self._row_of_element = self._expand_masks()

    # -- construction -----------------------------------------------------
    @classmethod
    def from_csr(
        cls,
        csr: AijMat,
        block_shape: tuple[int, int] = DEFAULT_BLOCK_SHAPE,
    ) -> "BetaMat":
        """Greedy streaming conversion: one left-to-right pass per band."""
        m, n = csr.shape
        r, c = int(block_shape[0]), int(block_shape[1])
        if r < 1 or c < 1 or r * c > 64:
            raise ValueError(f"block shape {(r, c)} must fit a 64-bit mask")
        nbands = (m + r - 1) // r if m else 0
        blockptr = np.zeros(nbands + 1, dtype=np.int64)
        block_col: list[int] = []
        block_mask: list[int] = []
        val_parts: list[np.ndarray] = []
        for band in range(nbands):
            first = band * r
            rows = range(first, min(first + r, m))
            # All entries of the band, sorted by column then row: the
            # order blocks are cut in.  CSR rows are column-sorted, so a
            # stable merge by column keeps row order inside a column.
            cols = np.concatenate(
                [csr.colidx[csr.rowptr[i] : csr.rowptr[i + 1]] for i in rows]
            ).astype(np.int64)
            vals = np.concatenate(
                [csr.val[csr.rowptr[i] : csr.rowptr[i + 1]] for i in rows]
            )
            rowi = np.concatenate(
                [
                    np.full(
                        int(csr.rowptr[i + 1] - csr.rowptr[i]), i - first,
                        dtype=np.int64,
                    )
                    for i in rows
                ]
            )
            order = np.argsort(cols, kind="stable")
            cols, vals, rowi = cols[order], vals[order], rowi[order]
            pos = 0
            while pos < cols.shape[0]:
                anchor = int(cols[pos])
                end = pos + int(np.searchsorted(cols[pos:], anchor + c))
                mask = 0
                for k in range(pos, end):
                    mask |= 1 << (
                        int(rowi[k]) * c + (int(cols[k]) - anchor)
                    )
                # Pack row-major within the block (row, then column).
                inblock = np.lexsort((cols[pos:end], rowi[pos:end])) + pos
                block_col.append(anchor)
                block_mask.append(mask)
                val_parts.append(vals[inblock])
                pos = end
            blockptr[band + 1] = len(block_col)
        val = (
            np.concatenate(val_parts)
            if val_parts
            else np.zeros(0, dtype=np.float64)
        )
        return cls(
            (m, n),
            (r, c),
            blockptr,
            np.asarray(block_col, dtype=np.int32),
            np.asarray(block_mask, dtype=np.uint64),
            np.ascontiguousarray(val, dtype=np.float64),
        )

    def _expand_masks(self) -> tuple[np.ndarray, np.ndarray]:
        """Per packed value: its gather column and its logical row."""
        r, c = self.block_shape
        gathercol = np.zeros(self.val.shape[0], dtype=np.int32)
        row_of = np.zeros(self.val.shape[0], dtype=np.int64)
        for band in range(self.nbands):
            for b in range(int(self.blockptr[band]), int(self.blockptr[band + 1])):
                anchor = int(self.block_col[b])
                mask = int(self.block_mask[b])
                k = int(self.valptr[b])
                for i in range(r):
                    row_bits = (mask >> (i * c)) & ((1 << c) - 1)
                    for j in range(c):
                        if row_bits >> j & 1:
                            gathercol[k] = anchor + j
                            row_of[k] = band * r + i
                            k += 1
        return gathercol, row_of

    # -- shape -------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.val.shape[0])

    @property
    def nbands(self) -> int:
        """Number of r-row bands (block rows)."""
        return self.blockptr.shape[0] - 1

    @property
    def nblocks(self) -> int:
        return int(self.block_col.shape[0])

    # -- operations ----------------------------------------------------------
    def multiply(self, x: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        x, y = self._check_multiply_args(x, y)
        if self.nnz == 0:
            y[:] = 0.0
            return y
        y[:] = np.bincount(
            self._row_of_element,
            weights=self.val * x[self.gathercol],
            minlength=self.shape[0],
        )[: self.shape[0]]
        return y

    def to_csr(self) -> AijMat:
        m, n = self.shape
        order = np.lexsort((self.gathercol, self._row_of_element))
        counts = np.bincount(self._row_of_element, minlength=m)[:m]
        rowptr = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
        return AijMat(
            (m, n),
            rowptr,
            np.asarray(self.gathercol[order], dtype=np.int32),
            np.asarray(self.val[order], dtype=np.float64),
        )

    def memory_bytes(self) -> int:
        """True format storage: values, anchors, masks, and band pointers.

        The derived expansion arrays are excluded — SPC5 reconstructs
        them from the mask word at run time (see the module docstring).
        """
        return int(
            self.val.nbytes
            + self.block_col.nbytes
            + self.block_mask.nbytes
            + self.blockptr.nbytes
        )

    @property
    def fill_ratio(self) -> float:
        """Stored nonzeros per block slot (1.0 = every slot real).

        BCSR would store ``nblocks * r * c`` values; β stores ``nnz``.
        The ratio is the storage the no-padding mask trick saves.
        """
        r, c = self.block_shape
        slots = self.nblocks * r * c
        return float(self.nnz) / slots if slots else 1.0


@register_format("BETA", block_shape=True)
def _beta_from_csr(
    csr: AijMat,
    *,
    slice_height: int = 8,
    sigma: int = 1,
    block_shape: tuple[int, int] = DEFAULT_BLOCK_SHAPE,
) -> BetaMat:
    """β(r,c) ignores the SELL knobs; ``block_shape`` picks (r, c)."""
    del slice_height, sigma
    return BetaMat.from_csr(csr, block_shape=block_shape)
