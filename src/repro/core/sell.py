"""Sliced ELLPACK (SELL) — the matrix format the paper contributes to PETSc.

Storage follows Section 5 and Figure 6 exactly:

* rows are grouped into **slices** of ``C`` adjacent rows (C = 8 on KNL:
  one 512-bit register of doubles, Section 5.1);
* each slice is padded to its own width (its longest row), so short rows
  only pay for their slice, not for the global maximum as in ELLPACK;
* within a slice, values and column indices are stored **column by
  column** — the memory order equals the order the vectorized kernel
  (Algorithm 2) consumes, so every matrix access is a contiguous,
  alignable vector load;
* an ``rlen`` array keeps each row's true length.  The SpMV kernel never
  reads it (Section 5.2) — padded zeros are simply multiplied — but
  assembly, conversion, and diagnostics need it;
* the **column index of a padded slot is copied from a real nonzero of the
  same row** (its last one), so gathers through padding stay within the
  local vector and never widen a parallel matrix's ghost set
  (Section 5.5);
* the trailing partial slice, if any, is padded with empty rows to a full
  ``C`` so the kernel runs maskless except possibly at the final store.

Design decisions the paper argues for are parameters here so the ablation
benchmarks can contradict them: ``slice_height`` sweeps C (C = 1
degenerates to CSR), ``sigma`` enables SELL-C-sigma window sorting
(``sigma = 1``, the default, is the paper's "no sorting" choice of
Section 5.4).
"""

from __future__ import annotations

import numpy as np

from ..mat.aij import AijMat
from ..mat.base import Mat, register_format
from ..memory.spaces import aligned_alloc


class SellMat(Mat):
    """A sliced-ELLPACK matrix (PETSc's MATSELL)."""

    format_name = "SELL"

    def __init__(
        self,
        shape: tuple[int, int],
        slice_height: int,
        sliceptr: np.ndarray,
        val: np.ndarray,
        colidx: np.ndarray,
        rlen: np.ndarray,
        perm: np.ndarray | None = None,
        sigma: int = 1,
        alignment: int = 64,
    ):
        m, n = shape
        if slice_height < 1:
            raise ValueError("slice height must be positive")
        sliceptr = np.asarray(sliceptr, dtype=np.int64)
        rlen = np.asarray(rlen, dtype=np.int64)
        nslices = (m + slice_height - 1) // slice_height if m else 0
        if sliceptr.shape != (nslices + 1,):
            raise ValueError(f"sliceptr must have {nslices + 1} entries")
        if sliceptr[0] != 0 or np.any(np.diff(sliceptr) < 0):
            raise ValueError("sliceptr must be non-decreasing from zero")
        if np.any(np.diff(sliceptr) % slice_height):
            raise ValueError("slice extents must be multiples of the height")
        if val.shape != colidx.shape or val.shape != (int(sliceptr[-1]),):
            raise ValueError("val/colidx inconsistent with sliceptr")
        if rlen.shape != (m,):
            raise ValueError("rlen must have one entry per row")
        self._shape = (m, n)
        self.slice_height = slice_height
        self.sigma = sigma
        self.sliceptr = sliceptr
        self.rlen = rlen
        self.val = aligned_alloc(val.shape[0], np.float64, alignment)
        self.val[:] = val
        self.colidx = aligned_alloc(colidx.shape[0], np.int32, alignment)
        self.colidx[:] = colidx
        if perm is not None:
            perm = np.asarray(perm, dtype=np.int64)
            if perm.shape != (m,):
                raise ValueError("perm must have one entry per row")
        self.perm = perm

        # Precomputed element -> output-row map for the fast NumPy matvec
        # (exposed as :attr:`row_map` for the transpose kernels).
        self._row_of_element = self._build_row_map()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(
        cls,
        csr: AijMat,
        slice_height: int = 8,
        sigma: int = 1,
        alignment: int = 64,
    ) -> "SellMat":
        """Convert an assembled CSR matrix (the MatConvert path).

        ``sigma > 1`` sorts rows by descending length inside disjoint
        windows of ``sigma`` rows before slicing (SELL-C-sigma);
        ``sigma`` must then be a multiple of the slice height so slices
        never straddle windows.
        """
        if slice_height < 1:
            raise ValueError("slice height must be positive")
        if sigma < 1:
            raise ValueError("sigma must be positive")
        if sigma > 1 and sigma % slice_height:
            raise ValueError("sigma must be a multiple of the slice height")
        m, n = csr.shape
        lengths = csr.row_lengths().astype(np.int64)

        if sigma > 1:
            perm = np.empty(m, dtype=np.int64)
            for start in range(0, m, sigma):
                stop = min(start + sigma, m)
                window = np.arange(start, stop)
                order = np.argsort(-lengths[start:stop], kind="stable")
                perm[start:stop] = window[order]
        else:
            perm = None

        storage_rows = perm if perm is not None else np.arange(m, dtype=np.int64)
        storage_lengths = lengths[storage_rows] if m else lengths

        nslices = (m + slice_height - 1) // slice_height if m else 0
        sliceptr = np.zeros(nslices + 1, dtype=np.int64)
        widths = np.zeros(nslices, dtype=np.int64)
        for s in range(nslices):
            chunk = storage_lengths[s * slice_height : (s + 1) * slice_height]
            widths[s] = int(chunk.max()) if chunk.size else 0
            sliceptr[s + 1] = sliceptr[s] + widths[s] * slice_height

        total = int(sliceptr[-1])
        val = np.zeros(total, dtype=np.float64)
        colidx = np.zeros(total, dtype=np.int32)
        for s in range(nslices):
            base = sliceptr[s]
            width = widths[s]
            for i in range(slice_height):
                k = s * slice_height + i
                if k >= m:
                    # Trailing padding rows: zero values, column 0 is a
                    # safe local index.
                    continue
                row = int(storage_rows[k])
                cols, vals = csr.get_row(row)
                length = cols.shape[0]
                # Element (i, j) of the slice lives at base + j*C + i.
                slots = base + np.arange(length, dtype=np.int64) * slice_height + i
                val[slots] = vals
                colidx[slots] = cols
                if length < width:
                    pad = base + np.arange(length, width) * slice_height + i
                    # Padding reuses a real (local) column of the same row.
                    colidx[pad] = cols[-1] if length else 0
        return cls(
            (m, n),
            slice_height,
            sliceptr,
            val,
            colidx,
            lengths,
            perm=perm,
            sigma=sigma,
            alignment=alignment,
        )

    def _build_row_map(self) -> np.ndarray:
        """Output row of every stored slot (padding maps to its slice row)."""
        m, _ = self.shape
        c = self.slice_height
        row_map = np.empty(self.val.shape[0], dtype=np.int64)
        for s in range(self.nslices):
            base, width = self.sliceptr[s], self.slice_width(s)
            lanes = np.arange(c)
            storage_rows = s * c + lanes
            storage_rows = np.minimum(storage_rows, max(m - 1, 0))
            out_rows = (
                self.perm[storage_rows] if self.perm is not None else storage_rows
            )
            # column-major within the slice: slot = base + j*C + i
            block = np.tile(out_rows, width)
            row_map[base : base + width * c] = block
        return row_map

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def row_map(self) -> np.ndarray:
        """Output row of every stored slot (padding maps to its slice row).

        The inverse view of the column-major slice layout; the transpose
        kernels read it to know which x entry each slot multiplies.
        """
        return self._row_of_element

    @property
    def nnz(self) -> int:
        return int(self.rlen.sum())

    @property
    def nslices(self) -> int:
        """Number of slices (the outer-loop trip count of Algorithm 2)."""
        return int(self.sliceptr.shape[0] - 1)

    def slice_width(self, s: int) -> int:
        """Padded row length of slice ``s``."""
        return int(
            (self.sliceptr[s + 1] - self.sliceptr[s]) // self.slice_height
        )

    @property
    def padded_entries(self) -> int:
        """Stored slots that are padding — the SELL storage penalty."""
        return int(self.sliceptr[-1] - self.nnz)

    @property
    def padding_fraction(self) -> float:
        """Padding as a fraction of all stored slots."""
        total = int(self.sliceptr[-1])
        return self.padded_entries / total if total else 0.0

    def storage_row(self, storage_index: int) -> int:
        """Original row stored at slice position ``storage_index``."""
        if self.perm is None:
            return storage_index
        return int(self.perm[storage_index])

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def multiply(self, x: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        x, y = self._check_multiply_args(x, y)
        if self.val.shape[0] == 0:
            y[:] = 0.0
            return y
        products = self.val * x[self.colidx]
        y[:] = np.bincount(
            self._row_of_element, weights=products, minlength=self.shape[0]
        )[: self.shape[0]]
        return y

    def to_csr(self) -> AijMat:
        m, n = self.shape
        c = self.slice_height
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        for s in range(self.nslices):
            base = self.sliceptr[s]
            for i in range(c):
                k = s * c + i
                if k >= m:
                    continue
                row = self.storage_row(k)
                length = int(self.rlen[row])
                slots = base + np.arange(length, dtype=np.int64) * c + i
                rows.append(np.full(length, row, dtype=np.int64))
                cols.append(self.colidx[slots].astype(np.int64))
                vals.append(self.val[slots])
        if rows:
            return AijMat.from_coo(
                (m, n),
                np.concatenate(rows),
                np.concatenate(cols),
                np.concatenate(vals),
                sum_duplicates=False,
            )
        return AijMat.from_coo(
            (m, n),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    def memory_bytes(self) -> int:
        """Storage footprint: padded val + colidx, sliceptr, rlen, perm."""
        slots = int(self.sliceptr[-1])
        total = slots * 12 + self.sliceptr.shape[0] * 8 + self.rlen.shape[0] * 8
        if self.perm is not None:
            total += self.perm.shape[0] * 8
        return int(total)

    def _compute_abft_checksums(self) -> tuple[np.ndarray, np.ndarray]:
        # Column sums are invariant under the sigma row permutation, and
        # padded slots carry val == 0 with an in-range column index, so the
        # padded arrays bincount directly — no CSR round-trip needed.
        n = self.shape[1]
        w = np.bincount(self.colidx, weights=self.val, minlength=n)[:n]
        wabs = np.bincount(self.colidx, weights=np.abs(self.val), minlength=n)[:n]
        return w, wabs

    def diagonal(self) -> np.ndarray:
        m, n = self.shape
        diag = np.zeros(min(m, n), dtype=np.float64)
        c = self.slice_height
        for s in range(self.nslices):
            base = self.sliceptr[s]
            for i in range(c):
                k = s * c + i
                if k >= m:
                    continue
                row = self.storage_row(k)
                if row >= n:
                    continue
                length = int(self.rlen[row])
                slots = base + np.arange(length, dtype=np.int64) * c + i
                hits = slots[self.colidx[slots] == row]
                if hits.size:
                    diag[row] = self.val[hits].sum()
        return diag


@register_format("SELL")
def _sell_from_csr(csr: AijMat, *, slice_height: int = 8, sigma: int = 1) -> SellMat:
    return SellMat.from_csr(csr, slice_height=slice_height, sigma=sigma)
