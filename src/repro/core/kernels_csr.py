"""CSR SpMV kernels at instruction level (paper Algorithm 1 and variants).

Four kernels, matching the CSR-family series of Figures 8 and 11:

* :func:`spmv_csr_scalar` — the "novec" build: plain scalar loops.
* :func:`spmv_csr_vectorized` — the hand-optimized kernel of Algorithm 1:
  vector body over each row, masked remainder on AVX-512 (threshold
  configurable; see the function docstring), scalar tail otherwise.
* :func:`spmv_csr_compiler` — the "CSR baseline": what the compiler's
  auto-vectorizer produces.  It vectorizes the body but materializes the
  input-vector lanes with insert sequences instead of a hardware gather,
  re-derives the remainder mask per row, and pays per-row trip-count
  bookkeeping — the deficiencies Section 7.2 blames for the hand-written
  kernel's 54% advantage.
* :func:`spmv_csr_perm` — the AIJPERM kernel (Section 2.4): vectorized
  *across* rows of equal length, with strided (gathered) access to the
  value and index arrays.

All kernels compute into ``y`` exactly (the engine does real arithmetic)
and leave their instruction mix in ``engine.counters``.
"""

from __future__ import annotations

import numpy as np

from ..mat.aij import AijMat
from ..mat.aij_perm import AijPermMat
from ..simd.engine import SimdEngine


def spmv_csr_scalar(engine: SimdEngine, a: AijMat, x: np.ndarray, y: np.ndarray) -> None:
    """Unvectorized CSR SpMV: the paper's "novec" reference."""
    m, _ = a.shape
    rowptr, colidx, val = a.rowptr, a.colidx, a.val
    c = engine.counters
    for row in range(m):
        acc = 0.0
        for idx in range(rowptr[row], rowptr[row + 1]):
            v = engine.scalar_load(val, idx)
            col = int(engine.scalar_load(colidx, idx))
            xv = engine.scalar_load(x, col)
            acc = engine.scalar_fma(v, xv, acc)
        engine.scalar_store(y, row, acc)
        c.body_iterations += 1


def spmv_csr_vectorized(
    engine: SimdEngine,
    a: AijMat,
    x: np.ndarray,
    y: np.ndarray,
    mask_threshold: int = 0,
) -> None:
    """Algorithm 1: hand-vectorized CSR SpMV.

    Per row: full-width FMA body over the row's nonzeros; the remainder is
    vectorized with masked gather/FMA when the ISA has masks and the tail
    exceeds ``mask_threshold`` elements, falling back to scalar otherwise.
    The paper quotes a threshold of 2 for its heuristic ("we vectorize the
    loop in a similar way only if the length is larger than 2",
    Section 4); the default here masks every tail, which the calibration
    found necessary to reproduce the published 54% hand-over-compiler gap
    on the 10-nonzero rows of the Gray-Scott operator (tail length 2) —
    see EXPERIMENTS.md.  Pass ``mask_threshold=2`` for the literal rule;
    the numerics are identical either way (a test pins this).
    """
    if not engine.isa.is_vector:
        spmv_csr_scalar(engine, a, x, y)
        return
    m, _ = a.shape
    lanes = engine.lanes
    rowptr, colidx, val = a.rowptr, a.colidx, a.val
    c = engine.counters
    for row in range(m):
        start, end = int(rowptr[row]), int(rowptr[row + 1])
        acc = engine.setzero()
        idx = start
        body_end = start + ((end - start) // lanes) * lanes
        while idx < body_end:
            vec_vals = engine.load(val, idx)
            vec_idx = engine.load_index(colidx, idx)
            vec_x = engine.gather_auto(x, vec_idx)
            acc = engine.fmadd_auto(vec_vals, vec_x, acc)
            idx += lanes
            c.body_iterations += 1
        total = engine.reduce_add(acc)
        rem = end - idx
        if rem > mask_threshold and engine.isa.has_masks:
            mask = engine.make_mask(rem)
            vec_vals = engine.masked_load(val, idx, mask)
            vec_idx = engine.masked_load_index(colidx, idx, mask)
            vec_x = engine.masked_gather(x, vec_idx, mask)
            tail = engine.masked_fmadd(vec_vals, vec_x, engine.setzero(), mask)
            total = engine.reduce_add(tail, base=total)
        else:
            for k in range(idx, end):
                v = engine.scalar_load_indep(val, k)
                col = int(engine.scalar_load_indep(colidx, k))
                xv = engine.scalar_load_indep(x, col)
                total = engine.scalar_fma_indep(v, xv, total)
            c.remainder_iterations += rem
        engine.scalar_store(y, row, total)


def spmv_csr_compiler(
    engine: SimdEngine, a: AijMat, x: np.ndarray, y: np.ndarray
) -> None:
    """The "CSR baseline": compiler-auto-vectorized CSR SpMV.

    Differences from Algorithm 1, each one a documented compiler
    shortcoming on this loop shape (Sections 3.3 and 7.2):

    * indirect input-vector loads become scalar-load + insert sequences
      rather than one hardware gather;
    * the remainder is re-masked on every row from the runtime trip count
      (two mask materializations: compare + move to k-register), and the
      separate remainder code path costs branch bookkeeping, modeled as
      remainder iterations;
    * per-row prologue checks (trip-count and pointer overlap tests) cost
      an extra body-iteration's worth of loop overhead.
    """
    if not engine.isa.is_vector:
        spmv_csr_scalar(engine, a, x, y)
        return
    m, _ = a.shape
    lanes = engine.lanes
    rowptr, colidx, val = a.rowptr, a.colidx, a.val
    c = engine.counters
    for row in range(m):
        start, end = int(rowptr[row]), int(rowptr[row + 1])
        acc = engine.setzero()
        idx = start
        body_end = start + ((end - start) // lanes) * lanes
        c.body_iterations += 1  # per-row prologue bookkeeping
        while idx < body_end:
            vec_vals = engine.load(val, idx)
            vec_idx = engine.load_index(colidx, idx)
            vec_x = engine.emulated_gather(x, vec_idx)
            acc = engine.fmadd_auto(vec_vals, vec_x, acc)
            idx += lanes
            c.body_iterations += 1
        total = engine.reduce_add(acc)
        rem = end - idx
        if rem > 0:
            if engine.isa.has_masks:
                mask = engine.make_mask(rem)
                c.mask_setup += 1  # trip-count compare re-materialized
                vec_vals = engine.masked_load(val, idx, mask)
                vec_idx = engine.masked_load_index(colidx, idx, mask)
                vec_x = engine.masked_gather(x, vec_idx, mask)
                tail = engine.masked_fmadd(
                    vec_vals, vec_x, engine.setzero(), mask
                )
                total = engine.reduce_add(tail, base=total)
                c.remainder_iterations += rem
            else:
                for k in range(idx, end):
                    v = engine.scalar_load(val, k)
                    col = int(engine.scalar_load(colidx, k))
                    xv = engine.scalar_load(x, col)
                    total = engine.scalar_fma(v, xv, total)
                c.remainder_iterations += rem
        engine.scalar_store(y, row, total)


def spmv_csr_perm(
    engine: SimdEngine, a: AijPermMat, x: np.ndarray, y: np.ndarray
) -> None:
    """AIJPERM kernel: vectorize across equal-length rows (Section 2.4).

    For each group of rows with identical nonzero count, process ``lanes``
    rows at a time: for every column position ``j``, gather the j-th value
    and index of each row (a strided access into ``val``/``colidx``), then
    gather the input vector through those indices.  On a vector machine
    with fast non-unit stride this was effective; on KNL it triples the
    gather traffic, which is why Figure 8 shows no gain over baseline CSR.
    """
    if not engine.isa.is_vector:
        spmv_csr_scalar(engine, a.csr, x, y)
        return
    lanes = engine.lanes
    csr = a.csr
    rowptr, colidx, val = csr.rowptr, csr.colidx, csr.val
    c = engine.counters
    for g in range(a.ngroups):
        lo, hi = int(a.group_starts[g]), int(a.group_starts[g + 1])
        length = int(a.group_lengths[g])
        pos = lo
        while pos < hi:
            block = min(lanes, hi - pos)
            rows = a.perm[pos : pos + block]
            if length == 0:
                for r in rows:
                    engine.scalar_store(y, int(r), 0.0)
                pos += block
                continue
            starts = rowptr[rows]
            if block == lanes:
                from ..simd.register import VectorRegister

                acc = engine.setzero()
                for j in range(length):
                    # Strided gathers into the matrix arrays themselves.
                    slot_idx = VectorRegister(
                        np.asarray(starts + j, dtype=np.int64)
                    )
                    vec_vals = engine.gather_auto(val, slot_idx)
                    vec_cols = engine.gather_auto(a.colidx_f64, slot_idx)
                    col_reg = VectorRegister(vec_cols.data.astype(np.int64))
                    vec_x = engine.gather_auto(x, col_reg)
                    acc = engine.fmadd_auto(vec_vals, vec_x, acc)
                    c.body_iterations += 1
                for lane, r in enumerate(rows):
                    engine.scalar_store(y, int(r), engine.extract_lane(acc, lane))
            else:
                # Short trailing block of the group: scalar.
                for r in rows:
                    r = int(r)
                    total = 0.0
                    for k in range(int(rowptr[r]), int(rowptr[r + 1])):
                        v = engine.scalar_load(val, k)
                        col = int(engine.scalar_load(colidx, k))
                        xv = engine.scalar_load(x, col)
                        total = engine.scalar_fma(v, xv, total)
                    engine.scalar_store(y, r, total)
                    c.remainder_iterations += length
            pos += block
