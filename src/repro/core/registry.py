"""SignatureRegistry: the shared, concurrency-safe memoization store.

The per-call caches that grew inside :class:`~repro.core.context.ExecutionContext`
(tune/measure memos from PR 1, the structure-keyed trace cache from PR 2,
verifier verdicts from PR 4) all share one organizing idea: the sparsity
*signature* (:func:`repro.mat.sparsity.signature`) is the exact key under
which preprocessing amortizes — the same structure-only amortization
argument SELL-C-sigma makes for its inspector step.  This module lifts
that idea out of the context into a long-lived registry that thousands of
concurrent requests (the :mod:`repro.serve` front door) can share:

* **lock striping** — entries hash onto a small array of stripes, each
  with its own lock and LRU list, so unrelated signatures never contend;
* **single-flight** — concurrent misses on one key elect exactly one
  *leader* that runs the factory (records the trace, runs the tune sweep)
  while the other threads wait and then reuse the leader's result, so an
  uncached signature is recorded/tuned exactly once however many requests
  race on it;
* **LRU eviction** — each stripe evicts its least-recently-used completed
  entries past its share of ``capacity``, bounding a long-lived server's
  footprint;
* **metrics** — hits, misses, evictions, and single-flight waits tick
  both an internal snapshot (:meth:`SignatureRegistry.stats`) and, when a
  :mod:`repro.obs` observer is installed, ``registry.*`` counters.

The registry is also the *single definition of the cache key*: every
namespace's key layout lives in one ``*_key`` helper here, so the context,
the trace wiring (:mod:`repro.core.traced`), and the serving layer can
never drift apart on what identifies a cached artifact.

Contexts hold a registry and become cheap views over it: a fresh
:class:`~repro.core.context.ExecutionContext` makes its own private
registry (per-call behavior identical to the historical dicts), while a
server passes one shared registry to every context view it derives.
Entries whose payload depends on the *pricing* of a machine (tune results,
autotune winners) carry a policy key — ``(processor, memory mode,
nprocs)`` — so views at different rank counts coexist in one store.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Iterable

from ..mat.sparsity import signature
from ..obs.observer import obs_counter

#: Namespaces the execution stack stores under.  An unknown namespace is
#: fine (the store is open), but these are the ones with key helpers.
NAMESPACES = (
    "measure",
    "prepare",
    "trace",
    "mega",
    "tune",
    "best",
    "verify",
    "numcert",
    "default_x",
)

#: Namespaces whose values persist to an attached on-disk
#: :class:`~repro.simd.plan_cache.PlanCache`: the compiled trace and the
#: fused megakernel program (including the ``None`` "unfusable" verdict)
#: are pure functions of their structural keys, so a cold process can
#: adopt them wholesale and skip record+compile.
PERSISTED_NAMESPACES = ("trace", "mega")


#: Leader-path sentinel: "the disk had nothing", distinct from a stored
#: ``None`` value (the plan cache persists ``None`` verdicts too).
_MISS = object()


class _Inflight:
    """A key being computed by its single-flight leader."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


class _Entry:
    """A completed cache entry (wrapper distinguishes stored ``None``)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


class _Stripe:
    """One lock + LRU-ordered entry map; keys hash onto stripes."""

    __slots__ = ("lock", "entries")

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self.entries: OrderedDict[tuple, _Entry | _Inflight] = OrderedDict()


class SignatureRegistry:
    """Concurrency-safe, signature-keyed memoization shared across contexts.

    Parameters
    ----------
    stripes:
        Number of independently locked shards.  Keys are distributed by
        hash, so concurrent operations on different signatures proceed
        without contention.
    capacity:
        Total completed entries retained across all namespaces; each
        stripe evicts least-recently-used entries past its share.  The
        default is generous enough that the repo's figure harnesses never
        evict (their caching behavior stays exactly as before the
        refactor); long-lived servers set it to their memory budget.
    """

    def __init__(self, stripes: int = 8, capacity: int = 4096) -> None:
        if stripes < 1:
            raise ValueError("stripes must be positive")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._stripes = tuple(_Stripe() for _ in range(stripes))
        self._per_stripe_capacity = max(1, -(-capacity // stripes))
        self.capacity = capacity
        self._plan_cache = None
        self._stats_lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}
        self._evictions = 0
        self._single_flight_waits = 0
        # Replay counts are mutable per-trace tallies, not cached values;
        # they live beside the store under their own lock.
        self._replay_lock = threading.Lock()
        self._replay_counts: dict[tuple, int] = {}

    # -- on-disk persistence -------------------------------------------
    def attach_plan_cache(self, plan_cache) -> None:
        """Back :data:`PERSISTED_NAMESPACES` with an on-disk plan store.

        Once attached, a single-flight leader consults the disk before
        running its factory (a cold process with a warm store performs
        zero record+compile work) and persists what the factory builds;
        :meth:`invalidate` evicts the file along with the memory entry.
        """
        self._plan_cache = plan_cache

    @property
    def plan_cache(self):
        """The attached :class:`~repro.simd.plan_cache.PlanCache` or None."""
        return self._plan_cache

    # -- the single definition of the cache keys -----------------------
    @staticmethod
    def structure_key(csr) -> str:
        """The structure-only signature (shape + rowptr + colidx)."""
        return signature(csr)

    @staticmethod
    def content_key(csr) -> str:
        """The value-inclusive signature (structure + stored values)."""
        return signature(csr, include_values=True)

    @classmethod
    def measure_key(
        cls, variant_name: str, slice_height: int, sigma: int,
        strict_alignment: bool, csr, block_shape: tuple[int, int] | None = None,
    ) -> tuple:
        """Key of a memoized default-input measurement (value-dependent)."""
        return (
            variant_name, slice_height, sigma, strict_alignment,
            cls.content_key(csr), block_shape,
        )

    @classmethod
    def prepare_key(
        cls, fmt: str, slice_height: int, sigma: int, csr,
        block_shape: tuple[int, int] | None = None,
    ) -> tuple:
        """Key of a prepared (converted) operator (value-dependent).

        ``block_shape`` is the β(r,c) block-dimension knob; it is ``None``
        for every format outside
        :data:`repro.mat.base.BLOCK_SHAPE_FORMATS`, so SELL-family keys
        are unaffected by the knob's existence.
        """
        return (fmt, slice_height, sigma, cls.content_key(csr), block_shape)

    @classmethod
    def trace_key(
        cls, variant_name: str, slice_height: int, sigma: int,
        strict_alignment: bool, csr, block_shape: tuple[int, int] | None = None,
    ) -> tuple:
        """Key of a recorded trace — *structural*: traces are
        value-independent, so a reassembled operator keeps its trace."""
        return (
            variant_name, slice_height, sigma, strict_alignment,
            cls.structure_key(csr), block_shape,
        )

    @classmethod
    def tune_key(
        cls, csr, slice_heights: tuple[int, ...], sigmas: tuple[int, ...],
        scale: float, policy: tuple,
    ) -> tuple:
        """Key of a SELL (C, sigma) sweep result.  Structural, plus the
        pricing policy (processor, memory mode, nprocs) the sweep ranked
        candidates under."""
        return (cls.structure_key(csr), slice_heights, sigmas, scale, policy)

    @classmethod
    def best_key(
        cls, csr, pool_names: tuple[str, ...], scale: float,
        verify_variants: bool, policy: tuple, knobs: tuple = (),
    ) -> tuple:
        """Key of an autotuned winning plan (structural + policy).

        ``knobs`` pins the searched knob space — the (slice_height,
        sigma, block_shape) candidate sets of
        :meth:`~repro.core.context.ExecutionContext.best_plan` — so a
        wider sweep never reuses a narrower sweep's winner.
        """
        return (
            cls.structure_key(csr), pool_names, scale, verify_variants,
            policy, knobs,
        )

    @classmethod
    def verify_key(
        cls, variant_name: str, csr, slice_height: int, sigma: int,
        strict_alignment: bool, block_shape: tuple[int, int] | None = None,
    ) -> tuple:
        """Key of a static-verification verdict (structural, policy-free:
        the verdict is a pure function of kernel + structure + execution
        policy, never of the machine pricing)."""
        return (
            variant_name, cls.structure_key(csr), slice_height, sigma,
            strict_alignment, block_shape,
        )

    @classmethod
    def certificate_key(
        cls, variant_name: str, csr, slice_height: int, sigma: int,
        strict_alignment: bool, block_shape: tuple[int, int] | None = None,
    ) -> tuple:
        """Key of a numerical rounding certificate — structural, like the
        trace it is derived from: the accumulation tree depends on the
        sparsity pattern, never on the coefficient values."""
        return (
            variant_name, cls.structure_key(csr), slice_height, sigma,
            strict_alignment, block_shape,
        )

    @staticmethod
    def default_x_key(n: int) -> tuple:
        """Key of the reproducible default input vector of length ``n``."""
        return (n,)

    # -- striping ------------------------------------------------------
    def _stripe_of(self, full_key: tuple) -> _Stripe:
        return self._stripes[hash(full_key) % len(self._stripes)]

    def _count_hit(self, namespace: str) -> None:
        with self._stats_lock:
            self._hits[namespace] = self._hits.get(namespace, 0) + 1
        obs_counter("registry.hits", labels={"namespace": namespace})

    def _count_miss(self, namespace: str) -> None:
        with self._stats_lock:
            self._misses[namespace] = self._misses.get(namespace, 0) + 1
        obs_counter("registry.misses", labels={"namespace": namespace})

    # -- core store ----------------------------------------------------
    def get_or_compute(
        self,
        namespace: str,
        key: tuple,
        factory: Callable[[], Any],
    ) -> Any:
        """The value under ``(namespace, key)``, computing it at most once.

        A hit returns the cached value.  On a miss the first caller
        becomes the *leader* and runs ``factory()`` outside the stripe
        lock; concurrent callers for the same key block until the leader
        finishes and then return the leader's value (counted as a
        single-flight wait).  A factory that raises caches nothing — the
        error propagates to the leader, and exactly one waiter is
        promoted to retry.
        """
        full_key = (namespace, *key)
        stripe = self._stripe_of(full_key)
        while True:
            with stripe.lock:
                current = stripe.entries.get(full_key)
                if isinstance(current, _Entry):
                    stripe.entries.move_to_end(full_key)
                    self._count_hit(namespace)
                    return current.value
                if current is None:
                    inflight = _Inflight()
                    stripe.entries[full_key] = inflight
                    break  # we are the leader
                waiter = current.event
            # Another thread is computing this key: wait, then re-read.
            with self._stats_lock:
                self._single_flight_waits += 1
            obs_counter(
                "registry.single_flight_waits",
                labels={"namespace": namespace},
            )
            waiter.wait()

        self._count_miss(namespace)
        try:
            value = _MISS
            if (
                self._plan_cache is not None
                and namespace in PERSISTED_NAMESPACES
            ):
                found, persisted = self._plan_cache.fetch(namespace, key)
                if found:
                    value = persisted
            persisted_hit = value is not _MISS
            if not persisted_hit:
                value = factory()
        except BaseException:
            with stripe.lock:
                if stripe.entries.get(full_key) is inflight:
                    del stripe.entries[full_key]
            inflight.event.set()
            raise
        with stripe.lock:
            if stripe.entries.get(full_key) is inflight:
                stripe.entries[full_key] = _Entry(value)
                stripe.entries.move_to_end(full_key)
                self._evict_locked(stripe)
        inflight.event.set()
        if (
            not persisted_hit
            and self._plan_cache is not None
            and namespace in PERSISTED_NAMESPACES
        ):
            # Best-effort: a failed write degrades to recompute-next-boot.
            self._plan_cache.store(namespace, key, value)
        return value

    def _evict_locked(self, stripe: _Stripe) -> None:
        """Drop LRU completed entries past the stripe's capacity share."""
        done = sum(
            1 for e in stripe.entries.values() if isinstance(e, _Entry)
        )
        if done <= self._per_stripe_capacity:
            return
        for key in list(stripe.entries):
            if done <= self._per_stripe_capacity:
                break
            if isinstance(stripe.entries[key], _Entry):
                del stripe.entries[key]
                done -= 1
                with self._stats_lock:
                    self._evictions += 1
                obs_counter("registry.evictions")

    def lookup(self, namespace: str, key: tuple) -> Any | None:
        """The cached value, or ``None`` (no computation, no hit/miss tick)."""
        full_key = (namespace, *key)
        stripe = self._stripe_of(full_key)
        with stripe.lock:
            entry = stripe.entries.get(full_key)
            if isinstance(entry, _Entry):
                stripe.entries.move_to_end(full_key)
                return entry.value
            return None

    def put(self, namespace: str, key: tuple, value: Any) -> None:
        """Store ``value`` unconditionally (replacing any entry)."""
        full_key = (namespace, *key)
        stripe = self._stripe_of(full_key)
        with stripe.lock:
            stripe.entries[full_key] = _Entry(value)
            stripe.entries.move_to_end(full_key)
            self._evict_locked(stripe)

    def invalidate(self, namespace: str, key: tuple) -> bool:
        """Drop a completed entry; True when something was removed.

        An inflight computation is left alone — its leader will publish,
        and a later invalidation can remove the published value.  For
        :data:`PERSISTED_NAMESPACES` with an attached plan cache the
        on-disk file is evicted too — a corrupted plan detected by the
        ABFT audit must never resurrect from disk in a later process.
        """
        full_key = (namespace, *key)
        stripe = self._stripe_of(full_key)
        with stripe.lock:
            entry = stripe.entries.get(full_key)
            removed = isinstance(entry, _Entry)
            if removed:
                del stripe.entries[full_key]
        if self._plan_cache is not None and namespace in PERSISTED_NAMESPACES:
            removed = self._plan_cache.evict(namespace, key) or removed
        return removed

    # -- replay tallies (mutable per-trace counters) -------------------
    def bump_replay(self, key: tuple) -> int:
        """Increment and return the replay count of a trace key."""
        with self._replay_lock:
            count = self._replay_counts.get(key, 0) + 1
            self._replay_counts[key] = count
            return count

    def clear_replay(self, key: tuple) -> None:
        """Forget the replay tally of an invalidated trace."""
        with self._replay_lock:
            self._replay_counts.pop(key, None)

    # -- introspection -------------------------------------------------
    def size(self, namespace: str | None = None) -> int:
        """Completed entries stored (in one namespace, or overall)."""
        total = 0
        for stripe in self._stripes:
            with stripe.lock:
                for full_key, entry in stripe.entries.items():
                    if not isinstance(entry, _Entry):
                        continue
                    if namespace is None or full_key[0] == namespace:
                        total += 1
        return total

    def keys(self, namespace: str) -> Iterable[tuple]:
        """Snapshot of the completed keys in one namespace."""
        out = []
        for stripe in self._stripes:
            with stripe.lock:
                out.extend(
                    full_key[1:]
                    for full_key, entry in stripe.entries.items()
                    if isinstance(entry, _Entry) and full_key[0] == namespace
                )
        return out

    def stats(self) -> dict:
        """Hit/miss/eviction/single-flight counters, JSON-safe."""
        entries = self.size()  # before the stats lock: size takes stripe locks
        with self._stats_lock:
            hits = dict(sorted(self._hits.items()))
            misses = dict(sorted(self._misses.items()))
            total_hits = sum(hits.values())
            total_misses = sum(misses.values())
            lookups = total_hits + total_misses
            out = {
                "hits": hits,
                "misses": misses,
                "hit_rate": total_hits / lookups if lookups else 0.0,
                "evictions": self._evictions,
                "single_flight_waits": self._single_flight_waits,
                "entries": entries,
                "capacity": self.capacity,
            }
        if self._plan_cache is not None:
            out["plan_cache"] = self._plan_cache.stats()
        return out

    def clear(self) -> None:
        """Drop every entry, tally, and statistic."""
        for stripe in self._stripes:
            with stripe.lock:
                stripe.entries.clear()
        with self._replay_lock:
            self._replay_counts.clear()
        with self._stats_lock:
            self._hits.clear()
            self._misses.clear()
            self._evictions = 0
            self._single_flight_waits = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SignatureRegistry(stripes={len(self._stripes)}, "
            f"capacity={self.capacity}, entries={self.size()})"
        )
