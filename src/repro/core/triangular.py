"""Triangular solves and ILU(0) for sliced ELLPACK — the paper's future work.

The conclusion of the paper names the open problem this module implements:
"In future work we will investigate further optimization opportunities for
the sliced ELLPACK format for other kernels such as (possibly incomplete)
LU decomposition and triangular solves ... It may be particularly
challenging to balance the higher generality of the CSR format with the
SpMV-centric nature of the sliced ELLPACK format."

The difficulty is structural: a triangular solve carries a dependency from
every row to the rows its off-diagonal entries reference, so rows cannot be
processed in arbitrary slice order.  The classical answer is **level
scheduling** (Saad, ch. 11): partition the rows into levels such that every
row depends only on rows in strictly earlier levels; rows *within* a level
are mutually independent and can be solved simultaneously — i.e. SELL-style,
C at a time, with gathers into the already-solved prefix of the solution.

:class:`SellTriangular` stores a triangular factor in exactly that form:
rows permuted level-major, sliced within levels (slices never straddle a
level boundary), the diagonal held separately as reciprocals so the kernel
multiplies instead of divides.  The instruction-level kernel
(:func:`solve_sell_triangular`) mirrors Algorithm 2's memory behaviour:
contiguous aligned loads of the factor, gathers into the solution vector.

The honest caveat the benchmarks quantify: for the banded matrices of the
paper's PDE regime the dependency chains are long, so levels are thin and
the achievable slice occupancy is far below SpMV's — precisely why the
paper shipped SpMV first and left the triangular kernels as future work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mat.aij import AijMat
from ..memory.spaces import aligned_alloc
from ..simd.engine import SimdEngine


# ---------------------------------------------------------------------------
# ILU(0) factorization into explicit L and U factors.
# ---------------------------------------------------------------------------

def ilu0(csr: AijMat) -> tuple[AijMat, AijMat]:
    """Zero-fill ILU: returns (L, U) with L unit-lower and U upper.

    The IKJ variant over the existing pattern; identical arithmetic to
    :class:`repro.ksp.pc.ilu.ILU0PC` (a test pins them together), but the
    factors come back as separate matrices so they can be converted to the
    level-scheduled SELL representation.
    """
    m, n = csr.shape
    if m != n:
        raise ValueError("ILU needs a square operator")
    rowptr, colidx = csr.rowptr, csr.colidx
    lu = csr.val.copy()
    diag_pos = np.full(m, -1, dtype=np.int64)
    for i in range(m):
        lo, hi = int(rowptr[i]), int(rowptr[i + 1])
        hits = np.nonzero(colidx[lo:hi] == i)[0]
        if hits.size == 0:
            raise ValueError(f"ILU(0) needs a stored diagonal (row {i})")
        diag_pos[i] = lo + int(hits[0])

    for i in range(1, m):
        lo, hi = int(rowptr[i]), int(rowptr[i + 1])
        row_cols = colidx[lo:hi]
        for kk in range(lo, hi):
            k = int(colidx[kk])
            if k >= i:
                break
            piv = lu[diag_pos[k]]
            if piv == 0.0:
                raise ZeroDivisionError(f"zero pivot at row {k}")
            lik = lu[kk] / piv
            lu[kk] = lik
            klo, khi = int(rowptr[k]), int(rowptr[k + 1])
            for jj in range(klo, khi):
                j = int(colidx[jj])
                if j <= k:
                    continue
                hit = np.searchsorted(row_cols, j)
                if hit < row_cols.shape[0] and row_cols[hit] == j:
                    lu[lo + hit] -= lik * lu[jj]

    l_rows, l_cols, l_vals = [], [], []
    u_rows, u_cols, u_vals = [], [], []
    for i in range(m):
        lo, hi = int(rowptr[i]), int(rowptr[i + 1])
        for kk in range(lo, hi):
            j = int(colidx[kk])
            if j < i:
                l_rows.append(i), l_cols.append(j), l_vals.append(lu[kk])
            else:
                u_rows.append(i), u_cols.append(j), u_vals.append(lu[kk])
        l_rows.append(i), l_cols.append(i), l_vals.append(1.0)
    lower = AijMat.from_coo((m, m), np.array(l_rows), np.array(l_cols),
                            np.array(l_vals), sum_duplicates=False)
    upper = AijMat.from_coo((m, m), np.array(u_rows), np.array(u_cols),
                            np.array(u_vals), sum_duplicates=False)
    return lower, upper


# ---------------------------------------------------------------------------
# Level scheduling.
# ---------------------------------------------------------------------------

def level_schedule(tri: AijMat, lower: bool) -> list[np.ndarray]:
    """Group the rows of a triangular matrix into dependency levels.

    Row ``i`` lands in level ``1 + max(level of rows it references)``;
    rows with no off-diagonal references form level 0.  For an upper
    factor the dependencies point to *larger* row indices, so the sweep
    runs backwards; the returned levels are always in solve order.
    """
    m, n = tri.shape
    if m != n:
        raise ValueError("level scheduling needs a square triangular matrix")
    level = np.zeros(m, dtype=np.int64)
    order = range(m) if lower else range(m - 1, -1, -1)
    for i in order:
        cols, _ = tri.get_row(i)
        deps = cols[cols < i] if lower else cols[cols > i]
        if deps.size:
            level[i] = int(level[deps].max()) + 1
    nlevels = int(level.max()) + 1 if m else 0
    return [np.nonzero(level == lvl)[0].astype(np.int64) for lvl in range(nlevels)]


# ---------------------------------------------------------------------------
# The SELL-packed triangular factor.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _LevelSlices:
    """Slice geometry of one level: [start, end) into the packed rows."""

    first_slice: int
    nslices: int


class SellTriangular:
    """A triangular factor packed level-major in sliced-ELLPACK layout.

    Off-diagonal entries only; the diagonal is stored as reciprocals in
    ``inv_diag`` (unit-diagonal factors store ones).  ``perm`` maps packed
    position -> original row.  Slices are padded to the slice height with
    zero coefficients whose column index points at the row itself — a safe,
    already-solved location by the time the slice executes, mirroring the
    SpMV padding rule of Section 5.5.
    """

    def __init__(self, tri: AijMat, lower: bool, slice_height: int = 8):
        m, n = tri.shape
        if m != n:
            raise ValueError("triangular solves need a square matrix")
        if slice_height < 1:
            raise ValueError("slice height must be positive")
        self.shape = (m, n)
        self.lower = lower
        self.slice_height = slice_height
        self.levels = level_schedule(tri, lower)

        diag = tri.diagonal()
        if np.any(diag == 0.0):
            raise ZeroDivisionError("triangular factor has a zero diagonal")
        self.inv_diag = 1.0 / diag

        c = slice_height
        perm_parts: list[np.ndarray] = []
        self.level_slices: list[_LevelSlices] = []
        slice_widths: list[int] = []
        slice_rows: list[np.ndarray] = []  # padded to C with -1 sentinels
        for rows in self.levels:
            first = len(slice_widths)
            for start in range(0, rows.size, c):
                chunk = rows[start : start + c]
                padded = np.full(c, -1, dtype=np.int64)
                padded[: chunk.size] = chunk
                lengths = [
                    self._offdiag_count(tri, int(r)) for r in chunk
                ]
                slice_widths.append(max(lengths) if lengths else 0)
                slice_rows.append(padded)
            perm_parts.append(rows)
            self.level_slices.append(
                _LevelSlices(first, len(slice_widths) - first)
            )
        self.perm = (
            np.concatenate(perm_parts) if perm_parts else np.zeros(0, np.int64)
        )

        self.sliceptr = np.zeros(len(slice_widths) + 1, dtype=np.int64)
        for s, width in enumerate(slice_widths):
            self.sliceptr[s + 1] = self.sliceptr[s] + width * c
        total = int(self.sliceptr[-1])
        self.val = aligned_alloc(total, np.float64, 64)
        self.colidx = aligned_alloc(total, np.int32, 64)
        self.slice_rows = slice_rows

        for s, padded_rows in enumerate(slice_rows):
            base = int(self.sliceptr[s])
            width = slice_widths[s]
            for lane, row in enumerate(padded_rows):
                if row < 0:
                    # Padding lane: zero coefficients, self-referencing
                    # columns (column 0 is always solved or irrelevant).
                    self.colidx[base + np.arange(width) * c + lane] = 0
                    continue
                cols, vals = tri.get_row(int(row))
                off = cols != row
                cols, vals = cols[off], vals[off]
                slots = base + np.arange(cols.size) * c + lane
                self.val[slots] = vals
                self.colidx[slots] = cols
                pad = base + np.arange(cols.size, width) * c + lane
                self.colidx[pad] = row  # solved by construction

    @staticmethod
    def _offdiag_count(tri: AijMat, row: int) -> int:
        cols, _ = tri.get_row(row)
        return int((cols != row).sum())

    # -- diagnostics the benchmarks report -------------------------------
    @property
    def nlevels(self) -> int:
        """Length of the dependency chain: the serial bottleneck."""
        return len(self.levels)

    @property
    def mean_level_width(self) -> float:
        """Average rows per level: the available SELL parallelism."""
        if not self.levels:
            return 0.0
        return float(np.mean([r.size for r in self.levels]))

    @property
    def slice_occupancy(self) -> float:
        """Fraction of slice lanes holding real rows (1.0 = SpMV-like)."""
        total_lanes = len(self.slice_rows) * self.slice_height
        if total_lanes == 0:
            return 0.0
        real = sum(int((rows >= 0).sum()) for rows in self.slice_rows)
        return real / total_lanes

    # -- fast path ----------------------------------------------------------
    def solve(self, b: np.ndarray, x: np.ndarray | None = None) -> np.ndarray:
        """x = T^-1 b by level sweeps (vectorized within each level)."""
        m = self.shape[0]
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (m,):
            raise ValueError("right-hand side does not conform")
        if x is None:
            x = np.zeros(m, dtype=np.float64)
        c = self.slice_height
        for level in self.level_slices:
            for s in range(level.first_slice, level.first_slice + level.nslices):
                base, end = int(self.sliceptr[s]), int(self.sliceptr[s + 1])
                rows = self.slice_rows[s]
                live = rows >= 0
                acc = np.zeros(c)
                for idx in range(base, end, c):
                    vals = self.val[idx : idx + c]
                    cols = self.colidx[idx : idx + c]
                    acc += vals * x[cols]
                out_rows = rows[live]
                x[out_rows] = (b[out_rows] - acc[live]) * self.inv_diag[out_rows]
        return x


def solve_sell_triangular(
    engine: SimdEngine, tri: SellTriangular, b: np.ndarray, x: np.ndarray
) -> None:
    """Instruction-level level-scheduled triangular solve.

    Per slice: Algorithm-2-style aligned loads of the factor columns,
    gathers into the solved prefix of ``x``, one FMA per column; then the
    combined subtract-and-scale ``x = (b - acc) * inv_diag`` as a load,
    a subtract (vector add of the negated accumulator), and a multiply,
    scatter-stored to the level's rows.
    """
    c = tri.slice_height
    lanes = engine.lanes
    if not engine.isa.is_vector:
        x[:] = tri.solve(b)
        # Scalar accounting: one load+fma per stored slot, one store per row.
        counters = engine.counters
        slots = int(tri.sliceptr[-1])
        counters.scalar_load += 3 * slots
        counters.scalar_fma += slots
        counters.scalar_store += tri.shape[0]
        return
    if c % lanes:
        raise ValueError(
            f"slice height {c} must be a multiple of the vector length {lanes}"
        )
    counters = engine.counters
    for level in tri.level_slices:
        for s in range(level.first_slice, level.first_slice + level.nslices):
            base = int(tri.sliceptr[s])
            end = int(tri.sliceptr[s + 1])
            width = (end - base) // c
            rows = tri.slice_rows[s]
            for strip in range(0, c, lanes):
                acc = engine.setzero()
                idx = base + strip
                for _ in range(width):
                    vec_vals = engine.load_aligned(tri.val, idx)
                    vec_idx = engine.load_index(tri.colidx, idx)
                    vec_x = engine.gather_auto(x, vec_idx)
                    acc = engine.fmadd_auto(vec_vals, vec_x, acc)
                    idx += c
                    counters.body_iterations += 1
                # x[rows] = (b[rows] - acc) * inv_diag[rows]: the scatter
                # side of the solve is scalar (rows are level-permuted).
                for lane in range(lanes):
                    row = int(rows[strip + lane])
                    if row < 0:
                        continue
                    rhs = engine.scalar_load_indep(b, row)
                    diag = engine.scalar_load_indep(tri.inv_diag, row)
                    value = engine.scalar_fma_indep(
                        rhs - float(acc.data[lane]), diag, 0.0
                    )
                    engine.scalar_store(x, row, value)


class SellILU0PC:
    """ILU(0) preconditioning with both triangular solves in SELL form.

    Drop-in alternative to :class:`repro.ksp.pc.ilu.ILU0PC`: identical
    factors (a test pins the applied results together to rounding), but
    the forward/backward sweeps run over level-scheduled sliced-ELLPACK
    factors — the future-work kernel, made concrete.
    """

    def __init__(self, slice_height: int = 8):
        self.slice_height = slice_height
        self._lower: SellTriangular | None = None
        self._upper: SellTriangular | None = None

    def setup(self, op) -> None:
        """Factor and pack both triangles."""
        csr = op.to_csr() if hasattr(op, "to_csr") else None
        if csr is None:
            raise TypeError("SellILU0PC needs an operator exposing to_csr()")
        lower, upper = ilu0(csr)
        self._lower = SellTriangular(lower, lower=True,
                                     slice_height=self.slice_height)
        self._upper = SellTriangular(upper, lower=False,
                                     slice_height=self.slice_height)

    def apply(self, r: np.ndarray) -> np.ndarray:
        """z = U^-1 L^-1 r via the two level-scheduled sweeps."""
        if self._lower is None or self._upper is None:
            raise RuntimeError("SellILU0PC.apply before setup")
        y = self._lower.solve(r)
        return self._upper.solve(y)
