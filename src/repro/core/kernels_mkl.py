"""The Intel MKL comparison series, modeled.

The paper benchmarks MKL's CSR SpMV (``mkl_?csrmv`` via PETSc's AIJMKL
type, inspector-executor disabled with ``-mat_aijmkl_no_spmv2``) and finds
it "about 10 to 20 percent slower" than PETSc's compiler-optimized CSR on
every machine (Sections 7.2, 7.4).  MKL is closed source, so the model
follows the paper's own characterization: the MKL instruction stream is
taken to be the compiler-CSR stream, and the library overhead is applied
as a fixed efficiency factor at prediction time.

``MKL_EFFICIENCY = 0.85`` sits at the midpoint of the paper's 10-20%
range; EXPERIMENTS.md records the resulting series against Figure 8.
"""

from __future__ import annotations

import numpy as np

from ..mat.aij import AijMat
from ..simd.engine import SimdEngine
from .kernels_csr import spmv_csr_compiler

#: Fraction of the PETSc-baseline-CSR speed MKL achieves (paper: 80-90%).
MKL_EFFICIENCY = 0.85


def spmv_csr_mkl(engine: SimdEngine, a: AijMat, x: np.ndarray, y: np.ndarray) -> None:
    """MKL-modeled CSR SpMV: compiler-CSR instruction stream.

    Numerics are exact; the 0.85 efficiency factor is applied by the
    performance model (pass ``efficiency=MKL_EFFICIENCY`` to
    :meth:`repro.machine.perf_model.PerfModel.predict`), keeping the
    instruction counters honest and the overhead explicit.
    """
    spmv_csr_compiler(engine, a, x, y)
