"""The paper's contribution: SELL format, vectorized kernels, traffic model.

Everything the paper adds to PETSc lives here: the sliced-ELLPACK matrix
(:class:`~repro.core.sell.SellMat`), the hand-vectorized SpMV kernels for
CSR (Algorithm 1) and SELL (Algorithm 2) across AVX/AVX2/AVX-512, the
Section 6 memory-traffic model, the kernel-variant registry matching the
figure legends, and the measure/predict API the benchmarks drive.
"""

from .analytic import (
    counters_match,
    predict_csr_counters,
    predict_sell_counters,
)
from .autotune import TuneCandidate, TuneResult, tune_sell
from .context import ExecutionContext
from .esb import EsbMat
from .kernels_baij import simd_efficiency, spmv_baij
from .dispatch import (
    ALL_VARIANTS,
    BAIJ_AVX512,
    CSR_AVX,
    CSR_AVX2,
    CSR_AVX512,
    CSR_BASELINE,
    CSR_NOVEC,
    CSR_PERM,
    ELLPACK_AVX512,
    ELLPACK_R_AVX512,
    ESB_AVX512,
    FIGURE11_VARIANTS,
    FIGURE8_VARIANTS,
    HYBRID_AVX512,
    MKL_CSR,
    SELL_AVX,
    SELL_AVX2,
    SELL_AVX512,
    SELL_NOVEC,
    KernelVariant,
    get_variant,
    register_variant,
    registered_variants,
)
from .kernels_csr import (
    spmv_csr_compiler,
    spmv_csr_perm,
    spmv_csr_scalar,
    spmv_csr_vectorized,
)
from .kernels_ellpack import spmv_ellpack, spmv_ellpack_r, spmv_hybrid
from .kernels_mkl import MKL_EFFICIENCY, spmv_csr_mkl
from .kernels_sell import spmv_sell, spmv_sell_esb
from .registry import SignatureRegistry
from .sell import SellMat
from .spmv import SpmvMeasurement, measure, predict, spmv
from .transpose import (
    csr_multiply_transpose,
    sell_multiply_transpose,
    spmv_csr_transpose,
    spmv_sell_transpose,
)
from .triangular import (
    SellILU0PC,
    SellTriangular,
    ilu0,
    level_schedule,
    solve_sell_triangular,
)
from .traffic import (
    TrafficEstimate,
    csr_traffic,
    gray_scott_intensity,
    largest_grid_with_32bit_indices,
    sell_traffic,
    traffic_for,
)

__all__ = [
    "ALL_VARIANTS",
    "BAIJ_AVX512",
    "EsbMat",
    "CSR_AVX",
    "CSR_AVX2",
    "CSR_AVX512",
    "CSR_BASELINE",
    "CSR_NOVEC",
    "CSR_PERM",
    "ELLPACK_AVX512",
    "ELLPACK_R_AVX512",
    "ESB_AVX512",
    "ExecutionContext",
    "FIGURE11_VARIANTS",
    "FIGURE8_VARIANTS",
    "HYBRID_AVX512",
    "KernelVariant",
    "MKL_CSR",
    "MKL_EFFICIENCY",
    "SELL_AVX",
    "SELL_AVX2",
    "SELL_AVX512",
    "SELL_NOVEC",
    "SellILU0PC",
    "SellMat",
    "SignatureRegistry",
    "SellTriangular",
    "SpmvMeasurement",
    "TuneCandidate",
    "TuneResult",
    "TrafficEstimate",
    "counters_match",
    "csr_multiply_transpose",
    "csr_traffic",
    "get_variant",
    "gray_scott_intensity",
    "ilu0",
    "largest_grid_with_32bit_indices",
    "level_schedule",
    "measure",
    "predict_csr_counters",
    "predict_sell_counters",
    "predict",
    "register_variant",
    "registered_variants",
    "sell_multiply_transpose",
    "sell_traffic",
    "solve_sell_triangular",
    "simd_efficiency",
    "spmv",
    "spmv_baij",
    "spmv_ellpack",
    "spmv_ellpack_r",
    "spmv_hybrid",
    "spmv_csr_compiler",
    "spmv_csr_transpose",
    "spmv_csr_mkl",
    "spmv_csr_perm",
    "spmv_csr_scalar",
    "spmv_csr_vectorized",
    "spmv_sell",
    "spmv_sell_esb",
    "spmv_sell_transpose",
    "traffic_for",
    "tune_sell",
]
