"""Event logging in the style of PETSc's ``-log_view`` (compatibility shim).

The profiler grew into the full observability layer at :mod:`repro.obs`:
the same :class:`EventLog` with PETSc log stages added, plus metrics,
Chrome-trace timelines, and per-rank reductions.  This module keeps the
original import path working — ``repro.profiling.EventLog`` *is*
``repro.obs.EventLog``, and the flat (stage-free) API is unchanged: code
that never pushes a stage records into the implicit ``"Main Stage"``
exactly as before.

New code should import from :mod:`repro.obs` directly.
"""

from __future__ import annotations

import warnings

from .obs.eventlog import MAIN_STAGE, EventLog, EventRecord, LogStage, StageRecord

__all__ = ["MAIN_STAGE", "EventLog", "EventRecord", "LogStage", "StageRecord"]

warnings.warn(
    "repro.profiling is a compatibility shim; import EventLog (and the "
    "stage/metrics/timeline layers around it) from repro.obs instead",
    DeprecationWarning,
    stacklevel=2,
)
