"""Event logging in the style of PETSc's ``-log_view``.

The paper's artifact statement points at published log files ("The log
files contain configuration options, command line options used to run the
tests and profiling details") — PETSc's event log is how the authors
attribute time to MatMult versus everything else in Figure 10.  This
module reproduces that instrument: named events with nested timing, call
counts, flop registration, and a summary table in the familiar layout.

Events nest; self-time is attributed to the innermost active event, so the
summary's percentages add up the way PETSc's do.  Use either the context
manager or the decorator::

    log = EventLog()
    with log.event("MatMult", flops=2 * nnz):
        y = a.multiply(x)
    print(log.render())
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class EventRecord:
    """Accumulated statistics for one named event."""

    name: str
    calls: int = 0
    total_seconds: float = 0.0    #: inclusive (with children)
    self_seconds: float = 0.0     #: exclusive (innermost attribution)
    flops: int = 0

    @property
    def gflops_rate(self) -> float:
        """Registered flops over self time, in Gflop/s."""
        if self.self_seconds <= 0:
            return 0.0
        return self.flops / self.self_seconds / 1e9


@dataclass
class EventLog:
    """A -log_view-style event profiler."""

    clock: Callable[[], float] = time.perf_counter
    _records: dict[str, EventRecord] = field(default_factory=dict)
    _stack: list[tuple[str, float, float]] = field(default_factory=list)
    _created: float | None = None

    def __post_init__(self) -> None:
        self._created = self.clock()

    def record(self, name: str) -> EventRecord:
        """The (auto-created) record for ``name``."""
        if name not in self._records:
            self._records[name] = EventRecord(name=name)
        return self._records[name]

    @contextmanager
    def event(self, name: str, flops: int = 0) -> Iterator[EventRecord]:
        """Time a region; nested regions subtract from the parent's self time."""
        rec = self.record(name)
        start = self.clock()
        self._stack.append((name, start, 0.0))
        try:
            yield rec
        finally:
            _, _, child_time = self._stack.pop()
            elapsed = self.clock() - start
            rec.calls += 1
            rec.total_seconds += elapsed
            rec.self_seconds += elapsed - child_time
            rec.flops += flops
            if self._stack:
                parent_name, parent_start, parent_children = self._stack[-1]
                self._stack[-1] = (
                    parent_name,
                    parent_start,
                    parent_children + elapsed,
                )

    def bump(self, name: str, count: int = 1) -> EventRecord:
        """Count an occurrence of ``name`` without timing it.

        Resilience events (fault injections, detections, recoveries) are
        instantaneous from the profiler's point of view; they show up in
        the summary with call counts and zero time, the way PETSc logs
        stage markers.
        """
        rec = self.record(name)
        rec.calls += count
        return rec

    def timed(self, name: str, flops: int = 0) -> Callable[[Callable[..., T]], Callable[..., T]]:
        """Decorator form of :meth:`event`."""

        def wrap(fn: Callable[..., T]) -> Callable[..., T]:
            @functools.wraps(fn)
            def inner(*args, **kwargs) -> T:
                with self.event(name, flops=flops):
                    return fn(*args, **kwargs)

            return inner

        return wrap

    # -- reporting ---------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        """Time since the log was created."""
        return self.clock() - (self._created or 0.0)

    def summary(self) -> list[EventRecord]:
        """Records sorted by self time, descending."""
        return sorted(
            self._records.values(), key=lambda r: r.self_seconds, reverse=True
        )

    def fraction(self, name: str) -> float:
        """Self time of ``name`` as a fraction of total logged self time."""
        total = sum(r.self_seconds for r in self._records.values())
        if total <= 0:
            return 0.0
        return self.record(name).self_seconds / total

    def render(self) -> str:
        """The -log_view style summary table."""
        from .bench.report import format_table

        total = sum(r.self_seconds for r in self._records.values()) or 1.0
        rows = []
        for rec in self.summary():
            rows.append(
                (
                    rec.name,
                    rec.calls,
                    f"{rec.total_seconds:.4f}",
                    f"{rec.self_seconds:.4f}",
                    f"{100 * rec.self_seconds / total:.0f}%",
                    f"{rec.gflops_rate:.2f}" if rec.flops else "-",
                )
            )
        return format_table(
            ("event", "calls", "time [s]", "self [s]", "%self", "Gflop/s"),
            rows,
            title="Event log (PETSc -log_view style)",
        )

    def reset(self) -> None:
        """Clear all records (open events keep running)."""
        self._records.clear()
        self._created = self.clock()
