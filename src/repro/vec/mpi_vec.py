"""Distributed vectors over the simulated communicator.

An :class:`MPIVec` owns the block of entries its rank is assigned by a
:class:`~repro.comm.partition.RowLayout` (conforming with the row
distribution of the matrices, paper Section 2.1).  Reductions — dots and
norms — combine local contributions with a deterministic ``allreduce``;
everything else is local and delegates to the sequential operations.
"""

from __future__ import annotations

import numpy as np

from ..comm.communicator import Comm
from ..comm.partition import RowLayout
from .vector import SeqVec


class MPIVec:
    """One rank's share of a distributed vector."""

    def __init__(self, comm: Comm, layout: RowLayout, local: np.ndarray | None = None):
        self.comm = comm
        self.layout = layout
        n_local = layout.local_size(comm.rank)
        if local is None:
            self.local = SeqVec(n_local)
        else:
            if local.shape[0] != n_local:
                raise ValueError(
                    f"local block has {local.shape[0]} entries, layout says {n_local}"
                )
            self.local = SeqVec.from_array(local)

    # -- construction -----------------------------------------------------
    @classmethod
    def from_global(cls, comm: Comm, layout: RowLayout, global_array: np.ndarray) -> "MPIVec":
        """Each rank slices its owned block from a replicated global array."""
        start, end = layout.range_of(comm.rank)
        return cls(comm, layout, np.asarray(global_array, dtype=np.float64)[start:end])

    def duplicate(self) -> "MPIVec":
        """A conforming zeroed vector."""
        return MPIVec(self.comm, self.layout)

    def copy(self) -> "MPIVec":
        """A deep copy."""
        return MPIVec(self.comm, self.layout, self.local.array)

    # -- shape --------------------------------------------------------------
    @property
    def size_global(self) -> int:
        """Global length."""
        return self.layout.n_global

    @property
    def size_local(self) -> int:
        """Entries owned by this rank."""
        return self.local.size

    @property
    def owned_range(self) -> tuple[int, int]:
        """Global ``[start, end)`` owned here."""
        return self.layout.range_of(self.comm.rank)

    # -- local (embarrassingly parallel) ops --------------------------------
    def set(self, alpha: float) -> None:
        """Fill with a scalar."""
        self.local.set(alpha)

    def scale(self, alpha: float) -> None:
        """x <- alpha x."""
        self.local.scale(alpha)

    def axpy(self, alpha: float, x: "MPIVec") -> None:
        """y <- alpha x + y."""
        self.local.axpy(alpha, x.local)

    def aypx(self, alpha: float, x: "MPIVec") -> None:
        """y <- x + alpha y."""
        self.local.aypx(alpha, x.local)

    def pointwise_mult(self, x: "MPIVec", y: "MPIVec") -> None:
        """w_i <- x_i y_i."""
        self.local.pointwise_mult(x.local, y.local)

    # -- reductions ----------------------------------------------------------
    def dot(self, other: "MPIVec") -> float:
        """Global inner product (one allreduce)."""
        return float(self.comm.allreduce(self.local.dot(other.local)))

    def norm(self, kind: str = "2") -> float:
        """Global norm of the distributed vector."""
        if kind == "2":
            sq = self.comm.allreduce(self.local.dot(self.local))
            return float(np.sqrt(max(sq, 0.0)))
        if kind == "1":
            return float(self.comm.allreduce(self.local.norm("1")))
        if kind == "inf":
            return float(self.comm.allreduce(self.local.norm("inf"), op="max"))
        raise ValueError(f"unknown norm kind {kind!r}")

    def to_global(self) -> np.ndarray:
        """Gather the full vector on every rank (testing/diagnostics only)."""
        pieces = self.comm.allgather(self.local.array)
        return np.concatenate(pieces)
