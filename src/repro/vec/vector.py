"""Sequential vectors: the Vec layer of the mini-PETSc.

A :class:`SeqVec` wraps a 64-byte-aligned buffer (allocated through
:func:`repro.memory.aligned_alloc`, the model of PETSc's
``--with-mem-align=64`` fix from paper Section 3.1) and provides the BLAS-1
operations the Krylov solvers consume.  Operations are in-place where PETSc's
are, and every method validates conformance so dimension bugs surface at the
call site rather than deep inside a solve.
"""

from __future__ import annotations

import numpy as np

from ..memory.spaces import aligned_alloc


class SeqVec:
    """A dense local vector with PETSc-style operations."""

    def __init__(self, n: int | np.ndarray, alignment: int = 64):
        if isinstance(n, np.ndarray):
            if n.ndim != 1:
                raise ValueError("vector data must be one-dimensional")
            self.array = aligned_alloc(n.shape[0], np.float64, alignment)
            self.array[:] = n
        else:
            if n < 0:
                raise ValueError("vector length must be non-negative")
            self.array = aligned_alloc(n, np.float64, alignment)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_array(cls, data: np.ndarray) -> "SeqVec":
        """Copy an existing array into an aligned vector."""
        return cls(np.asarray(data, dtype=np.float64))

    def duplicate(self) -> "SeqVec":
        """A new vector with the same layout, zeroed (VecDuplicate)."""
        return SeqVec(self.size)

    def copy(self) -> "SeqVec":
        """A deep copy (VecCopy into a fresh vector)."""
        return SeqVec.from_array(self.array)

    # -- shape ------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of entries."""
        return self.array.shape[0]

    def _check_conforming(self, other: "SeqVec") -> None:
        if self.size != other.size:
            raise ValueError(
                f"nonconforming vectors: {self.size} vs {other.size}"
            )

    # -- BLAS-1 -----------------------------------------------------------
    def set(self, alpha: float) -> None:
        """VecSet: fill with a scalar."""
        self.array[:] = alpha

    def scale(self, alpha: float) -> None:
        """VecScale: x <- alpha x (in place)."""
        self.array *= alpha

    def axpy(self, alpha: float, x: "SeqVec") -> None:
        """VecAXPY: y <- alpha x + y (in place)."""
        self._check_conforming(x)
        self.array += alpha * x.array

    def aypx(self, alpha: float, x: "SeqVec") -> None:
        """VecAYPX: y <- x + alpha y (in place)."""
        self._check_conforming(x)
        self.array *= alpha
        self.array += x.array

    def waxpy(self, alpha: float, x: "SeqVec", y: "SeqVec") -> None:
        """VecWAXPY: w <- alpha x + y (this vector is w)."""
        self._check_conforming(x)
        self._check_conforming(y)
        np.multiply(x.array, alpha, out=self.array)
        self.array += y.array

    def pointwise_mult(self, x: "SeqVec", y: "SeqVec") -> None:
        """VecPointwiseMult: w_i <- x_i * y_i."""
        self._check_conforming(x)
        self._check_conforming(y)
        np.multiply(x.array, y.array, out=self.array)

    def dot(self, other: "SeqVec") -> float:
        """VecDot: the Euclidean inner product."""
        self._check_conforming(other)
        return float(self.array @ other.array)

    def norm(self, kind: str = "2") -> float:
        """VecNorm: ``"2"``, ``"1"``, or ``"inf"``."""
        if kind == "2":
            return float(np.linalg.norm(self.array))
        if kind == "1":
            return float(np.abs(self.array).sum())
        if kind == "inf":
            return float(np.abs(self.array).max()) if self.size else 0.0
        raise ValueError(f"unknown norm kind {kind!r}")

    def reciprocal(self) -> None:
        """VecReciprocal: x_i <- 1/x_i (zeros are left untouched, as PETSc)."""
        nz = self.array != 0.0
        self.array[nz] = 1.0 / self.array[nz]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SeqVec(size={self.size})"
