"""Vectors: sequential (aligned) and distributed, PETSc Vec style."""

from .mpi_vec import MPIVec
from .vector import SeqVec

__all__ = ["MPIVec", "SeqVec"]
