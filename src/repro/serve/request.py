"""Request/response types of the serving front door.

A :class:`SolveRequest` is what a tenant submits to the
:class:`~repro.serve.server.SolveService`: an assembled CSR operator plus
one vector — the input ``x`` of an SpMV product, or the right-hand side
``b`` of a linear solve — under that tenant's identity, priority, and
deadline.  The service answers with a :class:`SolveResponse` whose
``status`` says what actually happened: served, shed at admission,
deadline-expired, or failed in compute.

Requests are deliberately operator-carrying rather than handle-carrying:
the service keys every cache by the operator's sparsity signature
(:meth:`repro.core.registry.SignatureRegistry.content_key`), so two
tenants submitting structurally identical operators share format
conversions, autotune decisions, and — for identical *values* — one
batched SpMM pass, without ever having coordinated on a handle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..mat.aij import AijMat


class RequestKind(enum.Enum):
    """What the tenant is asking for."""

    #: One product ``y = A @ x``; batchable with same-operator requests.
    SPMV = "spmv"
    #: One Krylov solve ``A x = b`` (GMRES under the shard's context).
    SOLVE = "solve"


class ResponseStatus(enum.Enum):
    """Outcome of one request's trip through the service."""

    OK = "ok"
    #: Refused at admission (queue full, tenant cap, overload shedding).
    REJECTED = "rejected"
    #: The tenant's deadline expired before the result was ready.
    TIMEOUT = "timeout"
    #: The compute itself raised (bad operator, solver breakdown, ...).
    ERROR = "error"


@dataclass
class SolveRequest:
    """One unit of tenant work.

    Parameters
    ----------
    tenant:
        Tenant identity; drives sharding, per-tenant QoS accounting, and
        admission-control caps.
    mat:
        The assembled CSR operator.
    payload:
        The vector: ``x`` for :attr:`RequestKind.SPMV`, ``b`` for
        :attr:`RequestKind.SOLVE`.
    kind:
        What to do with the pair.
    priority:
        Larger is more important.  Under overload, admission sheds the
        lowest priorities first; within a drained batch window, higher
        priorities are planned first.
    timeout:
        Seconds the tenant is willing to wait end-to-end; ``None`` waits
        indefinitely.
    """

    tenant: str
    mat: AijMat
    payload: np.ndarray
    kind: RequestKind = RequestKind.SPMV
    priority: int = 0
    timeout: float | None = None
    #: Monotonic admission sequence, stamped by the service; ties in
    #: priority order are broken first-come-first-served.
    seq: int = field(default=0, compare=False)


@dataclass
class SolveResponse:
    """What came back.

    ``batch_width`` reports how many same-operator requests shared the
    SpMM pass that produced this result (1 for unbatched and for solves)
    — the occupancy the benchmark aggregates.  ``result`` is ``None``
    unless ``status`` is :attr:`ResponseStatus.OK`.
    """

    status: ResponseStatus
    result: np.ndarray | None = None
    tenant: str = ""
    kind: RequestKind = RequestKind.SPMV
    shard: int = -1
    batch_width: int = 1
    #: Human-readable disposition: rejection reason, solver convergence
    #: reason, or the error text.
    detail: str = ""

    @property
    def ok(self) -> bool:
        """True when the request was actually served."""
        return self.status is ResponseStatus.OK
