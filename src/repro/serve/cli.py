"""``python -m repro serve`` — run the serving benchmark / smoke gate.

Modes
-----
``--smoke`` (default)
    CI-sized closed-loop traffic comparison: the batching service versus
    a one-at-a-time baseline, with the acceptance gates of
    :mod:`repro.bench.serve_traffic` (throughput speedup, cache hit
    rate, single-flight, p95 ceiling).  Writes ``BENCH_serve.json`` and
    exits non-zero when a gate fails.
``--json PATH``
    Redirect the report file.
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    """Dispatch the serve subcommand; returns the process exit code."""
    args = list(sys.argv[1:] if argv is None else argv)
    if "-h" in args or "--help" in args:
        print(__doc__)
        return 0
    known = {"--smoke", "--json"}
    position = 0
    forwarded: list[str] = []
    while position < len(args):
        arg = args[position]
        if arg == "--json":
            if position + 1 >= len(args):
                print("--json needs a path", file=sys.stderr)
                return 2
            forwarded += ["--json", args[position + 1]]
            position += 2
            continue
        if arg not in known:
            print(
                f"unknown serve option {arg!r}; see 'serve --help'",
                file=sys.stderr,
            )
            return 2
        position += 1

    from ..bench.serve_traffic import main as traffic_main

    return traffic_main(forwarded)
