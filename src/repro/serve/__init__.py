"""Async multi-tenant solve service over the shared signature registry.

``repro.serve`` turns the execution stack into a long-lived service: an
asyncio front door (:class:`~repro.serve.server.SolveService`) accepting
SpMV and linear-solve requests from many tenants, deduplicating and
batching same-operator products into single multi-vector SpMM passes,
sharding tenants across context views (and optionally simulated SPMD
worlds), and enforcing per-tenant QoS — admission control, priorities,
deadlines — with fault-framework-backed graceful degradation under
overload.  The load generator and acceptance gates live in
:mod:`repro.bench.serve_traffic` (``python -m repro serve --smoke``).

Every cache the service touches lives in one
:class:`~repro.core.registry.SignatureRegistry`, so tenants pay each
structure's preparation cost exactly once service-wide.
"""

from .batcher import Batch, SignatureBatcher
from .qos import AdmissionController, TenantPolicy
from .request import (
    RequestKind,
    ResponseStatus,
    SolveRequest,
    SolveResponse,
)
from .server import SolveService

__all__ = [
    "AdmissionController",
    "Batch",
    "RequestKind",
    "ResponseStatus",
    "SignatureBatcher",
    "SolveRequest",
    "SolveResponse",
    "SolveService",
    "TenantPolicy",
]
