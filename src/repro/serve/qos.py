"""Per-tenant QoS: admission, caps, overload shedding, circuit breaking.

The :class:`AdmissionController` is the service's front gate.  It keeps
three invariants a multi-tenant server owes its tenants:

* **bounded queue** — total admitted-but-unfinished requests never exceed
  ``queue_cap``, so the service's memory and tail latency stay bounded
  however hard clients push;
* **tenant isolation** — no tenant holds more than its policy's
  ``max_inflight`` slots, so one aggressive tenant cannot starve the
  rest;
* **graceful degradation** — past the shed watermark the controller
  refuses the lowest-priority work *before* the queue is full, and it
  reports the transition into and out of overload through the fault
  framework (:mod:`repro.faults.events`), the same ``degraded`` /
  ``recovered`` vocabulary the resilient solve stack uses.  An overload
  is an environmental fault; shedding is the planned response to it.

The :class:`CircuitBreaker` adds the chaos-hardening half of the story:
a tenant whose requests keep failing (timeouts, compute errors — the
signature of a shard fighting a shrunken or sick world) is *opened*
after a run of consecutive failures, its traffic refused instantly
instead of queueing up to time out again.  The breaker is deterministic
by construction — states advance on request counts, never on wall-clock
time — so chaos campaigns replay bit-identically: ``cooldown`` refused
requests buy one half-open probe, and the probe's outcome closes or
re-opens the circuit.

Admission is thread-safe (one lock; admission decisions are tiny) and
purely synchronous — the asyncio server calls it inline before queueing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..faults.events import emit as emit_fault_event
from ..obs.observer import obs_counter
from .request import SolveRequest


@dataclass(frozen=True)
class TenantPolicy:
    """What one tenant is entitled to.

    ``max_inflight`` caps the tenant's admitted-but-unfinished requests.
    ``min_priority_under_load`` lets a tenant mark its own traffic as
    load-sheddable below a threshold: requests with priority strictly
    below it are shed *whenever the service is past the watermark*, not
    just at the global shed priority.
    """

    max_inflight: int = 64
    min_priority_under_load: int | None = None


class AdmissionController:
    """Synchronous admission gate with overload shedding.

    Parameters
    ----------
    queue_cap:
        Hard cap on admitted-but-unfinished requests across all tenants.
    shed_watermark:
        Fraction of ``queue_cap`` past which the controller enters the
        *overloaded* state and starts shedding.
    shed_priority:
        While overloaded, requests with priority <= this are refused.
    policies:
        Per-tenant :class:`TenantPolicy` overrides; unknown tenants get
        ``default_policy``.
    """

    def __init__(
        self,
        queue_cap: int = 256,
        shed_watermark: float = 0.75,
        shed_priority: int = 0,
        policies: dict[str, TenantPolicy] | None = None,
        default_policy: TenantPolicy = TenantPolicy(),
    ) -> None:
        if queue_cap < 1:
            raise ValueError("queue_cap must be positive")
        if not 0.0 < shed_watermark <= 1.0:
            raise ValueError("shed_watermark must be in (0, 1]")
        self.queue_cap = queue_cap
        self.shed_watermark = shed_watermark
        self.shed_priority = shed_priority
        self.policies = dict(policies or {})
        self.default_policy = default_policy
        self._lock = threading.Lock()
        self._inflight: dict[str, int] = {}
        self._depth = 0
        self._overloaded = False
        self._admitted = 0
        self._rejected = 0

    def policy_for(self, tenant: str) -> TenantPolicy:
        """The tenant's policy (the default when none was registered)."""
        return self.policies.get(tenant, self.default_policy)

    # -- the gate ------------------------------------------------------
    def try_admit(self, request: SolveRequest) -> str | None:
        """Admit ``request`` or return the human-readable refusal reason.

        On admission the caller owns one slot and MUST call
        :meth:`release` exactly once when the request finishes (served,
        timed out, or errored).
        """
        with self._lock:
            reason = self._refusal_locked(request)
            if reason is None:
                self._inflight[request.tenant] = (
                    self._inflight.get(request.tenant, 0) + 1
                )
                self._depth += 1
                self._admitted += 1
                self._note_load_locked()
            else:
                self._rejected += 1
        if reason is None:
            obs_counter("serve.admitted", labels={"tenant": request.tenant})
        else:
            obs_counter("serve.rejected", labels={"tenant": request.tenant})
        return reason

    def _refusal_locked(self, request: SolveRequest) -> str | None:
        if self._depth >= self.queue_cap:
            return f"queue full ({self.queue_cap} inflight)"
        policy = self.policy_for(request.tenant)
        if self._inflight.get(request.tenant, 0) >= policy.max_inflight:
            return (
                f"tenant {request.tenant!r} at its inflight cap "
                f"({policy.max_inflight})"
            )
        if self._depth >= self._watermark_depth():
            floor = self.shed_priority
            if policy.min_priority_under_load is not None:
                floor = max(floor, policy.min_priority_under_load - 1)
            if request.priority <= floor:
                return (
                    f"shed under overload (priority {request.priority} <= "
                    f"{floor} at depth {self._depth})"
                )
        return None

    def release(self, request: SolveRequest) -> None:
        """Return the slot :meth:`try_admit` granted."""
        with self._lock:
            count = self._inflight.get(request.tenant, 0)
            if count <= 1:
                self._inflight.pop(request.tenant, None)
            else:
                self._inflight[request.tenant] = count - 1
            self._depth = max(0, self._depth - 1)
            self._note_load_locked()

    def _watermark_depth(self) -> int:
        return max(1, int(self.queue_cap * self.shed_watermark))

    def _note_load_locked(self) -> None:
        """Track the overload state transition; report it as a fault event."""
        overloaded = self._depth >= self._watermark_depth()
        if overloaded and not self._overloaded:
            self._overloaded = True
            emit_fault_event(
                "degraded", "serve.overload", "shedding",
                detail=f"depth={self._depth}/{self.queue_cap}",
            )
        elif not overloaded and self._overloaded:
            self._overloaded = False
            emit_fault_event(
                "recovered", "serve.overload", "shedding",
                detail=f"depth={self._depth}/{self.queue_cap}",
            )

    # -- introspection -------------------------------------------------
    @property
    def overloaded(self) -> bool:
        """True while depth is at or past the shed watermark."""
        with self._lock:
            return self._overloaded

    def depth(self) -> int:
        """Admitted-but-unfinished requests right now."""
        with self._lock:
            return self._depth

    def stats(self) -> dict:
        """Admission tallies, JSON-safe."""
        with self._lock:
            return {
                "admitted": self._admitted,
                "rejected": self._rejected,
                "depth": self._depth,
                "queue_cap": self.queue_cap,
                "overloaded": self._overloaded,
                "inflight": dict(sorted(self._inflight.items())),
            }


@dataclass
class _TenantCircuit:
    """One tenant's breaker state (internal to :class:`CircuitBreaker`)."""

    state: str = "closed"
    failures: int = 0          #: consecutive failures while closed
    refusals: int = 0          #: refusals served while open
    probing: bool = False      #: the half-open probe is in flight


class CircuitBreaker:
    """Per-tenant request-count circuit breaker (no wall-clock state).

    States follow the classic pattern, advanced only by request
    outcomes so replays are deterministic:

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures trip the circuit **open** (a ``degraded`` event on the
      ``serve.breaker`` site);
    * **open** — requests are refused instantly; after ``cooldown``
      refusals the circuit goes **half-open**;
    * **half-open** — exactly one probe request is admitted; success
      closes the circuit (a ``recovered`` event), failure re-opens it.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip a closed circuit.
    cooldown:
        Refused requests an open circuit serves before allowing a probe.
    """

    def __init__(self, failure_threshold: int = 4, cooldown: int = 8) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if cooldown < 1:
            raise ValueError("cooldown must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._lock = threading.Lock()
        self._circuits: dict[str, _TenantCircuit] = {}
        self._tripped = 0
        self._refused = 0

    def _circuit(self, tenant: str) -> _TenantCircuit:
        return self._circuits.setdefault(tenant, _TenantCircuit())

    def allow(self, tenant: str) -> str | None:
        """Let the tenant's request through, or return the refusal reason."""
        with self._lock:
            c = self._circuit(tenant)
            if c.state == "closed":
                return None
            if c.state == "half-open":
                if c.probing:
                    self._refused += 1
                    return (
                        f"tenant {tenant!r} circuit half-open "
                        "(probe in flight)"
                    )
                c.probing = True
                return None
            c.refusals += 1
            self._refused += 1
            if c.refusals >= self.cooldown:
                c.state = "half-open"
                c.probing = False
            return (
                f"tenant {tenant!r} circuit open "
                f"({c.refusals}/{self.cooldown} toward probe)"
            )

    def record(self, tenant: str, ok: bool) -> None:
        """Feed one request outcome back into the tenant's circuit."""
        with self._lock:
            c = self._circuit(tenant)
            if c.state == "half-open":
                c.probing = False
                if ok:
                    c.state = "closed"
                    c.failures = 0
                    emit_fault_event(
                        "recovered", "serve.breaker", "close",
                        detail=f"tenant={tenant} probe succeeded",
                    )
                    obs_counter(
                        "serve.breaker_closes", labels={"tenant": tenant}
                    )
                else:
                    c.state = "open"
                    c.refusals = 0
                return
            if c.state == "open":
                return
            if ok:
                c.failures = 0
                return
            c.failures += 1
            if c.failures >= self.failure_threshold:
                c.state = "open"
                c.refusals = 0
                self._tripped += 1
                emit_fault_event(
                    "degraded", "serve.breaker", "open",
                    detail=f"tenant={tenant} after {c.failures} "
                    "consecutive failures",
                )
                obs_counter("serve.breaker_trips", labels={"tenant": tenant})

    def cancel(self, tenant: str) -> None:
        """Return an unused probe slot (the probe never actually ran).

        Called when a request that :meth:`allow` let through is refused
        downstream (admission shed) before producing an outcome — the
        half-open circuit keeps waiting for a real probe instead of
        treating the shed as a verdict.
        """
        with self._lock:
            self._circuit(tenant).probing = False

    def state(self, tenant: str) -> str:
        """The tenant's circuit state: closed, open, or half-open."""
        with self._lock:
            return self._circuit(tenant).state

    def stats(self) -> dict:
        """Breaker tallies, JSON-safe."""
        with self._lock:
            return {
                "tripped": self._tripped,
                "refused": self._refused,
                "open": sorted(
                    t for t, c in self._circuits.items() if c.state != "closed"
                ),
            }
