"""Per-tenant QoS: admission control, caps, and overload shedding.

The :class:`AdmissionController` is the service's front gate.  It keeps
three invariants a multi-tenant server owes its tenants:

* **bounded queue** — total admitted-but-unfinished requests never exceed
  ``queue_cap``, so the service's memory and tail latency stay bounded
  however hard clients push;
* **tenant isolation** — no tenant holds more than its policy's
  ``max_inflight`` slots, so one aggressive tenant cannot starve the
  rest;
* **graceful degradation** — past the shed watermark the controller
  refuses the lowest-priority work *before* the queue is full, and it
  reports the transition into and out of overload through the fault
  framework (:mod:`repro.faults.events`), the same ``degraded`` /
  ``recovered`` vocabulary the resilient solve stack uses.  An overload
  is an environmental fault; shedding is the planned response to it.

Admission is thread-safe (one lock; admission decisions are tiny) and
purely synchronous — the asyncio server calls it inline before queueing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..faults.events import emit as emit_fault_event
from ..obs.observer import obs_counter
from .request import SolveRequest


@dataclass(frozen=True)
class TenantPolicy:
    """What one tenant is entitled to.

    ``max_inflight`` caps the tenant's admitted-but-unfinished requests.
    ``min_priority_under_load`` lets a tenant mark its own traffic as
    load-sheddable below a threshold: requests with priority strictly
    below it are shed *whenever the service is past the watermark*, not
    just at the global shed priority.
    """

    max_inflight: int = 64
    min_priority_under_load: int | None = None


class AdmissionController:
    """Synchronous admission gate with overload shedding.

    Parameters
    ----------
    queue_cap:
        Hard cap on admitted-but-unfinished requests across all tenants.
    shed_watermark:
        Fraction of ``queue_cap`` past which the controller enters the
        *overloaded* state and starts shedding.
    shed_priority:
        While overloaded, requests with priority <= this are refused.
    policies:
        Per-tenant :class:`TenantPolicy` overrides; unknown tenants get
        ``default_policy``.
    """

    def __init__(
        self,
        queue_cap: int = 256,
        shed_watermark: float = 0.75,
        shed_priority: int = 0,
        policies: dict[str, TenantPolicy] | None = None,
        default_policy: TenantPolicy = TenantPolicy(),
    ) -> None:
        if queue_cap < 1:
            raise ValueError("queue_cap must be positive")
        if not 0.0 < shed_watermark <= 1.0:
            raise ValueError("shed_watermark must be in (0, 1]")
        self.queue_cap = queue_cap
        self.shed_watermark = shed_watermark
        self.shed_priority = shed_priority
        self.policies = dict(policies or {})
        self.default_policy = default_policy
        self._lock = threading.Lock()
        self._inflight: dict[str, int] = {}
        self._depth = 0
        self._overloaded = False
        self._admitted = 0
        self._rejected = 0

    def policy_for(self, tenant: str) -> TenantPolicy:
        """The tenant's policy (the default when none was registered)."""
        return self.policies.get(tenant, self.default_policy)

    # -- the gate ------------------------------------------------------
    def try_admit(self, request: SolveRequest) -> str | None:
        """Admit ``request`` or return the human-readable refusal reason.

        On admission the caller owns one slot and MUST call
        :meth:`release` exactly once when the request finishes (served,
        timed out, or errored).
        """
        with self._lock:
            reason = self._refusal_locked(request)
            if reason is None:
                self._inflight[request.tenant] = (
                    self._inflight.get(request.tenant, 0) + 1
                )
                self._depth += 1
                self._admitted += 1
                self._note_load_locked()
            else:
                self._rejected += 1
        if reason is None:
            obs_counter("serve.admitted", labels={"tenant": request.tenant})
        else:
            obs_counter("serve.rejected", labels={"tenant": request.tenant})
        return reason

    def _refusal_locked(self, request: SolveRequest) -> str | None:
        if self._depth >= self.queue_cap:
            return f"queue full ({self.queue_cap} inflight)"
        policy = self.policy_for(request.tenant)
        if self._inflight.get(request.tenant, 0) >= policy.max_inflight:
            return (
                f"tenant {request.tenant!r} at its inflight cap "
                f"({policy.max_inflight})"
            )
        if self._depth >= self._watermark_depth():
            floor = self.shed_priority
            if policy.min_priority_under_load is not None:
                floor = max(floor, policy.min_priority_under_load - 1)
            if request.priority <= floor:
                return (
                    f"shed under overload (priority {request.priority} <= "
                    f"{floor} at depth {self._depth})"
                )
        return None

    def release(self, request: SolveRequest) -> None:
        """Return the slot :meth:`try_admit` granted."""
        with self._lock:
            count = self._inflight.get(request.tenant, 0)
            if count <= 1:
                self._inflight.pop(request.tenant, None)
            else:
                self._inflight[request.tenant] = count - 1
            self._depth = max(0, self._depth - 1)
            self._note_load_locked()

    def _watermark_depth(self) -> int:
        return max(1, int(self.queue_cap * self.shed_watermark))

    def _note_load_locked(self) -> None:
        """Track the overload state transition; report it as a fault event."""
        overloaded = self._depth >= self._watermark_depth()
        if overloaded and not self._overloaded:
            self._overloaded = True
            emit_fault_event(
                "degraded", "serve.overload", "shedding",
                detail=f"depth={self._depth}/{self.queue_cap}",
            )
        elif not overloaded and self._overloaded:
            self._overloaded = False
            emit_fault_event(
                "recovered", "serve.overload", "shedding",
                detail=f"depth={self._depth}/{self.queue_cap}",
            )

    # -- introspection -------------------------------------------------
    @property
    def overloaded(self) -> bool:
        """True while depth is at or past the shed watermark."""
        with self._lock:
            return self._overloaded

    def depth(self) -> int:
        """Admitted-but-unfinished requests right now."""
        with self._lock:
            return self._depth

    def stats(self) -> dict:
        """Admission tallies, JSON-safe."""
        with self._lock:
            return {
                "admitted": self._admitted,
                "rejected": self._rejected,
                "depth": self._depth,
                "queue_cap": self.queue_cap,
                "overloaded": self._overloaded,
                "inflight": dict(sorted(self._inflight.items())),
            }
