"""Signature batching: fold same-operator SpMV requests into one SpMM.

The service's core amortization: ``k`` requests that multiply the *same*
operator (same structure **and** same values — the registry's content
key) become one multi-vector pass ``Y = A @ [x1 ... xk]``
(:meth:`repro.mat.base.Mat.multiply_multi`), so the matrix streams
through memory once for the whole group.  Column ``j`` of the batched
product is bit-identical to serving ``x_j`` alone, so batching is
invisible to tenants except in latency.

Grouping MUST use the content key, not the structural one: two tenants
on the same stencil with different coefficients share every structural
cache (traces, tune decisions) but *cannot* share an SpMM pass — the
product depends on the values.

Solves are never batched (each is its own Krylov iteration); the planner
passes them through as singles, ordered with everything else by
priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.registry import SignatureRegistry
from .request import RequestKind, SolveRequest


@dataclass
class Batch:
    """One planned unit of execution.

    Either a group of same-operator SpMV requests (``len(requests) >= 1``)
    to be served by a single SpMM pass, or exactly one SOLVE request.
    """

    kind: RequestKind
    requests: list[SolveRequest] = field(default_factory=list)

    @property
    def width(self) -> int:
        """Vectors in the pass (the occupancy metric's numerator)."""
        return len(self.requests)

    @property
    def mat(self):
        """The shared operator (same object for every member by key)."""
        return self.requests[0].mat


class SignatureBatcher:
    """Plan a drained window of requests into executable batches.

    Parameters
    ----------
    max_batch:
        Cap on the width of one SpMM pass.  A group larger than this is
        split — unbounded batches would trade unbounded latency for the
        last joiner against diminishing bandwidth amortization.
    """

    def __init__(self, max_batch: int = 8) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.max_batch = max_batch

    @staticmethod
    def group_key(request: SolveRequest) -> tuple:
        """What must match for two requests to share one SpMM pass."""
        return (SignatureRegistry.content_key(request.mat),)

    def plan(self, requests: list[SolveRequest]) -> list[Batch]:
        """Group a drained window into batches, most urgent first.

        SpMV requests sharing a content key coalesce (split at
        ``max_batch``); solves stay single.  Batches are ordered by the
        best (highest) priority they contain, ties broken by admission
        sequence, so an urgent request never waits behind a wide batch
        of background work.  Within a group, members keep priority order
        too — when a group splits, the urgent members ride the first
        pass.
        """
        ordered = sorted(requests, key=lambda r: (-r.priority, r.seq))
        groups: dict[tuple, list[SolveRequest]] = {}
        batches: list[Batch] = []
        for request in ordered:
            if request.kind is RequestKind.SOLVE:
                batches.append(Batch(RequestKind.SOLVE, [request]))
                continue
            members = groups.setdefault(self.group_key(request), [])
            members.append(request)
            if len(members) == 1:
                batches.append(Batch(RequestKind.SPMV, members))
            elif len(members) == self.max_batch:
                # Group is full: retire it so a later same-key request
                # starts a fresh batch.
                groups.pop(self.group_key(request))
        return batches
