"""The asyncio solve service: shards, batch windows, QoS, degradation.

:class:`SolveService` is the multi-tenant front door over the execution
stack.  One service owns one :class:`~repro.core.registry.SignatureRegistry`
(through its template :class:`~repro.core.context.ExecutionContext`) and
derives a cheap context *view* per shard — so every shard, and every
tenant on it, shares format conversions, recorded traces, autotune
decisions, and verifier verdicts, with the registry's single-flight
semantics guaranteeing each signature is prepared exactly once however
many requests race on a cold cache.

The request path::

    submit() ── admission (QoS gate) ── shard queue ── worker
                                                        │ drain window
                                                        │ plan batches
                                                        ▼
                                  executor thread: one SpMM per group
                                                        │
    response future  ◄──────────────────────────────────┘

* **Sharding** — tenants hash onto ``shards`` worker queues
  (deterministically, CRC32 of the tenant name), each with its own
  context view and executor thread; with ``world_size > 1`` each SpMM
  additionally row-partitions the operator across a simulated SPMD
  world (:func:`repro.comm.spmd.run_spmd`), the serving analogue of the
  paper's MPI runs.
* **Batching** — a worker drains its queue for ``batch_window`` seconds
  and hands the window to the :class:`~repro.serve.batcher.SignatureBatcher`,
  which folds same-operator SpMV requests into one multi-vector pass.
  Batched and unbatched answers are bit-identical (see
  :meth:`repro.mat.base.Mat.multiply_multi`).
* **QoS** — the :class:`~repro.serve.qos.AdmissionController` bounds the
  queue, isolates tenants, and sheds low-priority work under overload;
  deadline expiries and overload transitions are reported through the
  fault framework's event stream as graceful degradation.
"""

from __future__ import annotations

import asyncio
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..comm.communicator import World
from ..comm.partition import RowLayout
from ..comm.spmd import run_spmd
from ..core.context import ExecutionContext
from ..core.registry import SignatureRegistry
from ..elastic.world import invalidate_row_blocks
from ..faults.events import emit as emit_fault_event
from ..faults.plan import fire as fire_fault
from ..mat.aij import AijMat
from ..obs.observer import obs_counter
from .batcher import Batch, SignatureBatcher
from .qos import AdmissionController, CircuitBreaker
from .request import (
    RequestKind,
    ResponseStatus,
    SolveRequest,
    SolveResponse,
)


@dataclass
class _Pending:
    """One queued request and the future its tenant awaits."""

    request: SolveRequest
    future: asyncio.Future = field(repr=False)
    shard: int = 0
    late: bool = False  #: deadline expired; any answer is a late result


@dataclass
class _ShardHealth:
    """One shard's elastic state, mutated from its executor thread.

    ``world_size`` is the shard's *current* SPMD world — it shrinks when
    a ``serve.shard@N`` kill fault lands and is restored through
    :meth:`SolveService.resize_shard`.  ``healthy`` gates routing: an
    unhealthy shard stops receiving new tenants until it recovers.
    """

    world_size: int
    healthy: bool = True
    kills: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class SolveService:
    """Asyncio multi-tenant SpMV/solve service over a shared registry.

    Parameters
    ----------
    ctx:
        Template execution context; its registry is the service-wide
        cache.  Defaults to a context pinned to the paper's vectorized
        CSR kernel (``default_variant="CSR using AVX512"``) so serving
        never blocks a request window on an autotune sweep; pass a
        context without a default variant to let the (registry-memoized,
        single-flight) autotuner pick per structure.
    shards:
        Worker queues / context views / executor threads.  Tenants are
        hashed across them.
    world_size:
        Simulated SPMD ranks per SpMM; 1 serves on the sequential path.
    batch_window:
        Seconds a worker waits to let same-operator requests coalesce
        after the first request of a window arrives.  0 disables the
        wait (batches still form from whatever is already queued).
    max_batch:
        Cap on one SpMM pass's width (forwarded to the batcher).
    admission:
        The QoS gate; defaults to a fresh
        :class:`~repro.serve.qos.AdmissionController`.
    breaker:
        Per-tenant circuit breaker; defaults to a fresh
        :class:`~repro.serve.qos.CircuitBreaker`.  A tenant whose
        requests keep failing is refused instantly instead of queueing
        up to fail again.
    solver_rtol:
        Relative tolerance of the GMRES solves the service runs for
        :attr:`~repro.serve.request.RequestKind.SOLVE` requests.
    """

    def __init__(
        self,
        ctx: ExecutionContext | None = None,
        shards: int = 1,
        world_size: int = 1,
        batch_window: float = 0.0015,
        max_batch: int = 8,
        admission: AdmissionController | None = None,
        breaker: CircuitBreaker | None = None,
        solver_rtol: float = 1.0e-8,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        if world_size < 1:
            raise ValueError("world_size must be positive")
        if batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        self.ctx = ctx if ctx is not None else ExecutionContext(
            default_variant="CSR using AVX512"
        )
        self.registry: SignatureRegistry = self.ctx.registry
        self.shards = shards
        self.world_size = world_size
        self.batch_window = batch_window
        self.batcher = SignatureBatcher(max_batch=max_batch)
        self.admission = admission or AdmissionController()
        self.breaker = breaker or CircuitBreaker()
        self.solver_rtol = solver_rtol
        self._shard_ctxs = [self.ctx.view() for _ in range(shards)]
        self._health = [
            _ShardHealth(world_size=world_size) for _ in range(shards)
        ]
        self._queues: list[asyncio.Queue] = []
        self._workers: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        self._seq = 0
        self._started = False
        # Mutated only from the event-loop thread.
        self._stats = {
            "requests": 0,
            "ok": 0,
            "rejected": 0,
            "timeout": 0,
            "error": 0,
            "spmv_batches": 0,
            "spmv_batched_requests": 0,
            "solves": 0,
            "max_batch_width": 0,
            "late_results": 0,
            "rerouted": 0,
        }

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Spawn the shard workers (idempotent)."""
        if self._started:
            return
        self._executor = ThreadPoolExecutor(
            max_workers=self.shards, thread_name_prefix="serve-shard"
        )
        self._queues = [asyncio.Queue() for _ in range(self.shards)]
        self._workers = [
            asyncio.create_task(self._worker(shard), name=f"serve-{shard}")
            for shard in range(self.shards)
        ]
        self._started = True

    async def stop(self) -> None:
        """Drain and join every worker, then release the executor."""
        if not self._started:
            return
        for queue in self._queues:
            queue.put_nowait(None)
        await asyncio.gather(*self._workers)
        assert self._executor is not None
        self._executor.shutdown(wait=True)
        self._executor = None
        self._workers = []
        self._queues = []
        self._started = False

    async def __aenter__(self) -> "SolveService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- the front door ------------------------------------------------
    def shard_of(self, tenant: str) -> int:
        """The shard serving a tenant (stable across processes)."""
        return zlib.crc32(tenant.encode()) % self.shards

    def route(self, tenant: str) -> int:
        """Health-aware shard routing: the home shard, or the next live one.

        Starts at :meth:`shard_of` (so healthy routing is unchanged and
        deterministic) and probes forward, wrapping, for the first shard
        whose :class:`_ShardHealth` reports healthy.  When every shard is
        sick the tenant stays on its home shard — degraded service beats
        no service.
        """
        home = self.shard_of(tenant)
        for step in range(self.shards):
            shard = (home + step) % self.shards
            with self._health[shard].lock:
                healthy = self._health[shard].healthy
            if healthy:
                if step:
                    self._stats["rerouted"] += 1
                    obs_counter(
                        "serve.rerouted", labels={"tenant": tenant}
                    )
                return shard
        return home

    async def submit(self, request: SolveRequest) -> SolveResponse:
        """Admit, enqueue, and await one request.

        Always returns a :class:`SolveResponse`; refusals and deadline
        expiries come back as statuses, not exceptions (a tenant's bad
        luck must never look like a server crash).
        """
        if not self._started:
            raise RuntimeError("service not started; use 'async with' or start()")
        self._stats["requests"] += 1
        shard = self.route(request.tenant)
        reason = self.breaker.allow(request.tenant)
        if reason is not None:
            self._stats["rejected"] += 1
            return SolveResponse(
                status=ResponseStatus.REJECTED,
                tenant=request.tenant,
                kind=request.kind,
                shard=shard,
                detail=reason,
            )
        reason = self.admission.try_admit(request)
        if reason is not None:
            self._stats["rejected"] += 1
            self.breaker.cancel(request.tenant)
            return SolveResponse(
                status=ResponseStatus.REJECTED,
                tenant=request.tenant,
                kind=request.kind,
                shard=shard,
                detail=reason,
            )
        self._seq += 1
        request.seq = self._seq
        loop = asyncio.get_running_loop()
        pending = _Pending(request, loop.create_future(), shard)
        try:
            self._queues[shard].put_nowait(pending)
            if request.timeout is None:
                response = await pending.future
            else:
                try:
                    response = await asyncio.wait_for(
                        asyncio.shield(pending.future), request.timeout
                    )
                except asyncio.TimeoutError:
                    self._stats["timeout"] += 1
                    emit_fault_event(
                        "degraded", "serve.deadline", "timeout",
                        detail=f"tenant={request.tenant}",
                    )
                    obs_counter(
                        "serve.timeouts", labels={"tenant": request.tenant}
                    )
                    self.breaker.record(request.tenant, False)
                    # The worker may still compute the batch this request
                    # joined; its late answer is counted and dropped at
                    # the future (see _answer).
                    pending.late = True
                    pending.future.cancel()
                    return SolveResponse(
                        status=ResponseStatus.TIMEOUT,
                        tenant=request.tenant,
                        kind=request.kind,
                        shard=shard,
                        detail=f"deadline of {request.timeout}s expired",
                    )
            self._stats[response.status.value] = (
                self._stats.get(response.status.value, 0) + 1
            )
            self.breaker.record(
                request.tenant, response.status is ResponseStatus.OK
            )
            return response
        finally:
            self.admission.release(request)

    # -- workers ---------------------------------------------------------
    async def _worker(self, shard: int) -> None:
        queue = self._queues[shard]
        while True:
            first = await queue.get()
            if first is None:
                return
            window = await self._drain(queue, first)
            if window is None:
                return
            await self._process(shard, window)

    async def _drain(
        self, queue: asyncio.Queue, first: _Pending
    ) -> list[_Pending] | None:
        """Collect one batch window: what's queued now, plus the window.

        The window is a single nap, not a timer-guarded get loop: one
        ``sleep(batch_window)`` lets every tenant woken by the previous
        cycle's answers reach the queue, and one more non-blocking sweep
        collects them.  (A ``wait_for`` per item costs a timer handle
        and a wakeup each — measurably slower than the nap under load.)

        Returns ``None`` when the stop sentinel interrupts the window
        (remaining items are answered first — a sentinel never strands
        queued work).
        """
        items = [first]
        cap = self.batcher.max_batch * 4
        stopping = self._sweep(queue, items, cap)
        if (
            not stopping
            and self.batch_window > 0
            and len(items) < self.batcher.max_batch
        ):
            await asyncio.sleep(self.batch_window)
            stopping = self._sweep(queue, items, cap)
        if stopping:
            await self._process_items(items)
            return None
        return items

    @staticmethod
    def _sweep(
        queue: asyncio.Queue, items: list[_Pending], cap: int
    ) -> bool:
        """Non-blocking queue sweep into ``items``; True on sentinel."""
        while len(items) < cap:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                return False
            if item is None:
                return True
            items.append(item)
        return False

    async def _process(self, shard: int, items: list[_Pending]) -> None:
        live = [item for item in items if not item.future.done()]
        if not live:
            return
        plan = self.batcher.plan([item.request for item in live])
        by_request = {id(item.request): item for item in live}
        for batch in plan:
            await self._execute(shard, batch, by_request)

    async def _process_items(self, items: list[_Pending]) -> None:
        """Answer stranded items during shutdown (grouped per shard)."""
        by_shard: dict[int, list[_Pending]] = {}
        for item in items:
            by_shard.setdefault(item.shard, []).append(item)
        for shard, group in by_shard.items():
            await self._process(shard, group)

    async def _execute(
        self, shard: int, batch: Batch, by_request: dict[int, _Pending]
    ) -> None:
        loop = asyncio.get_running_loop()
        if batch.kind is RequestKind.SPMV:
            payloads = [r.payload for r in batch.requests]
            self._stats["spmv_batches"] += 1
            self._stats["spmv_batched_requests"] += batch.width
            self._stats["max_batch_width"] = max(
                self._stats["max_batch_width"], batch.width
            )
            obs_counter("serve.spmm_passes")
            obs_counter("serve.spmm_width", amount=batch.width)
            try:
                # The executor thread does *all* the data movement —
                # stacking the payload block, the SpMM, and transposing
                # the result back to contiguous per-request rows — so
                # the event loop only hands out cheap row copies.
                yt = await loop.run_in_executor(
                    self._executor, self._spmm, shard, batch.mat, payloads
                )
            except Exception as exc:  # answered, not crashed
                self._fail_batch(batch, by_request, shard, exc)
                return
            for j, request in enumerate(batch.requests):
                self._answer(
                    by_request, request,
                    SolveResponse(
                        status=ResponseStatus.OK,
                        result=yt[j].copy(),
                        tenant=request.tenant,
                        kind=request.kind,
                        shard=shard,
                        batch_width=batch.width,
                    ),
                )
            return
        request = batch.requests[0]
        self._stats["solves"] += 1
        try:
            response = await loop.run_in_executor(
                self._executor, self._solve, shard, request
            )
        except Exception as exc:
            self._fail_batch(batch, by_request, shard, exc)
            return
        response.shard = shard
        self._answer(by_request, request, response)

    def _fail_batch(
        self,
        batch: Batch,
        by_request: dict[int, _Pending],
        shard: int,
        exc: Exception,
    ) -> None:
        emit_fault_event(
            "detected", "serve.compute", type(exc).__name__,
            detail=str(exc)[:200],
        )
        for request in batch.requests:
            self._answer(
                by_request, request,
                SolveResponse(
                    status=ResponseStatus.ERROR,
                    tenant=request.tenant,
                    kind=request.kind,
                    shard=shard,
                    batch_width=batch.width,
                    detail=f"{type(exc).__name__}: {exc}",
                ),
            )

    def _answer(
        self,
        by_request: dict[int, _Pending],
        request: SolveRequest,
        response: SolveResponse,
    ) -> None:
        """Resolve one request's future; account for answers that missed.

        A worker can finish a batch after one of its members timed out —
        the computed answer is *orphaned work*.  It used to vanish
        silently at the ``done()`` check; now every late completion is
        counted in the ``late_results`` stat (and the
        ``serve.late_results`` metric) and dropped explicitly, so
        orphaned compute shows up in capacity accounting instead of
        hiding in the timeout tally.
        """
        pending = by_request.get(id(request))
        if pending is None:
            return
        if pending.future.done():
            if pending.late:
                self._stats["late_results"] += 1
                obs_counter(
                    "serve.late_results", labels={"tenant": request.tenant}
                )
                emit_fault_event(
                    "benign", "serve.deadline", "late_result",
                    detail=f"tenant={request.tenant} answer after deadline",
                )
            return
        pending.future.set_result(response)

    # -- compute (executor threads) --------------------------------------
    def _spmm(
        self, shard: int, csr: AijMat, payloads: list[np.ndarray]
    ) -> np.ndarray:
        """One (possibly SPMD-partitioned) multi-vector product.

        Takes the raw per-request payload vectors and returns the result
        *transposed* — shape ``(k, m)``, C-order — so request ``j``'s
        answer is the contiguous row ``j``.  Stacking the input block and
        un-striding the output both happen here, on the executor thread,
        keeping the event loop's per-request work to one row copy.
        """
        self._check_shard_fault(shard)
        xs = np.stack(payloads, axis=1)
        if self._shard_world(shard) == 1:
            ys = self._shard_ctxs[shard].spmm(csr, xs)
        else:
            ys = self._spmm_spmd(shard, csr, xs)
        return np.ascontiguousarray(ys.T)

    def _shard_world(self, shard: int) -> int:
        """The shard's current SPMD world size (elastic, see _ShardHealth)."""
        with self._health[shard].lock:
            return self._health[shard].world_size

    def _check_shard_fault(self, shard: int) -> None:
        """Fire the shard's chaos site; a kill shrinks its SPMD world.

        A ``kill`` fault on ``serve.shard@N`` simulates one of the
        shard's SPMD ranks dying: the shard's world shrinks by one rank
        (never below 1), its cached row blocks for the old world size
        are invalidated, and the shard is marked unhealthy so
        :meth:`route` steers new tenants elsewhere until
        :meth:`resize_shard` restores it.  Other fault kinds at the site
        are recorded as benign (the shard absorbed them).
        """
        spec = fire_fault(f"serve.shard@{shard}")
        if spec is None:
            return
        if spec.kind == "kill":
            health = self._health[shard]
            with health.lock:
                old = health.world_size
                health.world_size = max(1, health.world_size - 1)
                health.healthy = False
                health.kills += 1
                new = health.world_size
            invalidate_row_blocks(self.registry, old)
            emit_fault_event(
                "degraded", f"serve.shard@{shard}", "kill",
                detail=f"world {old}->{new} ranks, shard draining",
            )
            obs_counter("serve.shard_kills", labels={"shard": str(shard)})
        else:
            emit_fault_event(
                "benign", f"serve.shard@{shard}", spec.kind,
                detail="shard absorbed the fault",
            )

    def _spmm_spmd(
        self, shard: int, csr: AijMat, xs: np.ndarray
    ) -> np.ndarray:
        """Row-partitioned SpMM across the shard's simulated SPMD world.

        Each rank multiplies its contiguous row block (cached in the
        shared registry under the operator's content key, so a hot
        operator is partitioned once per world size); the blocks'
        per-row dot products are computed exactly as the sequential
        pass computes them, so stacking the rank results is bit-identical
        to the ``world_size == 1`` path — for *any* world size, which is
        what keeps answers stable while a shard's world shrinks or
        regrows underneath live traffic.
        """
        m = csr.shape[0]
        world = min(self._shard_world(shard), max(1, m))
        if world == 1:
            return self._shard_ctxs[shard].spmm(csr, xs)
        layout = RowLayout.uniform(m, world)
        content = SignatureRegistry.content_key(csr)

        def block_of(rank: int) -> AijMat:
            return self.registry.get_or_compute(
                "prepare",
                ("rowblock", world, rank, content),
                lambda: _row_block(csr, layout, rank),
            )

        def rank_fn(comm):
            return block_of(comm.rank).multiply_multi(xs)

        parts = run_spmd(
            world,
            rank_fn,
            world=World(
                world, max_send_retries=self.ctx.max_send_retries
            ),
        )
        return np.vstack(parts)

    def resize_shard(self, shard: int, world_size: int) -> None:
        """Explicitly resize one shard's SPMD world (recovery path).

        Restoring a shrunken shard re-marks it healthy and emits a
        ``recovered`` event; row blocks cached for the old world size
        are invalidated either way.
        """
        if world_size < 1:
            raise ValueError("world_size must be positive")
        health = self._health[shard]
        with health.lock:
            old = health.world_size
            health.world_size = world_size
            was_healthy = health.healthy
            health.healthy = True
        if old != world_size:
            invalidate_row_blocks(self.registry, old)
        if not was_healthy:
            emit_fault_event(
                "recovered", f"serve.shard@{shard}", "kill",
                detail=f"world {old}->{world_size} ranks, shard back",
            )

    def _solve(self, shard: int, request: SolveRequest) -> SolveResponse:
        """One GMRES solve under the shard's context view."""
        from ..ksp.gmres import GMRES

        ctx = self._shard_ctxs[shard]
        solver = GMRES(context=ctx, rtol=self.solver_rtol)
        result = solver.solve(request.mat, request.payload)
        return SolveResponse(
            status=ResponseStatus.OK,
            result=result.x,
            tenant=request.tenant,
            kind=request.kind,
            detail=(
                f"{result.reason.name} in {result.iterations} iterations"
            ),
        )

    # -- introspection ---------------------------------------------------
    def occupancy(self) -> float:
        """Mean SpMM width: batched requests per pass (1.0 = no batching)."""
        passes = self._stats["spmv_batches"]
        if not passes:
            return 0.0
        return self._stats["spmv_batched_requests"] / passes

    def stats(self) -> dict:
        """Service + admission + registry statistics, JSON-safe."""
        health = []
        for entry in self._health:
            with entry.lock:
                health.append(
                    {
                        "world_size": entry.world_size,
                        "healthy": entry.healthy,
                        "kills": entry.kills,
                    }
                )
        return {
            **self._stats,
            "occupancy": self.occupancy(),
            "shards": self.shards,
            "world_size": self.world_size,
            "compiler_tier": self.ctx.compiler_tier,
            "admission": self.admission.stats(),
            "breaker": self.breaker.stats(),
            "shard_health": health,
            "registry": self.registry.stats(),
        }


def _row_block(csr: AijMat, layout: RowLayout, rank: int) -> AijMat:
    """Rank-local contiguous row block of a CSR operator."""
    start, end = layout.range_of(rank)
    lo, hi = int(csr.rowptr[start]), int(csr.rowptr[end])
    return AijMat(
        (end - start, csr.shape[1]),
        csr.rowptr[start : end + 1] - csr.rowptr[start],
        csr.colidx[lo:hi],
        csr.val[lo:hi],
        check=False,
    )
