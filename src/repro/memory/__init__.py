"""Memory-system models: kinds, alignment, bandwidth curves, cache mode.

The substitute for KNL's MCDRAM/DRAM hierarchy (DESIGN.md substitution
table): real aligned allocation and capacity accounting, plus calibrated
bandwidth-versus-process-count curves that reproduce the paper's Figure 4
STREAM measurements and feed the SpMV performance model.
"""

from .bandwidth import (
    FIGURE4_CURVES,
    FIGURE4_PROCESS_COUNTS,
    KNL_CACHE_AVX512,
    KNL_CACHE_NOVEC,
    KNL_FLAT_DRAM,
    KNL_FLAT_MCDRAM_AVX512,
    KNL_FLAT_MCDRAM_NOVEC,
    BandwidthCurve,
    sustained_fraction,
)
from .cache import DirectMappedCache
from .numa import NumaPolicy, Placement
from .spaces import (
    DRAM,
    KINDS,
    MCDRAM,
    Allocation,
    MemkindAllocator,
    MemoryKind,
    MemoryKindExhausted,
    aligned_alloc,
    misaligned_alloc,
)
from .stream import StreamResult, figure4_series, run_all, triad

__all__ = [
    "Allocation",
    "BandwidthCurve",
    "DRAM",
    "DirectMappedCache",
    "FIGURE4_CURVES",
    "FIGURE4_PROCESS_COUNTS",
    "KINDS",
    "KNL_CACHE_AVX512",
    "KNL_CACHE_NOVEC",
    "KNL_FLAT_DRAM",
    "KNL_FLAT_MCDRAM_AVX512",
    "KNL_FLAT_MCDRAM_NOVEC",
    "MCDRAM",
    "MemkindAllocator",
    "MemoryKind",
    "MemoryKindExhausted",
    "NumaPolicy",
    "Placement",
    "StreamResult",
    "aligned_alloc",
    "figure4_series",
    "misaligned_alloc",
    "run_all",
    "sustained_fraction",
    "triad",
]
