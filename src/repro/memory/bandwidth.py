"""Bandwidth-saturation curves versus MPI process count (paper Figure 4).

The STREAM measurements on a 68-core KNL 7250 (Figure 4) show three facts
the SpMV performance model must inherit:

1. MCDRAM in flat mode sustains close to **500 GB/s**, but only once ~58
   processes are running; DRAM saturates far earlier at ~**90 GB/s**.
2. Cache mode loses some bandwidth to the direct-mapped tag traffic and
   saturates around 40 processes at ~**380 GB/s**.
3. Vectorization matters for *bandwidth* too: in flat mode an unvectorized
   STREAM reaches dramatically lower bandwidth (a core can only keep so
   many scalar loads in flight), while in cache mode the gap nearly closes.

A :class:`BandwidthCurve` encodes one such series as a smooth saturating
function of the process count,

    ``bw(p) = peak * tanh(alpha * p / p_sat) / tanh(alpha)``,

with ``alpha`` fixed so the curve reaches 98% of peak at ``p_sat``.  The
curves are calibrated to the figure's reported values; the machine models
pick the right curve for a (memory mode, ISA) pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class BandwidthCurve:
    """A saturating achieved-bandwidth curve.

    Parameters
    ----------
    peak_gbs:
        Asymptotic achieved bandwidth in GB/s.
    p_sat:
        Process count at which the curve reaches ~98% of peak.
    name:
        Label used in benchmark output (matches the Figure 4 legend).
    """

    peak_gbs: float
    p_sat: int
    name: str = ""

    _ALPHA = 2.2975599250672945  # atanh(0.98): tanh(alpha) = 0.98

    def at(self, nprocs: int) -> float:
        """Achieved bandwidth in GB/s with ``nprocs`` processes."""
        if nprocs < 1:
            raise ValueError("process count must be positive")
        x = self._ALPHA * nprocs / self.p_sat
        return self.peak_gbs * math.tanh(x) / 0.98

    def bytes_per_second(self, nprocs: int) -> float:
        """Achieved bandwidth in bytes/s (decimal GB, as STREAM reports)."""
        return self.at(nprocs) * 1e9


# ---------------------------------------------------------------------------
# KNL curves calibrated to Figure 4 (68-core 7250, quadrant mode).
# ---------------------------------------------------------------------------

#: Flat mode, MCDRAM, vectorized triad: "scales to almost 500 GB/s",
#: "58 processes are needed to saturate in flat mode".
KNL_FLAT_MCDRAM_AVX512 = BandwidthCurve(495.0, 58, "Flat:AVX512")

#: Flat mode, MCDRAM, unvectorized: "use of vectorization results in
#: dramatically higher achieved memory bandwidth" in flat mode.
KNL_FLAT_MCDRAM_NOVEC = BandwidthCurve(345.0, 58, "Flat:novec")

#: Cache mode, vectorized: "40 processes are needed in cache mode";
#: slightly below flat mode, consistent with Section 7.1.
KNL_CACHE_AVX512 = BandwidthCurve(385.0, 40, "Cache:AVX512")

#: Cache mode, unvectorized: "disabling vectorization only slightly lowers
#: the achieved bandwidth" in cache mode.
KNL_CACHE_NOVEC = BandwidthCurve(355.0, 40, "Cache:novec")

#: Flat mode but allocations forced to DDR4 (numactl --membind=0).
#: Six DDR4-2400 channels: 115.2 GB/s peak, ~90 sustained, saturating early.
KNL_FLAT_DRAM = BandwidthCurve(88.0, 16, "Flat:DRAM")

#: Figure 4's x-axis, used by the STREAM benchmark harness.
FIGURE4_PROCESS_COUNTS = (8, 16, 24, 32, 40, 48, 56, 64)

#: The four series plotted in Figure 4, in legend order.
FIGURE4_CURVES = (
    KNL_FLAT_MCDRAM_AVX512,
    KNL_FLAT_MCDRAM_NOVEC,
    KNL_CACHE_AVX512,
    KNL_CACHE_NOVEC,
)


def sustained_fraction(curve: BandwidthCurve, nprocs: int) -> float:
    """Fraction of the curve's peak achieved at ``nprocs`` processes."""
    return curve.at(nprocs) / curve.peak_gbs
