"""MCDRAM cache-mode model: a direct-mapped last-level cache in front of DRAM.

In cache mode (paper Section 2.6) the 16 GB of MCDRAM becomes a
direct-mapped L3.  Two consequences matter for the experiments:

* while the working set fits, effective bandwidth is MCDRAM bandwidth minus
  the tag-check overhead — Figure 4's cache-mode curves sit below flat mode;
* once the working set spills, or when physically-addressed conflict misses
  strike (direct mapping has no associativity to absorb them), part of the
  traffic is served at DRAM speed.

The :class:`DirectMappedCache` model blends the two regimes.  For a
streaming workload of ``working_set`` bytes it estimates the hit fraction,
including a conflict-miss term that grows with occupancy — an empirically
observed property of direct-mapped MCDRAM caches (page-placement-induced
conflicts appear well before 100% occupancy).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DirectMappedCache:
    """A direct-mapped cache between the cores and a backing memory.

    Parameters
    ----------
    capacity_bytes:
        Cache size (16 GiB for MCDRAM cache mode).
    line_bytes:
        Cache line size; 64 on every machine modeled.
    conflict_pressure:
        Strength of the conflict-miss term: the miss fraction contributed
        by direct-mapped conflicts when the working set equals the
        capacity.  Calibrated to a few percent, consistent with the small
        flat-vs-cache gap in Figures 4 and 7.
    """

    capacity_bytes: int = 16 * 1024**3
    line_bytes: int = 64
    conflict_pressure: float = 0.08

    def occupancy(self, working_set: int) -> float:
        """Working set as a fraction of capacity (may exceed 1)."""
        if working_set < 0:
            raise ValueError("working set must be non-negative")
        return working_set / self.capacity_bytes

    def hit_fraction(self, working_set: int) -> float:
        """Expected hit rate for a streaming working set of this size.

        Below capacity the only misses are conflict misses, growing
        linearly with occupancy; above capacity a direct-mapped cache
        serving a uniform stream hits with probability ``capacity/ws``
        (every line competes for one slot).
        """
        occ = self.occupancy(working_set)
        if occ <= 0.0:
            return 1.0
        if occ <= 1.0:
            return 1.0 - self.conflict_pressure * occ
        reuse_hit = 1.0 / occ
        return (1.0 - self.conflict_pressure) * reuse_hit

    def effective_bandwidth(
        self, working_set: int, cache_bw: float, memory_bw: float
    ) -> float:
        """Blend cache and backing-memory bandwidth by hit rate.

        Misses cost *both* interfaces (the line is fetched from DRAM and
        installed in MCDRAM), so the blend is harmonic rather than linear:
        time per byte = hit/bw_cache + miss*(1/bw_cache + 1/bw_mem).
        """
        if cache_bw <= 0 or memory_bw <= 0:
            raise ValueError("bandwidths must be positive")
        h = self.hit_fraction(working_set)
        miss = 1.0 - h
        time_per_byte = h / cache_bw + miss * (1.0 / cache_bw + 1.0 / memory_bw)
        return 1.0 / time_per_byte
