"""numactl-style placement policies for KNL flat mode (paper Section 3.4).

In flat mode MCDRAM appears as a second NUMA node.  The paper's flat-mode
experiments place memory with ``numactl`` rather than memkind; this module
models the three placements those experiments use and resolves them to a
:class:`~repro.memory.spaces.MemoryKind` given the allocation size and the
remaining MCDRAM capacity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .spaces import DRAM, MCDRAM, MemoryKind, MemoryKindExhausted


class Placement(enum.Enum):
    """The numactl policies exercised by the experiments."""

    #: ``numactl --membind=1``: MCDRAM only; overflow is an allocation error.
    BIND_MCDRAM = "membind-mcdram"
    #: ``numactl --preferred=1``: MCDRAM while it lasts, then DRAM.
    PREFER_MCDRAM = "preferred-mcdram"
    #: ``numactl --membind=0``: DRAM only (the "flat mode, DRAM" series).
    BIND_DRAM = "membind-dram"


@dataclass
class NumaPolicy:
    """Resolve allocations to memory kinds under a numactl policy."""

    placement: Placement = Placement.PREFER_MCDRAM
    mcdram_capacity: int = MCDRAM.capacity_bytes
    _mcdram_used: int = 0

    def place(self, nbytes: int) -> MemoryKind:
        """Choose the kind an allocation of ``nbytes`` lands in.

        Mirrors the OS behaviour: ``membind`` faults on overflow,
        ``preferred`` silently falls back to DRAM.
        """
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self.placement is Placement.BIND_DRAM:
            return DRAM
        fits = self._mcdram_used + nbytes <= self.mcdram_capacity
        if fits:
            self._mcdram_used += nbytes
            return MCDRAM
        if self.placement is Placement.BIND_MCDRAM:
            raise MemoryKindExhausted(
                f"membind=MCDRAM allocation of {nbytes} bytes exceeds the "
                f"{self.mcdram_capacity - self._mcdram_used} bytes remaining"
            )
        return DRAM

    @property
    def mcdram_used(self) -> int:
        """Bytes placed in MCDRAM so far."""
        return self._mcdram_used
