"""Memory kinds and allocation: DRAM, MCDRAM, and aligned heaps.

KNL exposes two physical memories (paper Section 2.6): off-package DDR4
DRAM and 16 GB of on-package MCDRAM.  In *flat* mode both are visible and
the application chooses placement per allocation — via ``numactl`` or via
the ``memkind`` heap manager, both of which PETSc supports (Section 3.4).
This module models that machinery:

* :class:`MemoryKind` — a named memory with a capacity and a relative
  bandwidth class; the actual GB/s numbers live with the machine models.
* :func:`aligned_alloc` — a real aligned allocator (the model of PETSc's
  ``--with-mem-align``): it returns NumPy views whose data pointer is
  genuinely aligned, so the engine's aligned loads behave exactly as they
  would on hardware.
* :class:`MemkindAllocator` — a memkind-style bookkeeping heap: real small
  buffers for computation, plus capacity accounting for the paper-scale
  working sets we only model (a 16384x16384 grid does not fit in this
  interpreter, but its footprint must still overflow a 16 GB MCDRAM).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class MemoryKindExhausted(MemoryError):
    """An allocation exceeded the capacity of its memory kind."""


@dataclass(frozen=True)
class MemoryKind:
    """A class of physical memory with finite capacity.

    ``bandwidth_class`` is a symbolic label (``"high"`` or ``"normal"``)
    resolved to GB/s by the machine model for a given process count and
    vectorization level.
    """

    name: str
    capacity_bytes: int
    bandwidth_class: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


GiB = 1024**3

#: On-package high-bandwidth memory (16 GB on all KNL SKUs in the paper).
MCDRAM = MemoryKind(name="MCDRAM", capacity_bytes=16 * GiB, bandwidth_class="high")

#: Off-package DDR4; capacity chosen to match Theta nodes (192 GB).
DRAM = MemoryKind(name="DRAM", capacity_bytes=192 * GiB, bandwidth_class="normal")

KINDS: dict[str, MemoryKind] = {k.name: k for k in (MCDRAM, DRAM)}


def aligned_alloc(
    n: int, dtype: np.dtype | type = np.float64, alignment: int = 64
) -> np.ndarray:
    """Allocate ``n`` elements whose base address is ``alignment``-aligned.

    Implemented by over-allocating a byte buffer and slicing to the first
    aligned offset — the standard trick, and the behaviour of PETSc's
    ``PetscMalloc`` under ``--with-mem-align=<n>``.  The returned view's
    ``ctypes.data`` is verified aligned; tests assert this for 16, 32, 64,
    and 128-byte requests.
    """
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError("alignment must be a positive power of two")
    dt = np.dtype(dtype)
    nbytes = n * dt.itemsize
    raw = np.zeros(nbytes + alignment, dtype=np.uint8)
    offset = (-raw.ctypes.data) % alignment
    view = raw[offset : offset + nbytes].view(dt)
    # An empty view's data pointer is not meaningful; skip the check then.
    assert nbytes == 0 or view.ctypes.data % alignment == 0
    return view


def misaligned_alloc(
    n: int,
    dtype: np.dtype | type = np.float64,
    alignment: int = 64,
    offset: int = 8,
) -> np.ndarray:
    """Allocate ``n`` elements whose base address is deliberately misaligned.

    The returned view's data pointer satisfies
    ``ptr % alignment == offset`` (``offset`` must be a nonzero multiple of
    the element size below ``alignment``).  This is the deterministic
    fault-injection counterpart of :func:`aligned_alloc`: tests that need
    an engine to take an :class:`~repro.simd.alignment.AlignmentFault`
    build their arrays here instead of re-allocating in a loop and hoping
    the heap misaligns one.
    """
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError("alignment must be a positive power of two")
    dt = np.dtype(dtype)
    if not 0 < offset < alignment:
        raise ValueError(f"offset must lie in (0, {alignment})")
    if offset % dt.itemsize:
        raise ValueError(
            f"offset {offset} is not a multiple of the {dt.itemsize}-byte "
            "element size"
        )
    nbytes = n * dt.itemsize
    raw = np.zeros(nbytes + 2 * alignment, dtype=np.uint8)
    start = (-raw.ctypes.data) % alignment + offset
    view = raw[start : start + nbytes].view(dt)
    assert nbytes == 0 or view.ctypes.data % alignment == offset
    return view


@dataclass
class Allocation:
    """One tracked allocation: its kind, size, and optional real buffer."""

    kind: MemoryKind
    nbytes: int
    buffer: np.ndarray | None = None
    label: str = ""


@dataclass
class MemkindAllocator:
    """A memkind-style multi-heap with per-kind capacity enforcement.

    Two entry points:

    * :meth:`allocate` returns a real aligned NumPy buffer *and* records the
      footprint — used for everything the tests and kernels actually touch;
    * :meth:`reserve` records a footprint without materializing memory —
      used by the machine models for paper-scale working sets.

    Both raise :class:`MemoryKindExhausted` when a kind's capacity would be
    exceeded, which is how the Figure 7 harness knows a 4096x4096-grid
    simulation still fits in MCDRAM while a multi-node-scale one would not.
    """

    alignment: int = 64
    _used: dict[str, int] = field(default_factory=dict)
    _allocations: list[Allocation] = field(default_factory=list)

    def used_bytes(self, kind: MemoryKind) -> int:
        """Bytes currently accounted against ``kind``."""
        return self._used.get(kind.name, 0)

    def _charge(self, kind: MemoryKind, nbytes: int) -> None:
        used = self.used_bytes(kind)
        if used + nbytes > kind.capacity_bytes:
            raise MemoryKindExhausted(
                f"{kind.name}: requested {nbytes} bytes on top of {used}, "
                f"capacity {kind.capacity_bytes}"
            )
        self._used[kind.name] = used + nbytes

    def allocate(
        self,
        n: int,
        dtype: np.dtype | type = np.float64,
        kind: MemoryKind = DRAM,
        label: str = "",
    ) -> np.ndarray:
        """Allocate a real, aligned, capacity-tracked buffer."""
        dt = np.dtype(dtype)
        nbytes = n * dt.itemsize
        self._charge(kind, nbytes)
        buf = aligned_alloc(n, dt, self.alignment)
        self._allocations.append(Allocation(kind, nbytes, buf, label))
        return buf

    def reserve(self, nbytes: int, kind: MemoryKind = DRAM, label: str = "") -> Allocation:
        """Account for a modeled working set without materializing it."""
        if nbytes < 0:
            raise ValueError("cannot reserve a negative footprint")
        self._charge(kind, nbytes)
        alloc = Allocation(kind, nbytes, None, label)
        self._allocations.append(alloc)
        return alloc

    def free(self, obj: np.ndarray | Allocation) -> None:
        """Release a tracked buffer or reservation.

        memkind's advantage (Section 3.4) is that the caller need not
        remember which heap an allocation came from; mirroring that, we
        locate the record ourselves.
        """
        for i, alloc in enumerate(self._allocations):
            match = (
                alloc is obj
                if isinstance(obj, Allocation)
                else alloc.buffer is not None
                and isinstance(obj, np.ndarray)
                and alloc.buffer.base is obj.base
                and alloc.buffer.ctypes.data == obj.ctypes.data
            )
            if match:
                self._used[alloc.kind.name] -= alloc.nbytes
                del self._allocations[i]
                return
        raise KeyError("buffer was not allocated by this allocator")

    def footprint(self) -> dict[str, int]:
        """Current usage per kind name, in bytes."""
        return dict(self._used)
