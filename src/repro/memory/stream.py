"""STREAM benchmark: real kernels for validation, modeled curves for Figure 4.

Two layers, matching the repo-wide convention:

* :func:`triad`, :func:`copy`, :func:`scale`, :func:`add` execute the actual
  STREAM kernels on NumPy buffers and report the bytes each kernel moves —
  used by unit tests and by anyone who wants to measure the *host*.
* :func:`figure4_series` evaluates the calibrated KNL bandwidth curves at
  the paper's process counts, producing the exact four series of Figure 4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .bandwidth import FIGURE4_CURVES, FIGURE4_PROCESS_COUNTS, BandwidthCurve


@dataclass(frozen=True)
class StreamResult:
    """One STREAM kernel execution: traffic moved and time taken."""

    kernel: str
    bytes_moved: int
    seconds: float

    @property
    def gbs(self) -> float:
        """Achieved bandwidth in decimal GB/s, as STREAM reports it."""
        if self.seconds == 0:
            return float("inf")
        return self.bytes_moved / self.seconds / 1e9


def _run(kernel: str, fn, bytes_moved: int, repeats: int) -> StreamResult:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return StreamResult(kernel, bytes_moved, best)


def copy(a: np.ndarray, c: np.ndarray, repeats: int = 3) -> StreamResult:
    """STREAM copy: ``c[:] = a`` — 16 bytes per element."""
    n = a.shape[0]
    return _run("copy", lambda: np.copyto(c, a), 16 * n, repeats)


def scale(a: np.ndarray, c: np.ndarray, s: float = 3.0, repeats: int = 3) -> StreamResult:
    """STREAM scale: ``c[:] = s*a`` — 16 bytes per element."""
    n = a.shape[0]
    return _run("scale", lambda: np.multiply(a, s, out=c), 16 * n, repeats)


def add(a: np.ndarray, b: np.ndarray, c: np.ndarray, repeats: int = 3) -> StreamResult:
    """STREAM add: ``c[:] = a+b`` — 24 bytes per element."""
    n = a.shape[0]
    return _run("add", lambda: np.add(a, b, out=c), 24 * n, repeats)


def triad(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, s: float = 3.0, repeats: int = 3
) -> StreamResult:
    """STREAM triad: ``a[:] = b + s*c`` — 24 bytes per element."""
    n = a.shape[0]

    def body() -> None:
        np.multiply(c, s, out=a)
        np.add(a, b, out=a)

    return _run("triad", body, 24 * n, repeats)


def run_all(n: int = 1_000_000, repeats: int = 3) -> list[StreamResult]:
    """Run the four STREAM kernels on freshly allocated arrays of size n."""
    a = np.random.default_rng(0).random(n)
    b = np.random.default_rng(1).random(n)
    c = np.zeros(n)
    return [
        copy(a, c, repeats),
        scale(a, c, repeats=repeats),
        add(a, b, c, repeats),
        triad(a, b, c, repeats=repeats),
    ]


def figure4_series(
    curves: tuple[BandwidthCurve, ...] = FIGURE4_CURVES,
    process_counts: tuple[int, ...] = FIGURE4_PROCESS_COUNTS,
) -> dict[str, list[tuple[int, float]]]:
    """The Figure 4 data: achieved GB/s per (curve, process count).

    Returns a mapping from curve name (``Flat:AVX512`` etc.) to a list of
    ``(nprocs, GB/s)`` points over the paper's x-axis.
    """
    return {
        curve.name: [(p, curve.at(p)) for p in process_counts] for curve in curves
    }
