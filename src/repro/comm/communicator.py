"""Simulated message-passing world and per-rank communicators.

This is the repository's substitute for MPI (DESIGN.md substitution table).
Ranks run as threads inside one interpreter
(:mod:`repro.comm.spmd` drives them); a :class:`World` owns the mailboxes
and synchronization, and each rank holds a :class:`Comm` façade exposing the
mpi4py-flavoured operations the rest of the library uses: ``send``/``recv``,
``isend``/``irecv``, barrier, broadcast, reductions, gathers.

Semantics follow MPI where the library relies on them:

* messages between a (source, dest, tag) triple are non-overtaking;
* ``isend`` is buffered — it completes immediately and the payload is
  snapshot-copied, so the sender may reuse its buffer (NumPy payloads are
  copied via ``np.array(..., copy=True)``);
* collectives are synchronizing and deterministic: contributions are
  combined in rank order regardless of thread arrival order, so floating-
  point reductions are reproducible run to run.

The world also keeps traffic statistics (message and byte counts) that the
multinode experiments check against the network model.
"""

from __future__ import annotations

import threading
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..faults.events import emit as emit_fault_event
from ..faults.plan import fire as fire_fault
from ..obs.observer import obs_gap, obs_instant
from .request import CompletedRequest, DeferredRequest, Request

ANY_TAG = -1

#: Retransmissions attempted for a dropped message before giving up.
#: Per-world override: ``World(size, max_send_retries=...)`` (threaded
#: through ``ExecutionContext.max_send_retries`` by the layers that build
#: worlds).
MAX_SEND_RETRIES = 8


def retry_backoff(site: str, attempt: int, seed: int = 0) -> int:
    """Backoff (modeled microseconds) before retransmission ``attempt``.

    Exponential window with deterministic seeded jitter: attempt ``k``
    waits ``2^(k-1) + crc32(seed:site:k) % 2^(k-1)``, i.e. somewhere in
    ``[2^(k-1), 2^k)``.  The jitter is a pure function of (seed, site,
    attempt), and the site string embeds the rank, so simultaneous
    per-rank retransmissions spread across the window instead of
    retrying in lockstep — yet every run of the same seed replays the
    identical timeline.
    """
    if attempt < 1:
        raise ValueError("retry attempts are 1-based")
    window = 1 << (attempt - 1)
    jitter = zlib.crc32(f"{seed}:{site}:{attempt}".encode()) % window
    return window + jitter


class CommunicatorError(RuntimeError):
    """Misuse of the communicator (bad rank, mismatched collective, ...)."""


class RankDeath(CommunicatorError):
    """A rank died mid-job (fault injection or a fatal rank-local error)."""


def _snapshot(payload: Any) -> Any:
    """Copy a payload at send time, emulating MPI's buffered semantics."""
    if isinstance(payload, np.ndarray):
        return np.array(payload, copy=True)
    return payload


def _payload_bytes(payload: Any) -> int:
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (int, float, complex, bool)):
        return 8
    return 0


@dataclass
class TrafficStats:
    """Counts of point-to-point traffic through a world."""

    messages: int = 0
    bytes: int = 0


@dataclass
class _Collective:
    """Rendezvous state for one in-progress collective operation."""

    kind: str
    contributions: dict[int, Any] = field(default_factory=dict)
    result: Any = None
    generation: int = 0
    done: bool = False


class World:
    """The shared state of a simulated MPI job of ``size`` ranks.

    Setting :attr:`schedule_log` (a
    :class:`~repro.comm.schedule.ScheduleLog`) records every message and
    collective with vector clocks for post-run analysis by
    :mod:`repro.analysis.comm_check`; the hooks run under the world lock,
    so logging adds no new synchronization.
    """

    def __init__(
        self,
        size: int,
        max_send_retries: int | None = None,
        retry_seed: int = 0,
    ):
        if size < 1:
            raise ValueError("world size must be positive")
        if max_send_retries is not None and max_send_retries < 1:
            raise ValueError("max_send_retries must be positive")
        self.size = size
        self.max_send_retries = (
            MAX_SEND_RETRIES if max_send_retries is None else max_send_retries
        )
        self.retry_seed = retry_seed
        self.schedule_log = None
        # Reentrant: request poll closures re-enter through World.poll while
        # World.block already holds the lock.
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        # mailboxes[(src, dst)] -> deque of (tag, payload)
        self._mailboxes: dict[tuple[int, int], deque[tuple[int, Any]]] = {}
        self._collective: _Collective | None = None
        self._collective_generation = 0
        self.stats = TrafficStats()
        self._aborted: BaseException | None = None

    # -- failure propagation -------------------------------------------
    def abort(self, exc: BaseException) -> None:
        """Poison the world so peers blocked in waits fail fast."""
        with self._cond:
            if self._aborted is None:
                self._aborted = exc
            self._cond.notify_all()

    def _check_abort(self) -> None:
        if self._aborted is not None:
            raise CommunicatorError(
                f"a peer rank failed: {self._aborted!r}"
            ) from self._aborted

    def kill(self, rank: int, where: str = "") -> None:
        """Terminate ``rank`` abruptly, poisoning the whole world.

        Models fail-stop rank death: peers blocked in waits or collectives
        observe the poisoned world and raise
        :class:`CommunicatorError` instead of hanging —
        :func:`repro.comm.spmd.run_spmd` then surfaces the job failure.
        """
        suffix = f" during {where}" if where else ""
        exc = RankDeath(f"rank {rank} died{suffix}")
        emit_fault_event(
            "detected", "comm.world", "kill", detail=f"rank {rank}{suffix}"
        )
        self.abort(exc)
        raise exc

    # -- point to point ---------------------------------------------------
    def push(self, src: int, dst: int, tag: int, payload: Any) -> None:
        with self._cond:
            self._check_abort()
            box = self._mailboxes.setdefault((src, dst), deque())
            box.append((tag, _snapshot(payload)))
            self.stats.messages += 1
            self.stats.bytes += _payload_bytes(payload)
            if self.schedule_log is not None:
                self.schedule_log.record_send(src, dst, tag)
            self._cond.notify_all()

    def _try_pop(self, src: int, dst: int, tag: int) -> tuple[bool, Any]:
        box = self._mailboxes.get((src, dst))
        if not box:
            return False, None
        if tag == ANY_TAG:
            msg_tag, payload = box.popleft()
            if self.schedule_log is not None:
                self.schedule_log.record_recv(src, dst, msg_tag, wildcard=True)
            return True, payload
        for i, (msg_tag, payload) in enumerate(box):
            if msg_tag == tag:
                del box[i]
                if self.schedule_log is not None:
                    self.schedule_log.record_recv(src, dst, tag)
                return True, payload
        return False, None

    def poll(self, src: int, dst: int, tag: int) -> tuple[bool, Any]:
        with self._cond:
            self._check_abort()
            return self._try_pop(src, dst, tag)

    def block(self, poll: Callable[[], tuple[bool, Any]]) -> Any:
        """Wait until ``poll`` (run under the lock) yields a value."""
        with self._cond:
            while True:
                self._check_abort()
                done, value = poll()
                if done:
                    return value
                self._cond.wait(timeout=5.0)

    # -- collectives ------------------------------------------------------
    def collective(
        self, rank: int, kind: str, contribution: Any, combine: Callable[[dict[int, Any]], Any]
    ) -> Any:
        """Synchronizing rendezvous: all ranks contribute, one result.

        The last rank to arrive combines the contributions *in rank order*
        and publishes the result; everyone leaves together.  Mismatched
        ``kind`` strings across ranks raise, catching the classic
        mismatched-collective deadlock as an error instead.
        """
        with self._cond:
            self._check_abort()
            if self._collective is None:
                self._collective = _Collective(
                    kind=kind, generation=self._collective_generation
                )
            coll = self._collective
            if coll.kind != kind:
                err = CommunicatorError(
                    f"collective mismatch: rank {rank} called {kind!r} while "
                    f"peers are in {coll.kind!r}"
                )
                self._aborted = self._aborted or err
                self._cond.notify_all()
                raise err
            if rank in coll.contributions:
                raise CommunicatorError(
                    f"rank {rank} entered collective {kind!r} twice"
                )
            coll.contributions[rank] = _snapshot(contribution)
            if self.schedule_log is not None:
                self.schedule_log.record_collective(rank, kind)
            if len(coll.contributions) == self.size:
                coll.result = combine(coll.contributions)
                coll.done = True
                self._collective = None
                self._collective_generation += 1
                self._cond.notify_all()
                return coll.result
            generation = coll.generation
            while not (coll.done and coll.generation == generation):
                self._check_abort()
                self._cond.wait(timeout=5.0)
            return coll.result


class Comm:
    """Per-rank communicator façade over a :class:`World`."""

    def __init__(self, world: World, rank: int):
        if not 0 <= rank < world.size:
            raise CommunicatorError(f"rank {rank} out of range for size {world.size}")
        self.world = world
        self.rank = rank

    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return self.world.size

    def _check_peer(self, peer: int, op: str = "point-to-point") -> None:
        if not 0 <= peer < self.size:
            raise CommunicatorError(
                f"rank {self.rank}: peer rank {peer} out of range for "
                f"world size {self.size} during {op}"
            )

    # -- point to point ---------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Buffered blocking send (completes immediately).

        This is the per-rank comm fault site (``comm.send@<rank>``): an
        armed injector can drop the message in flight (recovered by
        retransmission with modeled exponential backoff), delay it (a
        benign straggler — the simulated transport is in-order anyway), or
        kill this rank outright (fail-stop, poisoning the world).
        """
        self._check_peer(dest, f"send(tag={tag})")
        site = f"comm.send@{self.rank}"
        where = f"send(dest={dest}, tag={tag})"
        spec = fire_fault(site)
        attempts = 0
        max_retries = self.world.max_send_retries
        while spec is not None and spec.kind == "drop":
            # The message was lost; each retransmission is a fresh send
            # attempt against the injector, so consecutive scheduled drops
            # cost consecutive retries — deterministically.
            attempts += 1
            if attempts > max_retries:
                raise CommunicatorError(
                    f"rank {self.rank}: {where} still dropped after "
                    f"{max_retries} retransmissions"
                )
            backoff = retry_backoff(site, attempts, self.world.retry_seed)
            emit_fault_event(
                "recovered",
                site,
                "retry",
                detail=f"rank {self.rank} {where}: resend {attempts} "
                f"after backoff {backoff}",
            )
            # The retry gap on the timeline: the modeled jittered backoff
            # window (in microseconds of trace time) this rank sat waiting
            # before the retransmission.
            obs_gap(
                "comm.retry",
                duration=backoff * 1e-6,
                rank=self.rank,
                args={"site": site, "attempt": attempts, "backoff": backoff},
            )
            spec = fire_fault(site)
        if spec is not None:
            if spec.kind == "straggle":
                emit_fault_event(
                    "benign",
                    site,
                    "straggle",
                    detail=f"rank {self.rank} {where}: delivery delayed "
                    f"{spec.magnitude:g}x (in-order transport)",
                )
                obs_instant(
                    "comm.straggle",
                    rank=self.rank,
                    args={"site": site, "magnitude": spec.magnitude},
                )
            elif spec.kind == "kill":
                self.world.kill(self.rank, where)
            else:
                # Payload-corruption kinds don't apply here: the modeled
                # link layer is CRC-protected, so a corrupted frame is
                # equivalent to a drop already handled above.
                emit_fault_event(
                    "benign",
                    site,
                    spec.kind,
                    detail=f"rank {self.rank} {where}: caught by link CRC",
                )
        self.world.push(self.rank, dest, tag, payload)

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; buffered, so already complete."""
        self.send(payload, dest, tag)
        return CompletedRequest()

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive returning a waitable request."""
        self._check_peer(source, f"irecv(tag={tag})")
        src, dst = source, self.rank

        def poll() -> tuple[bool, Any]:
            return self.world.poll(src, dst, tag)

        return DeferredRequest(poll, self.world.block)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive."""
        return self.irecv(source, tag).wait()

    # -- collectives ------------------------------------------------------
    def barrier(self) -> None:
        """Synchronize all ranks."""
        self.world.collective(self.rank, "barrier", None, lambda c: None)

    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Broadcast ``payload`` from ``root``; returns it on every rank."""
        self._check_peer(root, "bcast")
        return self.world.collective(
            self.rank, f"bcast:{root}", payload if self.rank == root else None,
            lambda c: c[root],
        )

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """Reduce ``value`` across ranks (deterministic rank order)."""

        def combine(contributions: dict[int, Any]) -> Any:
            ordered = [contributions[r] for r in range(self.size)]
            if op == "sum":
                total = ordered[0]
                for v in ordered[1:]:
                    total = total + v
                return total
            if op == "max":
                return max(ordered)
            if op == "min":
                return min(ordered)
            raise CommunicatorError(
                f"rank {self.rank}: unknown reduction op {op!r} in allreduce"
            )

        return self.world.collective(self.rank, f"allreduce:{op}", value, combine)

    def allgather(self, value: Any) -> list[Any]:
        """Gather one value from every rank, everywhere, in rank order."""
        return self.world.collective(
            self.rank,
            "allgather",
            value,
            lambda c: [c[r] for r in range(self.size)],
        )

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Gather to ``root``; other ranks receive None."""
        self._check_peer(root, "gather")
        gathered = self.world.collective(
            self.rank,
            f"gather:{root}",
            value,
            lambda c: [c[r] for r in range(self.size)],
        )
        return gathered if self.rank == root else None

    def scatter(self, values: list[Any] | None, root: int = 0) -> Any:
        """Scatter a list from ``root``, one element per rank."""
        self._check_peer(root, "scatter")
        if self.rank == root and (values is None or len(values) != self.size):
            raise CommunicatorError(
                f"rank {self.rank}: scatter from root {root} requires "
                f"one value per rank ({self.size})"
            )
        gathered = self.world.collective(
            self.rank,
            f"scatter:{root}",
            values if self.rank == root else None,
            lambda c: c[root],
        )
        return gathered[self.rank]
