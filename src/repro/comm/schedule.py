"""Communication-schedule capture: a vector-clocked log of World traffic.

A :class:`ScheduleLog` attached to a :class:`~repro.comm.communicator.World`
(``world.schedule_log = ScheduleLog(world.size)``) records every
point-to-point message and collective rendezvous as a
:class:`CommEvent` stamped with a per-rank **vector clock** — the standard
happens-before partial order for message-passing programs: each rank ticks
its own component on every event, a send carries the sender's clock, and
the matching receive joins it into the receiver's.  Two events neither of
whose clocks dominates the other are *concurrent*: neither could have
observed the other, which is exactly the window a wildcard receive races
in.

The log is passive and complete: the World calls the ``record_*`` hooks
under its own lock, in mailbox order, so the log's shadow queues mirror
the real mailboxes exactly (the transport is non-overtaking).  After the
SPMD job finishes, :func:`repro.analysis.comm_check.check_log` audits the
log for leaked sends and ambiguous wildcard matches; the *static* checker
in the same module analyzes planned schedules without running them at all
(a run that deadlocks has no log to audit).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CommEvent:
    """One logged communication action.

    ``rank`` is the acting rank (sender of a send, receiver of a recv);
    ``peer`` the other side (``-1`` for collectives).  ``clock`` is the
    acting rank's vector clock *after* the event.  For wildcard receives,
    ``pending_tags`` snapshots the distinct tags that were waiting in the
    matched mailbox — more than one means the match was ambiguous.
    """

    kind: str                 #: "send" | "recv" | "collective"
    rank: int
    peer: int
    tag: int
    clock: tuple[int, ...]
    wildcard: bool = False
    pending_tags: tuple[int, ...] = ()


@dataclass
class ScheduleLog:
    """Vector-clocked record of every message through one World.

    Not locked internally: the World invokes the hooks while holding its
    own lock, which already serializes mailbox order.
    """

    size: int
    events: list[CommEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._clocks = [[0] * self.size for _ in range(self.size)]
        # (src, dst) -> deque of (tag, sender clock at send); mirrors the
        # World's mailboxes message for message.
        self._in_flight: dict[tuple[int, int], deque] = {}

    def _tick(self, rank: int) -> tuple[int, ...]:
        self._clocks[rank][rank] += 1
        return tuple(self._clocks[rank])

    def record_send(self, src: int, dst: int, tag: int) -> None:
        clock = self._tick(src)
        self._in_flight.setdefault((src, dst), deque()).append((tag, clock))
        self.events.append(CommEvent("send", src, dst, tag, clock))

    def record_recv(
        self, src: int, dst: int, tag: int, wildcard: bool = False
    ) -> None:
        """Log a completed receive; joins the sender's clock at send time.

        The shadow queue is scanned with the mailbox's own matching rule
        (wildcard pops the head, a tag pops its first match), so the
        joined clock belongs to the exact message the World delivered.
        """
        box = self._in_flight.get((src, dst), deque())
        pending = tuple(dict.fromkeys(t for t, _ in box))  # distinct, ordered
        send_clock: tuple[int, ...] | None = None
        for i, (msg_tag, clock) in enumerate(box):
            if wildcard or msg_tag == tag:
                send_clock = clock
                del box[i]
                break
        if send_clock is not None:
            mine = self._clocks[dst]
            for r in range(self.size):
                mine[r] = max(mine[r], send_clock[r])
        clock = self._tick(dst)
        self.events.append(CommEvent(
            "recv", dst, src, tag, clock,
            wildcard=wildcard,
            pending_tags=pending if wildcard else (),
        ))

    def record_collective(self, rank: int, kind: str) -> None:
        # The rendezvous synchronizes every rank, so each participant's
        # clock joins all contributions when the collective completes;
        # ticking at entry is enough for the audits this log feeds
        # (leaked sends and wildcard races are point-to-point properties).
        clock = self._tick(rank)
        self.events.append(CommEvent("collective", rank, -1, 0, clock))

    # -- post-run queries ----------------------------------------------
    def unreceived(self) -> list[tuple[int, int, int]]:
        """(src, dst, tag) of every message sent but never received."""
        leaked = []
        for (src, dst), box in self._in_flight.items():
            leaked.extend((src, dst, tag) for tag, _ in box)
        return leaked

    def ambiguous_wildcards(self) -> list[CommEvent]:
        """Wildcard receives that matched against >1 distinct pending tag."""
        return [
            e for e in self.events
            if e.kind == "recv" and e.wildcard and len(e.pending_tags) > 1
        ]


def happens_before(a: tuple[int, ...], b: tuple[int, ...]) -> bool:
    """Whether clock ``a`` happens-before ``b`` (a <= b and a != b)."""
    return all(x <= y for x, y in zip(a, b, strict=True)) and a != b


def concurrent(a: tuple[int, ...], b: tuple[int, ...]) -> bool:
    """Neither event could have observed the other."""
    return not happens_before(a, b) and not happens_before(b, a)
