"""Non-blocking communication requests (the model of ``MPI_Request``).

The parallel SpMV of paper Section 2.2 depends on non-blocking semantics:
step 1 posts the ghost-value transfers, step 2 computes the diagonal block,
step 3 waits.  These request objects provide exactly that interface over
the simulated transport in :mod:`repro.comm.communicator`.
"""

from __future__ import annotations

from typing import Any, Callable


class Request:
    """Handle for an in-flight non-blocking operation."""

    def test(self) -> bool:
        """Non-blocking completion check."""
        raise NotImplementedError

    def wait(self) -> Any:
        """Block until complete; return the received payload (or None)."""
        raise NotImplementedError


class CompletedRequest(Request):
    """A request that completed eagerly (sends in this transport)."""

    def __init__(self, value: Any = None):
        self._value = value

    def test(self) -> bool:
        return True

    def wait(self) -> Any:
        return self._value


class DeferredRequest(Request):
    """A request completed by an arriving message.

    ``poll`` is a callable returning ``(done, value)``; ``block`` waits on
    the transport's condition variable until ``poll`` succeeds.
    """

    def __init__(
        self,
        poll: Callable[[], tuple[bool, Any]],
        block: Callable[[Callable[[], tuple[bool, Any]]], Any],
    ):
        self._poll = poll
        self._block = block
        self._done = False
        self._value: Any = None

    def test(self) -> bool:
        if self._done:
            return True
        done, value = self._poll()
        if done:
            self._done, self._value = True, value
        return self._done

    def wait(self) -> Any:
        if not self._done:
            self._value = self._block(self._poll)
            self._done = True
        return self._value


def wait_all(requests: list[Request]) -> list[Any]:
    """Wait on every request, in order; returns their payloads."""
    return [r.wait() for r in requests]
