"""Row layouts: how a global dimension is split across ranks.

PETSc distributes matrices by consecutive row blocks (paper Section 2.1,
Figure 2) and vectors conformingly.  :class:`RowLayout` is that ownership
map: contiguous ranges, one per rank, computed with PETSc's default
rule (the first ``n % size`` ranks get one extra row).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass


@dataclass(frozen=True)
class RowLayout:
    """Ownership of a global index range by ``size`` ranks.

    Attributes
    ----------
    n_global:
        Total number of rows (or vector entries).
    starts:
        ``size + 1`` offsets; rank ``r`` owns ``[starts[r], starts[r+1])``.
    """

    n_global: int
    starts: tuple[int, ...]

    @classmethod
    def uniform(cls, n_global: int, size: int) -> "RowLayout":
        """PETSc's PETSC_DECIDE split: remainders go to the lowest ranks."""
        if n_global < 0:
            raise ValueError("global size must be non-negative")
        if size < 1:
            raise ValueError("communicator size must be positive")
        base, extra = divmod(n_global, size)
        starts = [0]
        for rank in range(size):
            starts.append(starts[-1] + base + (1 if rank < extra else 0))
        return cls(n_global=n_global, starts=tuple(starts))

    @classmethod
    def from_local_sizes(cls, local_sizes: list[int]) -> "RowLayout":
        """Layout from explicit per-rank local sizes."""
        if any(s < 0 for s in local_sizes):
            raise ValueError("local sizes must be non-negative")
        starts = [0]
        for s in local_sizes:
            starts.append(starts[-1] + s)
        return cls(n_global=starts[-1], starts=tuple(starts))

    @property
    def size(self) -> int:
        """Number of ranks in the layout."""
        return len(self.starts) - 1

    def range_of(self, rank: int) -> tuple[int, int]:
        """The ``[start, end)`` rows owned by ``rank``."""
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} out of range")
        return self.starts[rank], self.starts[rank + 1]

    def local_size(self, rank: int) -> int:
        """Number of rows ``rank`` owns."""
        start, end = self.range_of(rank)
        return end - start

    def owner_of(self, index: int) -> int:
        """The rank owning global ``index``."""
        if not 0 <= index < self.n_global:
            raise IndexError(f"global index {index} out of range")
        return bisect.bisect_right(self.starts, index) - 1

    def to_local(self, rank: int, index: int) -> int:
        """Convert a global index owned by ``rank`` to its local offset."""
        start, end = self.range_of(rank)
        if not start <= index < end:
            raise IndexError(f"index {index} not owned by rank {rank}")
        return index - start

    def is_balanced(self, tolerance: int = 1) -> bool:
        """True when local sizes differ by at most ``tolerance``."""
        sizes = [self.local_size(r) for r in range(self.size)]
        return max(sizes) - min(sizes) <= tolerance
