"""SPMD driver: run one function on every rank of a simulated world.

``run_spmd(size, fn, ...)`` is the replacement for ``mpiexec -n size``:
it spawns one thread per rank, hands each a :class:`~repro.comm.Comm`,
joins them, and returns the per-rank return values in rank order.  A
failure on any rank poisons the world (so peers blocked in receives or
collectives exit promptly) and is re-raised to the caller with the
originating rank attached.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ..obs.observer import active_observer, obs_rank
from .communicator import Comm, World


class SpmdError(RuntimeError):
    """A rank raised during an SPMD region."""

    def __init__(self, rank: int, original: BaseException):
        super().__init__(f"rank {rank} failed: {original!r}")
        self.rank = rank
        self.original = original


def run_spmd(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    world: World | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Execute ``fn(comm, *args, **kwargs)`` on ``size`` ranks.

    Parameters
    ----------
    size:
        Number of ranks.
    fn:
        The per-rank program; receives its :class:`Comm` first.
    world:
        Pass an existing :class:`World` to observe its traffic statistics
        after the region; one is created otherwise.

    Returns
    -------
    list
        ``fn``'s return values, indexed by rank.

    Raises
    ------
    SpmdError
        Wrapping the first rank failure (lowest rank wins ties).
    """
    if world is None:
        world = World(size)
    elif world.size != size:
        raise ValueError("existing world size does not match requested size")

    results: list[Any] = [None] * size
    errors: dict[int, BaseException] = {}

    def runner(rank: int) -> None:
        # Tag the thread so an active observer attributes this rank's
        # events to its own log and trace track (a no-op otherwise).
        obs_rank(rank)
        comm = Comm(world, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc
            world.abort(exc)

    threads = [
        threading.Thread(target=runner, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    obs = active_observer()
    if obs is not None:
        obs.metrics.record_traffic(world.stats)

    if errors:
        # Prefer the originating failure: once one rank dies, its peers
        # fail with secondary CommunicatorErrors from the poisoned world.
        from .communicator import CommunicatorError, RankDeath

        primary = [r for r, e in errors.items() if not isinstance(e, CommunicatorError)]
        if not primary:
            # An injected rank death outranks the secondary errors its
            # peers raise out of the poisoned world.
            primary = [r for r, e in errors.items() if isinstance(e, RankDeath)]
        rank = min(primary) if primary else min(errors)
        raise SpmdError(rank, errors[rank]) from errors[rank]
    return results
