"""Simulated message passing: the repository's MPI substitute.

Ranks are threads inside one interpreter; a :class:`World` carries
mailboxes and synchronization, :class:`Comm` is the per-rank mpi4py-style
façade, :func:`run_spmd` plays the role of ``mpiexec``, and
:class:`VecScatter` implements PETSc's ghost-value exchange used by the
overlapped parallel SpMV (paper Section 2.2).
"""

from .communicator import (
    ANY_TAG,
    Comm,
    CommunicatorError,
    RankDeath,
    TrafficStats,
    World,
)
from .partition import RowLayout
from .request import CompletedRequest, DeferredRequest, Request, wait_all
from .scatter import VecScatter
from .spmd import SpmdError, run_spmd

__all__ = [
    "ANY_TAG",
    "Comm",
    "CommunicatorError",
    "CompletedRequest",
    "DeferredRequest",
    "RankDeath",
    "Request",
    "RowLayout",
    "SpmdError",
    "TrafficStats",
    "VecScatter",
    "World",
    "run_spmd",
    "wait_all",
]
