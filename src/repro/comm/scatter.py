"""VecScatter: the ghost-value exchange behind parallel SpMV.

Step 1 of the paper's parallel SpMV (Section 2.2) "sends nonblocking
requests for the nonlocal data of the vector on other processors"; PETSc
encapsulates that in a ``VecScatter`` built once per matrix from the
off-diagonal block's column set.  This is that object:

* construction is collective: ranks exchange which remote entries they
  need, and each rank derives its send plan from its peers' needs;
* :meth:`begin` posts the non-blocking sends and receives;
* :meth:`end` completes them and returns the ghost values in the order of
  the requested indices — computation on the diagonal block proceeds
  between the two calls, which is exactly the overlap the paper exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .communicator import Comm
from .partition import RowLayout
from .request import Request

_SCATTER_TAG = 7001


@dataclass(frozen=True)
class _SendPlan:
    peer: int
    local_offsets: np.ndarray  # offsets into the local vector to ship


@dataclass(frozen=True)
class _RecvPlan:
    peer: int
    ghost_slice: slice  # where the payload lands in the ghost buffer


class VecScatter:
    """A reusable ghost-exchange plan for one (layout, ghost set) pair."""

    def __init__(self, comm: Comm, layout: RowLayout, ghost_indices: np.ndarray):
        """Build the plan.  Collective over ``comm``.

        Parameters
        ----------
        comm:
            The communicator; every rank must call with its own ghosts.
        layout:
            Ownership of the global vector.
        ghost_indices:
            Sorted, unique global indices this rank needs but does not own.
        """
        ghosts = np.asarray(ghost_indices, dtype=np.int64)
        if ghosts.size and (
            np.any(ghosts[:-1] >= ghosts[1:]) or ghosts.min() < 0
        ):
            raise ValueError("ghost indices must be sorted, unique, non-negative")
        start, end = layout.range_of(comm.rank)
        if ghosts.size and np.any((ghosts >= start) & (ghosts < end)):
            raise ValueError("ghost indices must not include owned entries")

        self.comm = comm
        self.layout = layout
        self.ghost_indices = ghosts
        self.n_ghosts = int(ghosts.size)

        # Group my needs by owning rank (ghosts are sorted, so each owner's
        # block is contiguous and the ghost buffer fills in slices).
        needs: dict[int, np.ndarray] = {}
        if ghosts.size:
            owners = np.array([layout.owner_of(int(g)) for g in ghosts])
            for peer in np.unique(owners):
                needs[int(peer)] = ghosts[owners == peer]

        # Everyone learns everyone's needs; my sends are peers' needs of me.
        all_needs: list[dict[int, np.ndarray]] = comm.allgather(needs)
        self._recv_plans: list[_RecvPlan] = []
        offset = 0
        for peer in sorted(needs):
            count = needs[peer].size
            self._recv_plans.append(
                _RecvPlan(peer=peer, ghost_slice=slice(offset, offset + count))
            )
            offset += count

        self._send_plans: list[_SendPlan] = []
        for peer in range(comm.size):
            wanted = all_needs[peer].get(comm.rank)
            if wanted is not None and peer != comm.rank:
                self._send_plans.append(
                    _SendPlan(peer=peer, local_offsets=wanted - start)
                )

        self._pending: list[tuple[_RecvPlan, Request]] | None = None
        self._ghost_values = np.zeros(self.n_ghosts, dtype=np.float64)

    @property
    def send_peers(self) -> list[int]:
        """Ranks this rank ships values to."""
        return [p.peer for p in self._send_plans]

    @property
    def recv_peers(self) -> list[int]:
        """Ranks this rank receives ghost values from."""
        return [p.peer for p in self._recv_plans]

    def begin(self, local_values: np.ndarray) -> None:
        """Post all sends and receives (paper's SpMV step 1)."""
        if self._pending is not None:
            raise RuntimeError("scatter already in progress; call end() first")
        local = np.asarray(local_values, dtype=np.float64)
        expected = self.layout.local_size(self.comm.rank)
        if local.shape[0] != expected:
            raise ValueError(
                f"local vector has {local.shape[0]} entries, layout says {expected}"
            )
        for plan in self._send_plans:
            self.comm.isend(local[plan.local_offsets], plan.peer, tag=_SCATTER_TAG)
        self._pending = [
            (plan, self.comm.irecv(plan.peer, tag=_SCATTER_TAG))
            for plan in self._recv_plans
        ]

    def end(self) -> np.ndarray:
        """Complete the exchange (step 3) and return the ghost values.

        The returned array is aligned with ``ghost_indices`` and reused
        across calls; callers must not hold it across a second exchange.
        """
        if self._pending is None:
            raise RuntimeError("no scatter in progress; call begin() first")
        for plan, request in self._pending:
            payload = request.wait()
            self._ghost_values[plan.ghost_slice] = payload
        self._pending = None
        return self._ghost_values

    def exchange(self, local_values: np.ndarray) -> np.ndarray:
        """begin + end in one call, for callers without work to overlap."""
        self.begin(local_values)
        return self.end()

    # ------------------------------------------------------------------
    # Reverse mode (ScatterReverse + ADD_VALUES): used by MatMultTranspose,
    # where ghost *contributions* flow back to their owners and accumulate.
    # ------------------------------------------------------------------
    def reverse_begin(self, ghost_contributions: np.ndarray) -> None:
        """Post the owner-bound sends of per-ghost contributions."""
        if self._pending is not None:
            raise RuntimeError("scatter already in progress; call end() first")
        contrib = np.asarray(ghost_contributions, dtype=np.float64)
        if contrib.shape[0] != self.n_ghosts:
            raise ValueError(
                f"expected {self.n_ghosts} ghost contributions, got "
                f"{contrib.shape[0]}"
            )
        # Reverse roles: my recv plans become sends (I computed values for
        # entries those peers own), my send plans become receives.
        for plan in self._recv_plans:
            self.comm.isend(
                contrib[plan.ghost_slice], plan.peer, tag=_SCATTER_TAG + 1
            )
        self._pending = [
            (plan, self.comm.irecv(plan.peer, tag=_SCATTER_TAG + 1))
            for plan in self._send_plans
        ]

    def reverse_end(self, local_values: np.ndarray) -> None:
        """Complete the reverse exchange, accumulating into owned entries."""
        if self._pending is None:
            raise RuntimeError("no scatter in progress; call reverse_begin() first")
        local = np.asarray(local_values)
        expected = self.layout.local_size(self.comm.rank)
        if local.shape[0] != expected:
            raise ValueError(
                f"local vector has {local.shape[0]} entries, layout says {expected}"
            )
        for plan, request in self._pending:
            payload = request.wait()
            np.add.at(local, plan.local_offsets, payload)
        self._pending = None
