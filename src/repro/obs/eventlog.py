"""Staged event logging in the style of PETSc's ``-log_view``.

This module subsumes the original flat profiler (``repro.profiling``,
which now re-exports from here) and extends it with PETSc's *log stages*
(``PetscLogStagePush``/``Pop``): named phases of a run — setup, assembly,
Krylov iteration, multigrid levels, fault recovery — that the summary
table breaks down by, exactly the way the paper's published ``-log_view``
files attribute MatMult time per stage.

Three invariants hold by construction:

* the flat API is preserved: an :class:`EventLog` used without ever
  pushing a stage behaves exactly like the original profiler, with every
  event accounted to the implicit stage 0 (``"Main Stage"``);
* events nest and self-time is attributed to the innermost active event,
  so percentages add up the way PETSc's do;
* stages tile the wall clock: stage self-times (including Main Stage's
  remainder) sum to :attr:`EventLog.wall_seconds` exactly, which the
  test suite pins with a fake clock.

Use context managers for both layers::

    log = EventLog()
    with log.stage("KSPSolve"):
        with log.event("MatMult", flops=2 * nnz):
            y = a.multiply(x)
    print(log.render())
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")

#: The implicit stage 0 every un-staged event is accounted to.
MAIN_STAGE = "Main Stage"


@dataclass
class EventRecord:
    """Accumulated statistics for one named event within one stage."""

    name: str
    stage: str = MAIN_STAGE
    calls: int = 0
    total_seconds: float = 0.0    #: inclusive (with children)
    self_seconds: float = 0.0     #: exclusive (innermost attribution)
    flops: int = 0

    @property
    def gflops_rate(self) -> float:
        """Registered flops over self time, in Gflop/s."""
        if self.self_seconds <= 0:
            return 0.0
        return self.flops / self.self_seconds / 1e9


@dataclass
class StageRecord:
    """Accumulated wall time for one log stage."""

    name: str
    index: int
    pushes: int = 0
    total_seconds: float = 0.0    #: inclusive (with nested stages)
    self_seconds: float = 0.0     #: exclusive (nested stages subtracted)


@dataclass
class EventLog:
    """A ``-log_view``-style event profiler with PETSc log stages.

    Without stages this is the original flat profiler.  ``stage()`` (or
    the explicit ``push_stage``/``pop_stage`` pair) opens a named phase;
    events started while a stage is active are recorded under it, and the
    stage itself accumulates wall time with the same self/total
    distinction events have, so nested stages subtract cleanly.
    """

    clock: Callable[[], float] = time.perf_counter
    _records: dict[tuple[str, str], EventRecord] = field(default_factory=dict)
    _stages: dict[str, StageRecord] = field(default_factory=dict)
    #: Open events: (stage, name, start, accumulated child time).
    _stack: list[tuple[str, str, float, float]] = field(default_factory=list)
    #: Open stages: (name, start, accumulated child-stage time).
    _stage_stack: list[tuple[str, float, float]] = field(default_factory=list)
    _created: float | None = None

    def __post_init__(self) -> None:
        self._created = self.clock()
        self._stages[MAIN_STAGE] = StageRecord(name=MAIN_STAGE, index=0, pushes=1)

    # -- stages ------------------------------------------------------------
    @property
    def current_stage(self) -> str:
        """The innermost active stage (``"Main Stage"`` when none pushed)."""
        return self._stage_stack[-1][0] if self._stage_stack else MAIN_STAGE

    def _stage_record(self, name: str) -> StageRecord:
        rec = self._stages.get(name)
        if rec is None:
            rec = StageRecord(name=name, index=len(self._stages))
            self._stages[name] = rec
        return rec

    def push_stage(self, name: str) -> StageRecord:
        """Open stage ``name`` (PETSc's ``PetscLogStagePush``)."""
        if name == MAIN_STAGE:
            raise ValueError("Main Stage is implicit and cannot be pushed")
        rec = self._stage_record(name)
        rec.pushes += 1
        self._stage_stack.append((name, self.clock(), 0.0))
        return rec

    def pop_stage(self) -> StageRecord:
        """Close the innermost stage (PETSc's ``PetscLogStagePop``)."""
        if not self._stage_stack:
            raise ValueError("pop_stage with no stage pushed")
        name, start, child_time = self._stage_stack.pop()
        elapsed = self.clock() - start
        rec = self._stages[name]
        rec.total_seconds += elapsed
        rec.self_seconds += elapsed - child_time
        if self._stage_stack:
            parent, pstart, pchildren = self._stage_stack[-1]
            self._stage_stack[-1] = (parent, pstart, pchildren + elapsed)
        return rec

    @contextmanager
    def stage(self, name: str) -> Iterator[StageRecord]:
        """Run a block under stage ``name``; pops even when the body raises."""
        rec = self.push_stage(name)
        try:
            yield rec
        finally:
            self.pop_stage()

    # -- events ------------------------------------------------------------
    def record(self, name: str, stage: str | None = None) -> EventRecord:
        """The (auto-created) record for ``name`` in ``stage``.

        ``stage`` defaults to the currently active stage, which keeps the
        pre-stage flat API working unchanged: with no stage ever pushed,
        everything lives in ``"Main Stage"``.
        """
        key = (stage if stage is not None else self.current_stage, name)
        if key not in self._records:
            self._records[key] = EventRecord(name=name, stage=key[0])
        return self._records[key]

    @contextmanager
    def event(self, name: str, flops: int = 0) -> Iterator[EventRecord]:
        """Time a region; nested regions subtract from the parent's self time.

        Timing is attributed and the event stack popped even when the body
        raises — an exception inside a fault-recovery region must not lose
        the region's elapsed time or corrupt the nesting of its parents.
        """
        stage = self.current_stage
        rec = self.record(name, stage=stage)
        start = self.clock()
        self._stack.append((stage, name, start, 0.0))
        try:
            yield rec
        finally:
            _, _, _, child_time = self._stack.pop()
            elapsed = self.clock() - start
            rec.calls += 1
            rec.total_seconds += elapsed
            rec.self_seconds += elapsed - child_time
            rec.flops += flops
            if self._stack:
                pstage, pname, pstart, pchildren = self._stack[-1]
                self._stack[-1] = (pstage, pname, pstart, pchildren + elapsed)

    def bump(self, name: str, count: int = 1) -> EventRecord:
        """Count an occurrence of ``name`` without timing it.

        Resilience events (fault injections, detections, recoveries) are
        instantaneous from the profiler's point of view; they show up in
        the summary with call counts and zero time, the way PETSc logs
        stage markers.
        """
        rec = self.record(name)
        rec.calls += count
        return rec

    def timed(self, name: str, flops: int = 0) -> Callable[[Callable[..., T]], Callable[..., T]]:
        """Decorator form of :meth:`event`."""
        def _wrap(fn: Callable[..., T]) -> Callable[..., T]:
            @functools.wraps(fn)
            def _inner(*args, **kwargs) -> T:
                with self.event(name, flops=flops):
                    return fn(*args, **kwargs)

            return _inner

        return _wrap

    # -- reporting ---------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        """Time since the log was created."""
        return self.clock() - (self._created or 0.0)

    def summary(self) -> list[EventRecord]:
        """All records (across stages) sorted by self time, descending."""
        return sorted(
            self._records.values(), key=lambda r: r.self_seconds, reverse=True
        )

    def stage_summary(self) -> list[StageRecord]:
        """Per-stage wall-time accounting, in stage-registration order.

        Main Stage is the remainder: its total is the whole wall clock and
        its self time is whatever no pushed stage covered, so the self
        times of all stages sum to :attr:`wall_seconds` exactly — the
        invariant PETSc's stage table holds and the tests pin.
        """
        wall = self.wall_seconds
        out = []
        staged_total = 0.0
        for rec in sorted(self._stages.values(), key=lambda s: s.index):
            if rec.name == MAIN_STAGE:
                continue
            out.append(rec)
            # Only top-level stage time is subtracted from Main Stage:
            # nested stage time is already inside its parent's total.
            staged_total += rec.total_seconds
        nested = sum(r.total_seconds - r.self_seconds for r in out)
        main = self._stages[MAIN_STAGE]
        main.total_seconds = wall
        main.self_seconds = wall - (staged_total - nested)
        return [main, *out]

    def events_in(self, stage: str) -> list[EventRecord]:
        """Records of ``stage``, sorted by self time, descending."""
        return sorted(
            (r for r in self._records.values() if r.stage == stage),
            key=lambda r: r.self_seconds,
            reverse=True,
        )

    def fraction(self, name: str) -> float:
        """Self time of ``name`` (all stages) over total logged self time."""
        total = sum(r.self_seconds for r in self._records.values())
        if total <= 0:
            return 0.0
        mine = sum(
            r.self_seconds for r in self._records.values() if r.name == name
        )
        return mine / total

    def render(self) -> str:
        """The ``-log_view`` style summary table, grouped by stage."""
        from ..bench.report import format_table

        total = sum(r.self_seconds for r in self._records.values()) or 1.0
        stages = self.stage_summary()
        used_stages = any(s.name != MAIN_STAGE for s in stages)
        rows = []
        for stage in stages:
            events = self.events_in(stage.name)
            if used_stages and (events or stage.name != MAIN_STAGE):
                rows.append(
                    (
                        f"--- stage {stage.index}: {stage.name} "
                        f"({stage.self_seconds:.4f}s self)",
                        "", "", "", "", "",
                    )
                )
            for rec in events:
                rows.append(
                    (
                        rec.name,
                        rec.calls,
                        f"{rec.total_seconds:.4f}",
                        f"{rec.self_seconds:.4f}",
                        f"{100 * rec.self_seconds / total:.0f}%",
                        f"{rec.gflops_rate:.2f}" if rec.flops else "-",
                    )
                )
        return format_table(
            ("event", "calls", "time [s]", "self [s]", "%self", "Gflop/s"),
            rows,
            title="Event log (PETSc -log_view style)",
        )

    def reset(self) -> None:
        """Clear all records and stages (open events keep running)."""
        self._records.clear()
        self._stages.clear()
        self._stages[MAIN_STAGE] = StageRecord(name=MAIN_STAGE, index=0, pushes=1)
        self._created = self.clock()


@dataclass
class LogStage:
    """A named, reusable stage handle (PETSc's ``PetscLogStage``).

    Registering a stage up front gives call sites a handle that can be
    activated repeatedly on a log::

        stage = LogStage("Assembly")
        with stage.on(log):
            assemble()
    """

    name: str

    @contextmanager
    def on(self, log: EventLog) -> Iterator[StageRecord]:
        """Activate this stage on ``log`` for the block."""
        with log.stage(self.name) as rec:
            yield rec
