"""The active observer: one object bundling logs, metrics, and trace.

Instrumented library code (context dispatch, solvers, communicators)
must not require an observability handle threaded through every
signature — exactly the problem :mod:`repro.faults.events` solves for the
resilience stream with its module-level current log.  This module applies
the same pattern: a module-level *current* :class:`Observer` (``None`` by
default) installed for a block with :func:`observing`, and cheap ``obs_*``
hook functions that cost one global read and a ``None`` check when no
observer is active — so instrumentation is passive and the benchmark
fixtures stay bit-identical.

Per-rank attribution uses a thread-local rank: the SPMD driver tags each
rank thread once, and every hook called from that thread lands in that
rank's :class:`~repro.obs.eventlog.EventLog` and trace track.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Mapping

from .chrome_trace import ChromeTrace
from .eventlog import EventLog, EventRecord
from .metrics import MetricsRegistry


class Observer:
    """Bundled observability state for one run.

    Holds one :class:`EventLog` per rank (rank 0 is the default for
    sequential code), a shared :class:`MetricsRegistry`, and a shared
    :class:`ChromeTrace` whose tracks are the ranks.

    Parameters
    ----------
    clock:
        Clock for the trace and (by default) every rank log.
    rank_clock_factory:
        Optional ``rank -> clock`` mapping, used by tests to hand each
        rank thread a deterministic fake clock while the trace keeps the
        shared one.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        rank_clock_factory: Callable[[int], Callable[[], float]] | None = None,
    ) -> None:
        self.clock = clock if clock is not None else time.perf_counter
        self._rank_clock_factory = rank_clock_factory
        self.metrics = MetricsRegistry()
        self.trace = ChromeTrace(clock=self.clock)
        self._logs: dict[int, EventLog] = {}
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- rank plumbing -----------------------------------------------------
    @property
    def rank(self) -> int:
        """The rank attributed to the calling thread (0 unless tagged)."""
        return getattr(self._tls, "rank", 0)

    def set_rank(self, rank: int) -> None:
        """Tag the calling thread as ``rank`` (the SPMD driver's hook)."""
        self._tls.rank = rank

    @contextmanager
    def at_rank(self, rank: int) -> Iterator[None]:
        """Attribute the block's hooks to ``rank`` on this thread."""
        prev = getattr(self._tls, "rank", None)
        self._tls.rank = rank
        try:
            yield
        finally:
            if prev is None:
                del self._tls.rank
            else:
                self._tls.rank = prev

    def log(self, rank: int | None = None) -> EventLog:
        """The (auto-created) event log of ``rank`` (calling thread's by default)."""
        r = self.rank if rank is None else rank
        with self._lock:
            log = self._logs.get(r)
            if log is None:
                clock = (
                    self._rank_clock_factory(r)
                    if self._rank_clock_factory is not None
                    else self.clock
                )
                log = EventLog(clock=clock)
                self._logs[r] = log
            return log

    @property
    def rank_logs(self) -> dict[int, EventLog]:
        """Snapshot of the per-rank logs keyed by rank."""
        with self._lock:
            return dict(self._logs)

    # -- recording ---------------------------------------------------------
    @contextmanager
    def event(
        self, name: str, flops: int = 0, trace: bool = True
    ) -> Iterator[EventRecord]:
        """Time a region in the current rank's log and trace track."""
        rank = self.rank
        log = self.log(rank)
        if trace:
            self.trace.begin(name, rank=rank)
        try:
            with log.event(name, flops=flops) as rec:
                yield rec
        finally:
            if trace:
                self.trace.end(name, rank=rank)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Run a block under log stage ``name`` (also a trace span)."""
        rank = self.rank
        self.trace.begin(name, rank=rank, args={"stage": True})
        try:
            with self.log(rank).stage(name):
                yield
        finally:
            self.trace.end(name, rank=rank)

    def bump(self, name: str, count: int = 1) -> None:
        """Count an untimed occurrence in the current rank's log.

        This signature makes an :class:`Observer` a valid target for
        :meth:`repro.faults.events.ResilienceLog.attach`, so fault events
        mirror into the observed run automatically.
        """
        self.log().bump(name, count)

    def instant(self, name: str, args: Mapping | None = None, rank: int | None = None) -> None:
        """Drop a zero-duration marker on a rank's trace track."""
        self.trace.instant(name, rank=self.rank if rank is None else rank, args=args)

    def gap(
        self,
        name: str,
        duration: float,
        args: Mapping | None = None,
        rank: int | None = None,
    ) -> None:
        """Record a closed span of ``duration`` seconds ending now.

        Comm retry gaps use this: the hole in the timeline is only known
        once the retransmission succeeds.
        """
        r = self.rank if rank is None else rank
        self.trace.complete(
            name, start=self.clock() - duration, duration=duration, rank=r, args=args
        )

    # -- export ------------------------------------------------------------
    def render(self) -> str:
        """Staged summaries of every rank log, concatenated."""
        parts = []
        for rank in sorted(self.rank_logs):
            log = self.rank_logs[rank]
            parts.append(f"[rank {rank}]")
            parts.append(log.render())
        return "\n".join(parts)


#: The module-level current observer (None = observability off).
_current: Observer | None = None
_swap_lock = threading.Lock()


def active_observer() -> Observer | None:
    """The installed observer, or ``None`` when observability is off."""
    return _current


@contextmanager
def observing(observer: Observer | None = None) -> Iterator[Observer]:
    """Install ``observer`` (a fresh one by default) for the block."""
    global _current
    obs = observer if observer is not None else Observer()
    with _swap_lock:
        prev = _current
        _current = obs
    try:
        yield obs
    finally:
        with _swap_lock:
            _current = prev


# -- cheap hooks for instrumented library code -----------------------------
@contextmanager
def obs_event(name: str, flops: int = 0, trace: bool = True) -> Iterator[EventRecord | None]:
    """Time a region iff an observer is active; no-op (one read) otherwise."""
    obs = _current
    if obs is None:
        yield None
        return
    with obs.event(name, flops=flops, trace=trace) as rec:
        yield rec


@contextmanager
def obs_stage(name: str) -> Iterator[None]:
    """Run under a log stage iff an observer is active."""
    obs = _current
    if obs is None:
        yield
        return
    with obs.stage(name):
        yield


def obs_bump(name: str, count: int = 1) -> None:
    """Count an occurrence iff an observer is active."""
    obs = _current
    if obs is not None:
        obs.bump(name, count)


def obs_instant(name: str, args: Mapping | None = None, rank: int | None = None) -> None:
    """Drop a trace marker iff an observer is active."""
    obs = _current
    if obs is not None:
        obs.instant(name, args=args, rank=rank)


def obs_gap(
    name: str, duration: float, args: Mapping | None = None, rank: int | None = None
) -> None:
    """Record a closed gap span iff an observer is active."""
    obs = _current
    if obs is not None:
        obs.gap(name, duration, args=args, rank=rank)


def obs_counter(name: str, amount: float = 1.0, labels: Mapping[str, str] | None = None) -> None:
    """Increment a metrics counter iff an observer is active."""
    obs = _current
    if obs is not None:
        obs.metrics.counter(name, labels).inc(amount)


def obs_rank(rank: int) -> None:
    """Tag the calling thread's rank iff an observer is active."""
    obs = _current
    if obs is not None:
        obs.set_rank(rank)
