"""Per-rank reduction: PETSc's load-imbalance columns over rank logs.

PETSc's ``-log_view`` on a parallel run reports, for every event, the
maximum time over ranks, the max/min *ratio* (the load-imbalance figure),
and the rank-averaged time.  This module computes the same reduction over
the per-rank :class:`~repro.obs.eventlog.EventLog` objects an
:class:`~repro.obs.observer.Observer` collects from an SPMD solve —
per (stage, event) and per stage — without any communication: the logs
already live in one process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .eventlog import MAIN_STAGE, EventLog


@dataclass
class RankReduction:
    """Min/max/avg statistics of one quantity across ranks."""

    name: str
    stage: str = MAIN_STAGE
    calls: int = 0                #: total calls across ranks
    min: float = 0.0
    max: float = 0.0
    avg: float = 0.0

    @property
    def ratio(self) -> float:
        """Max over min — PETSc's load-imbalance column (1.0 = balanced)."""
        if self.min <= 0.0:
            return float("inf") if self.max > 0.0 else 1.0
        return self.max / self.min


@dataclass
class ParallelSummary:
    """The reduced view of one SPMD run's per-rank logs.

    ``stages`` reduces stage *self* times; ``events`` reduces event self
    times per (stage, event).  Both cover the union of names across ranks,
    with absent entries contributing zero (a rank that never ran an event
    is the imbalance worth reporting).
    """

    nranks: int
    stages: list[RankReduction] = field(default_factory=list)
    events: list[RankReduction] = field(default_factory=list)

    def stage(self, name: str) -> RankReduction:
        """The reduction row for stage ``name``."""
        for row in self.stages:
            if row.name == name:
                return row
        raise KeyError(f"no stage {name!r} in summary")

    def event(self, name: str, stage: str | None = None) -> RankReduction:
        """The reduction row for event ``name`` (optionally within ``stage``)."""
        for row in self.events:
            if row.name == name and (stage is None or row.stage == stage):
                return row
        raise KeyError(f"no event {name!r} in summary")

    def render(self) -> str:
        """The ``-log_view`` parallel table: max / ratio / avg columns."""
        from ..bench.report import format_table

        rows = []
        for srow in self.stages:
            rows.append(
                (
                    f"--- stage: {srow.name}",
                    "",
                    f"{srow.max:.4f}",
                    f"{srow.ratio:.2f}" if srow.max else "-",
                    f"{srow.avg:.4f}",
                )
            )
            for erow in self.events:
                if erow.stage != srow.name:
                    continue
                rows.append(
                    (
                        f"  {erow.name}",
                        erow.calls,
                        f"{erow.max:.4f}",
                        f"{erow.ratio:.2f}" if erow.max else "-",
                        f"{erow.avg:.4f}",
                    )
                )
        return format_table(
            ("event", "calls", "max [s]", "max/min", "avg [s]"),
            rows,
            title=f"Parallel event log ({self.nranks} ranks, self times)",
        )


def _reduce(values: list[float], name: str, stage: str, calls: int) -> RankReduction:
    return RankReduction(
        name=name,
        stage=stage,
        calls=calls,
        min=min(values),
        max=max(values),
        avg=sum(values) / len(values),
    )


def merge_rank_logs(logs: dict[int, EventLog]) -> ParallelSummary:
    """Reduce per-rank logs into min/max/ratio/avg rows.

    ``logs`` maps rank to its :class:`EventLog` (the observer's
    :attr:`~repro.obs.observer.Observer.rank_logs`).  Ranks are the dict's
    keys; a rank missing an event or stage contributes 0.0 to that row.
    """
    if not logs:
        return ParallelSummary(nranks=0)
    ranks = sorted(logs)
    nranks = len(ranks)

    # Union of stages, in first-seen registration order (Main Stage first).
    stage_names: list[str] = [MAIN_STAGE]
    for rank in ranks:
        for srec in logs[rank].stage_summary():
            if srec.name not in stage_names:
                stage_names.append(srec.name)

    summary = ParallelSummary(nranks=nranks)
    for name in stage_names:
        per_rank = []
        pushes = 0
        for rank in ranks:
            stages = {s.name: s for s in logs[rank].stage_summary()}
            rec = stages.get(name)
            per_rank.append(rec.self_seconds if rec else 0.0)
            pushes += rec.pushes if rec else 0
        summary.stages.append(_reduce(per_rank, name, name, pushes))

    # Union of (stage, event) keys, ordered by stage then by max self time.
    keys: list[tuple[str, str]] = []
    for rank in ranks:
        for rec in logs[rank].summary():
            key = (rec.stage, rec.name)
            if key not in keys:
                keys.append(key)
    rows = []
    for stage, name in keys:
        per_rank = []
        calls = 0
        for rank in ranks:
            rec = logs[rank]._records.get((stage, name))
            per_rank.append(rec.self_seconds if rec else 0.0)
            calls += rec.calls if rec else 0
        rows.append(_reduce(per_rank, name, stage, calls))
    rows.sort(key=lambda r: (stage_names.index(r.stage), -r.max))
    summary.events = rows
    return summary
