"""The ``python -m repro profile`` command.

Runs a named experiment under a fresh :class:`~repro.obs.observer.Observer`
and writes three artifacts: the staged ``-log_view`` summary (stdout), the
metrics snapshot (``metrics.json``), and the Chrome trace
(``trace.json``, loadable in ``chrome://tracing`` or https://ui.perfetto.dev).

Experiments:

``grayscott``
    Sequential Gray-Scott GMRES solve under ``MatAssembly`` / ``KSPSolve``
    stages (the default).
``gmres``
    The same system distributed over ``--ranks`` simulated MPI ranks with
    block-Jacobi preconditioning; the summary adds PETSc's per-rank
    max/ratio/avg load-imbalance columns and the trace has one timeline
    track per rank.
``campaign``
    The seeded fault campaign (``repro.faults.campaign``) — the trace
    shows comm-retry gaps and straggler markers from the injected faults.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from .observer import Observer, observing, obs_stage
from .parallel import merge_rank_logs


def _run_grayscott(
    obs: Observer, grid: int, seed: int, plan_cache: Path | None = None
) -> dict:
    import numpy as np

    from ..core.context import ExecutionContext
    from ..ksp import GMRES, JacobiPC
    from ..pde.problems import gray_scott_jacobian

    ctx = ExecutionContext(
        default_variant="SELL using AVX512", plan_cache_dir=plan_cache
    )
    with obs.stage("MatAssembly"):
        csr = gray_scott_jacobian(grid)
        # One engine measurement so the SIMD instruction/traffic counters
        # land in the metrics snapshot (the solve itself runs the fast
        # NumPy kernels, which the engine does not count).
        ctx.measure("SELL using AVX512", csr)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(csr.shape[0])
    solver = GMRES(pc=JacobiPC(), rtol=1e-8, max_it=2000, context=ctx)
    with obs.stage("KSPSolve"):
        result = solver.solve(csr, b)
    obs.metrics.gauge("ksp.iterations").set(result.iterations)
    obs.metrics.gauge("ksp.final_residual").set(result.final_residual)
    info = {
        "experiment": "grayscott",
        "grid": grid,
        "iterations": result.iterations,
        "converged": result.reason.converged,
        "compiler_tier": ctx.compiler_tier,
    }
    plan_stats = ctx.registry.stats().get("plan_cache")
    if plan_stats is not None:
        info["plan_cache_hit_rate"] = round(plan_stats["hit_rate"], 3)
        info["plan_cache_hits"] = plan_stats["hits"]
        info["plan_cache_misses"] = plan_stats["misses"]
    return info


def _run_gmres(obs: Observer, grid: int, seed: int, ranks: int) -> dict:
    import numpy as np

    from ..comm.communicator import World
    from ..comm.spmd import run_spmd
    from ..ksp import ParallelBlockJacobiPC, ParallelGMRES
    from ..mat.mpi_aij import MPIAij
    from ..pde.problems import gray_scott_jacobian
    from ..vec.mpi_vec import MPIVec

    csr = gray_scott_jacobian(grid)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(csr.shape[0])

    def _prog(comm):
        with obs_stage("KSPSolve"):
            a = MPIAij.from_global_csr(comm, csr)
            bv = MPIVec.from_global(comm, a.layout, b)
            res = ParallelGMRES(
                pc=ParallelBlockJacobiPC(), rtol=1e-8, max_it=2000
            ).solve(a, bv)
        return res.reason.converged, res.iterations

    world = World(ranks)
    results = run_spmd(ranks, _prog, world=world)
    obs.metrics.gauge("ksp.iterations").set(results[0][1])
    return {
        "experiment": "gmres",
        "grid": grid,
        "ranks": ranks,
        "iterations": results[0][1],
        "converged": all(c for c, _ in results),
    }


def _run_campaign(obs: Observer, seed: int, grid: int) -> dict:
    from ..faults.campaign import run_campaign

    result = run_campaign(seed, grid=grid)
    for action, count in result.counts.items():
        obs.metrics.counter(f"faults.{action}").inc(count)
    obs.metrics.gauge("campaign.success_rate").set(result.success_rate)
    return {
        "experiment": "campaign",
        "seed": seed,
        "runs": result.runs,
        "correct_runs": result.correct_runs,
        "accounted": result.accounted(),
        "pending_after": result.pending_after,
    }


def main(argv: list[str] | None = None) -> int:
    """Run one observed experiment; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="run a named experiment under the observability layer",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="grayscott",
        choices=("grayscott", "gmres", "campaign"),
        help="which experiment to observe (default: grayscott)",
    )
    parser.add_argument("--grid", type=int, default=16, help="Gray-Scott grid size")
    parser.add_argument("--ranks", type=int, default=4, help="SPMD ranks (gmres)")
    parser.add_argument("--seed", type=int, default=0, help="RNG / campaign seed")
    parser.add_argument(
        "--plan-cache",
        type=Path,
        default=None,
        metavar="DIR",
        help="attach an on-disk compiler plan cache rooted here "
             "(grayscott); the summary then reports the persisted tier "
             "and the cache hit rate",
    )
    parser.add_argument(
        "--outdir",
        type=Path,
        default=Path("."),
        help="directory for metrics.json and trace.json (default: cwd)",
    )
    args = parser.parse_args(argv)

    obs = Observer()
    with observing(obs):
        if args.experiment == "grayscott":
            info = _run_grayscott(obs, args.grid, args.seed, args.plan_cache)
        elif args.experiment == "gmres":
            info = _run_gmres(obs, args.grid, args.seed, args.ranks)
        else:
            info = _run_campaign(obs, args.seed, args.grid)

    for key, value in info.items():
        print(f"{key}: {value}")
    print()
    rank_logs = obs.rank_logs
    if len(rank_logs) > 1:
        print(merge_rank_logs(rank_logs).render())
    elif rank_logs:
        print(next(iter(rank_logs.values())).render())

    args.outdir.mkdir(parents=True, exist_ok=True)
    metrics_path = args.outdir / "metrics.json"
    trace_path = args.outdir / "trace.json"
    obs.metrics.write_json(metrics_path)
    obs.trace.write_json(trace_path)
    print(f"\nwrote {metrics_path} ({len(obs.metrics)} metrics)")
    print(f"wrote {trace_path} ({len(obs.trace)} trace events)")
    return 0
