"""Chrome trace-event export: SPMD solves as real timelines.

The Trace Event Format (the JSON consumed by ``chrome://tracing`` and
Perfetto) models exactly what the simulated MPI runtime produces: per-rank
tracks of nested begin/end spans, plus instants for fault markers and
complete events for retry gaps.  Each simulated rank maps to a ``tid`` on
one shared ``pid``, so a 4-rank parallel GMRES solve renders as four
parallel tracks with MatMult / PCApply / allreduce spans — stragglers and
comm-retry gaps visible as literal holes in the timeline.

Timestamps are microseconds (the format's unit), taken from one shared
clock so cross-rank ordering is meaningful.  :func:`validate_trace`
re-checks the structural contract (keys, per-track monotonicity, nesting)
and is what the test suite runs against exported files.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Mapping


class ChromeTrace:
    """An append-only trace-event collector with per-rank tracks.

    Thread-safe: SPMD rank threads emit concurrently.  Events carry
    explicit ``rank`` (mapped to ``tid``); ``pid`` is fixed per collector.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        pid: int = 1,
        process_name: str = "repro",
    ) -> None:
        self.clock = clock if clock is not None else time.perf_counter
        self.pid = pid
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._origin = self.clock()
        self._named_ranks: set[int] = set()
        self._process_name = process_name

    def _ts(self, t: float | None = None) -> float:
        when = self.clock() if t is None else t
        return (when - self._origin) * 1e6

    def _meta(self, rank: int) -> None:
        # Name threads lazily so only ranks that actually emit get tracks.
        if rank in self._named_ranks:
            return
        self._named_ranks.add(rank)
        if not self._events:
            self._events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": self.pid,
                    "tid": 0,
                    "args": {"name": self._process_name},
                }
            )
        self._events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": self.pid,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )

    def begin(self, name: str, rank: int = 0, args: Mapping | None = None) -> None:
        """Open a duration span (``ph: "B"``) on ``rank``'s track."""
        with self._lock:
            self._meta(rank)
            ev = {
                "name": name,
                "ph": "B",
                "ts": self._ts(),
                "pid": self.pid,
                "tid": rank,
            }
            if args:
                ev["args"] = dict(args)
            self._events.append(ev)

    def end(self, name: str, rank: int = 0) -> None:
        """Close the innermost open span named ``name`` (``ph: "E"``)."""
        with self._lock:
            self._events.append(
                {
                    "name": name,
                    "ph": "E",
                    "ts": self._ts(),
                    "pid": self.pid,
                    "tid": rank,
                }
            )

    def complete(
        self,
        name: str,
        start: float,
        duration: float,
        rank: int = 0,
        args: Mapping | None = None,
    ) -> None:
        """Record a closed span (``ph: "X"``) from clock readings.

        ``start`` is a reading of this collector's clock; ``duration`` is
        in seconds.  Retry gaps in the comm layer use this form — the gap
        is only known once the retry succeeds.
        """
        with self._lock:
            self._meta(rank)
            ev = {
                "name": name,
                "ph": "X",
                "ts": self._ts(start),
                "dur": max(duration, 0.0) * 1e6,
                "pid": self.pid,
                "tid": rank,
            }
            if args:
                ev["args"] = dict(args)
            self._events.append(ev)

    def instant(self, name: str, rank: int = 0, args: Mapping | None = None) -> None:
        """Record a zero-duration marker (``ph: "i"``, thread scope)."""
        with self._lock:
            self._meta(rank)
            ev = {
                "name": name,
                "ph": "i",
                "ts": self._ts(),
                "s": "t",
                "pid": self.pid,
                "tid": rank,
            }
            if args:
                ev["args"] = dict(args)
            self._events.append(ev)

    @property
    def events(self) -> list[dict]:
        """Snapshot of all events (metadata included) in emission order."""
        with self._lock:
            return [dict(ev) for ev in self._events]

    def to_json(self, indent: int | None = None) -> str:
        """The ``{"traceEvents": [...]}`` JSON document."""
        return json.dumps(
            {"traceEvents": self.events, "displayTimeUnit": "ms"}, indent=indent
        )

    def write_json(self, path) -> None:
        """Write the trace document to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.to_json(indent=1) + "\n")

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


def validate_trace(doc: dict | list) -> list[str]:
    """Check a trace document against the trace-event structural contract.

    Accepts either the ``{"traceEvents": [...]}`` object form or a bare
    event list.  Returns a list of problem strings (empty = valid):

    * every event has the required keys for its phase;
    * timestamps are monotonically non-decreasing per ``(pid, tid)`` track
      (B/E/i events; X events are checked for non-negative ``dur``);
    * B/E pairs are properly nested per track — every E matches the
      innermost open B of the same name, and no B is left open.
    """
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return ["document has no traceEvents list"]
    else:
        events = doc

    problems: list[str] = []
    last_ts: dict[tuple, float] = {}
    open_spans: dict[tuple, list[str]] = {}

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if ph is None or "name" not in ev or "pid" not in ev or "tid" not in ev:
            problems.append(f"event {i} missing required keys: {ev!r}")
            continue
        if ph == "M":
            continue
        if "ts" not in ev:
            problems.append(f"event {i} ({ev['name']!r}) has no ts")
            continue
        track = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        # B/E/i must be emitted in timeline order per track; X (complete)
        # events are written retroactively once their duration is known and
        # the format lets viewers sort them.
        if ph in ("B", "E", "i"):
            if ts < last_ts.get(track, float("-inf")):
                problems.append(
                    f"event {i} ({ev['name']!r}) ts {ts} goes backwards "
                    f"on track {track}"
                )
            last_ts[track] = ts
        if ph == "B":
            open_spans.setdefault(track, []).append(ev["name"])
        elif ph == "E":
            stack = open_spans.get(track, [])
            if not stack:
                problems.append(
                    f"event {i}: E {ev['name']!r} with no open B on track {track}"
                )
            elif stack[-1] != ev["name"]:
                problems.append(
                    f"event {i}: E {ev['name']!r} does not match innermost "
                    f"open B {stack[-1]!r} on track {track}"
                )
            else:
                stack.pop()
        elif ph == "X":
            if ev.get("dur", 0) < 0:
                problems.append(f"event {i} ({ev['name']!r}) has negative dur")
        elif ph not in ("i",):
            problems.append(f"event {i} has unknown phase {ph!r}")

    for track, stack in open_spans.items():
        for name in stack:
            problems.append(f"B {name!r} never closed on track {track}")
    return problems
