"""A labeled metrics namespace: counters, gauges, histograms.

The repo's subsystems already count obsessively — the SIMD engine fills a
:class:`~repro.simd.counters.KernelCounters`, the simulated MPI world
tracks :class:`~repro.comm.communicator.TrafficStats`, the fault stack
streams :class:`~repro.faults.events.ResilienceLog` events — but each in
its own shape.  The :class:`MetricsRegistry` pulls those snapshots into
one flat, labeled namespace (``simd.flops{variant="SELL using AVX512"}``,
``comm.bytes``, ``faults.detected``) with deterministic JSON export, so a
benchmark run ships a single machine-readable metrics file.

Metric names are dotted (``subsystem.metric``); labels are an optional
frozen mapping rendered Prometheus-style in :meth:`MetricsRegistry.snapshot`
keys: ``simd.flops{variant="sell"}``.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..comm.communicator import TrafficStats
    from ..faults.events import ResilienceLog
    from ..simd.counters import KernelCounters


def _key(name: str, labels: Mapping[str, str] | None) -> str:
    """The canonical flat key: ``name{k="v",...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """A monotonically increasing count.

    Mutation is serialized by a per-metric lock: handles escape the
    registry (``registry.counter(...).inc()`` is the idiom everywhere),
    so the increment itself — a read-modify-write — must be atomic or
    concurrent rank/serving threads lose counts.
    """

    name: str
    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount


@dataclass
class Gauge:
    """A point-in-time value that can move both ways.

    Per-metric lock for the same reason as :class:`Counter`: ``add`` is
    a read-modify-write on an escaped handle.
    """

    name: str
    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self.value = value

    def add(self, amount: float) -> None:
        """Shift the current value by ``amount`` (either sign)."""
        with self._lock:
            self.value += amount


@dataclass
class Histogram:
    """A streaming distribution summary: count/sum/min/max.

    Full bucketing is more than the deterministic simulation needs; the
    summary statistics are what the per-rank imbalance report consumes.
    The per-metric lock keeps the four fields of one sample mutually
    consistent under concurrent observers.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def observe(self, value: float) -> None:
        """Fold one sample into the summary."""
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-safe summary (empty histogram has no min/max)."""
        with self._lock:
            out: dict[str, float] = {"count": self.count, "sum": self.total}
            if self.count:
                out["min"] = self.min
                out["max"] = self.max
                out["mean"] = self.total / self.count
        return out


class MetricsRegistry:
    """A thread-safe namespace of named, labeled metrics.

    Rank threads of the SPMD runtime and the serving executor record
    concurrently.  The registry lock guards the name-to-metric map;
    each metric object carries its own leaf lock guarding its values,
    so handles returned by :meth:`counter`/:meth:`gauge`/:meth:`histogram`
    stay safe to mutate after they escape the registry lock.  Lock
    order is registry → metric, never the reverse.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, labels: Mapping[str, str] | None):
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name=key)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {key!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, labels: Mapping[str, str] | None = None) -> Counter:
        """The (auto-created) counter for ``name`` + ``labels``."""
        with self._lock:
            return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        """The (auto-created) gauge for ``name`` + ``labels``."""
        with self._lock:
            return self._get(Gauge, name, labels)

    def histogram(self, name: str, labels: Mapping[str, str] | None = None) -> Histogram:
        """The (auto-created) histogram for ``name`` + ``labels``."""
        with self._lock:
            return self._get(Histogram, name, labels)

    # -- subsystem snapshot adapters ---------------------------------------
    def record_kernel_counters(
        self, counters: "KernelCounters", variant: str | None = None
    ) -> None:
        """Fold a SIMD :class:`KernelCounters` snapshot into ``simd.*`` counters."""
        labels = {"variant": variant} if variant else None
        with self._lock:
            for name, value in counters.as_metrics("simd").items():
                self._get(Counter, name, labels).inc(value)

    def record_traffic(self, stats: "TrafficStats", rank: int | None = None) -> None:
        """Fold comm-layer :class:`TrafficStats` into ``comm.*`` counters."""
        labels = {"rank": str(rank)} if rank is not None else None
        with self._lock:
            self._get(Counter, "comm.messages", labels).inc(stats.messages)
            self._get(Counter, "comm.bytes", labels).inc(stats.bytes)

    def record_resilience(self, log: "ResilienceLog") -> None:
        """Fold a :class:`ResilienceLog`'s per-action counts into ``faults.*``."""
        counts = log.counts()
        with self._lock:
            for action, count in counts.items():
                self._get(Counter, f"faults.{action}", None).inc(count)

    # -- export ------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """All metrics as a flat, deterministically ordered JSON-safe dict."""
        with self._lock:
            out: dict[str, object] = {}
            for key in sorted(self._metrics):
                metric = self._metrics[key]
                if isinstance(metric, Histogram):
                    out[key] = metric.as_dict()
                else:
                    value = metric.value
                    out[key] = int(value) if float(value).is_integer() else value
            return out

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot serialized as JSON text."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path) -> None:
        """Write the snapshot to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.to_json() + "\n")

    def reset(self) -> None:
        """Drop every registered metric."""
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)
