"""Observability: staged event logs, metrics, Chrome traces, per-rank views.

This package is the repository's ``-log_view``: the instrument every
benchmark and solver reports through.  It subsumes the original flat
profiler (``repro.profiling`` re-exports from here) and adds the three
layers PETSc users rely on at scale:

* :mod:`repro.obs.eventlog` — nested event timing with PETSc *log stages*
  (:class:`LogStage`, ``push_stage``/``pop_stage``), so summaries break
  down by solver phase;
* :mod:`repro.obs.metrics` — a labeled :class:`MetricsRegistry`
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram`) that snapshots
  the SIMD counters, comm traffic, and fault events into one JSON-exportable
  namespace;
* :mod:`repro.obs.chrome_trace` — per-rank timeline export in the Chrome
  trace-event format (``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.observer` — the module-level active :class:`Observer`
  the instrumented library layers record into (``with observing(): ...``),
  with thread-local rank attribution for the SPMD runtime;
* :mod:`repro.obs.parallel` — PETSc's per-rank min/max/ratio
  load-imbalance reduction over the observer's rank logs.

``python -m repro profile`` (:mod:`repro.obs.cli`) runs a named experiment
and writes the summary table, ``metrics.json``, and ``trace.json``.  See
``docs/observability.md`` for the guided tour.
"""

from .chrome_trace import ChromeTrace, validate_trace
from .eventlog import MAIN_STAGE, EventLog, EventRecord, LogStage, StageRecord
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .observer import (
    Observer,
    active_observer,
    obs_bump,
    obs_counter,
    obs_event,
    obs_gap,
    obs_instant,
    obs_rank,
    obs_stage,
    observing,
)
from .parallel import ParallelSummary, RankReduction, merge_rank_logs

__all__ = [
    "MAIN_STAGE",
    "ChromeTrace",
    "Counter",
    "EventLog",
    "EventRecord",
    "Gauge",
    "Histogram",
    "LogStage",
    "MetricsRegistry",
    "Observer",
    "ParallelSummary",
    "RankReduction",
    "StageRecord",
    "active_observer",
    "merge_rank_logs",
    "obs_bump",
    "obs_counter",
    "obs_event",
    "obs_gap",
    "obs_instant",
    "obs_rank",
    "obs_stage",
    "observing",
    "validate_trace",
]
