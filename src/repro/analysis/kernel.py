"""Analyze registered kernel variants by recording and linting their traces.

:func:`analyze_variant` prepares a matrix in the variant's format, records
one kernel execution under the variant's *true* ISA (so ``gather_auto`` /
``fmadd_auto`` resolve exactly as in production), and runs every lint pass
of :mod:`repro.analysis.trace_lint` over the recording.  Failures *during*
recording are findings too: the interpreting engine gates most illegal
instructions at execution time, and the analyzer maps those exceptions to
the same ``VEC01x`` codes a static scan would emit.

:func:`analyze_all` sweeps the full variant registry over a small
structure panel chosen to exercise every kernel path the formats have —
a regular stencil, a power-law matrix with a trailing partial slice, and
a sigma-sorted SELL window — and is what ``python -m repro analyze
--all-variants`` and the CI gate run.
"""

from __future__ import annotations

import numpy as np

from ..core.dispatch import KernelVariant, get_variant, registered_variants
from ..core.spmv import default_x
from ..core.traced import trace_buffers
from ..mat.aij import AijMat
from ..memory.spaces import aligned_alloc
from ..pde.problems import gray_scott_jacobian, irregular_rows
from ..simd.engine import AlignmentFault
from ..simd.isa import UnsupportedInstructionError
from ..simd.register import LaneMismatchError
from ..simd.trace import TraceRecorder
from .diagnostics import AnalysisReport, Diagnostic
from .numlint import NumericalCertificate, certify_recorder
from .trace_lint import lint_recorder


def default_structures() -> tuple[tuple[str, AijMat, int, int], ...]:
    """The analysis panel: (label, csr, slice_height, sigma) per entry.

    Mirrors the trace-equivalence test panel: a regular stencil, a
    power-law structure whose 19 rows leave a trailing partial slice
    (masked/scalarized store paths), and a sigma-sorted window (the SELL
    permutation store path).
    """
    return (
        ("stencil", gray_scott_jacobian(6), 8, 1),
        ("partial-slice", irregular_rows(19, max_len=9, seed=5), 8, 1),
        ("sorted-sell", irregular_rows(26, max_len=9, seed=8), 8, 16),
    )


def _record_error(exc: Exception) -> Diagnostic:
    """Map a record-time engine rejection to its diagnostic code."""
    msg = str(exc)
    if isinstance(exc, UnsupportedInstructionError):
        if "masks" in msg or "predicates" in msg:
            return Diagnostic("VEC010", "record", msg)
        if "gather" in msg:
            return Diagnostic("VEC011", "record", msg)
        if "fma" in msg:
            return Diagnostic("VEC012", "record", msg)
        return Diagnostic("VEC013", "record", msg)
    if isinstance(exc, LaneMismatchError):
        return Diagnostic("VEC013", "record", msg)
    if isinstance(exc, AlignmentFault):
        return Diagnostic("VEC032", "record", msg)
    raise exc


def _record(
    variant: KernelVariant,
    csr: AijMat,
    slice_height: int,
    sigma: int,
    strict_alignment: bool,
    block_shape: tuple[int, int] | None = None,
) -> tuple[TraceRecorder, int, int]:
    """Record one kernel execution under the variant's true ISA.

    The one recording path shared by the lint and certification entry
    points, so both always analyze the exact instruction stream the
    production trace cache would capture.  Returns the finished recorder
    plus the physical (padded) output and input extents.
    """
    mat = variant.prepare(
        csr, slice_height=slice_height, sigma=sigma, block_shape=block_shape
    )
    m, n = mat.shape
    x = default_x(n)
    y = aligned_alloc(m, np.float64, 64)
    recorder = TraceRecorder(variant.isa, strict_alignment=strict_alignment)
    recorder.bind_buffers(trace_buffers(variant.fmt, mat))
    recorder.bind("x", x)
    recorder.bind("y", y)
    variant.kernel(recorder, mat, x, y)
    return recorder, m, n


def analyze_variant(
    variant: KernelVariant | str,
    csr: AijMat | None = None,
    slice_height: int = 8,
    sigma: int = 1,
    strict_alignment: bool = False,
    label: str | None = None,
    numerical: bool = True,
    block_shape: tuple[int, int] | None = None,
) -> AnalysisReport:
    """Record one execution of ``variant``, lint and certify the trace.

    The output/input bounds handed to the memory and coverage passes are
    the *logical* matrix dimensions; value buffers keep their physical
    (possibly padded) lengths, because reading format padding is the
    design, not a defect.  Unless ``numerical`` is off, the rounding
    certifier (:mod:`repro.analysis.numlint`) runs over the same
    recording: its ``NUM0xx`` findings join the report and the
    :class:`~repro.analysis.numlint.NumericalCertificate` is attached as
    ``report.certificate``.
    """
    if isinstance(variant, str):
        variant = get_variant(variant)
    if csr is None:
        csr = gray_scott_jacobian(6)
    subject = f"{variant.name} on {label or 'matrix'}"
    report = AnalysisReport(subject=subject)

    try:
        recorder, m, n = _record(
            variant, csr, slice_height, sigma, strict_alignment, block_shape
        )
    except (UnsupportedInstructionError, LaneMismatchError, AlignmentFault) as exc:
        report.diagnostics.append(_record_error(exc))
        return report
    report.extend(lint_recorder(recorder, bounds={"x": n, "y": m}))
    if numerical:
        cert = certify_recorder(recorder, nrows=csr.shape[0], subject=subject)
        report.certificate = cert
        report.extend(cert.diagnostics)
    return report


def certify_variant(
    variant: KernelVariant | str,
    csr: AijMat | None = None,
    slice_height: int = 8,
    sigma: int = 1,
    strict_alignment: bool = False,
    label: str | None = None,
    block_shape: tuple[int, int] | None = None,
) -> NumericalCertificate:
    """Record one execution of ``variant`` and certify its rounding error.

    The certificate's rows cover the *logical* output extent
    (``csr.shape[0]``); like the recorded trace itself it is a pure
    function of the sparsity structure, so callers may cache it under
    the structure-only signature
    (:meth:`repro.core.registry.SignatureRegistry.certificate_key`).
    """
    if isinstance(variant, str):
        variant = get_variant(variant)
    if csr is None:
        csr = gray_scott_jacobian(6)
    recorder, _m, _n = _record(
        variant, csr, slice_height, sigma, strict_alignment, block_shape
    )
    return certify_recorder(
        recorder,
        nrows=csr.shape[0],
        subject=f"{variant.name} on {label or 'matrix'}",
    )


def analyze_all(
    variants: tuple[KernelVariant, ...] | None = None,
    structures: tuple[tuple[str, AijMat, int, int], ...] | None = None,
    strict_alignment: bool = False,
) -> list[AnalysisReport]:
    """Every variant x every panel structure; one report per pair.

    Variants whose format conversion rejects a structure (e.g. BAIJ on
    dimensions that don't block evenly) are skipped for that structure,
    matching :meth:`ExecutionContext.best_variant`'s sweep semantics.
    """
    if variants is None:
        variants = registered_variants()
    if structures is None:
        structures = default_structures()
    reports: list[AnalysisReport] = []
    for label, csr, slice_height, sigma in structures:
        for variant in variants:
            try:
                reports.append(analyze_variant(
                    variant,
                    csr,
                    slice_height=slice_height,
                    sigma=sigma,
                    strict_alignment=strict_alignment,
                    label=label,
                ))
            except (ValueError, NotImplementedError):
                continue  # format constraint, same skip rule as tuning
    return reports


def summarize(reports: list[AnalysisReport]) -> dict:
    """Aggregate reports into the JSON document the CLI writes."""
    return {
        "analyzed": len(reports),
        "clean": sum(r.ok for r in reports),
        "dirty": sum(not r.ok for r in reports),
        "reports": [r.as_dict() for r in reports],
    }
