"""Mutation corpus: deliberately broken kernels the analyzer must catch.

Each :class:`CorpusCase` records (or hand-builds) a small SpMV-shaped
kernel trace carrying one seeded defect and names the ``VEC0xx`` codes the
linter is required to emit for it.  The corpus is the analyzer's negative
test bed: the shipped kernels prove the passes are quiet on correct code,
these prove they are *loud* on broken code — a pass that stops firing on
its mutant is a regression even if every real kernel still comes back
clean.

The mutants mirror real porting accidents: an off-by-one remainder mask,
a gather reading the wrong index buffer, AVX-512 tail handling left in an
AVX build, an accumulator dropped between ``reduce_add`` and the store,
a misaligned streaming load, a double-written or skipped output row.

Cases record under whichever ISA lets the broken trace exist.  The
ISA-conformance mutants record under a capable ISA and then re-lint the
same trace against the ISA the kernel *claims* — exactly the situation a
static checker exists for, since the interpreting engine can only reject
what it executes (and ``blend_zero`` it does not gate at all).

:func:`run_corpus` checks every case and reports, per mutant, the codes
expected, the codes found, and whether all expected codes surfaced.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..memory.spaces import aligned_alloc
from ..simd.isa import AVX, AVX2, AVX512, SVE, Isa
from ..simd.register import MaskRegister
from ..simd.trace import TraceRecorder
from .diagnostics import AnalysisReport
from .numlint import NumericalCertificate, certify_recorder, compare_certificates
from .trace_lint import BufferInfo, TraceSubject, lint_megakernel, lint_trace

#: Logical row/column counts shared by the recorded mutants.  The physical
#: buffers are padded past these so the *recording* always succeeds; the
#: defects are caught statically against the logical bounds.
_M, _N = 6, 8


def _recorder(isa: Isa) -> tuple[TraceRecorder, np.ndarray, np.ndarray, np.ndarray]:
    """A bound recorder plus (val, x, y) buffers for a tiny dense-row SpMV."""
    eng = TraceRecorder(isa)
    val = aligned_alloc(_M * _N, np.float64, 64)
    val[:] = np.arange(_M * _N, dtype=np.float64) * 0.25
    x = aligned_alloc(2 * _N, np.float64, 64)  # padded: logical bound is _N
    x[:_N] = 1.0
    y = aligned_alloc(2 * _M, np.float64, 64)  # padded: logical bound is _M
    eng.bind("val", val)
    eng.bind("x", x)
    eng.bind("y", y)
    return eng, val, x, y


def _dense_rows(eng, val, x, y, rows) -> None:
    """Correct scalar row loop — the baseline every mutant perturbs."""
    for r in rows:
        acc = 0.0
        for c in range(_N):
            acc = eng.scalar_fma(eng.scalar_load(val, r * _N + c),
                                 eng.scalar_load(x, c), acc)
        eng.scalar_store(y, r, acc)


def _lint(eng: TraceRecorder, claimed_isa: Isa | None = None) -> list:
    subject = TraceSubject.from_recorder(eng, bounds={"x": _N, "y": _M})
    if claimed_isa is not None:
        subject = dataclasses.replace(subject, isa=claimed_isa)
    return lint_trace(subject)


# ---------------------------------------------------------------------------
# the mutants
# ---------------------------------------------------------------------------


def tail_mask_off_by_one() -> list:
    """Remainder mask covers one lane too many: the masked store runs off
    the logical end of ``y`` into its padding."""
    eng, val, x, y = _recorder(AVX512)
    lanes = eng.lanes
    _dense_rows(eng, val, x, y, range(lanes, _M))  # rows the vector part misses
    acc = eng.setzero()
    for c in range(_M):
        acc = eng.fmadd(eng.load(val, c * lanes), eng.set1(1.0), acc)
    tail = _M % lanes if _M % lanes else lanes
    eng.masked_store(y, 0, acc, eng.make_mask(tail + 1))  # off by one
    return _lint(eng)


def sve_mispredicated_tail() -> list:
    """SVE port of the tail bug: the ``whilelt`` bound counts one row past
    the logical extent (the classic ``i <= n`` loop condition), so the
    loop predicate keeps an extra lane live and the predicated store runs
    off the end of ``y`` into its padding.  The engine executes it
    happily — the padded buffer absorbs the write — so only the static
    bounds pass catches it, exactly like the AVX-512 mask flavor."""
    eng, val, x, y = _recorder(SVE)
    lanes = eng.lanes
    _dense_rows(eng, val, x, y, range(lanes, _M))  # rows the vector part misses
    acc = eng.setzero()
    for c in range(_M):
        acc = eng.fmadd(eng.load(val, c * lanes), eng.set1(1.0), acc)
    pred = eng.whilelt(0, _M + 1)  # bound should be the logical _M
    eng.predicated_store(y, 0, acc, pred)
    return _lint(eng)


def swapped_gather_index() -> list:
    """Gather fed the row-extent buffer instead of the column indices:
    the lengths land outside ``x``'s logical bound."""
    eng, val, x, y = _recorder(AVX512)
    lanes = eng.lanes
    colidx = np.arange(lanes, dtype=np.int32)          # the right buffer
    rowlen = np.full(lanes, _N + 3, dtype=np.int32)    # the wrong one
    eng.bind("colidx", colidx)
    eng.bind("rowlen", rowlen)
    idx = eng.load_index(rowlen, 0)                    # should be colidx
    acc = eng.fmadd(eng.load(val, 0), eng.gather(x, idx), eng.setzero())
    eng.store(y, 0, acc)
    return _lint(eng)


def masked_tail_on_avx() -> list:
    """AVX-512 tail masking left in the AVX build.  ``blend_zero`` takes a
    hand-built predicate without an ISA gate, so the engine records it
    happily — only the static pass catches the maskless-ISA violation."""
    eng, val, x, y = _recorder(AVX)
    lanes = eng.lanes
    mask = MaskRegister(np.array([True] * (lanes - 1) + [False]))
    acc = eng.blend_zero(eng.load(val, 0), mask)
    for r in range(_M):
        eng.scalar_store(y, r, eng.reduce_add(acc))
    return _lint(eng)


def hardware_gather_on_avx() -> list:
    """Kernel registered for AVX emits ``vgatherdpd``.  Recorded under
    AVX2 (where it executes), linted against the claimed ISA."""
    eng, val, x, y = _recorder(AVX2)
    idx = eng.load_index(np.arange(eng.lanes, dtype=np.int32), 0)
    acc = eng.mul(eng.load(val, 0), eng.gather(x, idx))
    eng.store(y, 0, acc)
    _dense_rows(eng, val, x, y, range(eng.lanes, _M))
    return _lint(eng, claimed_isa=AVX)


def fmadd_on_avx() -> list:
    """Kernel registered for AVX uses fused multiply-add (FMA3 arrived
    with AVX2 here); mul+add is the legal lowering."""
    eng, val, x, y = _recorder(AVX2)
    acc = eng.fmadd(eng.load(val, 0), eng.load(x, 0), eng.setzero())
    eng.store(y, 0, acc)
    _dense_rows(eng, val, x, y, range(eng.lanes, _M))
    return _lint(eng, claimed_isa=AVX)


def dropped_accumulator() -> list:
    """The horizontal sum lands in a scalar that is never consumed — the
    store writes a stray zero instead of the reduced accumulator."""
    eng, val, x, y = _recorder(AVX512)
    for r in range(_M):
        acc = eng.setzero()
        acc = eng.fmadd(eng.load(val, r * _N), eng.load(x, 0), acc)
        eng.reduce_add(acc)           # the sum is dropped on the floor
        eng.scalar_store(y, r, 0.0)   # should store the reduced total
    return _lint(eng)


def skipped_row() -> list:
    """The row loop stops one short: the last output row is never written."""
    eng, val, x, y = _recorder(AVX512)
    _dense_rows(eng, val, x, y, range(_M - 1))
    return _lint(eng)


def double_store() -> list:
    """Two stores hit row 0 with no intervening load — the first result
    is silently overwritten (a symptom of a mis-slotted slice base)."""
    eng, val, x, y = _recorder(AVX512)
    _dense_rows(eng, val, x, y, range(_M))
    eng.scalar_store(y, 0, eng.scalar_load(val, 0))
    return _lint(eng)


def misaligned_stream() -> list:
    """``load_aligned`` used at an offset that is not a vector-width
    multiple; only faults on hardware, so the recording sails through."""
    eng, val, x, y = _recorder(AVX512)
    acc = eng.load_aligned(val, 1)  # 8-byte offset vs 64-byte contract
    eng.store(y, 0, acc)
    _dense_rows(eng, val, x, y, range(eng.lanes, _M))
    return _lint(eng)


def stale_output_read() -> list:
    """The kernel accumulates into ``y`` (``y += A@x``) without the
    documented initialization pass: it reads rows it never stored."""
    eng, val, x, y = _recorder(AVX512)
    for r in range(_M):
        stale = eng.scalar_load(y, r)  # read before any store
        eng.scalar_store(y, r, eng.scalar_fma(eng.scalar_load(val, r * _N),
                                              eng.scalar_load(x, 0), stale))
    return _lint(eng)


def lane_width_mismatch() -> list:
    """Hand-built trace: a 4-wide index vector feeds an 8-lane gather
    (the SSE port's half-width index slipped into the AVX-512 build)."""
    ops = (
        ("gather", 0, 1, np.arange(4, dtype=np.int64)),  # 4 idx, 8 lanes
        ("vstore", 2, 0, ("r", 0)),
    )
    buffers = (
        BufferInfo("val", _M * _N, 8),
        BufferInfo("x", _N, 8),
        BufferInfo("y", 8, 8),
    )
    return lint_trace(TraceSubject(
        ops=ops, lanes=8, isa=AVX512, buffers=buffers, outputs=("y",),
    ))


def read_before_write() -> list:
    """Hand-built trace: an fmadd consumes a register no op ever defined
    (the unrolled prologue that should set it was deleted)."""
    ops = (
        ("vload", 0, 0, 0),
        ("fmadd", 1, ("r", 0), ("r", 7), ("r", 0)),  # r7 never defined
        ("vstore", 2, 0, ("r", 1)),
    )
    buffers = (
        BufferInfo("val", _M * _N, 8),
        BufferInfo("x", _N, 8),
        BufferInfo("y", 8, 8),
    )
    return lint_trace(TraceSubject(
        ops=ops, lanes=8, isa=AVX512, buffers=buffers, outputs=("y",),
    ))


# ---------------------------------------------------------------------------
# megakernel fusion mutants (VEC05x) — tamper a *real* fused program
# ---------------------------------------------------------------------------


def _fused_program():
    """A genuinely fused megakernel program to seed mutations into.

    Records a three-level chained-FMA strip (the lockstep shape the
    SELL level scheduler emits), compiles it, and fuses it — so every
    mutant perturbs an artifact the real pipeline produced, not a
    hand-built approximation.
    """
    from ..simd.megakernel import compile_megakernel
    from ..simd.replay import compile_trace

    eng, val, x, y = _recorder(AVX512)
    lanes = eng.lanes
    acc = eng.setzero()
    for c in range(3):
        acc = eng.fmadd(eng.load(val, c * lanes), eng.load(x, 0), acc)
    eng.store(y, 0, acc)
    _dense_rows(eng, val, x, y, range(lanes, _M))
    return compile_megakernel(compile_trace(eng), min_levels=2)


def megakernel_boundary_read() -> list:
    """A surviving plain step reads a register the fusion elided — its
    defining fmadd now lives only inside a region's fold, so replay
    would read a zero from the shrunken register file."""
    mega = _fused_program()
    interior = int(mega.regions[0].interior_ids()[0])
    mega.segments.append(("steps", (
        ("vstore", 2, np.asarray([0]), ("r", np.asarray([interior]))),
    )))
    mega.source_nsteps += 1  # keep coverage exact: the defect is dataflow
    return lint_megakernel(mega)


def megakernel_broken_chain() -> list:
    """A region's second fused level no longer chains from the first —
    the sequential fold would sum levels the recorded program never
    linked (a mis-spliced chain after a bad cache merge)."""
    mega = _fused_program()
    region = mega.regions[0]
    source = list(region.source_steps)
    for j, step in enumerate(source):
        if step[0] == "fmadd" and j > 0:
            wrong = ("r", np.asarray(step[4][1]) + 97)
            source[j] = (step[0], step[1], step[2], step[3], wrong)
            break
    region.source_steps = tuple(source)
    return lint_megakernel(mega)


def megakernel_coverage_hole() -> list:
    """The fused program accounts for fewer steps than the source trace
    had — a region was deleted (or a plan truncated on disk) and replay
    would silently skip those levels."""
    mega = _fused_program()
    mega.source_nsteps += 2
    return lint_megakernel(mega)


# ---------------------------------------------------------------------------
# silent reordering mutants (NUM01x) — exact-value traces whose *accumulation
# tree* drifted from the certified reference; only the rounding certificate
# comparison catches them, every VEC0xx pass stays quiet
# ---------------------------------------------------------------------------


def _certified(build: Callable, fused_fma: bool = False) -> NumericalCertificate:
    """Record ``build(eng, val, x, y)`` under AVX-512 and certify it."""
    eng, val, x, y = _recorder(AVX512)
    build(eng, val, x, y)
    return certify_recorder(eng, subject="corpus", fused_fma=fused_fma)


def _chained_fma(eng, val, x, y) -> None:
    """The certified reference shape: a four-level sequential FMA chain."""
    xv = eng.load(x, 0)
    acc = eng.setzero()
    for lvl in range(4):
        acc = eng.fmadd(eng.load(val, lvl * eng.lanes), xv, acc)
    eng.store(y, 0, acc)


def _level_products(eng, val, x) -> list:
    """One rounded product per level — the leaves both tree shapes share."""
    xv = eng.load(x, 0)
    return [eng.mul(eng.load(val, lvl * eng.lanes), xv) for lvl in range(4)]


def reduction_pairwise_tree() -> list:
    """The sequential FMA chain rewritten as a pairwise product tree: the
    same value in exact arithmetic, but every leaf now sits at depth 2
    instead of the chain's 1..3 — a different certified tree."""

    def tree(eng, val, x, y):
        p = _level_products(eng, val, x)
        eng.store(y, 0, eng.add(eng.add(p[0], p[1]), eng.add(p[2], p[3])))

    return compare_certificates(_certified(_chained_fma), _certified(tree))


def reduction_swapped_levels() -> list:
    """The balanced fold's halves summed in the wrong order.  Depths,
    leaves, and rounding counts all match — only the *order* of the
    accumulation differs, the weakest (and sneakiest) reordering."""

    def halves(hi_first: bool) -> Callable:
        def build(eng, val, x, y):
            p = _level_products(eng, val, x)
            lo, hi = eng.add(p[0], p[1]), eng.add(p[2], p[3])
            eng.store(y, 0, eng.add(hi, lo) if hi_first else eng.add(lo, hi))
        return build

    return compare_certificates(
        _certified(halves(False)), _certified(halves(True))
    )


def reduction_dropped_fma() -> list:
    """FMA fusion dropped: the chain certified under the hardware-FMA
    contract (``vfmadd231pd``, one rounding) against its mul+add
    lowering.  The tree shape is identical, but every product picks up
    an extra rounding the fused certificate never granted."""

    def mul_then_add(eng, val, x, y):
        xv = eng.load(x, 0)
        acc = eng.setzero()
        for lvl in range(4):
            acc = eng.add(acc, eng.mul(eng.load(val, lvl * eng.lanes), xv))
        eng.store(y, 0, acc)

    return compare_certificates(
        _certified(_chained_fma, fused_fma=True), _certified(mul_then_add)
    )


@dataclass(frozen=True)
class CorpusCase:
    """One seeded-defect kernel and the codes the linter must raise."""

    name: str
    expect: tuple[str, ...]
    build: Callable[[], list]

    @property
    def description(self) -> str:
        return (self.build.__doc__ or "").split("\n")[0].rstrip(".")


CASES: tuple[CorpusCase, ...] = (
    CorpusCase("tail-mask-off-by-one", ("VEC031",), tail_mask_off_by_one),
    CorpusCase(
        "sve-mispredicated-tail", ("VEC031",), sve_mispredicated_tail
    ),
    CorpusCase("swapped-gather-index", ("VEC030",), swapped_gather_index),
    CorpusCase("masked-tail-on-avx", ("VEC010",), masked_tail_on_avx),
    CorpusCase("hardware-gather-on-avx", ("VEC011",), hardware_gather_on_avx),
    CorpusCase("fmadd-on-avx", ("VEC012",), fmadd_on_avx),
    CorpusCase("dropped-accumulator", ("VEC021",), dropped_accumulator),
    CorpusCase("skipped-row", ("VEC041",), skipped_row),
    CorpusCase("double-store", ("VEC040",), double_store),
    CorpusCase("misaligned-stream", ("VEC032",), misaligned_stream),
    CorpusCase("stale-output-read", ("VEC022",), stale_output_read),
    CorpusCase("lane-width-mismatch", ("VEC013",), lane_width_mismatch),
    CorpusCase("read-before-write", ("VEC020",), read_before_write),
    CorpusCase(
        "megakernel-boundary-read", ("VEC050",), megakernel_boundary_read
    ),
    CorpusCase(
        "megakernel-broken-chain", ("VEC051",), megakernel_broken_chain
    ),
    CorpusCase(
        "megakernel-coverage-hole", ("VEC052",), megakernel_coverage_hole
    ),
    CorpusCase(
        "reduction-pairwise-tree", ("NUM010",), reduction_pairwise_tree
    ),
    CorpusCase(
        "reduction-swapped-levels", ("NUM011",), reduction_swapped_levels
    ),
    CorpusCase("reduction-dropped-fma", ("NUM012",), reduction_dropped_fma),
)


def run_case(case: CorpusCase) -> AnalysisReport:
    """Lint one mutant; the report's subject carries the case name."""
    report = AnalysisReport(subject=f"corpus:{case.name}")
    report.diagnostics.extend(case.build())
    return report


def run_corpus(cases: tuple[CorpusCase, ...] = CASES) -> dict:
    """Check every mutant fires its expected codes; JSON-ready summary.

    A case passes when every expected code appears among the findings.
    ``ok`` is the conjunction — any silent mutant means a lint pass has
    lost its teeth.
    """
    results = []
    for case in cases:
        report = run_case(case)
        found = sorted(report.codes)
        results.append({
            "name": case.name,
            "description": case.description,
            "expected": list(case.expect),
            "found": found,
            "diagnostics": [str(d) for d in report.diagnostics],
            "ok": all(code in report.codes for code in case.expect),
        })
    return {
        "cases": len(results),
        "caught": sum(r["ok"] for r in results),
        "missed": [r["name"] for r in results if not r["ok"]],
        "ok": all(r["ok"] for r in results),
        "results": results,
    }
