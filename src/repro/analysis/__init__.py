"""Static kernel verifier: trace lint, comm-schedule checks, mutation corpus.

The package turns the recorded trace IR (:mod:`repro.simd.trace`) and the
vector-clocked communication log (:mod:`repro.comm.schedule`) into coded
diagnostics — ``VEC0xx`` for kernel traces, ``COMM0xx`` for SPMD
schedules — without executing anything on the machine model.  See
``docs/analysis.md`` for the code catalogue and ``python -m repro
analyze`` for the CLI entry point.
"""

from .comm_check import (
    ANY,
    Coll,
    Recv,
    Send,
    check_log,
    check_schedule,
    solver_iteration_schedule,
)
from .corpus import CASES, CorpusCase, run_case, run_corpus
from .diagnostics import CODES, AnalysisReport, Diagnostic
from .kernel import (
    analyze_all,
    analyze_variant,
    certify_variant,
    default_structures,
    summarize,
)
from .numlint import (
    NumericalCertificate,
    Term,
    certify_recorder,
    certify_trace,
    compare_certificates,
    gamma,
)
from .trace_lint import (
    BufferInfo,
    TraceSubject,
    coverage_pass,
    dataflow_pass,
    isa_pass,
    lint_megakernel,
    lint_recorder,
    lint_trace,
    memory_pass,
)

__all__ = [
    "ANY",
    "AnalysisReport",
    "BufferInfo",
    "CASES",
    "CODES",
    "Coll",
    "CorpusCase",
    "Diagnostic",
    "NumericalCertificate",
    "Recv",
    "Send",
    "Term",
    "TraceSubject",
    "analyze_all",
    "analyze_variant",
    "certify_recorder",
    "certify_trace",
    "certify_variant",
    "check_log",
    "check_schedule",
    "compare_certificates",
    "coverage_pass",
    "dataflow_pass",
    "default_structures",
    "gamma",
    "isa_pass",
    "lint_megakernel",
    "lint_recorder",
    "lint_trace",
    "memory_pass",
    "run_case",
    "run_corpus",
    "solver_iteration_schedule",
    "summarize",
]
