"""Static lint passes over a recorded kernel trace.

The linter walks the linear op list a
:class:`~repro.simd.trace.TraceRecorder` captured — decoding every op
through the canonical :mod:`repro.simd.trace_ir` helpers, the same path
the replay compiler uses — and emits ``VEC0xx``
:class:`~repro.analysis.diagnostics.Diagnostic` findings from four passes:

* **ISA conformance** (``VEC01x``): every op must be legal for the ISA the
  variant targets.  The interpreting engine gates most instructions with
  ``isa.require`` at execution time, but a handful are ungated (e.g.
  ``blend``, whose :class:`~repro.simd.register.MaskRegister` argument can
  be constructed directly, bypassing ``make_mask``) — the static pass
  catches those, plus anything recorded under a permissive engine.
* **dataflow** (``VEC02x``): the trace is SSA-like (every op defines a
  fresh register/scalar id), so use-before-def and dead values are exact,
  not conservative.  Dead-value accounting applies to the *scalar*
  dataflow — the lost-accumulator class, a ``reduce_add`` result that
  never reaches a store.  Dead vector registers are deliberately not
  flagged: padded formats compute and drop whole accumulator strips by
  design (a SELL trailing slice whose rows are all padding), and
  structure-derived gathers (AIJPERM's float column indices) are consumed
  as indices outside the float dataflow; a genuinely dropped vector
  accumulator still surfaces as its row's missing store (``VEC041``).
* **memory safety** (``VEC03x``): every load/store/gather/scatter cell is
  checked against the *logical* bound of its buffer.  Logical bounds
  default to the physical buffer lengths but can be overridden — that is
  how padding bugs are caught: a SELL-padded physical buffer survives the
  recording run while the analyzer still flags cells past the logical
  matrix dimension.  Aligned-tagged ops are checked against the ISA's
  vector alignment (base buffers are 64-byte allocated per
  ``repro.memory.spaces``, so the offset decides).
* **coverage** (``VEC04x``): mask-union accounting over the output
  buffer(s) — every row written exactly once, with read-modify-write
  (store, load, store) recognized as legal accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..simd.isa import Isa
from ..simd.trace import TraceRecorder
from ..simd.trace_ir import (
    op_mask,
    op_reads,
    op_reg_defs,
    op_reg_uses,
    op_scalar_defs,
    op_scalar_uses,
    op_writes,
)
from .diagnostics import Diagnostic

#: Op kinds whose engine entry points are mask-predicated; all but
#: ``blend`` are gated by ``isa.require("masks")`` at record time, but the
#: static check covers permissively-recorded traces and the ungated ops.
_MASK_REQUIRED = ("vstore_mask", "gather_mask", "fmadd_mask", "vload_prefix",
                  "scatter", "blend")

#: Indexed memory ops (bounds findings are VEC030, not VEC031).
_INDEXED = ("gather", "gather_mask", "scatter")


@dataclass(frozen=True)
class BufferInfo:
    """What the linter knows about one trace buffer slot."""

    name: str | None      #: bound name, or None for a const snapshot
    length: int           #: physical length in elements
    itemsize: int         #: element size in bytes

    @property
    def label(self) -> str:
        return self.name if self.name is not None else "<const>"


@dataclass(frozen=True)
class TraceSubject:
    """A trace plus the metadata the lint passes need.

    ``bounds`` maps buffer names to their *logical* element counts; any
    buffer without an entry is bounded by its physical length.  ``outputs``
    names the buffers the coverage pass accounts for (each logical cell
    written exactly once).
    """

    ops: tuple
    lanes: int
    isa: Isa
    buffers: tuple[BufferInfo, ...]
    aligned_ops: frozenset[int] = frozenset()
    emulated_ops: frozenset[int] = frozenset()
    bounds: dict[str, int] = field(default_factory=dict)
    outputs: tuple[str, ...] = ("y",)

    def bound_of(self, b: int) -> int:
        info = self.buffers[b]
        if info.name is not None and info.name in self.bounds:
            return self.bounds[info.name]
        return info.length

    @classmethod
    def from_recorder(
        cls,
        recorder: TraceRecorder,
        bounds: dict[str, int] | None = None,
        outputs: tuple[str, ...] = ("y",),
    ) -> "TraceSubject":
        infos = tuple(
            BufferInfo(
                name=slot.name,
                length=slot.nbytes // np.dtype(slot.dtype).itemsize,
                itemsize=np.dtype(slot.dtype).itemsize,
            )
            for slot in recorder.buffers
        )
        return cls(
            ops=tuple(recorder.ops),
            lanes=recorder.lanes,
            isa=recorder.isa,
            buffers=infos,
            aligned_ops=frozenset(recorder.aligned_ops),
            emulated_ops=frozenset(recorder.emulated_ops),
            bounds=dict(bounds or {}),
            outputs=outputs,
        )


def lint_trace(subject: TraceSubject) -> list[Diagnostic]:
    """Run every lint pass; findings in pass order, op order within."""
    diags: list[Diagnostic] = []
    diags.extend(isa_pass(subject))
    diags.extend(dataflow_pass(subject))
    diags.extend(memory_pass(subject))
    diags.extend(coverage_pass(subject))
    return diags


def lint_recorder(
    recorder: TraceRecorder,
    bounds: dict[str, int] | None = None,
    outputs: tuple[str, ...] = ("y",),
) -> list[Diagnostic]:
    """Lint a finished recording (the common entry point)."""
    return lint_trace(TraceSubject.from_recorder(recorder, bounds, outputs))


# ---------------------------------------------------------------------------
# pass 1: ISA conformance
# ---------------------------------------------------------------------------


def isa_pass(subject: TraceSubject) -> list[Diagnostic]:
    isa, lanes = subject.isa, subject.lanes
    diags: list[Diagnostic] = []
    for i, op in enumerate(subject.ops):
        kind = op[0]
        if not isa.has_masks and kind in _MASK_REQUIRED:
            # Unmasked scatter (bits None) still needs AVX-512 (the
            # instruction arrived with it), so every scatter counts.
            diags.append(Diagnostic(
                "VEC010", f"op {i}",
                f"{kind} is mask-predicated but ISA {isa.name} has no "
                f"mask registers",
            ))
        if kind == "gather" and i not in subject.emulated_ops and not isa.has_gather:
            diags.append(Diagnostic(
                "VEC011", f"op {i}",
                f"hardware gather on ISA {isa.name} (use the SSE2 "
                f"emulation sequence instead)",
            ))
        if kind in ("fmadd", "fmadd_mask") and not isa.has_fma:
            diags.append(Diagnostic(
                "VEC012", f"op {i}",
                f"{kind} on ISA {isa.name} (decompose into mul + add)",
            ))
        diags.extend(_lane_width_check(i, op, lanes))
    return diags


def _lane_width_check(i: int, op: tuple, lanes: int) -> list[Diagnostic]:
    """VEC013: every baked vector operand must span exactly ``lanes``."""
    diags: list[Diagnostic] = []

    def check(what: str, n: int) -> None:
        if n != lanes:
            diags.append(Diagnostic(
                "VEC013", f"op {i}",
                f"{op[0]} {what} spans {n} lanes on a {lanes}-lane register",
            ))

    kind = op[0]
    if kind in ("gather", "gather_mask"):
        check("index vector", len(np.asarray(op[3]).reshape(-1)))
    elif kind == "scatter":
        check("index vector", len(np.asarray(op[2]).reshape(-1)))
    bits = op_mask(op)
    if bits is not None:
        check("mask", len(bits))
    for slot in range(1, len(op)):
        operand = op[slot]
        if isinstance(operand, tuple) and len(operand) == 2 and operand[0] == "k":
            check("constant operand", len(np.asarray(operand[1]).reshape(-1)))
    return diags


# ---------------------------------------------------------------------------
# pass 2: dataflow
# ---------------------------------------------------------------------------


def dataflow_pass(subject: TraceSubject) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    reg_def_at: dict[int, int] = {}   # rid -> defining op index
    sid_def_at: dict[int, int] = {}
    sid_used: set[int] = set()
    for i, op in enumerate(subject.ops):
        for rid in op_reg_uses(op):
            if rid not in reg_def_at:
                diags.append(Diagnostic(
                    "VEC020", f"op {i}",
                    f"{op[0]} reads register r{rid} before any definition",
                ))
        for sid in op_scalar_uses(op):
            if sid not in sid_def_at:
                diags.append(Diagnostic(
                    "VEC020", f"op {i}",
                    f"{op[0]} reads scalar s{sid} before any definition",
                ))
            sid_used.add(sid)
        for rid in op_reg_defs(op):
            reg_def_at[rid] = i
        for sid in op_scalar_defs(op):
            sid_def_at[sid] = i
    for sid, i in sid_def_at.items():
        if sid not in sid_used:
            diags.append(Diagnostic(
                "VEC021", f"op {i}",
                f"scalar s{sid} ({subject.ops[i][0]}) is never consumed — "
                f"a reduce result that reaches no store is a lost "
                f"accumulator",
            ))
    return diags


# ---------------------------------------------------------------------------
# pass 3: memory safety
# ---------------------------------------------------------------------------


def memory_pass(subject: TraceSubject) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    vector_bytes = subject.isa.vector_bits // 8
    for i, op in enumerate(subject.ops):
        kind = op[0]
        effects = op_reads(op, subject.lanes) + op_writes(op, subject.lanes)
        seen: set[int] = set()
        for b, cells in effects:
            if b in seen:  # scatter reports its cells as read and write
                continue
            seen.add(b)
            cells = np.asarray(cells)
            if cells.size == 0:
                continue
            bound = subject.bound_of(b)
            bad = cells[(cells < 0) | (cells >= bound)]
            if bad.size:
                code = "VEC030" if kind in _INDEXED else "VEC031"
                label = subject.buffers[b].label
                diags.append(Diagnostic(
                    code, f"op {i}",
                    f"{kind} touches {label}[{int(bad[0])}] "
                    f"(+{bad.size - 1} more) outside its logical bound "
                    f"{bound}",
                ))
        if i in subject.aligned_ops and kind in ("vload", "vstore"):
            b = op[2] if kind == "vload" else op[1]
            off = int(op[3] if kind == "vload" else op[2])
            byte_off = off * subject.buffers[b].itemsize
            if byte_off % vector_bytes != 0:
                diags.append(Diagnostic(
                    "VEC032", f"op {i}",
                    f"aligned {kind} of {subject.buffers[b].label} at "
                    f"element {off} (byte {byte_off}) breaks the "
                    f"{vector_bytes}-byte {subject.isa.name} contract",
                ))
    return diags


# ---------------------------------------------------------------------------
# pass 4: output coverage
# ---------------------------------------------------------------------------


def coverage_pass(subject: TraceSubject) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    out_slots = {
        b: info for b, info in enumerate(subject.buffers)
        if info.name in subject.outputs
    }
    for b, info in out_slots.items():
        bound = subject.bound_of(b)
        # Per-cell state: 0 = never stored, 1 = stored (clean),
        # 2 = stored then loaded (accumulation in flight).
        state = np.zeros(info.length, dtype=np.int8)
        for i, op in enumerate(subject.ops):
            for rb, cells in op_reads(op, subject.lanes):
                if rb != b:
                    continue
                cells = np.asarray(cells)
                cells = cells[(cells >= 0) & (cells < info.length)]
                fresh = cells[state[cells] == 0]
                if fresh.size:
                    diags.append(Diagnostic(
                        "VEC022", f"op {i}",
                        f"{op[0]} loads {info.label}[{int(fresh[0])}] "
                        f"(+{fresh.size - 1} more) before any store — the "
                        f"kernel reads stale output memory",
                    ))
                # A scatter-add's read half lands here too, so its write
                # half below sees state 2 (legal read-modify-write).
                state[cells[state[cells] == 1]] = 2
            for wb, cells in op_writes(op, subject.lanes):
                if wb != b:
                    continue
                cells = np.asarray(cells)
                cells = cells[(cells >= 0) & (cells < info.length)]
                doubled = cells[state[cells] == 1]
                if doubled.size:
                    diags.append(Diagnostic(
                        "VEC040", f"op {i}",
                        f"{op[0]} stores {info.label}[{int(doubled[0])}] "
                        f"(+{doubled.size - 1} more) which was already "
                        f"written with no intervening load — mask union "
                        f"double-covers these lanes",
                    ))
                state[cells] = 1
        unwritten = np.nonzero(state[:bound] == 0)[0]
        if unwritten.size:
            runs = _runs(unwritten)
            diags.append(Diagnostic(
                "VEC041", info.label,
                f"rows {runs} of {info.label} (logical bound {bound}) are "
                f"never written",
            ))
    return diags


def _runs(idx: np.ndarray) -> str:
    """Compress sorted indices into a 'a-b, c, d-e' range listing."""
    parts = []
    start = prev = int(idx[0])
    for v in idx[1:]:
        v = int(v)
        if v == prev + 1:
            prev = v
            continue
        parts.append(f"{start}-{prev}" if prev > start else f"{start}")
        start = prev = v
    parts.append(f"{start}-{prev}" if prev > start else f"{start}")
    return ", ".join(parts)
