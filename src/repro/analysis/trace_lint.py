"""Static lint passes over a recorded kernel trace.

The linter walks the linear op list a
:class:`~repro.simd.trace.TraceRecorder` captured — decoding every op
through the canonical :mod:`repro.simd.trace_ir` helpers, the same path
the replay compiler uses — and emits ``VEC0xx``
:class:`~repro.analysis.diagnostics.Diagnostic` findings from four passes:

* **ISA conformance** (``VEC01x``): every op must be legal for the ISA the
  variant targets.  The interpreting engine gates most instructions with
  ``isa.require`` at execution time, but a handful are ungated (e.g.
  ``blend``, whose :class:`~repro.simd.register.MaskRegister` argument can
  be constructed directly, bypassing ``make_mask``) — the static pass
  catches those, plus anything recorded under a permissive engine.
* **dataflow** (``VEC02x``): the trace is SSA-like (every op defines a
  fresh register/scalar id), so use-before-def and dead values are exact,
  not conservative.  Dead-value accounting applies to the *scalar*
  dataflow — the lost-accumulator class, a ``reduce_add`` result that
  never reaches a store.  Dead vector registers are deliberately not
  flagged: padded formats compute and drop whole accumulator strips by
  design (a SELL trailing slice whose rows are all padding), and
  structure-derived gathers (AIJPERM's float column indices) are consumed
  as indices outside the float dataflow; a genuinely dropped vector
  accumulator still surfaces as its row's missing store (``VEC041``).
* **memory safety** (``VEC03x``): every load/store/gather/scatter cell is
  checked against the *logical* bound of its buffer.  Logical bounds
  default to the physical buffer lengths but can be overridden — that is
  how padding bugs are caught: a SELL-padded physical buffer survives the
  recording run while the analyzer still flags cells past the logical
  matrix dimension.  Aligned-tagged ops are checked against the ISA's
  vector alignment (base buffers are 64-byte allocated per
  ``repro.memory.spaces``, so the offset decides).
* **coverage** (``VEC04x``): mask-union accounting over the output
  buffer(s) — every row written exactly once, with read-modify-write
  (store, load, store) recognized as legal accumulation.

A fifth pass, :func:`lint_megakernel` (``VEC05x``), audits *fused*
megakernel programs (:mod:`repro.simd.megakernel`) — a different
artifact from recorder traces, with its own failure modes: a surviving
step reading a register the fusion elided, a region whose retained
source steps are not the lockstep FMA chain its sweep assumes, and
fused programs that fail to cover the source trace's steps exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..simd.isa import Isa
from ..simd.trace import TraceRecorder
from ..simd.trace_ir import (
    op_mask,
    op_reads,
    op_reg_defs,
    op_reg_uses,
    op_scalar_defs,
    op_scalar_uses,
    op_writes,
)
from .diagnostics import Diagnostic

#: Op kinds whose engine entry points are mask-predicated; all but
#: ``blend`` are gated by ``isa.require("masks")`` at record time, but the
#: static check covers permissively-recorded traces and the ungated ops.
_MASK_REQUIRED = ("vstore_mask", "gather_mask", "fmadd_mask", "vload_prefix",
                  "scatter", "blend")

#: Indexed memory ops (bounds findings are VEC030, not VEC031).
_INDEXED = ("gather", "gather_mask", "scatter")


@dataclass(frozen=True)
class BufferInfo:
    """What the linter knows about one trace buffer slot."""

    name: str | None      #: bound name, or None for a const snapshot
    length: int           #: physical length in elements
    itemsize: int         #: element size in bytes

    @property
    def label(self) -> str:
        return self.name if self.name is not None else "<const>"


@dataclass(frozen=True)
class TraceSubject:
    """A trace plus the metadata the lint passes need.

    ``bounds`` maps buffer names to their *logical* element counts; any
    buffer without an entry is bounded by its physical length.  ``outputs``
    names the buffers the coverage pass accounts for (each logical cell
    written exactly once).
    """

    ops: tuple
    lanes: int
    isa: Isa
    buffers: tuple[BufferInfo, ...]
    aligned_ops: frozenset[int] = frozenset()
    emulated_ops: frozenset[int] = frozenset()
    bounds: dict[str, int] = field(default_factory=dict)
    outputs: tuple[str, ...] = ("y",)

    def bound_of(self, b: int) -> int:
        info = self.buffers[b]
        if info.name is not None and info.name in self.bounds:
            return self.bounds[info.name]
        return info.length

    @classmethod
    def from_recorder(
        cls,
        recorder: TraceRecorder,
        bounds: dict[str, int] | None = None,
        outputs: tuple[str, ...] = ("y",),
    ) -> "TraceSubject":
        infos = tuple(
            BufferInfo(
                name=slot.name,
                length=slot.nbytes // np.dtype(slot.dtype).itemsize,
                itemsize=np.dtype(slot.dtype).itemsize,
            )
            for slot in recorder.buffers
        )
        return cls(
            ops=tuple(recorder.ops),
            lanes=recorder.lanes,
            isa=recorder.isa,
            buffers=infos,
            aligned_ops=frozenset(recorder.aligned_ops),
            emulated_ops=frozenset(recorder.emulated_ops),
            bounds=dict(bounds or {}),
            outputs=outputs,
        )


def lint_trace(subject: TraceSubject) -> list[Diagnostic]:
    """Run every lint pass; findings in pass order, op order within."""
    diags: list[Diagnostic] = []
    diags.extend(isa_pass(subject))
    diags.extend(dataflow_pass(subject))
    diags.extend(memory_pass(subject))
    diags.extend(coverage_pass(subject))
    return diags


def lint_recorder(
    recorder: TraceRecorder,
    bounds: dict[str, int] | None = None,
    outputs: tuple[str, ...] = ("y",),
) -> list[Diagnostic]:
    """Lint a finished recording (the common entry point)."""
    return lint_trace(TraceSubject.from_recorder(recorder, bounds, outputs))


# ---------------------------------------------------------------------------
# pass 1: ISA conformance
# ---------------------------------------------------------------------------


def isa_pass(subject: TraceSubject) -> list[Diagnostic]:
    isa, lanes = subject.isa, subject.lanes
    diags: list[Diagnostic] = []
    for i, op in enumerate(subject.ops):
        kind = op[0]
        # SVE predicate registers satisfy every lane-masked op except
        # scatter: the engine has no predicated scatter-accumulate, so a
        # scatter still needs AVX-512 mask registers (unmasked scatter,
        # bits None, arrived with AVX-512 too, so every scatter counts).
        lanemask_ok = isa.has_masks or (
            isa.has_predicates and kind != "scatter"
        )
        if not lanemask_ok and kind in _MASK_REQUIRED:
            diags.append(Diagnostic(
                "VEC010", f"op {i}",
                f"{kind} is mask-predicated but ISA {isa.name} has "
                f"neither mask nor predicate registers",
            ))
        if kind == "gather" and i not in subject.emulated_ops and not isa.has_gather:
            diags.append(Diagnostic(
                "VEC011", f"op {i}",
                f"hardware gather on ISA {isa.name} (use the SSE2 "
                f"emulation sequence instead)",
            ))
        if kind in ("fmadd", "fmadd_mask") and not isa.has_fma:
            diags.append(Diagnostic(
                "VEC012", f"op {i}",
                f"{kind} on ISA {isa.name} (decompose into mul + add)",
            ))
        diags.extend(_lane_width_check(i, op, lanes))
    return diags


def _lane_width_check(i: int, op: tuple, lanes: int) -> list[Diagnostic]:
    """VEC013: every baked vector operand must span exactly ``lanes``."""
    diags: list[Diagnostic] = []

    def check(what: str, n: int) -> None:
        if n != lanes:
            diags.append(Diagnostic(
                "VEC013", f"op {i}",
                f"{op[0]} {what} spans {n} lanes on a {lanes}-lane register",
            ))

    kind = op[0]
    if kind in ("gather", "gather_mask"):
        check("index vector", len(np.asarray(op[3]).reshape(-1)))
    elif kind == "scatter":
        check("index vector", len(np.asarray(op[2]).reshape(-1)))
    bits = op_mask(op)
    if bits is not None:
        check("mask", len(bits))
    for slot in range(1, len(op)):
        operand = op[slot]
        if isinstance(operand, tuple) and len(operand) == 2 and operand[0] == "k":
            check("constant operand", len(np.asarray(operand[1]).reshape(-1)))
    return diags


# ---------------------------------------------------------------------------
# pass 2: dataflow
# ---------------------------------------------------------------------------


def dataflow_pass(subject: TraceSubject) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    reg_def_at: dict[int, int] = {}   # rid -> defining op index
    sid_def_at: dict[int, int] = {}
    sid_used: set[int] = set()
    for i, op in enumerate(subject.ops):
        for rid in op_reg_uses(op):
            if rid not in reg_def_at:
                diags.append(Diagnostic(
                    "VEC020", f"op {i}",
                    f"{op[0]} reads register r{rid} before any definition",
                ))
        for sid in op_scalar_uses(op):
            if sid not in sid_def_at:
                diags.append(Diagnostic(
                    "VEC020", f"op {i}",
                    f"{op[0]} reads scalar s{sid} before any definition",
                ))
            sid_used.add(sid)
        for rid in op_reg_defs(op):
            reg_def_at[rid] = i
        for sid in op_scalar_defs(op):
            sid_def_at[sid] = i
    for sid, i in sid_def_at.items():
        if sid not in sid_used:
            diags.append(Diagnostic(
                "VEC021", f"op {i}",
                f"scalar s{sid} ({subject.ops[i][0]}) is never consumed — "
                f"a reduce result that reaches no store is a lost "
                f"accumulator",
            ))
    return diags


# ---------------------------------------------------------------------------
# pass 3: memory safety
# ---------------------------------------------------------------------------


def memory_pass(subject: TraceSubject) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    vector_bytes = subject.isa.vector_bits // 8
    for i, op in enumerate(subject.ops):
        kind = op[0]
        effects = op_reads(op, subject.lanes) + op_writes(op, subject.lanes)
        seen: set[int] = set()
        for b, cells in effects:
            if b in seen:  # scatter reports its cells as read and write
                continue
            seen.add(b)
            cells = np.asarray(cells)
            if cells.size == 0:
                continue
            bound = subject.bound_of(b)
            bad = cells[(cells < 0) | (cells >= bound)]
            if bad.size:
                code = "VEC030" if kind in _INDEXED else "VEC031"
                label = subject.buffers[b].label
                diags.append(Diagnostic(
                    code, f"op {i}",
                    f"{kind} touches {label}[{int(bad[0])}] "
                    f"(+{bad.size - 1} more) outside its logical bound "
                    f"{bound}",
                ))
        if i in subject.aligned_ops and kind in ("vload", "vstore"):
            b = op[2] if kind == "vload" else op[1]
            off = int(op[3] if kind == "vload" else op[2])
            byte_off = off * subject.buffers[b].itemsize
            if byte_off % vector_bytes != 0:
                diags.append(Diagnostic(
                    "VEC032", f"op {i}",
                    f"aligned {kind} of {subject.buffers[b].label} at "
                    f"element {off} (byte {byte_off}) breaks the "
                    f"{vector_bytes}-byte {subject.isa.name} contract",
                ))
    return diags


# ---------------------------------------------------------------------------
# pass 4: output coverage
# ---------------------------------------------------------------------------


def coverage_pass(subject: TraceSubject) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    out_slots = {
        b: info for b, info in enumerate(subject.buffers)
        if info.name in subject.outputs
    }
    for b, info in out_slots.items():
        bound = subject.bound_of(b)
        # Per-cell state: 0 = never stored, 1 = stored (clean),
        # 2 = stored then loaded (accumulation in flight).
        state = np.zeros(info.length, dtype=np.int8)
        for i, op in enumerate(subject.ops):
            for rb, cells in op_reads(op, subject.lanes):
                if rb != b:
                    continue
                cells = np.asarray(cells)
                cells = cells[(cells >= 0) & (cells < info.length)]
                fresh = cells[state[cells] == 0]
                if fresh.size:
                    diags.append(Diagnostic(
                        "VEC022", f"op {i}",
                        f"{op[0]} loads {info.label}[{int(fresh[0])}] "
                        f"(+{fresh.size - 1} more) before any store — the "
                        f"kernel reads stale output memory",
                    ))
                # A scatter-add's read half lands here too, so its write
                # half below sees state 2 (legal read-modify-write).
                state[cells[state[cells] == 1]] = 2
            for wb, cells in op_writes(op, subject.lanes):
                if wb != b:
                    continue
                cells = np.asarray(cells)
                cells = cells[(cells >= 0) & (cells < info.length)]
                doubled = cells[state[cells] == 1]
                if doubled.size:
                    diags.append(Diagnostic(
                        "VEC040", f"op {i}",
                        f"{op[0]} stores {info.label}[{int(doubled[0])}] "
                        f"(+{doubled.size - 1} more) which was already "
                        f"written with no intervening load — mask union "
                        f"double-covers these lanes",
                    ))
                state[cells] = 1
        unwritten = np.nonzero(state[:bound] == 0)[0]
        if unwritten.size:
            runs = _runs(unwritten)
            diags.append(Diagnostic(
                "VEC041", info.label,
                f"rows {runs} of {info.label} (logical bound {bound}) are "
                f"never written",
            ))
    return diags


# ---------------------------------------------------------------------------
# pass 5: megakernel fusion (VEC05x) — lints *fused* programs
# ---------------------------------------------------------------------------


def lint_megakernel(mega) -> list[Diagnostic]:
    """Lint a fused :class:`~repro.simd.megakernel.MegakernelTrace`.

    The fused program is a different artifact from a recorder trace —
    plain compiled steps interleaved with :class:`FusedRegion` passes —
    so it gets its own pass family:

    * **VEC050** (fusion-boundary dataflow): fusion elides registers —
      interior chain accumulators, absorbed loads' destinations — on the
      proof that nothing outside the region reads them.  Any surviving
      plain step (or another region's register-file operand) that reads
      an elided id would replay garbage: the definition no longer
      executes.
    * **VEC051** (chain integrity): each region's retained
      ``source_steps`` must re-derive as the lockstep FMA chain the
      fusion claims — equal widths, each level's addend exactly the
      previous level's destinations, the region's ``dsts`` the final
      level's.  The sweep's sequential fold is only bit-identical to
      step-by-step replay under that linkage.
    * **VEC052** (region coverage): plain steps + fused source steps +
      dropped (absorbed) steps must account for every step of the
      source program, exactly once — a hole means a replay silently
      skips work; an overlap means it does work twice.
    """
    from ..simd.megakernel import step_reg_reads

    diags: list[Diagnostic] = []
    regions = mega.regions

    # -- VEC051: re-derive each region's chain from its source steps ----
    for r, region in enumerate(regions):
        where = f"region {r} (source step {region.first_step})"
        fmadds = [s for s in region.source_steps if s[0] == "fmadd"]
        if len(fmadds) != region.levels:
            diags.append(Diagnostic(
                "VEC051", where,
                f"region claims {region.levels} fused levels but carries "
                f"{len(fmadds)} fmadd source steps",
            ))
        widths = {len(np.asarray(s[1])) for s in fmadds}
        if len(widths) > 1:
            diags.append(Diagnostic(
                "VEC051", where,
                f"fused levels have mixed widths {sorted(widths)} — the "
                f"levels do not run in lockstep",
            ))
        linked = True
        for prev, nxt in zip(fmadds, fmadds[1:]):
            c = nxt[4]
            if not (
                isinstance(c, tuple)
                and c[0] == "r"
                and np.array_equal(np.asarray(c[1]), np.asarray(prev[1]))
            ):
                linked = False
        if fmadds and not np.array_equal(
            np.asarray(fmadds[-1][1]), np.asarray(region.dsts)
        ):
            linked = False
        if not linked:
            diags.append(Diagnostic(
                "VEC051", where,
                "chain linkage broken: a level's addend is not the "
                "previous level's destinations (or the region's dsts are "
                "not the final level's) — the fused fold would not "
                "reproduce step-by-step replay",
            ))

    # -- VEC050: nothing outside a region may read an elided id ---------
    elided = mega.elided_ids()
    if elided.size:
        plain_index = 0
        for tag, seg in mega.segments:
            if tag == "region":
                for label, src in (("a", seg.a_src), ("b", seg.b_src)):
                    if src[0] == "reg":
                        bad = np.intersect1d(np.asarray(src[1]).ravel(), elided)
                        if bad.size:
                            diags.append(Diagnostic(
                                "VEC050",
                                f"region (source step {seg.first_step})",
                                f"operand {label} reads register "
                                f"r{int(bad[0])} (+{bad.size - 1} more) "
                                f"that fusion elided — its definition no "
                                f"longer executes",
                            ))
                if seg.base[0] == "reg":
                    bad = np.intersect1d(
                        np.asarray(seg.base[1]).ravel(), elided
                    )
                    if bad.size:
                        diags.append(Diagnostic(
                            "VEC050",
                            f"region (source step {seg.first_step})",
                            f"base accumulator reads elided register "
                            f"r{int(bad[0])} (+{bad.size - 1} more)",
                        ))
                continue
            for step in seg:
                for ids in step_reg_reads(step):
                    bad = np.intersect1d(ids.ravel(), elided)
                    if bad.size:
                        diags.append(Diagnostic(
                            "VEC050", f"plain step {plain_index}",
                            f"{step[0]} reads register r{int(bad[0])} "
                            f"(+{bad.size - 1} more) that fusion elided — "
                            f"its definition no longer executes",
                        ))
                plain_index += 1

    # -- VEC052: plain + fused + dropped must cover the source exactly --
    plain_count = sum(
        len(seg) for tag, seg in mega.segments if tag == "steps"
    )
    fused_count = sum(len(r.source_steps) for r in regions)
    covered = plain_count + fused_count + len(mega.dropped_steps)
    if covered != mega.source_nsteps:
        kind = "hole" if covered < mega.source_nsteps else "overlap"
        diags.append(Diagnostic(
            "VEC052", "program",
            f"coverage {kind}: {plain_count} plain + {fused_count} fused "
            f"+ {len(mega.dropped_steps)} dropped steps account for "
            f"{covered} of the source program's {mega.source_nsteps}",
        ))
    dropped_idx = [i for i, _ in mega.dropped_steps]
    if len(set(dropped_idx)) != len(dropped_idx):
        diags.append(Diagnostic(
            "VEC052", "program",
            "a source step is dropped more than once — absorption "
            "double-counts it",
        ))
    return diags


def _runs(idx: np.ndarray) -> str:
    """Compress sorted indices into a 'a-b, c, d-e' range listing."""
    parts = []
    start = prev = int(idx[0])
    for v in idx[1:]:
        v = int(v)
        if v == prev + 1:
            prev = v
            continue
        parts.append(f"{start}-{prev}" if prev > start else f"{start}")
        start = prev = v
    parts.append(f"{start}-{prev}" if prev > start else f"{start}")
    return ", ".join(parts)
