"""SPMD communication-schedule checker: races, leaks, and deadlocks.

Two complementary entry points share the ``COMM0xx`` diagnostic codes:

* :func:`check_schedule` analyzes a *planned* schedule — per-rank lists of
  :class:`Send` / :class:`Recv` / :class:`Coll` ops — without running any
  threads.  It executes the schedule symbolically under the World's real
  matching semantics (buffered sends always progress, receives need a
  matching mail, collectives rendezvous all ranks), maintaining vector
  clocks as it goes.  When no rank can make progress it builds the
  **wait-for graph** (a blocked receiver waits on its source; a rank in a
  collective waits on every rank not yet there) and reports its cycles as
  deadlocks — the analysis a live run cannot do, because a deadlocked run
  never returns.
* :func:`check_log` audits a :class:`~repro.comm.schedule.ScheduleLog`
  captured from a finished run: messages sent but never received, and
  wildcard receives that matched while several candidate messages raced.

The parallel GMRES/Richardson iteration is the motivating subject: each
iteration is ghost-exchange sends/recvs (:class:`~repro.comm.scatter.
VecScatter` plans) followed by dot-product ``allreduce`` collectives, and
:func:`solver_iteration_schedule` builds exactly that shape from scatter
peer lists so solver configurations can be checked before they run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..comm.schedule import ScheduleLog, concurrent
from .diagnostics import AnalysisReport, Diagnostic

#: Wildcard source/tag for static Recv ops (mirrors ``comm.ANY_TAG``).
ANY = -1


@dataclass(frozen=True)
class Send:
    """Buffered send: always completes (the World snapshots the payload)."""

    dst: int
    tag: int = 0


@dataclass(frozen=True)
class Recv:
    """Blocking receive; ``src`` or ``tag`` may be :data:`ANY`."""

    src: int
    tag: int = 0


@dataclass(frozen=True)
class Coll:
    """Synchronizing collective; ``kind`` must match across ranks."""

    kind: str = "allreduce:sum"


def solver_iteration_schedule(
    send_peers: list[list[int]],
    recv_peers: list[list[int]],
    tag: int = 7001,
    collectives: tuple[str, ...] = ("allreduce:sum",),
) -> list[list]:
    """One parallel-solver iteration as a checkable schedule.

    ``send_peers[r]`` / ``recv_peers[r]`` are rank ``r``'s scatter plans
    (:attr:`VecScatter.send_peers` / :attr:`VecScatter.recv_peers`); the
    iteration posts the ghost exchange and then joins the solver's
    dot-product collectives, the structure of every GMRES/Richardson
    sweep in :mod:`repro.ksp.parallel`.
    """
    size = len(send_peers)
    schedule: list[list] = []
    for r in range(size):
        ops: list = [Send(dst, tag) for dst in send_peers[r]]
        ops.extend(Recv(src, tag) for src in recv_peers[r])
        ops.extend(Coll(kind) for kind in collectives)
        schedule.append(ops)
    return schedule


def check_schedule(schedule: list[list]) -> AnalysisReport:
    """Symbolically execute a schedule; report every COMM defect found."""
    size = len(schedule)
    report = AnalysisReport(subject=f"schedule[{size} ranks]")
    pc = [0] * size                       # per-rank program counter
    clocks = [[0] * size for _ in range(size)]
    boxes: dict[tuple[int, int], deque] = {}  # (src, dst) -> (tag, clock)

    def tick(r: int) -> tuple[int, ...]:
        clocks[r][r] += 1
        return tuple(clocks[r])

    def finished(r: int) -> bool:
        return pc[r] >= len(schedule[r])

    def current(r: int):
        return schedule[r][pc[r]]

    def match(r: int, op: Recv):
        """(key, index) of the mail ``op`` would take, or None."""
        sources = range(size) if op.src == ANY else (op.src,)
        candidates = []
        for src in sources:
            box = boxes.get((src, r))
            if not box:
                continue
            for i, (tag, clk) in enumerate(box):
                if op.tag == ANY or tag == op.tag:
                    candidates.append(((src, r), i, clk))
                    break  # non-overtaking: first match per source
        if not candidates:
            return None
        if len(candidates) > 1:
            # Several sources could satisfy a wildcard receive; if any two
            # sends are concurrent, the winner depends on timing.
            racy = any(
                concurrent(a[2], b[2])
                for i, a in enumerate(candidates)
                for b in candidates[i + 1:]
            )
            if racy:
                report.diagnostics.append(Diagnostic(
                    "COMM005", f"rank {r} op {pc[r]}",
                    f"wildcard receive has {len(candidates)} concurrent "
                    f"candidate sends (from ranks "
                    f"{sorted(c[0][0] for c in candidates)}); the match "
                    f"is timing-dependent",
                ))
        key, i, _clk = candidates[0]  # deterministic: lowest source rank
        return key, i

    progressed = True
    while progressed:
        progressed = False
        # Point-to-point progress: sends are buffered, receives need mail.
        for r in range(size):
            while not finished(r):
                op = current(r)
                if isinstance(op, Send):
                    boxes.setdefault((r, op.dst), deque()).append(
                        (op.tag, tick(r))
                    )
                elif isinstance(op, Recv):
                    found = match(r, op)
                    if found is None:
                        break
                    key, i = found
                    _tag, send_clock = boxes[key][i]
                    del boxes[key][i]
                    for k in range(size):
                        clocks[r][k] = max(clocks[r][k], send_clock[k])
                    tick(r)
                else:  # Coll — handled at the rendezvous below
                    break
                pc[r] += 1
                progressed = True
        # Collective rendezvous: fires only when every unfinished rank
        # is parked at one.
        waiting = [r for r in range(size) if not finished(r)]
        if waiting and all(isinstance(current(r), Coll) for r in waiting):
            kinds = {current(r).kind for r in waiting}
            if len(waiting) < size:
                # Someone already ran off the end of their schedule; the
                # rendezvous can never complete.  Reported as unmatched
                # below once nothing else progresses.
                pass
            elif len(kinds) > 1:
                report.diagnostics.append(Diagnostic(
                    "COMM006", f"ranks {waiting}",
                    f"collective mismatch: kinds {sorted(kinds)} entered "
                    f"simultaneously",
                ))
                for r in waiting:  # unblock to keep finding defects
                    tick(r)
                    pc[r] += 1
                progressed = True
            else:
                joined = [max(clocks[r][k] for r in waiting) for k in range(size)]
                for r in waiting:
                    clocks[r] = list(joined)
                    tick(r)
                    pc[r] += 1
                progressed = True

    _diagnose_blocked(schedule, pc, boxes, report)
    for (src, dst), box in sorted(boxes.items()):
        for tag, _clk in box:
            report.diagnostics.append(Diagnostic(
                "COMM001", f"rank {src}",
                f"message (tag {tag}) to rank {dst} is never received",
            ))
    return report


def _diagnose_blocked(
    schedule: list[list],
    pc: list[int],
    boxes: dict[tuple[int, int], deque],
    report: AnalysisReport,
) -> None:
    """Classify every rank stuck at quiescence: cycle, tag, or no sender."""
    size = len(schedule)
    blocked = [r for r in range(size) if pc[r] < len(schedule[r])]
    if not blocked:
        return
    # Wait-for edges: receiver -> source; collective -> all absent ranks.
    waits: dict[int, set[int]] = {}
    for r in blocked:
        op = schedule[r][pc[r]]
        if isinstance(op, Recv):
            waits[r] = set(range(size)) - {r} if op.src == ANY else {op.src}
        else:  # Coll that never assembled
            waits[r] = {
                p for p in range(size)
                if p != r and (
                    pc[p] < len(schedule[p])
                    and not isinstance(schedule[p][pc[p]], Coll)
                )
            }
    cycles = _find_cycles(waits)
    in_cycle = {r for cycle in cycles for r in cycle}
    for cycle in cycles:
        path = " -> ".join(str(r) for r in cycle + (cycle[0],))
        report.diagnostics.append(Diagnostic(
            "COMM004", f"ranks {sorted(cycle)}",
            f"wait-for cycle {path}: each rank blocks on the next's "
            f"unsent message — the schedule deadlocks",
        ))
    for r in blocked:
        if r in in_cycle:
            continue
        op = schedule[r][pc[r]]
        if isinstance(op, Recv):
            pending = [
                tag
                for (src, dst), box in boxes.items()
                if dst == r and (op.src == ANY or src == op.src)
                for tag, _clk in box
            ]
            if pending:
                report.diagnostics.append(Diagnostic(
                    "COMM003", f"rank {r} op {pc[r]}",
                    f"receive wants tag {op.tag} from rank {op.src} but "
                    f"only tags {sorted(set(pending))} are in flight",
                ))
            else:
                report.diagnostics.append(Diagnostic(
                    "COMM002", f"rank {r} op {pc[r]}",
                    f"receive from rank {op.src} (tag {op.tag}) has no "
                    f"matching send anywhere in the schedule",
                ))
        else:
            report.diagnostics.append(Diagnostic(
                "COMM002", f"rank {r} op {pc[r]}",
                f"collective {op.kind!r} never completes: peers finish "
                f"their schedules without joining it",
            ))


def _find_cycles(waits: dict[int, set[int]]) -> list[tuple[int, ...]]:
    """Distinct simple cycles in the wait-for graph (DFS, deduplicated)."""
    cycles: list[tuple[int, ...]] = []
    seen: set[frozenset[int]] = set()
    for start in waits:
        stack = [(start, (start,))]
        while stack:
            node, path = stack.pop()
            for nxt in waits.get(node, ()):
                if nxt == path[0] and len(path) > 1:
                    key = frozenset(path)
                    if key not in seen:
                        seen.add(key)
                        cycles.append(path)
                elif nxt not in path and nxt in waits:
                    stack.append((nxt, path + (nxt,)))
    return cycles


# ---------------------------------------------------------------------------
# live-log audit
# ---------------------------------------------------------------------------


def check_log(log: ScheduleLog) -> AnalysisReport:
    """Audit a finished run's :class:`ScheduleLog` for comm defects."""
    report = AnalysisReport(subject=f"schedule-log[{log.size} ranks]")
    for src, dst, tag in log.unreceived():
        report.diagnostics.append(Diagnostic(
            "COMM001", f"rank {src}",
            f"message (tag {tag}) to rank {dst} was never received",
        ))
    for event in log.ambiguous_wildcards():
        report.diagnostics.append(Diagnostic(
            "COMM005", f"rank {event.rank}",
            f"wildcard receive from rank {event.peer} matched tag "
            f"{event.tag} while tags {list(event.pending_tags)} were all "
            f"pending — the match depends on arrival order",
        ))
    return report
