"""``python -m repro analyze`` — the static kernel-verifier entry point.

Runs the trace linter over the registered kernel variants (and, unless
told otherwise, the mutation corpus that proves the linter still bites)
and writes one JSON report.  The exit code is the CI contract:

* ``0`` — every analyzed shipped kernel is clean *and* every corpus
  mutant triggered its expected diagnostics;
* ``1`` — a shipped kernel has findings, or a mutant slipped through.

``--plan`` lints a *persisted* compiler plan file
(:mod:`repro.simd.plan_cache`) instead: the header is validated, a
megakernel payload runs the fused-program pass
(:func:`~repro.analysis.trace_lint.lint_megakernel`), and a corrupt or
truncated file is a finding, not a crash — so an on-disk plan store is
auditable without executing anything.

Examples::

    python -m repro analyze --all-variants
    python -m repro analyze --variant "SELL using AVX512" --json report.json
    python -m repro analyze --corpus-only
    python -m repro analyze --plan ~/.cache/repro/plans/mega-1c04c8....plan
"""

from __future__ import annotations

import argparse
import json
import sys

from .corpus import run_corpus
from .kernel import analyze_all, summarize


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="Static ISA/dataflow/memory/coverage lint over "
                    "recorded kernel traces, plus the mutation corpus.",
    )
    parser.add_argument(
        "--all-variants", action="store_true",
        help="analyze every registered variant over the structure panel "
             "(the default when no --variant is given)",
    )
    parser.add_argument(
        "--variant", action="append", default=[], metavar="NAME",
        help="analyze only this registered variant (repeatable)",
    )
    parser.add_argument(
        "--corpus-only", action="store_true",
        help="run only the mutation corpus, skip the shipped kernels",
    )
    parser.add_argument(
        "--no-corpus", action="store_true",
        help="skip the mutation corpus",
    )
    parser.add_argument(
        "--strict-alignment", action="store_true",
        help="record under the strict alignment policy (Section 3.1)",
    )
    parser.add_argument(
        "--numerical", action="store_true",
        help="add the aggregated rounding-certificate section (tree "
             "depth, rounding counts per variant) to the report; NUM0xx "
             "findings gate the exit code either way",
    )
    parser.add_argument(
        "--plan", action="append", default=[], metavar="PATH",
        help="lint a persisted compiler plan file (repeatable); given "
             "alone, skips the kernel sweep and the corpus",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the JSON report here instead of stdout",
    )
    return parser


def _lint_plan(path: str) -> dict:
    """One plan file's audit entry: header, kind, findings."""
    from ..simd.megakernel import MegakernelTrace
    from ..simd.plan_cache import PlanCacheError, read_plan
    from .trace_lint import lint_megakernel

    entry: dict = {"path": path}
    try:
        header, value = read_plan(path)
    except PlanCacheError as exc:
        entry.update(ok=False, error=str(exc))
        return entry
    entry["header"] = header
    if value is None:
        # The persisted "unfusable trace" verdict: valid, nothing to lint.
        entry.update(kind="verdict:unfusable", ok=True, diagnostics=[])
    elif isinstance(value, MegakernelTrace):
        diags = lint_megakernel(value)
        entry.update(
            kind="megakernel",
            regions=len(value.regions),
            fused_steps=value.fused_steps,
            source_nsteps=value.source_nsteps,
            diagnostics=[d.as_dict() for d in diags],
            ok=not diags,
        )
    else:
        entry.update(
            kind=type(value).__name__, ok=True, diagnostics=[],
        )
    return entry


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    document: dict = {}
    ok = True

    plan_only = bool(args.plan) and not (
        args.variant or args.all_variants or args.corpus_only
    )
    if args.plan:
        entries = [_lint_plan(path) for path in args.plan]
        document["plans"] = entries
        for entry in entries:
            if not entry["ok"]:
                ok = False
                problem = entry.get("error") or "; ".join(
                    d["code"] + " " + d["detail"]
                    for d in entry.get("diagnostics", [])
                )
                print(f"plan {entry['path']}: {problem}", file=sys.stderr)
    if plan_only:
        document["ok"] = ok
        text = json.dumps(document, indent=2)
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
            print(
                f"analyze: {len(document['plans'])} plan files audited "
                f"-> {args.json}"
            )
        else:
            print(text)
        return 0 if ok else 1

    if not args.corpus_only:
        variants = None
        if args.variant:
            from ..core.dispatch import get_variant

            variants = tuple(get_variant(name) for name in args.variant)
        reports = analyze_all(
            variants=variants, strict_alignment=args.strict_alignment
        )
        document["kernels"] = summarize(reports)
        if document["kernels"]["dirty"]:
            ok = False
            for report in reports:
                for diag in report.diagnostics:
                    print(f"{report.subject}: {diag}", file=sys.stderr)
        if args.numerical:
            certs = [r.certificate for r in reports if r.certificate is not None]
            document["certificates"] = {
                "count": len(certs),
                "certified": sum(c.ok for c in certs),
                "max_depth": max((c.max_depth for c in certs), default=0),
                "max_roundings": max(
                    (c.max_roundings for c in certs), default=0
                ),
                "entries": [c.as_dict() for c in certs],
            }
            if any(not c.ok for c in certs):
                ok = False

    if not args.no_corpus:
        document["corpus"] = run_corpus()
        if not document["corpus"]["ok"]:
            ok = False
            for missed in document["corpus"]["missed"]:
                print(f"corpus mutant not caught: {missed}", file=sys.stderr)

    document["ok"] = ok
    text = json.dumps(document, indent=2)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(text + "\n")
        kernels = document.get("kernels", {})
        corpus = document.get("corpus", {})
        print(
            f"analyze: {kernels.get('analyzed', 0)} kernel reports "
            f"({kernels.get('dirty', 0)} dirty), "
            f"{corpus.get('cases', 0)} corpus mutants "
            f"({corpus.get('caught', 0)} caught) -> {args.json}"
        )
    else:
        print(text)
    return 0 if ok else 1
