"""Diagnostic codes the static analyzer emits.

Every finding is a :class:`Diagnostic` carrying a stable code.  ``VEC0xx``
codes come from the kernel-trace linter (:mod:`repro.analysis.trace_lint`),
``COMM0xx`` codes from the SPMD schedule checker
(:mod:`repro.analysis.comm_check`).  Codes are grouped by pass:

* ``VEC01x`` — ISA conformance (instruction legal for the target ISA);
* ``VEC02x`` — dataflow (defs/uses over the SSA-like trace);
* ``VEC03x`` — memory safety (bounds and alignment contracts);
* ``VEC04x`` — output coverage (tail lanes written exactly once);
* ``VEC05x`` — megakernel fusion (boundary dataflow and coverage of
  fused programs, :func:`repro.analysis.trace_lint.lint_megakernel`);
* ``NUM00x`` / ``NUM01x`` — floating-point error certification
  (:mod:`repro.analysis.numlint`): ``NUM00x`` means a trace could not be
  certified at all, ``NUM01x`` means two certificates that should agree
  describe different accumulation trees;
* ``COMM00x`` — SPMD message-schedule safety.

``docs/analysis.md`` documents each code with a minimal triggering trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # numlint imports Diagnostic; only the annotation cycles
    from .numlint import NumericalCertificate

#: code -> one-line summary; the registry the CLI and docs enumerate.
CODES: dict[str, str] = {
    # ISA conformance
    "VEC010": "mask-predicated operation on an ISA without mask registers",
    "VEC011": "hardware gather issued on an ISA without gather support",
    "VEC012": "fused multiply-add issued on an ISA without FMA",
    "VEC013": "operand lane width does not match the target register width",
    # dataflow
    "VEC020": "register or scalar read before any definition",
    "VEC021": "value defined but never consumed (lost accumulator)",
    "VEC022": "output cell loaded before its first store (stale read)",
    # memory safety
    "VEC030": "gather/scatter index outside the bound buffer",
    "VEC031": "load/store offset outside the bound buffer",
    "VEC032": "aligned load/store at an offset violating the ISA alignment",
    # coverage
    "VEC040": "output cell stored twice with no intervening load",
    "VEC041": "output row never written by the kernel",
    # megakernel fusion
    "VEC050": "step outside a fused region reads a register the fusion elided",
    "VEC051": "fused region's source steps are not a lockstep FMA chain",
    "VEC052": "fused program does not cover the source trace's steps exactly",
    # numerical certification
    "NUM001": "uncertifiable operation: no rounding-error semantics",
    "NUM002": "unbounded accumulation: operand with unknown provenance",
    "NUM003": "mixed-precision hazard: non-float64 value in the dataflow",
    "NUM010": "accumulation tree depth or leaf set differs from reference",
    "NUM011": "accumulation order differs from the certified reference",
    "NUM012": "rounding count differs from reference (FMA fusion changed)",
    # comm schedule
    "COMM001": "message sent but never received (leaked send)",
    "COMM002": "receive posted with no matching send",
    "COMM003": "send/recv pair matched on peer but not on tag",
    "COMM004": "wait-for cycle: ranks deadlock on each other's messages",
    "COMM005": "wildcard receive races between concurrent sends",
    "COMM006": "ranks entered different collective operations",
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding: a coded defect at a trace or schedule site.

    ``where`` locates the finding (an op index like ``op 17``, a buffer
    name, or a rank); ``detail`` is the human-readable specifics.
    """

    code: str
    where: str
    detail: str

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def summary(self) -> str:
        """The registry's one-line description of this code."""
        return CODES[self.code]

    def __str__(self) -> str:
        return f"{self.code} at {self.where}: {self.detail}"

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "where": self.where,
            "detail": self.detail,
            "summary": self.summary,
        }


@dataclass
class AnalysisReport:
    """All findings for one analyzed subject (a kernel variant, a schedule).

    ``certificate`` carries the :class:`repro.analysis.numlint.NumericalCertificate`
    derived from the same recording when the subject was certified; its
    diagnostics are merged into ``diagnostics``, so ``ok`` already
    accounts for certification failures.
    """

    subject: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    certificate: NumericalCertificate | None = None

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    @property
    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def extend(self, diags: list[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def as_dict(self) -> dict:
        out = {
            "subject": self.subject,
            "ok": self.ok,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }
        if self.certificate is not None:
            out["certificate"] = self.certificate.as_dict()
        return out
